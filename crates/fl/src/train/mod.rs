//! The federated training loop and its cost-accounted environment.
//!
//! [`FlEnv`] wraps an [`Accelerator`] and a [`Network`] and provides the
//! communication patterns the four models share — secure aggregation
//! rounds and pairwise encrypted exchanges — charging every simulated
//! second to the proper component of the paper's Others / HE /
//! Communication breakdown. [`train`] runs epochs until the paper's
//! stopping rule ("if the loss difference between two successive epochs
//! is less than 1e-6, the model reaches convergence") or an epoch cap.

use crate::backend::{Accelerator, EncryptedVector};
use crate::engine::EngineConfig;
use crate::metrics::{EpochBreakdown, EpochResult, TrainReport};
use crate::net::Network;
use crate::Result;

/// Training hyper-parameters (paper Sec. VI-B defaults).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Mini-batch size (paper: 1024).
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 penalty coefficient (paper: 0.01).
    pub l2: f64,
    /// Epoch cap.
    pub max_epochs: usize,
    /// Convergence tolerance on successive losses (paper: 1e-6).
    pub tolerance: f64,
    /// Seed for batching/blinding randomness.
    pub seed: u64,
    /// Simulated seconds per local floating-point operation — the cost
    /// model for the "Others" component (calibrated to FATE's effective
    /// local-compute rate).
    pub sec_per_flop: f64,
    /// When set, models that support it (currently Homo LR) drive their
    /// secure-aggregation rounds through the event-driven
    /// [round engine](crate::engine) instead of the sequential in-process
    /// loop. `None` (the default) keeps the classic loop untouched.
    pub engine: Option<EngineConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 1024,
            learning_rate: 0.1,
            l2: 0.01,
            max_epochs: 20,
            tolerance: 1e-6,
            seed: 0xF1,
            sec_per_flop: 4.0e-9,
            engine: None,
        }
    }
}

/// The execution environment one model trains in.
pub struct FlEnv {
    /// The acceleration backend under test.
    pub accel: Accelerator,
    /// The simulated client↔server link.
    pub network: Network,
}

impl FlEnv {
    /// Builds an environment; the network profile follows the backend.
    pub fn new(accel: Accelerator, seed: u64) -> Self {
        let network = Network::new(accel.network_profile(), seed);
        FlEnv { accel, network }
    }

    /// One secure-aggregation round (the paper's Fig. 2): every party
    /// encrypts its vector and uploads it; the server folds them
    /// homomorphically and broadcasts the result; each party decrypts.
    ///
    /// Clients run in parallel on their own machines, so client-side HE
    /// is charged once (they are symmetric); server-side aggregation and
    /// all NIC traffic are serial.
    ///
    /// Returns element-wise sums (divide by party count for the mean).
    pub fn aggregation_round(
        &self,
        parties: &[Vec<f64>],
        seed: u64,
        breakdown: &mut EpochBreakdown,
    ) -> Result<Vec<f64>> {
        let p = parties.len();
        if p == 0 {
            return Ok(Vec::new());
        }
        // Non-empty: the p == 0 case returned above.
        // flcheck: allow(pf-index)
        let values = parties[0].len() as u64;

        // Parallel client-side encryption: charge one client's share
        // (clients are symmetric and run on their own machines).
        self.accel.take_timing(); // drop any stale scratch
        let encrypted: Result<Vec<EncryptedVector>> = parties
            .iter()
            .enumerate()
            .map(|(k, v)| self.accel.encrypt(v, seed.wrapping_add(k as u64)))
            .collect();
        let encrypted = encrypted?;
        let enc_t = self.accel.take_timing();
        breakdown.he_seconds += enc_t.he_seconds / p as f64;
        breakdown.other_seconds += enc_t.codec_seconds / p as f64;
        breakdown.phases.encrypt_seconds += enc_t.he_seconds / p as f64;
        breakdown.phases.encrypt_seconds += enc_t.codec_seconds / p as f64;
        breakdown.round_seconds += enc_t.he_seconds / p as f64;
        breakdown.round_seconds += enc_t.codec_seconds / p as f64;
        breakdown.he_values += values;

        // Uploads: p messages hit the server NIC serially.
        for ev in &encrypted {
            let t = self.network.send(ev.ciphertext_count(), ev.bytes())?;
            breakdown.comm_seconds += t;
            breakdown.phases.uplink_seconds += t;
            breakdown.round_seconds += t;
            breakdown.comm_bytes += ev.bytes();
            breakdown.ciphertexts += ev.ciphertext_count();
        }

        // Server-side homomorphic fold (serial), routed through the
        // backend's aggregation topology.
        let agg = self.accel.aggregate(&encrypted)?;
        let agg_t = self.accel.take_timing();
        breakdown.he_seconds += agg_t.he_seconds;
        breakdown.phases.aggregate_seconds += agg_t.he_seconds;
        breakdown.round_seconds += agg_t.he_seconds;

        // Tree topologies push each edge aggregator's partial one hop up
        // the tree; every hop carries an aggregate-shaped message and is
        // charged to communication like any other wire traffic. Flat
        // topologies contribute zero hops here.
        for _ in 0..self.accel.topology().uplink_messages(p) {
            let t = self.network.send(agg.ciphertext_count(), agg.bytes())?;
            breakdown.comm_seconds += t;
            breakdown.phases.uplink_seconds += t;
            breakdown.round_seconds += t;
            breakdown.comm_bytes += agg.bytes();
            breakdown.ciphertexts += agg.ciphertext_count();
        }

        // Broadcast the aggregate back to every party.
        let t = self
            .network
            .broadcast(crate::count_u32(p), agg.ciphertext_count(), agg.bytes())?;
        breakdown.comm_seconds += t;
        breakdown.phases.downlink_seconds += t;
        breakdown.round_seconds += t;
        breakdown.comm_bytes += p as u64 * agg.bytes();
        breakdown.ciphertexts += p as u64 * agg.ciphertext_count();

        // Parallel client-side decryption: one client's cost.
        let sums = self.accel.decrypt_sum(&agg, crate::count_u32(p))?;
        let dec_t = self.accel.take_timing();
        breakdown.he_seconds += dec_t.he_seconds;
        breakdown.other_seconds += dec_t.codec_seconds;
        breakdown.phases.decrypt_seconds += dec_t.he_seconds;
        breakdown.phases.decrypt_seconds += dec_t.codec_seconds;
        breakdown.round_seconds += dec_t.he_seconds;
        breakdown.round_seconds += dec_t.codec_seconds;

        Ok(sums)
    }

    /// Pairwise encrypted exchange: one party encrypts `values` and sends
    /// them; the receiver (or arbiter) decrypts. Returns the values after
    /// their quantize→encrypt→decrypt round trip — the exact degradation
    /// the receiving party trains on.
    pub fn encrypted_exchange(
        &self,
        values: &[f64],
        seed: u64,
        breakdown: &mut EpochBreakdown,
    ) -> Result<Vec<f64>> {
        self.accel.take_timing(); // drop any stale scratch
        let ev = self.accel.encrypt(values, seed)?;
        let enc_t = self.accel.take_timing();
        breakdown.he_seconds += enc_t.he_seconds;
        breakdown.other_seconds += enc_t.codec_seconds;
        breakdown.phases.encrypt_seconds += enc_t.he_seconds;
        breakdown.phases.encrypt_seconds += enc_t.codec_seconds;
        breakdown.round_seconds += enc_t.he_seconds;
        breakdown.round_seconds += enc_t.codec_seconds;
        let t = self.network.send(ev.ciphertext_count(), ev.bytes())?;
        breakdown.comm_seconds += t;
        breakdown.phases.uplink_seconds += t;
        breakdown.round_seconds += t;
        breakdown.comm_bytes += ev.bytes();
        breakdown.ciphertexts += ev.ciphertext_count();
        let out = self.accel.decrypt_sum(&ev, 1)?;
        let dec_t = self.accel.take_timing();
        breakdown.he_seconds += dec_t.he_seconds;
        breakdown.other_seconds += dec_t.codec_seconds;
        breakdown.phases.decrypt_seconds += dec_t.he_seconds;
        breakdown.phases.decrypt_seconds += dec_t.codec_seconds;
        breakdown.round_seconds += dec_t.he_seconds;
        breakdown.round_seconds += dec_t.codec_seconds;
        breakdown.he_values += values.len() as u64;
        Ok(out)
    }

    /// Charges `flops` of local model computation to "Others".
    // flcheck: charge-sink
    pub fn charge_local_compute(
        &self,
        flops: u64,
        cfg: &TrainConfig,
        breakdown: &mut EpochBreakdown,
    ) {
        self.charge_local_seconds(flops as f64 * cfg.sec_per_flop, breakdown);
    }

    /// Charges `seconds` of local model computation to "Others". The
    /// seconds variant exists for callers (Homo LR, the round engine)
    /// whose per-client mean is computed in f64 before charging.
    // flcheck: charge-sink
    pub fn charge_local_seconds(&self, seconds: f64, breakdown: &mut EpochBreakdown) {
        breakdown.other_seconds += seconds;
        breakdown.phases.compute_seconds += seconds;
        breakdown.round_seconds += seconds;
    }
}

/// A federated model trainable epoch-by-epoch.
pub trait FlModel {
    /// Display name matching the paper ("Homo LR", ...).
    fn name(&self) -> &'static str;

    /// Runs one epoch, returning its timing and post-epoch loss.
    fn run_epoch(&mut self, env: &FlEnv, cfg: &TrainConfig, epoch: usize) -> Result<EpochResult>;

    /// Current global training loss.
    fn loss(&self) -> f64;

    /// Dataset name the model was built on.
    fn dataset_name(&self) -> &str;
}

/// Trains to the paper's stopping rule and assembles the report.
pub fn train(model: &mut dyn FlModel, env: &FlEnv, cfg: &TrainConfig) -> Result<TrainReport> {
    let mut epochs = Vec::new();
    let mut prev_loss = f64::INFINITY;
    let mut converged = false;
    for e in 0..cfg.max_epochs {
        let result = model.run_epoch(env, cfg, e)?;
        let loss = result.loss;
        epochs.push(result);
        if (prev_loss - loss).abs() < cfg.tolerance {
            converged = true;
            break;
        }
        prev_loss = loss;
    }
    Ok(TrainReport {
        model: model.name().to_string(),
        dataset: model.dataset_name().to_string(),
        backend: env.accel.name().to_string(),
        key_bits: env.accel.key_bits(),
        epochs,
        converged,
    })
}

mod shared;
pub use shared::{logloss, sigmoid};
