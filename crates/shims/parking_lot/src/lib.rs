//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching parking_lot's "no poisoning" semantics).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
