//! Offline stand-in for `rand_chacha` 0.3.
//!
//! Implements the actual ChaCha stream cipher (Bernstein 2008) as the
//! keystream source, parameterised by round count, so [`ChaCha8Rng`] and
//! [`ChaCha20Rng`] are real cryptographic-quality deterministic generators
//! — only the API surface is trimmed to what this workspace uses
//! (`SeedableRng::{from_seed, seed_from_u64}` plus `RngCore`). The byte
//! streams are not guaranteed to match the upstream crate bit-for-bit; no
//! test in this workspace depends on upstream-exact streams.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds halved — the `ChaCha8` variant.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha12.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha20 — the IETF-standard round count.
pub type ChaCha20Rng = ChaChaRng<10>;

/// Generic ChaCha keystream generator; `DOUBLE_ROUNDS` column/diagonal
/// round pairs per block (4 → ChaCha8, 10 → ChaCha20).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14); nonce fixed to zero.
    counter: u64,
    /// Current keystream block, served out word by word.
    block: [u32; 16],
    /// Next unserved word index in `block`; 16 means "exhausted".
    word_pos: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16]: zero nonce.
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.word_pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaChaRng {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(100);
        assert_ne!(ChaCha8Rng::seed_from_u64(99).next_u64(), c.next_u64());
    }

    #[test]
    fn chacha20_zero_key_block0_matches_rfc_like_construction() {
        // With an all-zero key and zero counter/nonce the first block must
        // differ from the raw input state (the permutation is non-trivial)
        // and be stable across calls.
        let mut r1 = ChaCha20Rng::from_seed([0u8; 32]);
        let mut r2 = ChaCha20Rng::from_seed([0u8; 32]);
        let w1: Vec<u64> = (0..8).map(|_| r1.next_u64()).collect();
        let w2: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        assert_eq!(w1, w2);
        assert!(w1.iter().any(|&w| w != 0));
    }

    #[test]
    fn streams_look_uniform_enough_for_rejection_sampling() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64 000 bits, expect ~32 000 ones; allow a wide band.
        assert!((28_000..36_000).contains(&ones), "bit bias: {ones}");
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
