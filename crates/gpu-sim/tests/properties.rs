//! Property-based tests for the GPU execution model: memory-table
//! conservation, launch-plan feasibility, and stream-pipeline bounds.

use gpu_sim::memory::MemoryTable;
use gpu_sim::resource::{OccupancyLimit, ResourceManager};
use gpu_sim::{DeviceConfig, KernelSpec};
use proptest::prelude::*;

/// Random alloc/free scripts against the memory table.
#[derive(Debug, Clone)]
enum MemOp {
    Alloc(u64),
    FreeNth(usize),
}

fn mem_ops() -> impl Strategy<Value = Vec<MemOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..4096).prop_map(MemOp::Alloc),
            (0usize..64).prop_map(MemOp::FreeNth),
        ],
        1..80,
    )
}

fn arb_spec() -> impl Strategy<Value = KernelSpec> {
    (1u32..=64, 1u32..=255, 0u32..=48 * 1024, 0.0f64..=1.0).prop_map(|(lanes, regs, smem, div)| {
        KernelSpec {
            name: "prop",
            lanes_per_item: lanes,
            registers_per_thread: regs,
            shared_mem_per_block: smem,
            divergence: div,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn memory_table_conserves_bytes(ops in mem_ops()) {
        let mut table = MemoryTable::new(1 << 20);
        let mut live: Vec<gpu_sim::memory::DevicePtr> = Vec::new();
        let mut expected_in_use = 0u64;
        for op in ops {
            match op {
                MemOp::Alloc(len) => {
                    if let Ok(ptr) = table.alloc(len) {
                        expected_in_use += len;
                        live.push(ptr);
                    }
                }
                MemOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let ptr = live.swap_remove(i % live.len());
                        table.free(ptr).expect("live pointer frees cleanly");
                        expected_in_use -= ptr.len;
                    }
                }
            }
            prop_assert_eq!(table.bytes_in_use(), expected_in_use);
            prop_assert!(table.counters().peak_bytes >= table.bytes_in_use());
        }
        // No two live allocations overlap.
        let mut regions: Vec<(u64, u64)> = live.iter().map(|p| (p.addr, p.addr + p.len)).collect();
        regions.sort_unstable();
        for w in regions.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
        }
        // Everything fits the heap.
        for (_, end) in &regions {
            prop_assert!(*end <= table.capacity());
        }
    }

    #[test]
    fn launch_plans_are_always_feasible(spec in arb_spec(), items in 0usize..2_000_000) {
        for cfg in [DeviceConfig::rtx3090(), DeviceConfig::test_tiny()] {
            let rm = ResourceManager::new();
            let plan = rm.plan(&cfg, &spec, items);
            // Grid covers the work.
            let needed = (items.max(1) as u64) * spec.lanes_per_item as u64;
            prop_assert!(plan.num_blocks as u64 * plan.threads_per_block as u64 >= needed);
            // Residency respects hardware ceilings.
            prop_assert!(plan.threads_per_block <= cfg.max_threads_per_sm);
            prop_assert!(plan.blocks_per_sm >= 1 && plan.blocks_per_sm <= cfg.max_blocks_per_sm);
            prop_assert!(plan.resident_threads_per_sm <= cfg.max_threads_per_sm * plan.blocks_per_sm.max(1));
            // Occupancy is a fraction.
            prop_assert!(plan.occupancy > 0.0 && plan.occupancy <= 1.0 + 1e-12);
            // Waves drain the grid.
            let device_blocks = plan.blocks_per_sm as u64 * cfg.num_sms as u64;
            prop_assert!(plan.waves as u64 * device_blocks >= plan.num_blocks as u64);
            // The limit tag is one of the real resources.
            prop_assert!(matches!(
                plan.limited_by,
                OccupancyLimit::Threads
                    | OccupancyLimit::Registers
                    | OccupancyLimit::SharedMem
                    | OccupancyLimit::Blocks
            ));
        }
    }

    #[test]
    fn adaptive_never_loses_to_fixed(spec in arb_spec(), items in 1usize..500_000) {
        let cfg = DeviceConfig::rtx3090();
        let adaptive = ResourceManager::new().plan(&cfg, &spec, items);
        for fixed_block in [32u32, 128, 512, 1024] {
            let fixed = ResourceManager::fixed(fixed_block)
                .without_branch_combining()
                .plan(&cfg, &spec, items);
            prop_assert!(
                adaptive.occupancy >= fixed.occupancy - 1e-9,
                "adaptive {} < fixed({fixed_block}) {} for {:?}",
                adaptive.occupancy,
                fixed.occupancy,
                spec
            );
        }
    }

    #[test]
    fn stream_pipeline_bounded_by_serial_and_critical_path(
        chunks in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 0..40)
    ) {
        use gpu_sim::stream::Stream;
        // Build reports through the public Device API is heavyweight;
        // construct the stream arithmetic directly via serial/pipelined
        // invariants instead.
        let mut stream = Stream::new();
        let device = gpu_sim::Device::new(DeviceConfig::test_tiny());
        for &(h2d, kernel, d2h) in &chunks {
            // Scale to bytes/ops that reproduce the sampled times.
            let cfg = device.config();
            let bytes_in = (h2d * cfg.transfer_bytes_per_sec) as u64;
            let bytes_out = (d2h * cfg.transfer_bytes_per_sec) as u64;
            let ops = (kernel / cfg.sec_per_thread_op) as u64;
            let items = [0u8];
            let (_, report) = device.launch(
                &KernelSpec::simple("chunk"),
                &items,
                bytes_in,
                bytes_out,
                |_, _| gpu_sim::ItemOutcome::new((), ops),
            );
            stream.push(&report);
        }
        let serial = stream.serial_seconds();
        let pipelined = stream.pipelined_seconds();
        prop_assert!(pipelined <= serial + 1e-9);
        // Critical path: no stage's own total can be beaten.
        let h_total: f64 = chunks.iter().map(|c| c.0).sum();
        let d_total: f64 = chunks.iter().map(|c| c.2).sum();
        // Allow quantization slack from the byte/op rounding above.
        prop_assert!(pipelined + 1.0 >= h_total.max(d_total));
    }
}
