//! **Figure 7**: compression ratio of FLBooster vs key size, per model.
//!
//! Paper claims to reproduce: ~2 orders of magnitude fewer ciphertexts;
//! the ratio doubles with the key size (more slots per plaintext) and is
//! nearly identical across models and datasets.
//!
//! Both the theoretical ratio (Eq. 11) and the measured ratio (actual
//! ciphertext counts out of the backend) are printed.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin fig7_compression -- [--keys ...]
//! ```

use fl::BackendKind;
use flbooster_bench::table::Table;
use flbooster_bench::{backend, bench_dataset, Args, DatasetKind, ModelKind, PARTICIPANTS};
use flbooster_core::analysis;

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let keys = args.key_sizes();

    println!("Figure 7 — batch-compression ratio vs key size ({preset:?} preset)\n");
    let mut table = Table::new(["Model", "Key", "Measured", "Eq. 11 bound", "PSU (Eq. 12)"]);

    for model_kind in args.models() {
        let data = bench_dataset(DatasetKind::Synthetic, preset);
        let n = match model_kind {
            ModelKind::HomoLr | ModelKind::HeteroLr => data.num_features.max(512),
            ModelKind::HeteroSbt => 2 * data.len().max(256),
            ModelKind::HeteroNn => 2 * 64 * fl::models::HIDDEN,
        };
        let values: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.13).sin() * 0.7).collect();

        for &key_bits in &keys {
            let acc = backend(BackendKind::FlBooster, key_bits, PARTICIPANTS);
            let enc = acc.encrypt(&values, 5).expect("encrypt");
            let measured = values.len() as f64 / enc.ciphertext_count() as f64;
            let r_bits = acc.codec().quantizer().config().r_bits;
            let theory = analysis::compression_ratio(n as u64, key_bits, r_bits, PARTICIPANTS);
            let psu =
                analysis::plaintext_space_utilization(n as u64, key_bits, r_bits, PARTICIPANTS);
            table.row([
                model_kind.name().to_string(),
                key_bits.to_string(),
                format!("{measured:.1}x"),
                format!("{theory:.1}x"),
                format!("{psu:.3}"),
            ]);
        }
    }
    table.print();
    println!("\nPaper reference: ~32x at 1024 bits, ~64x at 2048, ~128x at 4096, uniform");
    println!("across models (the ratio depends only on the key size).");
}
