//! Homogeneous (horizontal) logistic regression.
//!
//! Every participant holds complete feature vectors for a disjoint set of
//! instances. Each SGD round (paper Fig. 2): clients compute local
//! mini-batch gradients, encrypt and upload them; the server aggregates
//! the ciphertexts and broadcasts the encrypted sum; clients decrypt,
//! average, and take the same optimizer step, so all replicas stay
//! synchronized.

// flcheck: allow-file(pf-index) — gradient/weight buffers are allocated to
// `num_features` and indexed by validated feature ids.

use crate::data::{horizontal_split, Dataset};
use crate::metrics::{EpochBreakdown, EpochResult};
use crate::optim::{Adam, Optimizer};
use crate::train::{logloss, sigmoid, FlEnv, FlModel, TrainConfig};
use crate::Result;

/// Horizontally-federated logistic regression.
pub struct HomoLr {
    dataset_name: String,
    parts: Vec<Dataset>,
    weights: Vec<f64>,
    opt: Adam,
    loss: f64,
}

impl HomoLr {
    /// Splits `dataset` across `participants` clients and initializes a
    /// zero model.
    pub fn new(dataset: &Dataset, participants: u32, cfg: &TrainConfig) -> Self {
        let parts = horizontal_split(dataset, participants);
        let mut opt = Adam::new(cfg.learning_rate);
        opt.l2 = cfg.l2;
        let mut model = HomoLr {
            dataset_name: dataset.name.clone(),
            parts,
            weights: vec![0.0; dataset.num_features],
            opt,
            loss: f64::NAN,
        };
        model.loss = model.global_loss();
        model
    }

    /// The shared model weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Local mini-batch gradient for one client: `(1/|B|) Σ (σ(x·w)−y)·x`.
    /// Returns `(gradient, flops)`.
    fn local_gradient(&self, part: usize, range: std::ops::Range<usize>) -> (Vec<f64>, u64) {
        let data = &self.parts[part];
        let mut grad = vec![0.0; self.weights.len()];
        let mut flops = 0u64;
        let count = range.len().max(1);
        for i in range {
            let row = &data.rows[i];
            let p = sigmoid(row.dot(&self.weights));
            let residual = p - data.labels[i];
            row.axpy_into(residual / count as f64, &mut grad);
            flops += 4 * row.nnz() as u64 + 8;
        }
        (grad, flops)
    }

    /// Training loss over the union of all parts.
    fn global_loss(&self) -> f64 {
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        for part in &self.parts {
            for (row, &y) in part.rows.iter().zip(&part.labels) {
                preds.push(sigmoid(row.dot(&self.weights)));
                labels.push(y);
            }
        }
        logloss(&preds, &labels)
    }
}

impl FlModel for HomoLr {
    fn name(&self) -> &'static str {
        "Homo LR"
    }

    fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    fn loss(&self) -> f64 {
        self.loss
    }

    fn run_epoch(&mut self, env: &FlEnv, cfg: &TrainConfig, epoch: usize) -> Result<EpochResult> {
        let mut breakdown = EpochBreakdown::default();
        let p = self.parts.len();
        // Clients iterate their local batches in lockstep; the round count
        // is the smallest client's batch count (parts are balanced ±1 row).
        let rounds = self
            .parts
            .iter()
            .map(|d| d.len().div_ceil(cfg.batch_size).max(1))
            .min()
            .unwrap_or(0);

        for round in 0..rounds {
            let mut grads = Vec::with_capacity(p);
            let mut flops = Vec::with_capacity(p);
            for k in 0..p {
                let n = self.parts[k].len();
                let lo = (round * cfg.batch_size).min(n);
                let hi = ((round + 1) * cfg.batch_size).min(n);
                let (g, f) = self.local_gradient(k, lo..hi);
                grads.push(g);
                flops.push(f);
            }

            let seed = cfg.seed ^ ((epoch as u64) << 24) ^ (round as u64);
            let grad: Vec<f64> = match &cfg.engine {
                // Event-driven round: the engine charges local compute
                // (with its heterogeneity multipliers), overlaps the
                // phases, and may drop stragglers — average over the
                // clients that actually made the round.
                Some(ecfg) => {
                    let out = crate::engine::run_round(
                        env,
                        ecfg,
                        cfg,
                        &grads,
                        &flops,
                        seed,
                        &mut breakdown,
                    )?;
                    let n = out.survivors.len().max(1) as f64;
                    out.sums.iter().map(|s| s / n).collect()
                }
                // Classic sequential round. Clients compute in parallel:
                // charge the mean per-client cost.
                None => {
                    env.charge_local_seconds(
                        crate::engine::mean_compute_seconds(&flops, &[], cfg.sec_per_flop),
                        &mut breakdown,
                    );
                    let sums = env.aggregation_round(&grads, seed, &mut breakdown)?;
                    sums.iter().map(|s| s / p as f64).collect()
                }
            };
            self.opt.step(&mut self.weights, &grad);
        }

        self.loss = self.global_loss();
        Ok(EpochResult {
            breakdown,
            loss: self.loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Accelerator, BackendKind};
    use crate::data::generators::DatasetSpec;
    use he::paillier::PaillierKeyPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env(kind: BackendKind) -> FlEnv {
        let mut rng = ChaCha8Rng::seed_from_u64(0x1107);
        let keys = PaillierKeyPair::generate(&mut rng, 128).unwrap();
        FlEnv::new(Accelerator::new(kind, keys, 4).unwrap(), 1)
    }

    fn small_dataset() -> Dataset {
        // Use a feature-scaled synthetic set so tests are fast.
        let mut spec = DatasetSpec::synthetic();
        spec.features = 32;
        spec.nnz_per_row = 32;
        spec.instances = 400;
        spec.generate(1.0)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 64,
            max_epochs: 3,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::FlBooster);
        let mut model = HomoLr::new(&data, 4, &cfg);
        let initial = model.loss();
        for e in 0..3 {
            model.run_epoch(&env, &cfg, e).unwrap();
        }
        assert!(
            model.loss() < initial - 0.01,
            "loss {} did not improve from {initial}",
            model.loss()
        );
    }

    #[test]
    fn epoch_charges_all_components() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 128,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::Fate);
        let mut model = HomoLr::new(&data, 4, &cfg);
        let result = model.run_epoch(&env, &cfg, 0).unwrap();
        let b = result.breakdown;
        assert!(b.he_seconds > 0.0, "HE time missing");
        assert!(b.comm_seconds > 0.0, "comm time missing");
        assert!(b.other_seconds > 0.0, "local compute missing");
        assert!(b.comm_bytes > 0 && b.ciphertexts > 0);
        assert_eq!(
            b.he_values,
            32 * (400_usize.div_ceil(4).div_ceil(128)) as u64
        );
    }

    #[test]
    fn fate_epoch_slower_than_flbooster() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 128,
            ..TrainConfig::default()
        };
        let mut fate_model = HomoLr::new(&data, 4, &cfg);
        let fate_t = fate_model
            .run_epoch(&env(BackendKind::Fate), &cfg, 0)
            .unwrap()
            .breakdown
            .total_seconds();
        let mut boost_model = HomoLr::new(&data, 4, &cfg);
        let boost_t = boost_model
            .run_epoch(&env(BackendKind::FlBooster), &cfg, 0)
            .unwrap()
            .breakdown
            .total_seconds();
        assert!(
            fate_t > 5.0 * boost_t,
            "FATE {fate_t} should be much slower than FLBooster {boost_t}"
        );
    }

    #[test]
    fn weights_identical_across_backends() {
        // Same quantizer and protocol => bit-identical model updates.
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 128,
            ..TrainConfig::default()
        };
        let mut w = Vec::new();
        for kind in [BackendKind::Fate, BackendKind::FlBooster] {
            let env = env(kind);
            let mut model = HomoLr::new(&data, 4, &cfg);
            model.run_epoch(&env, &cfg, 0).unwrap();
            w.push(model.weights().to_vec());
        }
        assert_eq!(w[0], w[1]);
    }
}
