//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no access to the crates-io registry, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), and
//! [`SeedableRng`] (`from_seed`, `seed_from_u64`). Call sites compile
//! unchanged against this shim; swapping the real crate back in is a
//! one-line `Cargo.toml` change.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an rng (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait Sample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Sample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty gen_range");
                let width = (self.end - self.start) as u128;
                self.start + uniform_u128_below(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample(rng);
                }
                let width = (hi - lo) as u128 + 1;
                lo + uniform_u128_below(rng, width) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                debug_assert!(self.start < self.end, "empty gen_range");
                let width = self.end.wrapping_sub(self.start) as $u as u128;
                self.start.wrapping_add(uniform_u128_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty gen_range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample(rng);
                }
                let width = hi.wrapping_sub(lo) as $u as u128 + 1;
                lo.wrapping_add(uniform_u128_below(rng, width) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<u128> for Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        debug_assert!(self.start < self.end, "empty gen_range");
        self.start + uniform_u128_below(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty gen_range");
        if lo == u128::MIN && hi == u128::MAX {
            return u128::sample(rng);
        }
        lo + uniform_u128_below(rng, hi - lo + 1)
    }
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Uniform value in `[0, bound)` by masked rejection (`bound > 0`).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    let bits = 128 - (bound - 1).leading_zeros();
    let mask = if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    };
    loop {
        let v = u128::sample(rng) & mask;
        if v < bound {
            return v;
        }
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a primitive type.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material (`[u8; N]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the rng from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as a cheap internal generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given starting state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_ranges_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = rng.gen_range(-7i64..9);
            assert!((-7..9).contains(&i));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = SplitMix64::new(3);
        let _: u128 = rng.gen_range(1..=u128::MAX);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seed_expansion_is_deterministic() {
        let a = SplitMix64::new(42).next_u64();
        let b = SplitMix64::new(42).next_u64();
        assert_eq!(a, b);
    }
}
