//! **Figure 8**: convergence (training loss vs cumulative simulated
//! time) on the Synthetic dataset at 1024-bit keys, for all four models
//! under FATE / HAFLO / FLBooster.
//!
//! Paper claims to reproduce: every system converges to the same loss
//! (identical updates), but FLBooster reaches it 1–2 orders of magnitude
//! sooner in wall time, with HAFLO in between.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin fig8_convergence -- \
//!     [--quick] [--epochs 6] [--models homo-lr]
//! ```

use fl::train::{train, FlEnv};
use fl::BackendKind;
use flbooster_bench::table::{secs, Table};
use flbooster_bench::{
    backend, bench_dataset, harness_train_config, Args, DatasetKind, PARTICIPANTS,
};

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let key_bits = args.get("key").and_then(|s| s.parse().ok()).unwrap_or(1024);
    let epochs: usize = args.get("epochs").and_then(|s| s.parse().ok()).unwrap_or(5);
    let mut cfg = harness_train_config();
    cfg.max_epochs = epochs;

    println!(
        "Figure 8 — convergence on Synthetic @ {key_bits}-bit keys ({preset:?} preset, {epochs} epochs)\n"
    );

    for model_kind in args.models() {
        println!("== {} ==", model_kind.name());
        let mut table = Table::new(["Method", "Epoch", "Cumulative sim s", "Loss"]);
        let mut finals = Vec::new();
        for backend_kind in BackendKind::headline() {
            let data = bench_dataset(DatasetKind::Synthetic, preset);
            let env = FlEnv::new(backend(backend_kind, key_bits, PARTICIPANTS), cfg.seed);
            let mut model = model_kind
                .build(&data, PARTICIPANTS, &cfg)
                .expect("model build");
            let report = train(model.as_mut(), &env, &cfg).expect("training");
            for (e, (t, loss)) in report.convergence_series().iter().enumerate() {
                table.row([
                    backend_kind.name().to_string(),
                    (e + 1).to_string(),
                    secs(*t),
                    format!("{loss:.5}"),
                ]);
            }
            finals.push((
                backend_kind.name(),
                report.final_loss(),
                report.mean_epoch_seconds(),
            ));
        }
        table.print();
        let fate_t = finals[0].2;
        println!(
            "  time-to-loss speedups vs FATE: HAFLO {:.1}x, FLBooster {:.1}x; final losses {:.5}/{:.5}/{:.5}\n",
            fate_t / finals[1].2,
            fate_t / finals[2].2,
            finals[0].1,
            finals[1].1,
            finals[2].1,
        );
    }
    println!("Paper reference: same final loss per model; FLBooster 28.7x-144.3x faster than");
    println!("FATE and 14.3x-75.2x faster than HAFLO to convergence.");
}
