//! Multi-precision multiplication bench: validates the Karatsuba
//! threshold (DESIGN.md §5.6) across operand sizes around the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpint::Natural;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

// `limbs` is drawn from a literal table capped at 128, so the bit count
// is at most 8192 and the widening-shaped cast can never truncate.
// flcheck: widen-ok(limbs)
fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpint_mul");
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    // Around and past the Karatsuba threshold (24 limbs = 1536 bits).
    for limbs in [8usize, 16, 24, 32, 64, 128] {
        let a = mpint::random::random_bits(&mut rng, (limbs * 64) as u32);
        let b = mpint::random::random_bits(&mut rng, (limbs * 64) as u32);
        group.bench_with_input(BenchmarkId::new("mul", limbs), &limbs, |bench, _| {
            bench.iter(|| black_box(black_box(&a) * black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("square", limbs), &limbs, |bench, _| {
            bench.iter(|| black_box(black_box(&a).square()))
        });
    }

    // Division (Knuth D) at cryptographic sizes.
    let a = mpint::random::random_bits(&mut rng, 4096);
    let b = mpint::random::random_bits(&mut rng, 2048);
    group.bench_function("div_rem/4096by2048", |bench| {
        bench.iter(|| black_box(black_box(&a).div_rem(black_box(&b))))
    });
    group.finish();
}

fn bench_conversions(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpint_convert");
    let mut rng = ChaCha8Rng::seed_from_u64(100);
    let v = mpint::random::random_bits(&mut rng, 2048);
    group.bench_function("to_le_bytes/2048", |b| {
        b.iter(|| black_box(black_box(&v).to_le_bytes()))
    });
    let bytes = v.to_le_bytes();
    group.bench_function("from_le_bytes/2048", |b| {
        b.iter(|| black_box(Natural::from_le_bytes(black_box(&bytes))))
    });
    group.bench_function("to_decimal/2048", |b| {
        b.iter(|| black_box(black_box(&v).to_decimal_string()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mul, bench_conversions
}
criterion_main!(benches);
