#!/bin/bash
# Final harness sequence: every table and figure, laptop-scaled.
cd /root/repo
R=results
mkdir -p $R
run() {
  name=$1; shift
  echo "=== $name: $* ===" 
  ( ./target/release/$name "$@" 2>&1 ) | tee $R/$name.txt
  echo
}
run fig1_fate_breakdown --quick                                          
run table6_components --quick                                            
run fig6_sm_utilization                                                   
run fig7_compression --quick                                              
run table4_throughput --quick --keys 1024                                 
run table3_epoch_time --quick --keys 1024                                 
run table3_epoch_time --quick --keys 2048 --models homo-lr --datasets rcv1
run table5_ablation --quick --keys 1024 --datasets rcv1,synthetic         
run table7_bias --quick --epochs 2 --models homo-lr,hetero-sbt --datasets rcv1,synthetic
run fig8_convergence --quick --epochs 3 --models homo-lr,hetero-nn        
run ablation_quantization --quick

# Static-analysis gate: the tree must be clean under flcheck and rustfmt.
echo "=== flcheck: static analysis ==="
./target/release/flcheck --root . --json $R/flcheck_report.json | tee $R/flcheck.txt
fl_status=${PIPESTATUS[0]}
if [ "$fl_status" -ne 0 ]; then
  echo "HARNESS_FAILED: flcheck found violations (exit $fl_status)"
  exit "$fl_status"
fi
echo "=== cargo fmt --check ==="
if ! cargo fmt --check; then
  echo "HARNESS_FAILED: cargo fmt --check"
  exit 1
fi
echo "HARNESS_ALL_DONE"
