//! Kernel descriptions and launch reports.

use crate::resource::LaunchPlan;

/// Static description of a kernel, fixed at the call site.
///
/// The HE layer derives these from the cryptosystem parameters: e.g. the
/// CIOS kernel for a `k`-bit key uses `lanes_per_item = T` cooperating
/// threads each holding `x = s/T` words in registers, so
/// `registers_per_thread` grows with the key size — which is what makes SM
/// utilization fall at 2048/4096 bits in the paper's Fig. 6.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Kernel name for logs and stats.
    pub name: &'static str,
    /// Cooperating threads per work item (the paper's `T` in Algorithm 2).
    pub lanes_per_item: u32,
    /// 32-bit registers demanded by each thread.
    pub registers_per_thread: u32,
    /// Shared memory per block, bytes.
    pub shared_mem_per_block: u32,
    /// Expected fraction of warps that hit the "unexpected branch issue"
    /// of Sec. IV-A2 (0.0–1.0). Divergent warps serialize their branch
    /// arms unless the resource manager combines them.
    pub divergence: f64,
}

impl KernelSpec {
    /// A minimal spec with one lane per item and modest resources.
    pub fn simple(name: &'static str) -> Self {
        KernelSpec {
            name,
            lanes_per_item: 1,
            registers_per_thread: 32,
            shared_mem_per_block: 0,
            divergence: 0.0,
        }
    }
}

/// Per-item execution outcome returned by kernel bodies.
#[derive(Debug, Clone)]
pub struct ItemOutcome<O> {
    /// The item's output value.
    pub output: O,
    /// Limb-level operations the item performed across its lanes
    /// (drives the simulated kernel time).
    pub thread_ops: u64,
    /// Whether this item took a data-dependent branch (contributes to
    /// warp divergence).
    pub divergent: bool,
}

impl<O> ItemOutcome<O> {
    /// Convenience constructor for non-divergent items.
    pub fn new(output: O, thread_ops: u64) -> Self {
        ItemOutcome {
            output,
            thread_ops,
            divergent: false,
        }
    }
}

/// Wraps a fallible kernel body's result as an outcome, keeping the error
/// in the output so the caller can collect it after the launch.
pub fn outcome_from_result<O, E>(
    result: Result<O, E>,
    thread_ops: u64,
    divergent: bool,
) -> ItemOutcome<Result<O, E>> {
    ItemOutcome {
        output: result,
        thread_ops,
        divergent,
    }
}

/// Everything measured about one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Kernel name.
    pub name: &'static str,
    /// Number of work items.
    pub items: usize,
    /// The grid/occupancy plan chosen by the resource manager.
    pub plan: LaunchPlan,
    /// Host wall-clock seconds spent executing the kernel bodies — a real
    /// parallel measurement across [`pool_threads`](Self::pool_threads)
    /// workers.
    pub wall_seconds: f64,
    /// Host pool workers the launch fanned out across, for parallel
    /// efficiency reports (wall-clock vs `total_thread_ops`).
    pub pool_threads: usize,
    /// Simulated host→device copy seconds.
    pub sim_h2d_seconds: f64,
    /// Simulated device compute seconds.
    pub sim_kernel_seconds: f64,
    /// Simulated device→host copy seconds.
    pub sim_d2h_seconds: f64,
    /// Bytes copied host→device.
    pub bytes_in: u64,
    /// Bytes copied device→host.
    pub bytes_out: u64,
    /// Total limb-level operations reported by items.
    pub total_thread_ops: u64,
    /// Fraction of items that diverged.
    pub divergent_fraction: f64,
    /// SM utilization achieved (0.0–1.0): occupancy × wave fill.
    pub sm_utilization: f64,
}

impl LaunchReport {
    /// Total simulated seconds (`t_gpu` of the paper's Eq. 10:
    /// transfer-in + compute + transfer-out).
    pub fn sim_total_seconds(&self) -> f64 {
        self.sim_h2d_seconds + self.sim_kernel_seconds + self.sim_d2h_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{LaunchPlan, OccupancyLimit};

    fn dummy_plan() -> LaunchPlan {
        LaunchPlan {
            threads_per_block: 128,
            num_blocks: 4,
            total_threads: 512,
            blocks_per_sm: 2,
            resident_threads_per_sm: 256,
            occupancy: 0.5,
            effective_registers_per_thread: 32,
            limited_by: OccupancyLimit::Threads,
            waves: 1,
        }
    }

    #[test]
    fn sim_total_adds_three_phases() {
        let r = LaunchReport {
            name: "t",
            items: 1,
            plan: dummy_plan(),
            wall_seconds: 0.0,
            pool_threads: 1,
            sim_h2d_seconds: 1.0,
            sim_kernel_seconds: 2.0,
            sim_d2h_seconds: 3.0,
            bytes_in: 0,
            bytes_out: 0,
            total_thread_ops: 0,
            divergent_fraction: 0.0,
            sm_utilization: 1.0,
        };
        assert_eq!(r.sim_total_seconds(), 6.0);
    }

    #[test]
    fn simple_spec_defaults() {
        let s = KernelSpec::simple("enc");
        assert_eq!(s.lanes_per_item, 1);
        assert_eq!(s.divergence, 0.0);
    }
}
