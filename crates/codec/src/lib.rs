//! Encoding-quantization and batch compression (paper Sec. IV-B/IV-C).
//!
//! Homomorphic encryption works over unsigned integers, but gradients are
//! signed floats. Existing systems encrypt the significand and leave the
//! exponent in plaintext, leaking the value's magnitude; FLBooster instead
//! quantizes the whole value into `r` bits after a linear shift (Eq. 6–8):
//!
//! ```text
//! e = m + α                    (shift [-α, α] to [0, 2α])
//! q = e_normalized · (2^r − 1) (amplify into r bits)
//! z = [0…0][q]                 (b = ⌈log₂ p⌉ guard bits for aggregation)
//! ```
//!
//! Batch compression (Eq. 9) then packs `n = ⌊k / (r + b)⌋` quantized
//! slots into one `k`-bit plaintext, so a single Paillier operation
//! carries `n` gradient components and the ciphertext count drops by the
//! compression ratio of Eq. 11 — 32× at 1024-bit keys with 32-bit slots.
//!
//! # Example
//!
//! ```
//! use codec::{BatchCodec, QuantizerConfig};
//!
//! let codec = BatchCodec::new(QuantizerConfig::paper_default(4), 1024).unwrap();
//! let grads = vec![0.5, -0.25, 0.125, -0.999];
//! let packed = codec.pack(&grads).unwrap();
//! assert_eq!(packed.len(), 1); // 4 slots fit easily in one 1024-bit word
//! let back = codec.unpack(&packed, grads.len()).unwrap();
//! for (a, b) in grads.iter().zip(&back) {
//!     assert!((a - b).abs() < 1e-8);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod error;
mod quantize;

pub use batch::BatchCodec;
pub use error::{Error, Result};
pub use quantize::{Quantizer, QuantizerConfig};
