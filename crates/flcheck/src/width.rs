//! Integer-width conformance: lossy narrowing casts on the scale-out
//! arithmetic paths.
//!
//! The codec's pack/unpack geometry (limb, slot, and arity counts), the
//! op-cost estimators, and `fl::net`'s byte accounting all mix `usize`
//! loop math with narrower wire/geometry types. A silent `as u32` of a
//! value that outgrew 32 bits corrupts results or charging without any
//! panic — exactly the failure FedBit-style bit-interleaved packing and
//! HAFLO-style cost accounting multiply as client counts scale.
//!
//! The item parser records every narrowing `as`-cast
//! ([`crate::parse::CastSite`]; the width lattice is
//! `u8 < u16 < u32 < u64 ≈ usize < u128`, so only casts *down* the
//! lattice are recorded). This pass flags a cast as **lossy-narrow**
//! when its value can reach a width-sensitive sink:
//!
//! - any non-test fn in `crates/codec/src` (pack/unpack geometry),
//! - any op-cost estimator (`*_estimate` / `*_mac_count` / `*_ops`),
//! - any non-test fn in `crates/fl/src/net.rs` (byte accounting).
//!
//! Reachability is judged two ways: the cast's own fn is in the sinks'
//! *forward closure* (sinks plus everything they call — a value computed
//! there feeds sink arithmetic), or the cast sits directly inside an
//! argument of a call that resolves into that set (the value flows
//! inward). Exemptions (precision valves, mirroring `nondet(..)`):
//!
//! - pure-literal sources (`7 as u8`: the value is statically in range),
//! - `// flcheck: widen-ok(names)` — a cast whose source expression
//!   mentions a named identifier is value-range safe,
//! - `// flcheck: narrow(description)` — the fn performs intentional,
//!   justified narrowing (masked limb splits etc.),
//! - `// flcheck: allow(lossy-narrow)` line suppressions.

use crate::callgraph::{backward_reach, hop, path_to, CallGraph, NodeId};
use crate::costmodel::is_accounting_name;
use crate::lexer::TokKind;
use crate::parse::{CastSite, ParsedFile};
use crate::report::Finding;
use std::collections::BTreeSet;

/// True when the fn at `n` is a width-sensitive sink.
fn is_sink(files: &[ParsedFile], n: NodeId) -> bool {
    let pf = &files[n.0];
    let f = &pf.fns[n.1];
    if f.in_test {
        return false;
    }
    pf.src.rel_path.starts_with("crates/codec/src/")
        || pf.src.rel_path == "crates/fl/src/net.rs"
        || is_accounting_name(&f.name)
}

/// What kind of sink a node is, for messages.
fn sink_desc(files: &[ParsedFile], n: NodeId) -> &'static str {
    let pf = &files[n.0];
    if pf.src.rel_path.starts_with("crates/codec/src/") {
        "codec pack/unpack geometry"
    } else if pf.src.rel_path == "crates/fl/src/net.rs" {
        "fl::net byte accounting"
    } else {
        "op-cost accounting"
    }
}

/// Forward closure over call edges: the seeds plus everything they
/// (transitively) call. A value computed anywhere in this set can feed
/// sink arithmetic.
fn forward_reach(
    files: &[ParsedFile],
    graph: &CallGraph,
    seed: &BTreeSet<NodeId>,
) -> BTreeSet<NodeId> {
    let mut set = seed.clone();
    loop {
        let mut grow: BTreeSet<NodeId> = BTreeSet::new();
        for &n in &set {
            for e in graph.out(n) {
                if !set.contains(&e.to) && !files[e.to.0].fns[e.to.1].in_test {
                    grow.insert(e.to);
                }
            }
        }
        if grow.is_empty() {
            return set;
        }
        set.extend(grow);
    }
}

/// Renders a cast's source expression for messages (token texts joined,
/// truncated).
fn src_text(pf: &ParsedFile, cast: &CastSite) -> String {
    let toks = &pf.src.tokens[cast.src_start..cast.as_idx.min(pf.src.tokens.len())];
    let mut parts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    if parts.len() > 8 {
        parts.truncate(8);
        parts.push("..");
    }
    parts.join(" ")
}

/// True when the cast's source is a pure literal (no identifiers): the
/// value is statically known to fit or deliberately constant.
fn pure_literal(pf: &ParsedFile, cast: &CastSite) -> bool {
    let toks = &pf.src.tokens[cast.src_start..cast.as_idx.min(pf.src.tokens.len())];
    !toks.is_empty() && toks.iter().all(|t| t.kind != TokKind::Ident)
}

/// True when the cast's source expression mentions an identifier named
/// by the fn's `widen-ok(..)` directive.
fn widen_ok(pf: &ParsedFile, widen: &[String], cast: &CastSite) -> bool {
    pf.src.tokens[cast.src_start..cast.as_idx.min(pf.src.tokens.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && widen.iter().any(|w| *w == t.text))
}

/// Runs the `lossy-narrow` rule.
pub fn check_width(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut sinks: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, pf) in files.iter().enumerate() {
        for gi in 0..pf.fns.len() {
            if is_sink(files, (fi, gi)) {
                sinks.insert((fi, gi));
            }
        }
    }
    // Two flow directions: a cast *inside* sink-side computation (the
    // sinks' forward closure over callees) is lossy where it stands; a
    // cast passed as an argument flows toward the sinks through any
    // callee that can still reach one (the sinks' backward reach).
    let relevant = forward_reach(files, graph, &sinks);
    let toward = backward_reach(files, graph, sinks.clone());

    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.in_test || f.casts.is_empty() || !f.narrows.is_empty() {
                continue;
            }
            let n = (fi, gi);
            for cast in &f.casts {
                if pf.src.is_allowed("lossy-narrow", cast.line)
                    || pure_literal(pf, cast)
                    || widen_ok(pf, &f.widen_ok, cast)
                {
                    continue;
                }
                // (a) The cast's fn computes values inside the sink set.
                if relevant.contains(&n) {
                    let Some(path) = path_to(graph, n, |m| sinks.contains(&m)) else {
                        continue;
                    };
                    let sink = path[path.len() - 1];
                    let mut chain = vec![format!(
                        "cast `{} as {}` ({}:{})",
                        src_text(pf, cast),
                        cast.target,
                        pf.src.rel_path,
                        cast.line
                    )];
                    chain.extend(path.iter().map(|&m| hop(files, m)));
                    out.push(Finding::with_chain(
                        "lossy-narrow",
                        &pf.src.rel_path,
                        cast.line,
                        format!(
                            "lossy narrowing cast `as {}` of `{}` in `{}` on a path \
                             reaching {} (`{}`): justify with widen-ok(..)/narrow(..) \
                             or widen the type",
                            cast.target,
                            src_text(pf, cast),
                            f.name,
                            sink_desc(files, sink),
                            files[sink.0].fns[sink.1].name
                        ),
                        chain,
                    ));
                    continue;
                }
                // (b) The cast flows directly into an argument of a call
                // that resolves into the sink set.
                let mut flagged = false;
                for (ci, cs) in f.calls.iter().enumerate() {
                    if flagged {
                        break;
                    }
                    let inside_arg = cs
                        .args
                        .iter()
                        .any(|&(s, e)| s <= cast.src_start && cast.as_idx < e);
                    if !inside_arg {
                        continue;
                    }
                    for e in graph.out(n).iter().filter(|e| e.call == ci) {
                        if !toward.contains(&e.to) {
                            continue;
                        }
                        let Some(path) = path_to(graph, e.to, |m| sinks.contains(&m)) else {
                            continue;
                        };
                        let sink = path[path.len() - 1];
                        let mut chain = vec![
                            format!(
                                "cast `{} as {}` ({}:{})",
                                src_text(pf, cast),
                                cast.target,
                                pf.src.rel_path,
                                cast.line
                            ),
                            hop(files, n),
                        ];
                        chain.extend(path.iter().map(|&m| hop(files, m)));
                        out.push(Finding::with_chain(
                            "lossy-narrow",
                            &pf.src.rel_path,
                            cast.line,
                            format!(
                                "lossy narrowing cast `as {}` of `{}` in `{}` passed into \
                                 `{}`, reaching {} (`{}`): justify with \
                                 widen-ok(..)/narrow(..) or widen the type",
                                cast.target,
                                src_text(pf, cast),
                                f.name,
                                cs.callee,
                                sink_desc(files, sink),
                                files[sink.0].fns[sink.1].name
                            ),
                            chain,
                        ));
                        flagged = true;
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        check_width(&parsed, &graph, &mut out);
        out.sort_by(|a, b| (a.line, &a.message).cmp(&(b.line, &b.message)));
        out
    }

    #[test]
    fn narrowing_cast_in_codec_is_flagged() {
        let src = "\
pub fn pack(values: &[u64], slots: usize) -> u32 {
    let geometry = slots * values.len();
    geometry as u32
}
";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, "lossy-narrow");
        assert_eq!(got[0].line, 3);
        assert!(got[0].message.contains("codec pack/unpack geometry"));
        assert!(
            got[0].chain[0].contains("geometry as u32"),
            "{:?}",
            got[0].chain
        );
    }

    #[test]
    fn widening_casts_are_never_recorded() {
        let src = "pub fn pack(n: u32) -> u64 { n as u64 + n as usize as u64 }\n";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn cast_outside_the_sink_closure_is_clean() {
        let src = "\
pub fn render(count: usize) -> String {
    format!(\"{}\", count as u32)
}
";
        let got = run(&[("crates/fl/src/report.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn cast_feeding_an_estimator_chain_is_flagged() {
        let src = "\
pub fn plan(arity: usize) -> u64 {
    helper(arity as u32)
}
fn helper(arity: u32) -> u64 {
    encrypt_op_estimate(arity)
}
fn encrypt_op_estimate(arity: u32) -> u64 {
    arity as u64 * 17
}
";
        let got = run(&[("crates/he/src/cost.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 2);
        assert!(got[0].message.contains("op-cost accounting"));
        assert!(
            got[0]
                .chain
                .iter()
                .any(|h| h.contains("encrypt_op_estimate")),
            "{:?}",
            got[0].chain
        );
    }

    #[test]
    fn pure_literal_sources_are_exempt() {
        let src = "pub fn pack() -> u8 { (1 + 2) as u8 }\n";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn widen_ok_names_exempt_matching_sources() {
        let src = "\
// flcheck: widen-ok(slot_bits)
pub fn pack(slot_bits: usize, arity: usize) -> u32 {
    let a = slot_bits as u32;
    let b = arity as u32;
    a + b
}
";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 4, "only the arity cast is flagged");
    }

    #[test]
    fn narrow_directive_sanctions_the_whole_fn() {
        let src = "\
// flcheck: narrow(limb split: masked to 32 bits explicitly)
pub fn split(limb: u64) -> u32 {
    (limb & 0xffff_ffff) as u32
}
";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn allow_suppresses_the_line() {
        let src = "\
pub fn pack(n: usize) -> u32 {
    // flcheck: allow(lossy-narrow)
    n as u32
}
";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn test_fns_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let n = 70000usize; assert_eq!(n as u16, 4464); }
}
";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn net_byte_accounting_is_a_sink() {
        let src = "\
pub fn send(bytes: usize) -> u32 {
    bytes as u32
}
";
        let got = run(&[("crates/fl/src/net.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("fl::net byte accounting"));
    }

    #[test]
    fn debug_assert_casts_are_dropped() {
        let src = "\
pub fn pack(n: usize) -> u64 {
    debug_assert!(n as u32 > 0);
    n as u64
}
";
        let got = run(&[("crates/codec/src/batch.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }
}
