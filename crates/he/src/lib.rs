//! Homomorphic encryption for the FLBooster reproduction.
//!
//! The paper's privacy layer is additive Paillier (Sec. III-B) with RSA
//! offered alongside it in the API surface (Table I). This crate
//! implements both from scratch on top of [`mpint`], plus the **GPU-HE**
//! layer (Sec. IV-A): batched encryption / decryption / homomorphic
//! computation dispatched through the [`gpu_sim`] device so that
//! throughput, SM utilization, and transfer volumes are accounted under
//! the paper's execution model.
//!
//! # Example
//!
//! ```
//! use he::paillier::PaillierKeyPair;
//! use mpint::Natural;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let keys = PaillierKeyPair::generate(&mut rng, 256).unwrap();
//! let c1 = keys.public.encrypt(&Natural::from(20u64), &mut rng).unwrap();
//! let c2 = keys.public.encrypt(&Natural::from(22u64), &mut rng).unwrap();
//! let sum = keys.public.add(&c1, &c2);
//! assert_eq!(keys.private.decrypt(&sum).unwrap(), Natural::from(42u64));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod damgard_jurik;
pub mod error;
pub mod ghe;
pub mod paillier;
pub mod rsa;

pub use error::{Error, Result};
pub use ghe::{CpuHe, GpuHe, HeBackend};
