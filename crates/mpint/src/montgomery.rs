//! Montgomery multiplication — the paper's Algorithm 1 and the reusable
//! domain context.
//!
//! Montgomery's trick (paper Sec. III-B) replaces the expensive modular
//! reduction in `a*b mod n` with shifts and masks by working in the residue
//! representation `aR mod n` where `R = 2^{w·s}` is a power of the limb
//! base. Algorithm 1 computes `A·B·R^{-1} mod n` as:
//!
//! ```text
//! T ← A·B mod R;  M ← T·N' mod R        (mask — the paper's "AND")
//! U ← (A·B + M·N) / R                   (shift)
//! return U - N if U ≥ N else U
//! ```
//!
//! `N' = -N^{-1} mod R` is precomputed once per modulus and reused for all
//! multiplications, exactly as the paper notes. The word-interleaved CIOS
//! variant (Algorithm 2) lives in [`crate::cios`] and is property-tested to
//! agree with this reference.

use crate::limb::{mont_neg_inv, Limb, LIMB_BITS};
use crate::natural::Natural;
use crate::{Error, Result};

/// Precomputed Montgomery domain for an odd modulus `n`.
///
/// The context fixes the limb width `s = ⌈bits(n)/w⌉` so every value in the
/// domain has the same fixed-size layout the GPU kernels expect.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: Natural,
    /// `s`: operand width in limbs; `R = 2^{64·s}`.
    width: usize,
    /// `-n^{-1} mod 2^64` — the single-limb `n'_0` of Algorithm 2.
    n0_inv: Limb,
    /// `-n^{-1} mod R` — the full-width `N'` of Algorithm 1.
    n_prime: Natural,
    /// `R mod n` (the Montgomery form of 1).
    r_mod_n: Natural,
    /// `R² mod n` (converts values *into* the domain with one mont-mul).
    r2_mod_n: Natural,
}

impl MontgomeryCtx {
    /// Builds a context for odd `n > 1`.
    // `width` is the modulus limb count — a few dozen limbs for any real
    // key size, nowhere near 2^32 — so the bit-count cast cannot truncate.
    // flcheck: widen-ok(width)
    pub fn new(n: &Natural) -> Result<Self> {
        if n.is_even() || n.is_one() || n.is_zero() {
            return Err(Error::EvenModulus);
        }
        let width = n.limb_len();
        let r_bits = (width as u32) * LIMB_BITS;
        let r = Natural::one().shl_bits(r_bits);
        // Non-empty: the zero modulus was rejected above.
        // flcheck: allow(pf-index)
        let n0_inv = mont_neg_inv(n.limbs()[0]);
        // N' = -n^{-1} mod R = R - n^{-1} mod R. `mod_inv` returns a value
        // reduced mod R, so the subtraction cannot underflow.
        let n_inv_mod_r = crate::gcd::mod_inv(n, &r)?;
        let n_prime = r
            .checked_sub(&n_inv_mod_r)
            .unwrap_or_default()
            .low_bits(r_bits);
        let r_mod_n = &r % n;
        let r2_mod_n = &(&r_mod_n * &r_mod_n) % n;
        Ok(MontgomeryCtx {
            n: n.clone(),
            width,
            n0_inv,
            n_prime,
            r_mod_n,
            r2_mod_n,
        })
    }

    /// The modulus `n`.
    #[inline]
    pub fn modulus(&self) -> &Natural {
        &self.n
    }

    /// Operand width `s` in limbs.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `log2(R)` in bits.
    #[inline]
    pub fn r_bits(&self) -> u32 {
        (self.width as u32) * LIMB_BITS
    }

    /// `n'_0 = -n^{-1} mod 2^64`, consumed by the CIOS kernel.
    #[inline]
    pub fn n0_inv(&self) -> Limb {
        self.n0_inv
    }

    /// The Montgomery form of 1 (`R mod n`).
    #[inline]
    pub fn one_mont(&self) -> Natural {
        self.r_mod_n.clone()
    }

    /// `R² mod n`.
    #[inline]
    pub fn r2(&self) -> &Natural {
        &self.r2_mod_n
    }

    /// Converts `a < n` into the Montgomery domain: `aR mod n`.
    pub fn to_mont(&self, a: &Natural) -> Natural {
        debug_assert!(a < &self.n, "operand must be reduced");
        self.mont_mul(a, &self.r2_mod_n)
    }

    /// Converts out of the domain: `aR^{-1} mod n` (i.e. REDC of `a`).
    // flcheck: ct-fn
    pub fn from_mont(&self, a: &Natural) -> Natural {
        self.redc(a.clone())
    }

    /// Algorithm 1: `A·B·R^{-1} mod n` for `A, B < n`.
    pub fn mont_mul(&self, a: &Natural, b: &Natural) -> Natural {
        debug_assert!(a < &self.n && b < &self.n);
        self.redc(a * b)
    }

    /// Montgomery reduction of `t < n·R`: returns `t·R^{-1} mod n`.
    ///
    /// Lines 1–6 of Algorithm 1; `mod R` is a mask and `/R` a shift since
    /// `R = 2^{w·s}`. The final reduction (`U - N if U >= N`) uses the
    /// constant-time conditional subtraction from [`crate::ct`]: `U` is
    /// derived from secret operands, so branching on its value would leak
    /// through timing (see the crate-level discussion in `ct`).
    // flcheck: ct-fn
    pub fn redc(&self, t: Natural) -> Natural {
        let r_bits = self.r_bits();
        // M ← (T mod R)·N' mod R
        let m = (&t.low_bits(r_bits) * &self.n_prime).low_bits(r_bits);
        // U ← (T + M·N) / R, with U < 2n: one masked subtraction reduces.
        let u = (&t + &(&m * &self.n)).shr_bits(r_bits);
        let mut limbs = u.to_padded_limbs(self.width + 1);
        crate::ct::ct_ge_then_sub(&mut limbs, self.n.limbs());
        let reduced = Natural::from_limbs(limbs);
        debug_assert!(reduced < self.n);
        reduced
    }

    /// Dedicated Montgomery squaring `A²·R^{-1} mod n` for `A < n`,
    /// through the symmetric kernel in [`crate::cios::mont_sqr`] (~25%
    /// fewer MACs than [`MontgomeryCtx::mont_mul`] on equal operands; the
    /// result is bit-identical). Every squaring step of the
    /// exponentiation ladders routes through here.
    // flcheck: ct-fn
    pub fn mont_sqr(&self, a: &Natural) -> Natural {
        debug_assert!(a < &self.n);
        crate::cios::mont_sqr_natural(self, a)
    }

    /// Modular multiplication `a·b mod n` via one extra conversion:
    /// `mont_mul(aR, bR) = abR`, then REDC. Provided for API completeness
    /// (Table I `mod_mul`); batch users should stay in the domain.
    pub fn mod_mul(&self, a: &Natural, b: &Natural) -> Natural {
        let am = self.to_mont(&(a % &self.n));
        let bm = self.to_mont(&(b % &self.n));
        self.from_mont(&self.mont_mul(&am, &bm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    fn ctx(modulus: u128) -> MontgomeryCtx {
        MontgomeryCtx::new(&n(modulus)).unwrap()
    }

    #[test]
    fn rejects_even_or_trivial_modulus() {
        assert_eq!(MontgomeryCtx::new(&n(10)).unwrap_err(), Error::EvenModulus);
        assert_eq!(MontgomeryCtx::new(&n(1)).unwrap_err(), Error::EvenModulus);
        assert_eq!(MontgomeryCtx::new(&n(0)).unwrap_err(), Error::EvenModulus);
    }

    #[test]
    fn domain_roundtrip() {
        let c = ctx(1_000_000_007);
        for v in [0u128, 1, 2, 999_999_999, 1_000_000_006] {
            let m = c.to_mont(&n(v));
            assert_eq!(c.from_mont(&m), n(v), "roundtrip {v}");
        }
    }

    #[test]
    fn mont_mul_matches_plain_modmul() {
        let p = 0xFFFF_FFFF_FFFF_FFC5u128; // largest 64-bit prime
        let c = ctx(p);
        let cases = [(3u128, 5u128), (p - 1, p - 1), (12345, 67890), (0, 42)];
        for (a, b) in cases {
            let am = c.to_mont(&n(a));
            let bm = c.to_mont(&n(b));
            let prod = c.from_mont(&c.mont_mul(&am, &bm));
            assert_eq!(prod, n((a * b) % p), "{a}*{b} mod p");
        }
    }

    #[test]
    fn one_mont_is_identity() {
        let c = ctx(999_999_937);
        let x = c.to_mont(&n(123_456));
        assert_eq!(c.mont_mul(&x, &c.one_mont()), x);
        assert_eq!(c.from_mont(&c.one_mont()), Natural::one());
    }

    #[test]
    fn mod_mul_reduces_unreduced_inputs() {
        let c = ctx(97);
        assert_eq!(c.mod_mul(&n(100), &n(200)), n((100 * 200) % 97));
    }

    #[test]
    fn multi_limb_modulus() {
        // 2^127 - 1 is a Mersenne prime — exercises a 2-limb context.
        let p = (1u128 << 127) - 1;
        let c = ctx(p);
        assert_eq!(c.width(), 2);
        let a = (1u128 << 100) + 7;
        let b = (1u128 << 101) + 13;
        let am = c.to_mont(&n(a));
        let bm = c.to_mont(&n(b));
        let got = c.from_mont(&c.mont_mul(&am, &bm));
        // Reference product via Natural arithmetic.
        let expected = &(&n(a) * &n(b)) % &n(p);
        assert_eq!(got, expected);
    }

    #[test]
    fn redc_of_zero_is_zero() {
        let c = ctx(101);
        assert!(c.redc(Natural::zero()).is_zero());
    }

    /// Boundary check for the constant-time final subtraction: feeding
    /// `t = u·R` into REDC makes `M = 0`, so the output is exactly
    /// `u - n if u >= n else u`. Exercises `u = n-1`, `u = n`, `u = 2n-1`
    /// on single- and multi-limb moduli and must agree bit-for-bit with
    /// the reference `% n`.
    #[test]
    fn redc_final_subtraction_boundaries() {
        for modulus in [n(101), n(0xFFFF_FFFF_FFFF_FFC5), n((1u128 << 127) - 1)] {
            let c = MontgomeryCtx::new(&modulus).unwrap();
            let one = Natural::one();
            let u_values = [
                modulus.checked_sub(&one).unwrap(), // n - 1: no subtract
                modulus.clone(),                    // n: subtract to zero
                (&modulus + &modulus).checked_sub(&one).unwrap(), // 2n - 1: subtract
            ];
            for u in u_values {
                let t = u.shl_bits(c.r_bits());
                let got = c.redc(t);
                let expected = &u % &modulus;
                assert_eq!(got, expected, "redc boundary u={u} mod {modulus}");
            }
        }
    }
}
