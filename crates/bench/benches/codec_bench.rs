//! Encoding-quantization and batch-compression benches, including the
//! packing-width ablation the paper discusses (r+b slots of 16/32/64
//! bits; 32 is the paper's recommendation).

use codec::{BatchCodec, Quantizer, QuantizerConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn values(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i as f64) * 0.37).sin() * 0.9).collect()
}

fn bench_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize");
    let q = Quantizer::new(QuantizerConfig::paper_default(4)).expect("config");
    let vs = values(4096);
    group.throughput(Throughput::Elements(vs.len() as u64));
    group.bench_function("quantize_4096", |b| {
        b.iter(|| {
            for &v in &vs {
                black_box(q.quantize(black_box(v)).unwrap());
            }
        })
    });
    group.bench_function("dequantize_4096", |b| {
        let qs: Vec<u64> = vs.iter().map(|&v| q.quantize(v).unwrap()).collect();
        b.iter(|| {
            for &z in &qs {
                black_box(q.dequantize(black_box(z)));
            }
        })
    });
    group.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_pack");
    let vs = values(4096);
    group.throughput(Throughput::Elements(vs.len() as u64));

    // Packing-width ablation: r + b = 16 / 32 / 56-bit slots at 1024-bit
    // keys (the paper recommends multiples of 32; slots are capped at the
    // codec's 62-bit aggregation-headroom limit).
    for slot in [16u32, 32, 56] {
        let cfg = QuantizerConfig {
            alpha: 1.0,
            r_bits: slot - 2,
            participants: 4,
            clip: true,
        };
        let codec = BatchCodec::new(cfg, 1024).expect("codec");
        group.bench_with_input(BenchmarkId::new("pack@1024", slot), &slot, |b, _| {
            b.iter(|| black_box(codec.pack(black_box(&vs)).unwrap()))
        });
        let packed = codec.pack(&vs).unwrap();
        group.bench_with_input(BenchmarkId::new("unpack@1024", slot), &slot, |b, _| {
            b.iter(|| black_box(codec.unpack(black_box(&packed), vs.len()).unwrap()))
        });
    }

    // Key-size sweep at the paper's 32-bit slots.
    for key_bits in [1024u32, 2048, 4096] {
        let codec = BatchCodec::new(QuantizerConfig::paper_default(4), key_bits).expect("codec");
        group.bench_with_input(
            BenchmarkId::new("pack@slot32", key_bits),
            &key_bits,
            |b, _| b.iter(|| black_box(codec.pack(black_box(&vs)).unwrap())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantize, bench_pack
}
criterion_main!(benches);
