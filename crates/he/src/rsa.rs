//! Textbook RSA with multiplicative homomorphism (paper Table I:
//! `RSA::key_gen / encrypt / decrypt / mul`).
//!
//! FLBooster exposes RSA alongside Paillier because several vertical-FL
//! protocols (e.g. RSA-based private set intersection for sample
//! alignment) need a multiplicatively homomorphic primitive:
//! `E(m₁)·E(m₂) = E(m₁·m₂ mod n)`. This is *raw* RSA — deterministic, no
//! padding — which is exactly what the homomorphic use case requires (and
//! why it must never be used for general-purpose encryption).

use mpint::cios::{mont_mul_mac_count, mont_sqr_mac_count};
use mpint::modpow::{mod_pow_ct, mod_pow_ctx};
use mpint::prime::{generate_prime_pair, DEFAULT_MR_ROUNDS};
use mpint::{mod_inv, MontgomeryCtx, Natural};
use rand::Rng;

use crate::{Error, Result};

/// Smallest accepted RSA modulus size.
pub const MIN_KEY_BITS: u32 = 64;

/// Standard public exponent.
pub const PUBLIC_EXPONENT: u64 = 65_537;

/// RSA public key `(n, e)`.
#[derive(Debug, Clone)]
pub struct RsaPublicKey {
    /// Modulus `n = p·q`.
    pub n: Natural,
    /// Public exponent `e`.
    pub e: Natural,
    /// Nominal key size in bits.
    pub key_bits: u32,
    ctx_n: MontgomeryCtx,
}

/// RSA private key with CRT acceleration.
#[derive(Debug, Clone)]
pub struct RsaPrivateKey {
    /// Private exponent `d = e^{-1} mod λ(n)`.
    pub d: Natural,
    /// Copy of the public key.
    pub public: RsaPublicKey,
    p: Natural,
    q: Natural,
    d_p: Natural,
    d_q: Natural,
    q_inv_p: Natural,
    ctx_p: MontgomeryCtx,
    ctx_q: MontgomeryCtx,
}

/// A generated RSA key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// Public key.
    pub public: RsaPublicKey,
    /// Private key.
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generates an RSA key pair with a `bits`-bit modulus.
    // The cost model charges steady-state encrypt/mul/decrypt traffic,
    // not the one-time keygen that precedes training.
    // flcheck: allow(uncharged-work) — one-time key setup
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Result<Self> {
        if bits < MIN_KEY_BITS {
            return Err(Error::KeySizeTooSmall {
                bits,
                min: MIN_KEY_BITS,
            });
        }
        let e = Natural::from(PUBLIC_EXPONENT);
        loop {
            let (p, q) = generate_prime_pair(rng, bits / 2, DEFAULT_MR_ROUNDS)?;
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let one = Natural::one();
            // Generated primes exceed 1; resample on the impossible case
            // rather than panicking.
            let Some(p1) = p.checked_sub(&one) else {
                continue;
            };
            let Some(q1) = q.checked_sub(&one) else {
                continue;
            };
            let phi = &p1 * &q1;
            // e must be invertible modulo φ(n).
            let d = match mod_inv(&e, &phi) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let ctx_n = MontgomeryCtx::new(&n)?;
            let public = RsaPublicKey {
                n,
                e: e.clone(),
                key_bits: bits,
                ctx_n,
            };
            let d_p = &d % &p1;
            let d_q = &d % &q1;
            let q_inv_p = mod_inv(&(&q % &p), &p)?;
            let ctx_p = MontgomeryCtx::new(&p)?;
            let ctx_q = MontgomeryCtx::new(&q)?;
            let private = RsaPrivateKey {
                d,
                public: public.clone(),
                p,
                q,
                d_p,
                d_q,
                q_inv_p,
                ctx_p,
                ctx_q,
            };
            return Ok(RsaKeyPair { public, private });
        }
    }
}

impl RsaPublicKey {
    /// Raw RSA encryption: `m^e mod n` for `m < n`.
    pub fn encrypt(&self, m: &Natural) -> Result<Natural> {
        if m >= &self.n {
            return Err(Error::PlaintextTooLarge {
                plaintext_bits: m.bit_len(),
                modulus_bits: self.n.bit_len(),
            });
        }
        Ok(mod_pow_ctx(&self.ctx_n, m, &self.e))
    }

    /// Homomorphic multiplication: `c₁·c₂ mod n = E(m₁·m₂ mod n)`.
    pub fn mul(&self, c1: &Natural, c2: &Natural) -> Natural {
        self.ctx_n.mod_mul(c1, c2)
    }

    /// Estimated limb-level op count of one encryption (65537 = 2^16+1:
    /// 17 Montgomery multiplications of `s²` cost each).
    // flcheck: estimates(encrypt, 2)
    pub fn encrypt_op_estimate(&self) -> u64 {
        let s = self.ctx_n.width() as u64;
        17 * s * s
    }
}

/// Secret-exponent exponentiation for decryption. The CRT shares of `d`
/// must not leak through the multiply schedule (the sliding-window path's
/// schedule mirrors the exponent bits), so decryption routes through the
/// square-and-multiply-always ladder, bounded by the public prime size.
// flcheck: ct-fn
// flcheck: secret(exp)
fn pow_secret(ctx: &MontgomeryCtx, base: &Natural, exp: &Natural, bits: u32) -> Natural {
    mod_pow_ct(ctx, base, exp, bits)
}

impl RsaPrivateKey {
    /// Raw RSA decryption via CRT: two half-width exponentiations, both
    /// constant-time in the secret exponent shares.
    // flcheck: secret(d_p, d_q)
    pub fn decrypt(&self, c: &Natural) -> Result<Natural> {
        if c >= &self.public.n {
            return Err(Error::CiphertextOutOfRange);
        }
        let m_p = pow_secret(&self.ctx_p, &(c % &self.p), &self.d_p, self.p.bit_len());
        let m_q = pow_secret(&self.ctx_q, &(c % &self.q), &self.d_q, self.q.bit_len());
        // Garner: m = m_q + q·((m_p - m_q)·q^{-1} mod p); both operands of
        // the lifted difference are reduced mod p. Recombination works on
        // the plaintext residues after both ladders complete.
        // flcheck: allow(ct-taint)
        let diff = m_p.mod_sub(&(&m_q % &self.p), &self.p);
        let h = &(&diff * &self.q_inv_p) % &self.p;
        Ok(&m_q + &(&self.q * &h))
    }

    /// Decryption without CRT (ablation baseline): `c^d mod n`,
    /// constant-time in `d`.
    // flcheck: secret(d)
    pub fn decrypt_direct(&self, c: &Natural) -> Result<Natural> {
        if c >= &self.public.n {
            return Err(Error::CiphertextOutOfRange);
        }
        Ok(pow_secret(
            &self.public.ctx_n,
            c,
            &self.d,
            self.public.n.bit_len(),
        ))
    }

    /// Estimated limb-level op count of one CRT decryption: two
    /// half-width square-and-multiply-always ladders (the CRT exponent
    /// shares are private-key material, so decryption pays the
    /// constant-time schedule) plus the Garner recombination arithmetic.
    /// Same unit as the Paillier estimates — MAC counts halved, squarings
    /// at the dedicated `mont_sqr` rate.
    // flcheck: estimates(decrypt, 2)
    // flcheck: estimates(decrypt_direct, 2)
    pub fn decrypt_op_estimate(&self) -> u64 {
        let s = self.ctx_p.width();
        let e_bits = self.p.bit_len() as u64;
        let ladder = e_bits * (mont_sqr_mac_count(s) + mont_mul_mac_count(s)) / 2;
        2 * (ladder + 2 * mont_mul_mac_count(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn keys(bits: u32) -> RsaKeyPair {
        RsaKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(0xA5A5), bits).unwrap()
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn roundtrip() {
        let k = keys(128);
        for v in [0u64, 1, 2, 65_537, u64::MAX] {
            let c = k.public.encrypt(&nat(v)).unwrap();
            assert_eq!(k.private.decrypt(&c).unwrap(), nat(v), "crt {v}");
            assert_eq!(k.private.decrypt_direct(&c).unwrap(), nat(v), "direct {v}");
        }
    }

    #[test]
    fn roundtrip_near_modulus() {
        let k = keys(128);
        let m = k.public.n.checked_sub(&Natural::one()).unwrap();
        let c = k.public.encrypt(&m).unwrap();
        assert_eq!(k.private.decrypt(&c).unwrap(), m);
    }

    #[test]
    fn multiplicative_homomorphism() {
        let k = keys(128);
        let (a, b) = (nat(123_456), nat(789_012));
        let ca = k.public.encrypt(&a).unwrap();
        let cb = k.public.encrypt(&b).unwrap();
        let product = k.public.mul(&ca, &cb);
        assert_eq!(k.private.decrypt(&product).unwrap(), &a * &b);
    }

    #[test]
    fn homomorphism_wraps_mod_n() {
        let k = keys(64);
        let m = k.public.n.checked_sub(&nat(2)).unwrap();
        let ca = k.public.encrypt(&m).unwrap();
        let cb = k.public.encrypt(&nat(3)).unwrap();
        let product = k.public.mul(&ca, &cb);
        assert_eq!(
            k.private.decrypt(&product).unwrap(),
            &(&m * &nat(3)) % &k.public.n
        );
    }

    #[test]
    fn deterministic_encryption() {
        // Raw RSA is deterministic — that is what makes it homomorphic.
        let k = keys(128);
        assert_eq!(
            k.public.encrypt(&nat(5)).unwrap(),
            k.public.encrypt(&nat(5)).unwrap()
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let k = keys(64);
        assert!(matches!(
            k.public.encrypt(&k.public.n),
            Err(Error::PlaintextTooLarge { .. })
        ));
        assert!(matches!(
            k.private.decrypt(&k.public.n),
            Err(Error::CiphertextOutOfRange)
        ));
    }

    #[test]
    fn key_size_floor() {
        assert!(matches!(
            RsaKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(1), 16),
            Err(Error::KeySizeTooSmall { .. })
        ));
    }

    #[test]
    fn modulus_size_exact() {
        for bits in [64u32, 128] {
            assert_eq!(keys(bits).public.n.bit_len(), bits);
        }
    }
}
