//! The Paillier cryptosystem (paper Sec. III-B).
//!
//! Additive homomorphic encryption over `Z_n` with ciphertexts in
//! `Z*_{n²}`:
//!
//! - **Key generation**: primes `p, q` of `k/2` bits, `n = p·q`,
//!   `λ = lcm(p-1, q-1)`. The default generator is `g = n + 1`, which
//!   satisfies the paper's `gcd(n, L(g^λ mod n²)) = 1` condition and makes
//!   `g^m mod n² = 1 + m·n` a single multiplication — the fast path every
//!   encryption takes. [`PaillierKeyPair::from_primes_with_g`] accepts an
//!   arbitrary valid `g`; those keys fall back to a generic constant-time
//!   exponentiation for `g^m` (the plaintext is secret), one extra modexp
//!   per encryption, reflected in
//!   [`PaillierPublicKey::encrypt_op_estimate`].
//! - **Encryption** (paper Eq. 3): `E(m) = g^m · r^n mod n²`.
//! - **Decryption** (paper Eq. 4): `D(c) = L(c^λ mod n²) / L(g^λ mod n²)
//!   mod n`, with an optional CRT fast path that exponentiates modulo `p²`
//!   and `q²` separately (≈4× fewer limb operations).
//! - **Homomorphic addition** (paper Eq. 5): `E(m₁)·E(m₂) = E(m₁+m₂)`,
//!   plus plaintext-scalar multiplication `E(m)^k = E(k·m)` used for
//!   weighted gradient aggregation.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use mpint::cios::{mont_mul_mac_count, mont_sqr_mac_count};
use mpint::modpow::{mod_pow_ct, mod_pow_ctx, window_size_for};
use mpint::prime::{generate_prime_pair, DEFAULT_MR_ROUNDS};
use mpint::random::random_coprime;
use mpint::straus;
use mpint::{mod_inv, MontgomeryCtx, Natural};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::{Error, Result};

/// Smallest accepted key size. Real deployments need ≥1024 (paper Sec.
/// IV-A: "only HE with enough large key size can be allowed"); tests use
/// smaller keys for speed.
pub const MIN_KEY_BITS: u32 = 64;

/// A Paillier ciphertext: an element of `Z*_{n²}` tagged with a key
/// fingerprint so cross-key operations fail loudly instead of decrypting
/// to garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    /// The ciphertext value `c ∈ Z*_{n²}`.
    pub value: Natural,
    pub(crate) key_id: u64,
}

impl Ciphertext {
    /// Bytes this ciphertext occupies on the wire (what the network
    /// simulator charges).
    pub fn wire_size_bytes(&self) -> usize {
        self.value.wire_size_bytes()
    }
}

/// Public key: `(g, n)` plus precomputed Montgomery state for `mod n²`.
#[derive(Debug, Clone)]
pub struct PaillierPublicKey {
    /// The modulus `n = p·q`.
    pub n: Natural,
    /// `n²`, the ciphertext modulus.
    pub n_squared: Natural,
    /// The generator `g ∈ Z*_{n²}` (normally `n + 1`).
    pub g: Natural,
    /// Nominal key size in bits.
    pub key_bits: u32,
    /// Whether `g = n + 1`, enabling the closed-form `g^m = 1 + m·n`.
    pub(crate) g_fast: bool,
    pub(crate) ctx_n2: MontgomeryCtx,
    pub(crate) key_id: u64,
}

/// Private key: `(p, q)` with both the direct (`λ, μ`) and CRT decryption
/// precomputations.
#[derive(Debug, Clone)]
pub struct PaillierPrivateKey {
    /// Prime factor `p`.
    pub p: Natural,
    /// Prime factor `q`.
    pub q: Natural,
    /// `λ = lcm(p-1, q-1)`.
    pub lambda: Natural,
    /// `μ = L(g^λ mod n²)^{-1} mod n`.
    pub mu: Natural,
    /// Copy of the public key for the moduli and contexts.
    pub public: PaillierPublicKey,
    // CRT precomputation.
    p_squared: Natural,
    q_squared: Natural,
    p_minus_1: Natural,
    q_minus_1: Natural,
    ctx_p2: MontgomeryCtx,
    ctx_q2: MontgomeryCtx,
    /// `h_p = L_p(g^{p-1} mod p²)^{-1} mod p`.
    h_p: Natural,
    /// `h_q = L_q(g^{q-1} mod q²)^{-1} mod q`.
    h_q: Natural,
    /// `p^{-1} mod q` for the CRT recombination.
    p_inv_q: Natural,
}

/// A generated key pair.
#[derive(Debug, Clone)]
pub struct PaillierKeyPair {
    /// The public (encryption) key.
    pub public: PaillierPublicKey,
    /// The private (decryption) key.
    pub private: PaillierPrivateKey,
}

/// `L(x) = (x - 1) / n` — the paper's L function, defined on `x ≡ 1 mod n`.
/// Callers pass exponentiation outputs, which are `>= 1` for `x` in
/// `Z*_{n²}`; the (unreachable) `x = 0` case maps to `L(0) = 0`.
fn l_function(x: &Natural, n: &Natural) -> Natural {
    let (q, _r) = x
        .checked_sub(&Natural::one())
        .unwrap_or_default()
        .div_rem(n);
    q
}

/// Secret-exponent exponentiation for decryption: `λ` and the CRT
/// exponents `p-1`, `q-1` are private-key material, so they go through the
/// square-and-multiply-always ladder with a public key-size step bound
/// rather than the sliding-window path (whose multiply schedule mirrors
/// the exponent bits).
// flcheck: ct-fn
// flcheck: secret(exp)
fn pow_secret(ctx: &MontgomeryCtx, base: &Natural, exp: &Natural, bits: u32) -> Natural {
    mod_pow_ct(ctx, base, exp, bits)
}

/// Limb-op estimate of one sliding-window exponentiation (`mod_pow_ctx`)
/// with a public `e_bits`-bit exponent over `s`-limb operands.
///
/// The simulator's historical unit charges one `s`-limb `mont_mul` as
/// `s²` limb ops — half its 64×64 MAC count — so totals here are MAC
/// counts halved. Squarings are charged at the dedicated
/// [`mont_sqr`](mpint::cios::mont_sqr) kernel's cheaper rate (~¾ of a
/// general multiply), which the exponentiation ladders now use for every
/// squaring step.
fn window_pow_ops(s: usize, e_bits: u32) -> u64 {
    let w = window_size_for(e_bits) as u64;
    let e = e_bits as u64;
    let sqr_macs = e * mont_sqr_mac_count(s);
    let mul_macs = (e / (w + 1) + (1 << (w - 1))) * mont_mul_mac_count(s);
    (sqr_macs + mul_macs) / 2
}

/// Limb-op estimate of one square-and-multiply-always ladder
/// (`mod_pow_ct`): exactly one squaring and one multiply per exponent
/// step, regardless of the exponent bits. Same unit as
/// [`window_pow_ops`].
fn ladder_pow_ops(s: usize, e_bits: u32) -> u64 {
    (e_bits as u64) * (mont_sqr_mac_count(s) + mont_mul_mac_count(s)) / 2
}

impl PaillierKeyPair {
    /// Generates a key pair with an `bits`-bit modulus `n`.
    // Key generation is setup, not per-item work: the paper's cost model
    // (and the simulator's launch accounting) charges steady-state
    // encrypt/aggregate/decrypt traffic, not the one-time keygen that
    // precedes training.
    // flcheck: allow(uncharged-work) — one-time key setup
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Result<Self> {
        if bits < MIN_KEY_BITS {
            return Err(Error::KeySizeTooSmall {
                bits,
                min: MIN_KEY_BITS,
            });
        }
        loop {
            let (p, q) = generate_prime_pair(rng, bits / 2, DEFAULT_MR_ROUNDS)?;
            let n = &p * &q;
            // Equal-size primes guarantee gcd(n, (p-1)(q-1)) = 1 unless
            // p | q-1 or q | p-1, impossible at equal bit lengths — but n
            // can land at bits-1 when both primes are near 2^(b/2); retry.
            if n.bit_len() != bits {
                continue;
            }
            return Self::from_primes(p, q, bits);
        }
    }

    /// Builds a key pair from explicit primes (used by tests and by the
    /// deterministic benchmark harness) with the standard fast generator
    /// `g = n + 1`.
    // flcheck: allow(uncharged-work) — one-time key setup (see generate).
    pub fn from_primes(p: Natural, q: Natural, key_bits: u32) -> Result<Self> {
        let g = &(&p * &q) + &Natural::one();
        Self::from_primes_with_g(p, q, key_bits, g)
    }

    /// Builds a key pair from explicit primes and an explicit generator
    /// `g ∈ Z*_{n²}`.
    ///
    /// `g = n + 1` (what [`from_primes`](Self::from_primes) passes) gets
    /// the closed-form encryption fast path; any other `g` is validated by
    /// deriving `μ = L(g^λ mod n²)^{-1} mod n` — an invalid generator
    /// (e.g. `g = 1`, or any `g` whose order does not make `L(g^λ)`
    /// invertible) fails here with an [`Error::Arithmetic`] inverse
    /// failure instead of producing a key that decrypts to garbage.
    // flcheck: allow(uncharged-work) — one-time key setup (see generate).
    pub fn from_primes_with_g(p: Natural, q: Natural, key_bits: u32, g: Natural) -> Result<Self> {
        let n = &p * &q;
        let n_squared = n.square();
        let one = Natural::one();
        if g.is_zero() || g >= n_squared {
            return Err(Error::InvalidParameter("generator g must lie in [1, n²)"));
        }
        let g_fast = g == &n + &one;
        let ctx_n2 = MontgomeryCtx::new(&n_squared)?;
        let key_id = key_fingerprint(&n, &g);
        let public = PaillierPublicKey {
            n: n.clone(),
            n_squared: n_squared.clone(),
            g: g.clone(),
            key_bits,
            g_fast,
            ctx_n2,
            key_id,
        };

        let p_minus_1 = p
            .checked_sub(&one)
            .ok_or(Error::InvalidParameter("prime factor p must exceed 1"))?;
        let q_minus_1 = q
            .checked_sub(&one)
            .ok_or(Error::InvalidParameter("prime factor q must exceed 1"))?;
        let lambda = mpint::lcm(&p_minus_1, &q_minus_1);

        // μ = L(g^λ mod n²)^{-1} mod n. With g = n+1,
        // g^λ mod n² = 1 + λ·n mod n², hence L(g^λ) = λ mod n; a generic g
        // needs the exponentiation (λ is secret, so the ct ladder).
        let l_g_lambda = if g_fast {
            &lambda % &n
        } else {
            let g_lambda = pow_secret(&public.ctx_n2, &g, &lambda, n.bit_len());
            &l_function(&g_lambda, &n) % &n
        };
        let mu = mod_inv(&l_g_lambda, &n)?;

        // CRT precomputation.
        let p_squared = p.square();
        let q_squared = q.square();
        let ctx_p2 = MontgomeryCtx::new(&p_squared)?;
        let ctx_q2 = MontgomeryCtx::new(&q_squared)?;
        // With g = n+1: n² ≡ 0 (mod p²), so g^k mod p² = 1 + k·n mod p² —
        // no exponentiation needed. Generic g goes through the ct ladder
        // (the exponent p-1 is private-key material).
        let g_p = if g_fast {
            &(&one + &(&p_minus_1 * &n)) % &p_squared
        } else {
            pow_secret(&ctx_p2, &(&g % &p_squared), &p_minus_1, p.bit_len())
        };
        let h_p = mod_inv(&(&l_function(&g_p, &p) % &p), &p)?;
        let g_q = if g_fast {
            &(&one + &(&q_minus_1 * &n)) % &q_squared
        } else {
            pow_secret(&ctx_q2, &(&g % &q_squared), &q_minus_1, q.bit_len())
        };
        let h_q = mod_inv(&(&l_function(&g_q, &q) % &q), &q)?;
        let p_inv_q = mod_inv(&(&p % &q), &q)?;

        let private = PaillierPrivateKey {
            p,
            q,
            lambda,
            mu,
            public: public.clone(),
            p_squared,
            q_squared,
            p_minus_1,
            q_minus_1,
            ctx_p2,
            ctx_q2,
            h_p,
            h_q,
            p_inv_q,
        };
        Ok(PaillierKeyPair { public, private })
    }
}

/// Cheap structural fingerprint of a key's modulus and generator, embedded
/// in ciphertexts to catch cross-key mixing. Two keys sharing `n` but
/// using different `g` decrypt each other's ciphertexts to garbage, so `g`
/// is part of the identity.
fn key_fingerprint(n: &Natural, g: &Natural) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &l in n.limbs().iter().chain(g.limbs()) {
        h ^= l;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A precomputed Paillier blinding pair: `r^n mod n²` for a fresh `r`.
///
/// `r^n mod n²` is the expensive half of encryption (a full `bits(n)`-bit
/// exponentiation) and depends only on the key — never on the plaintext —
/// so it can be computed ahead of the gradient batch. An obfuscator is
/// consumed **by value** in
/// [`PaillierPublicKey::encrypt_with_obfuscator`], so each `r` blinds
/// exactly one ciphertext; reusing `r` across two ciphertexts would let
/// their quotient cancel the blinding.
#[derive(Debug)]
pub struct Obfuscator {
    /// `r^n mod n²`, ready to multiply onto `g^m`.
    r_n: Natural,
    key_id: u64,
}

/// Acquires a std mutex, recovering the data from a poisoned lock: pool
/// state is a plain map/queue of finished values, valid even if another
/// thread panicked mid-insert.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Pre-generated blinding pairs for batched encryption (HAFLO-style
/// obfuscator pooling).
///
/// Two stores, never locked together:
///
/// - an **indexed** store keyed by `(seed, index)`, filled by
///   [`prefill_batch`](Self::prefill_batch) with the *same*
///   deterministically derived `r` values the batch encrypt path would
///   compute inline ([`PaillierPublicKey::batch_blinding`]) — so pooled
///   and unpooled encryption are bit-identical;
/// - an **anonymous** FIFO for callers without a batch schedule, filled
///   by [`pregenerate`](Self::pregenerate) from caller randomness.
///
/// Each pair is handed out at most once (`take` removes it), preserving
/// the one-ciphertext-per-`r` rule. Refills fan the `r^n` exponentiations
/// out on the work-stealing pool and take each lock once, briefly, to
/// deposit finished values.
pub struct ObfuscatorPool {
    key_id: u64,
    // BTreeMap, not HashMap: the pool sits on the ciphertext result path,
    // so any future iteration (eviction, draining, debug dumps) must come
    // out in key order rather than hash order.
    indexed: Mutex<BTreeMap<(u64, u64), Obfuscator>>,
    anon: Mutex<VecDeque<Obfuscator>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ObfuscatorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObfuscatorPool")
            .field("indexed", &lock(&self.indexed).len())
            .field("anon", &lock(&self.anon).len())
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl ObfuscatorPool {
    /// An empty pool bound to `pk`'s key identity.
    pub fn new(pk: &PaillierPublicKey) -> Self {
        ObfuscatorPool {
            key_id: pk.key_id,
            indexed: Mutex::new(BTreeMap::new()),
            anon: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Precomputes the blinding pairs for items `0..count` of the batch
    /// identified by `seed`, in parallel. The `r` values are the same
    /// ones the inline path derives, so consuming these pairs changes
    /// nothing about the ciphertexts — only when `r^n` is paid for.
    // Pool refill runs off the training hot path; the cost lands when a
    // pooled pair is consumed, which `encrypt_pooled_op_estimate` prices
    // (that split is the point of the obfuscator pool).
    // flcheck: allow(uncharged-work) — off-path pool refill
    pub fn prefill_batch(&self, pk: &PaillierPublicKey, seed: u64, count: usize) -> Result<()> {
        if pk.key_id != self.key_id {
            return Err(Error::KeyMismatch);
        }
        let pairs: Vec<((u64, u64), Obfuscator)> = (0..count)
            .into_par_iter()
            .with_max_len(1)
            .map(|i| {
                let r = pk.batch_blinding(seed, i);
                ((seed, i as u64), pk.precompute_obfuscator(&r))
            })
            .collect();
        lock(&self.indexed).extend(pairs);
        Ok(())
    }

    /// Takes the precomputed pair for batch `seed`, item `index`, if the
    /// pool holds one. Each pair can be taken only once.
    pub fn take(&self, seed: u64, index: usize) -> Option<Obfuscator> {
        let taken = lock(&self.indexed).remove(&(seed, index as u64));
        let counter = if taken.is_some() {
            &self.hits
        } else {
            &self.misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        taken
    }

    /// Pre-generates `count` anonymous pairs from caller randomness: the
    /// `r` draws are serial (deterministic for a seeded `rng`), the
    /// `r^n` exponentiations run in parallel.
    // flcheck: allow(uncharged-work) — off-path pool refill (see prefill_batch).
    pub fn pregenerate<R: Rng + ?Sized>(
        &self,
        pk: &PaillierPublicKey,
        rng: &mut R,
        count: usize,
    ) -> Result<()> {
        if pk.key_id != self.key_id {
            return Err(Error::KeyMismatch);
        }
        let rs: Vec<Natural> = (0..count).map(|_| random_coprime(rng, &pk.n)).collect();
        let obfs: Vec<Obfuscator> = rs
            .par_iter()
            .with_max_len(1)
            .map(|r| pk.precompute_obfuscator(r))
            .collect();
        lock(&self.anon).extend(obfs);
        Ok(())
    }

    /// Takes the oldest anonymous pair, if any.
    pub fn take_anon(&self) -> Option<Obfuscator> {
        lock(&self.anon).pop_front()
    }

    /// Pairs currently parked in the indexed store.
    pub fn indexed_len(&self) -> usize {
        lock(&self.indexed).len()
    }

    /// Pairs currently parked in the anonymous FIFO.
    pub fn anon_len(&self) -> usize {
        lock(&self.anon).len()
    }

    /// `take` calls served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// `take` calls that fell through to inline computation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl PaillierPublicKey {
    /// Encrypts `m < n` with a fresh blinding factor (paper Eq. 3).
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &Natural, rng: &mut R) -> Result<Ciphertext> {
        let r = random_coprime(rng, &self.n);
        self.encrypt_with_r(m, &r)
    }

    /// Encrypts with an explicit blinding factor (deterministic tests).
    // flcheck: secret(m)
    // flcheck: det-sink — ciphertext construction
    pub fn encrypt_with_r(&self, m: &Natural, r: &Natural) -> Result<Ciphertext> {
        // Delegation boundary: the callee carries its own secret(m) seed
        // and allows, so taint re-enters analysis there.
        // flcheck: allow(ct-taint)
        self.encrypt_with_obfuscator(m, self.precompute_obfuscator(r))
    }

    /// The deterministic per-item blinding factor for item `index` of the
    /// batch identified by `seed` — each item gets an independent ChaCha8
    /// stream, matching the paper's one-generator-per-thread design. Both
    /// the inline batch-encrypt path and
    /// [`ObfuscatorPool::prefill_batch`] derive `r` through here, which
    /// is what makes pooled and unpooled encryption bit-identical.
    pub fn batch_blinding(&self, seed: u64, index: usize) -> Natural {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
            seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        random_coprime(&mut rng, &self.n)
    }

    /// Computes the expensive half of an encryption — `r^n mod n²` — for
    /// an explicit blinding factor, packaging it for a later
    /// [`encrypt_with_obfuscator`](Self::encrypt_with_obfuscator). The
    /// exponent `n` is public; the base `r` is the blinding secret, but
    /// the sliding-window schedule depends only on the exponent bits.
    // flcheck: secret(r)
    pub fn precompute_obfuscator(&self, r: &Natural) -> Obfuscator {
        // The window walk is driven by the public exponent n, not r.
        // flcheck: allow(ct-taint)
        let r_n = mod_pow_ctx(&self.ctx_n2, r, &self.n);
        Obfuscator {
            r_n,
            key_id: self.key_id,
        }
    }

    /// Encrypts using a precomputed blinding pair, consuming it: only
    /// `g^m` and one blinding multiplication remain on the hot path.
    // flcheck: secret(m)
    // flcheck: det-sink — ciphertext construction
    pub fn encrypt_with_obfuscator(&self, m: &Natural, obf: Obfuscator) -> Result<Ciphertext> {
        if obf.key_id != self.key_id {
            return Err(Error::KeyMismatch);
        }
        // The range check leaks only whether the plaintext is valid — a
        // bit the caller already knows.
        // flcheck: allow(ct-taint)
        if m >= &self.n {
            // The error path reports the oversize plaintext's bit length
            // to the caller who supplied it; nothing else observes it.
            // flcheck: allow(ct-taint)
            let plaintext_bits = m.bit_len();
            // flcheck: allow(ct-taint)
            return Err(Error::PlaintextTooLarge {
                plaintext_bits,
                modulus_bits: self.n.bit_len(),
            });
        }
        // Fast path (g = n+1): g^m mod n² = 1 + m·n — one multiplication.
        // Generic g pays a full exponentiation; the plaintext m is secret,
        // so it goes through the constant-time ladder with the public
        // bound m < n.
        let g_m = if self.g_fast {
            &(&Natural::one() + &(m * &self.n)) % &self.n_squared
        } else {
            pow_secret(&self.ctx_n2, &self.g, m, self.n.bit_len())
        };
        // mod_mul's reduction cost tracks the public operand widths (all
        // values are full-width mod n²), not the residue being blinded.
        // flcheck: allow(ct-taint)
        let value = self.ctx_n2.mod_mul(&g_m, &obf.r_n);
        Ok(Ciphertext {
            value,
            key_id: self.key_id,
        })
    }

    /// Homomorphic addition (paper Eq. 5): `E(m₁)·E(m₂) mod n²`.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        debug_assert_eq!(c1.key_id, self.key_id);
        debug_assert_eq!(c2.key_id, self.key_id);
        Ciphertext {
            value: self.ctx_n2.mod_mul(&c1.value, &c2.value),
            key_id: self.key_id,
        }
    }

    /// Checked homomorphic addition: fails on key mismatch.
    pub fn checked_add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Result<Ciphertext> {
        if c1.key_id != self.key_id || c2.key_id != self.key_id {
            return Err(Error::KeyMismatch);
        }
        Ok(self.add(c1, c2))
    }

    /// Plaintext-scalar multiplication: `E(m)^k = E(k·m mod n)`.
    pub fn scalar_mul(&self, c: &Ciphertext, k: &Natural) -> Ciphertext {
        debug_assert_eq!(c.key_id, self.key_id);
        Ciphertext {
            value: mod_pow_ctx(&self.ctx_n2, &c.value, k),
            key_id: self.key_id,
        }
    }

    /// Checked plaintext-scalar multiplication: fails on key mismatch
    /// instead of silently producing garbage in release builds (where
    /// [`scalar_mul`](Self::scalar_mul)'s `debug_assert!` compiles out).
    pub fn checked_scalar_mul(&self, c: &Ciphertext, k: &Natural) -> Result<Ciphertext> {
        if c.key_id != self.key_id {
            return Err(Error::KeyMismatch);
        }
        Ok(self.scalar_mul(c, k))
    }

    /// Weighted homomorphic sum: `∏ cᵢ^{kᵢ} mod n² = E(Σ kᵢ·mᵢ mod n)`
    /// via Straus interleaved multi-exponentiation — one shared squaring
    /// chain for the whole batch instead of a `scalar_mul` + `add` per
    /// term (see [`mpint::straus`]). Weights are public aggregation
    /// metadata (sample counts), so the weight-dependent multiply
    /// schedule is not a leak. An empty batch yields the encryption of
    /// zero.
    pub fn weighted_sum(&self, cts: &[Ciphertext], weights: &[Natural]) -> Result<Ciphertext> {
        self.weighted_sum_sharded(cts, weights, 1)
    }

    /// Validates a batch of aggregation inputs: every ciphertext must
    /// carry this key's fingerprint ([`Error::AggregandKeyMismatch`]
    /// names the offending index) and lie inside the ciphertext space.
    fn check_aggregands(&self, cts: &[Ciphertext]) -> Result<()> {
        for (index, c) in cts.iter().enumerate() {
            if c.key_id != self.key_id {
                return Err(Error::AggregandKeyMismatch { index });
            }
            if c.value >= self.n_squared {
                return Err(Error::CiphertextOutOfRange);
            }
        }
        Ok(())
    }

    /// Sharded [`weighted_sum`](Self::weighted_sum): slices the
    /// (ciphertext, weight) stream into `shards` contiguous spans, runs
    /// an independent Straus chain per span on the work-stealing pool
    /// (window tuned to the span's arity via
    /// [`straus::straus_window_for_arity`]), and merges the partial
    /// products with a streaming homomorphic-addition reduction — each
    /// merge is the `ct_add` multiply `E(a)·E(b) mod n²`, carried out in
    /// the Montgomery domain so the batch pays a single final REDC.
    ///
    /// Bit-identical to the flat fold for every `shards` value and
    /// thread count: every chain returns the *canonical* residue of its
    /// partial product (`mont_mul` fully reduces), the merge is a product
    /// of canonical residues in a fixed span order, and window width
    /// never changes a chain's value. `shards ≤ 1` (or a batch too small
    /// to split) takes the flat single-chain path outright.
    // flcheck: det-sink — sharded aggregate ciphertext construction
    pub fn weighted_sum_sharded(
        &self,
        cts: &[Ciphertext],
        weights: &[Natural],
        shards: usize,
    ) -> Result<Ciphertext> {
        if cts.len() != weights.len() {
            return Err(Error::InvalidParameter(
                "each ciphertext needs exactly one weight",
            ));
        }
        self.check_aggregands(cts)?;
        let max_bits = weights.iter().map(Natural::bit_len).max().unwrap_or(0);
        let spans = straus::shard_spans(cts.len(), shards);
        let product = if spans.len() <= 1 {
            let bases_m: Vec<Natural> = cts.iter().map(|c| self.ctx_n2.to_mont(&c.value)).collect();
            let window = straus::straus_window_for(max_bits);
            straus::multi_exp_mont(&self.ctx_n2, &bases_m, weights, window)
        } else {
            spans
                .par_iter()
                .with_max_len(1)
                .map(|span| {
                    // `shard_spans` tiles `0..cts.len()`, and the shape
                    // check above pins `weights.len()` to it.
                    // flcheck: allow(pf-index)
                    let span_cts = &cts[span.clone()];
                    // flcheck: allow(pf-index)
                    let span_weights = &weights[span.clone()];
                    let bases_m: Vec<Natural> = span_cts
                        .iter()
                        .map(|c| self.ctx_n2.to_mont(&c.value))
                        .collect();
                    let window = straus::straus_window_for_arity(max_bits, span.len());
                    straus::multi_exp_mont(&self.ctx_n2, &bases_m, span_weights, window)
                })
                .collect::<Vec<Natural>>()
                .into_iter()
                .reduce(|a, b| self.ctx_n2.mont_mul(&a, &b))
                .unwrap_or_else(|| self.ctx_n2.one_mont())
        };
        Ok(Ciphertext {
            value: self.ctx_n2.from_mont(&product),
            key_id: self.key_id,
        })
    }

    /// Encryption of zero with unit blinding — the additive identity used
    /// to initialize aggregation accumulators.
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext {
            value: Natural::one(),
            key_id: self.key_id,
        }
    }

    /// Estimated limb-level operation count of one encryption with an
    /// inline `r^n mod n²`: the `bits(n)`-bit sliding-window
    /// exponentiation (squarings at the dedicated `mont_sqr` rate) plus
    /// the pooled-path remainder.
    // flcheck: estimates(encrypt, 3)
    // flcheck: estimates(encrypt_with_r, 3)
    // flcheck: estimates(precompute_obfuscator, 2)
    pub fn encrypt_op_estimate(&self) -> u64 {
        let s = self.ctx_n2.width();
        window_pow_ops(s, self.n.bit_len()) + self.encrypt_pooled_op_estimate()
    }

    /// Estimated limb-level operation count of one encryption whose
    /// `r^n` pair came precomputed from an [`ObfuscatorPool`]: only
    /// `g^m` and the blinding multiplication remain on the hot path.
    /// Keys with a generic generator (no `g = n+1` closed form) still pay
    /// the constant-time `g^m` ladder per call.
    // flcheck: estimates(encrypt_with_obfuscator, 3)
    pub fn encrypt_pooled_op_estimate(&self) -> u64 {
        let s = self.ctx_n2.width();
        let g_ops = if self.g_fast {
            0
        } else {
            ladder_pow_ops(s, self.n.bit_len())
        };
        // Blinding mod_mul: two to-Montgomery conversions, the multiply,
        // and the final reduction — four mont-muls' worth of MACs.
        g_ops + 2 * mont_mul_mac_count(s)
    }

    /// Estimated limb-level operation count of one homomorphic addition.
    // flcheck: estimates(add, 3)
    // flcheck: estimates(checked_add, 3)
    pub fn add_op_estimate(&self) -> u64 {
        // to-Montgomery ×2 is amortized; one mont-mul + reduce.
        3 * mont_mul_mac_count(self.ctx_n2.width()) / 2
    }

    /// Estimated limb-level operation count of one scalar multiplication
    /// `E(m)^k` with a public `k_bits`-bit scalar.
    // flcheck: estimates(scalar_mul, 3)
    // flcheck: estimates(checked_scalar_mul, 3)
    pub fn scalar_mul_op_estimate(&self, k_bits: u32) -> u64 {
        let s = self.ctx_n2.width();
        window_pow_ops(s, k_bits) + mont_mul_mac_count(s)
    }

    /// Estimated limb-level operation count of one `count`-way
    /// [`weighted_sum`](Self::weighted_sum) with weights of at most
    /// `max_weight_bits` bits: the shared squaring chain, the per-column
    /// table multiplies, the per-base table builds and domain
    /// conversions.
    // flcheck: estimates(weighted_sum, 3)
    pub fn weighted_sum_op_estimate(&self, count: usize, max_weight_bits: u32) -> u64 {
        if count == 0 || max_weight_bits == 0 {
            return mont_mul_mac_count(self.ctx_n2.width()) / 2;
        }
        let s = self.ctx_n2.width();
        let w = straus::straus_window_for(max_weight_bits);
        let columns = max_weight_bits.div_ceil(w) as u64;
        let sqr_macs = columns.saturating_sub(1) * w as u64 * mont_sqr_mac_count(s);
        // Per base: one multiply per column (worst case), the table
        // build, and the to-Montgomery conversion; plus the final REDC.
        let muls = count as u64 * (columns + (1 << w) - 2 + 1) + 1;
        (sqr_macs + muls * mont_mul_mac_count(s)) / 2
    }

    /// Estimated *total* limb-level operation count of one `count`-way
    /// [`weighted_sum_sharded`](Self::weighted_sum_sharded) across all
    /// shards: per span, the arity-tuned squaring chain, column and
    /// table-build multiplies, and domain conversions; plus one merge
    /// multiply per extra span and the final REDC. Degenerates *exactly*
    /// to [`weighted_sum_op_estimate`](Self::weighted_sum_op_estimate)
    /// whenever the batch runs as a single chain (`shards ≤ 1` or too few
    /// items to split) — the flat-path no-regression gate in
    /// `bench_aggregate` pins that equality.
    // flcheck: estimates(weighted_sum_sharded, 4)
    pub fn weighted_sum_sharded_op_estimate(
        &self,
        count: usize,
        max_weight_bits: u32,
        shards: usize,
    ) -> u64 {
        let spans = straus::shard_spans(count, shards);
        if spans.len() <= 1 || max_weight_bits == 0 {
            return self.weighted_sum_op_estimate(count, max_weight_bits);
        }
        let s = self.ctx_n2.width();
        let mul = mont_mul_mac_count(s);
        let sqr = mont_sqr_mac_count(s);
        let mut macs = 0u64;
        for span in &spans {
            macs += Self::shard_chain_macs(span.len(), max_weight_bits, mul, sqr);
        }
        // spans−1 Montgomery-domain merge multiplies plus the final REDC.
        macs += spans.len() as u64 * mul;
        macs / 2
    }

    /// Estimated *critical-path* limb-level operation count of the same
    /// sharded pass: the widest span's chain (all spans run concurrently
    /// on the pool) plus the serial merge reduction and final REDC. The
    /// modeled-scaling gate in `bench_aggregate` divides the flat
    /// estimate by this — it is what wall-clock tracks at `shards`
    /// workers, independent of the host's actual core count.
    // flcheck: estimates(weighted_sum_sharded, 4)
    pub fn weighted_sum_critical_path_estimate(
        &self,
        count: usize,
        max_weight_bits: u32,
        shards: usize,
    ) -> u64 {
        let spans = straus::shard_spans(count, shards);
        if spans.len() <= 1 || max_weight_bits == 0 {
            return self.weighted_sum_op_estimate(count, max_weight_bits);
        }
        let s = self.ctx_n2.width();
        let mul = mont_mul_mac_count(s);
        let sqr = mont_sqr_mac_count(s);
        // Ceiling split: the first span is always the widest.
        let widest = spans.iter().map(|sp| sp.len()).max().unwrap_or(0);
        let macs =
            Self::shard_chain_macs(widest, max_weight_bits, mul, sqr) + spans.len() as u64 * mul;
        macs / 2
    }

    /// MACs of one span's independent Straus chain: squaring chain at the
    /// arity-tuned window, per-base column/table/to-Montgomery multiplies.
    fn shard_chain_macs(arity: usize, max_weight_bits: u32, mul: u64, sqr: u64) -> u64 {
        let w = straus::straus_window_for_arity(max_weight_bits, arity);
        let columns = max_weight_bits.div_ceil(w) as u64;
        let sqr_macs = columns.saturating_sub(1) * w as u64 * sqr;
        let muls = arity as u64 * (columns + (1 << w) - 2 + 1);
        sqr_macs + muls * mul
    }
}

impl PaillierPrivateKey {
    /// Direct decryption (paper Eq. 4), constant-time in `λ`.
    // flcheck: secret(lambda)
    pub fn decrypt(&self, c: &Ciphertext) -> Result<Natural> {
        self.check(c)?;
        // λ = lcm(p-1, q-1) < n: the public modulus size bounds the ladder.
        let u = pow_secret(
            &self.public.ctx_n2,
            &c.value,
            &self.lambda,
            self.public.n.bit_len(),
        );
        // L(u) = (u-1)/n is variable-time in the *decryption output*, not
        // in the λ bits the ladder above protects.
        // flcheck: allow(ct-taint)
        let l = l_function(&u, &self.public.n);
        Ok(&(&l * &self.mu) % &self.public.n)
    }

    /// CRT decryption: exponentiates modulo `p²` and `q²` (half-width
    /// operands, half-length exponents) and recombines — the fast path the
    /// GPU layer batches.
    // flcheck: secret(p_minus_1, q_minus_1)
    pub fn decrypt_crt(&self, c: &Ciphertext) -> Result<Natural> {
        self.check(c)?;
        // m_p = L_p(c^{p-1} mod p²) · h_p mod p; the exponent p-1 is
        // private-key material, bounded by the public half-key size.
        let cp = &c.value % &self.p_squared;
        let up = pow_secret(&self.ctx_p2, &cp, &self.p_minus_1, self.p.bit_len());
        // L_p operates on the recovered residue, not the p-1 exponent bits;
        // its division timing tracks the public half-key width.
        // flcheck: allow(ct-taint)
        let m_p = &(&l_function(&up, &self.p) * &self.h_p) % &self.p;

        let cq = &c.value % &self.q_squared;
        let uq = pow_secret(&self.ctx_q2, &cq, &self.q_minus_1, self.q.bit_len());
        // Same as the p branch: post-ladder output processing.
        // flcheck: allow(ct-taint)
        let m_q = &(&l_function(&uq, &self.q) * &self.h_q) % &self.q;

        // CRT: m = m_p + p·((m_q - m_p)·p^{-1} mod q), with m_p reduced
        // into [0, q) before the difference (p and q have no ordering).
        let m_p_mod_q = &m_p % &self.q;
        // CRT recombination of the two plaintext residues; both ladders
        // are already done and the arithmetic is width-bounded.
        // flcheck: allow(ct-taint)
        let diff = m_q.mod_sub(&m_p_mod_q, &self.q);
        let t = &(&diff * &self.p_inv_q) % &self.q;
        Ok(&m_p + &(&self.p * &t))
    }

    /// Estimated limb-level op count of one CRT decryption: two
    /// half-width square-and-multiply-always ladders (the exponents are
    /// private-key material, so decryption pays the constant-time
    /// schedule, not the sliding window) plus the L-function and CRT
    /// recombination arithmetic.
    // flcheck: estimates(decrypt, 2)
    // flcheck: estimates(decrypt_crt, 2)
    pub fn decrypt_op_estimate(&self) -> u64 {
        let s = self.ctx_p2.width();
        2 * (ladder_pow_ops(s, self.p.bit_len()) + 2 * mont_mul_mac_count(s))
    }

    fn check(&self, c: &Ciphertext) -> Result<()> {
        if c.key_id != self.public.key_id {
            return Err(Error::KeyMismatch);
        }
        if c.value >= self.public.n_squared {
            return Err(Error::CiphertextOutOfRange);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x5EED)
    }

    fn keys(bits: u32) -> PaillierKeyPair {
        PaillierKeyPair::generate(&mut rng(), bits).unwrap()
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn roundtrip_small_values() {
        let k = keys(128);
        let mut r = rng();
        for v in [0u64, 1, 42, 0xFFFF_FFFF] {
            let c = k.public.encrypt(&nat(v), &mut r).unwrap();
            assert_eq!(k.private.decrypt(&c).unwrap(), nat(v), "direct {v}");
            assert_eq!(k.private.decrypt_crt(&c).unwrap(), nat(v), "crt {v}");
        }
    }

    #[test]
    fn roundtrip_near_modulus() {
        let k = keys(128);
        let mut r = rng();
        let m = k.public.n.checked_sub(&Natural::one()).unwrap();
        let c = k.public.encrypt(&m, &mut r).unwrap();
        assert_eq!(k.private.decrypt(&c).unwrap(), m);
        assert_eq!(k.private.decrypt_crt(&c).unwrap(), m);
    }

    #[test]
    fn plaintext_too_large_rejected() {
        let k = keys(128);
        let mut r = rng();
        assert!(matches!(
            k.public.encrypt(&k.public.n, &mut r),
            Err(Error::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn homomorphic_addition() {
        let k = keys(128);
        let mut r = rng();
        let c1 = k.public.encrypt(&nat(1000), &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(2345), &mut r).unwrap();
        let sum = k.public.add(&c1, &c2);
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(3345));
    }

    #[test]
    fn homomorphic_addition_wraps_mod_n() {
        let k = keys(128);
        let mut r = rng();
        let m = k.public.n.checked_sub(&Natural::one()).unwrap();
        let c1 = k.public.encrypt(&m, &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(2), &mut r).unwrap();
        let sum = k.public.add(&c1, &c2);
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(1));
    }

    #[test]
    fn scalar_multiplication() {
        let k = keys(128);
        let mut r = rng();
        let c = k.public.encrypt(&nat(111), &mut r).unwrap();
        let scaled = k.public.scalar_mul(&c, &nat(9));
        assert_eq!(k.private.decrypt(&scaled).unwrap(), nat(999));
    }

    #[test]
    fn zero_ciphertext_is_additive_identity() {
        let k = keys(128);
        let mut r = rng();
        let c = k.public.encrypt(&nat(77), &mut r).unwrap();
        let sum = k.public.add(&c, &k.public.zero_ciphertext());
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(77));
    }

    #[test]
    fn encryption_is_probabilistic() {
        let k = keys(128);
        let mut r = rng();
        let c1 = k.public.encrypt(&nat(5), &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(5), &mut r).unwrap();
        assert_ne!(c1.value, c2.value, "fresh blinding must differ");
        assert_eq!(
            k.private.decrypt(&c1).unwrap(),
            k.private.decrypt(&c2).unwrap()
        );
    }

    #[test]
    fn cross_key_operations_fail() {
        let k1 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(1), 128).unwrap();
        let k2 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(2), 128).unwrap();
        let mut r = rng();
        let c1 = k1.public.encrypt(&nat(1), &mut r).unwrap();
        let c2 = k2.public.encrypt(&nat(2), &mut r).unwrap();
        assert_eq!(k1.public.checked_add(&c1, &c2), Err(Error::KeyMismatch));
        assert_eq!(k2.private.decrypt(&c1), Err(Error::KeyMismatch));
    }

    #[test]
    fn ciphertext_out_of_range_rejected() {
        let k = keys(128);
        let bogus = Ciphertext {
            value: k.public.n_squared.clone(),
            key_id: k.public.key_id,
        };
        assert_eq!(k.private.decrypt(&bogus), Err(Error::CiphertextOutOfRange));
    }

    #[test]
    fn key_size_floor_enforced() {
        assert!(matches!(
            PaillierKeyPair::generate(&mut rng(), 32),
            Err(Error::KeySizeTooSmall { .. })
        ));
    }

    #[test]
    fn modulus_has_requested_size() {
        for bits in [64u32, 128, 256] {
            let k = keys(bits);
            assert_eq!(k.public.n.bit_len(), bits);
            assert_eq!(k.public.key_bits, bits);
        }
    }

    #[test]
    fn ciphertext_is_about_twice_key_size() {
        // The paper's communication overhead: a k-bit key yields 2k-bit
        // ciphertexts.
        let k = keys(128);
        let mut r = rng();
        let c = k.public.encrypt(&nat(1), &mut r).unwrap();
        let bits = c.value.bit_len();
        assert!(bits > 192 && bits <= 256, "ciphertext bits {bits}");
    }

    #[test]
    fn op_estimates_scale_with_key_size() {
        let k1 = keys(64);
        let k2 = keys(256);
        assert!(k2.public.encrypt_op_estimate() > 4 * k1.public.encrypt_op_estimate());
        assert!(k2.private.decrypt_op_estimate() > 4 * k1.private.decrypt_op_estimate());
        assert!(k1.public.add_op_estimate() < k1.public.encrypt_op_estimate());
    }

    /// Key pair over the same primes as `keys(128)` but with the generic
    /// generator `g = 1 + 2n` (valid: `L((1+2n)^λ) = 2λ mod n`, coprime to
    /// the odd `n` because `gcd(λ, n) = 1` for equal-size primes).
    fn generic_g_keys() -> PaillierKeyPair {
        let k = keys(128);
        let n = &k.public.n;
        let g = &Natural::one() + &(&Natural::from(2u64) * n);
        PaillierKeyPair::from_primes_with_g(k.private.p.clone(), k.private.q.clone(), 128, g)
            .unwrap()
    }

    #[test]
    fn generic_g_roundtrip_and_addition() {
        let k = generic_g_keys();
        assert!(!k.public.g_fast);
        let mut r = rng();
        for v in [0u64, 1, 42, 0xFFFF_FFFF] {
            let c = k.public.encrypt(&nat(v), &mut r).unwrap();
            assert_eq!(k.private.decrypt(&c).unwrap(), nat(v), "direct {v}");
            assert_eq!(k.private.decrypt_crt(&c).unwrap(), nat(v), "crt {v}");
        }
        let c1 = k.public.encrypt(&nat(1000), &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(2345), &mut r).unwrap();
        let sum = k.public.checked_add(&c1, &c2).unwrap();
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(3345));
    }

    #[test]
    fn explicit_n_plus_1_matches_default_path() {
        let k = keys(128);
        let g = &k.public.n + &Natural::one();
        let k2 =
            PaillierKeyPair::from_primes_with_g(k.private.p.clone(), k.private.q.clone(), 128, g)
                .unwrap();
        assert!(k2.public.g_fast);
        assert_eq!(k.public.key_id, k2.public.key_id);
        let r = nat(987_654_321);
        let c1 = k.public.encrypt_with_r(&nat(7777), &r).unwrap();
        let c2 = k2.public.encrypt_with_r(&nat(7777), &r).unwrap();
        assert_eq!(c1.value, c2.value);
    }

    #[test]
    fn invalid_generators_rejected() {
        let k = keys(128);
        let (p, q) = (k.private.p.clone(), k.private.q.clone());
        // g = 1 has order 1: L(1^λ) = 0, not invertible.
        assert!(
            PaillierKeyPair::from_primes_with_g(p.clone(), q.clone(), 128, Natural::one()).is_err()
        );
        // g outside [1, n²) is structurally invalid.
        assert!(matches!(
            PaillierKeyPair::from_primes_with_g(
                p.clone(),
                q.clone(),
                128,
                k.public.n_squared.clone()
            ),
            Err(Error::InvalidParameter(_))
        ));
        assert!(matches!(
            PaillierKeyPair::from_primes_with_g(p, q, 128, Natural::from(0u64)),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn generic_g_costs_more_and_mixing_fails() {
        let fast = keys(128);
        let slow = generic_g_keys();
        // Same modulus width, but the generic ladder adds 2·bits(n)
        // Montgomery multiplications per encryption.
        assert!(slow.public.encrypt_op_estimate() > fast.public.encrypt_op_estimate());
        // Same n, different g: the fingerprint must differ so cross-g
        // mixing fails loudly instead of decrypting to garbage.
        assert_ne!(fast.public.key_id, slow.public.key_id);
        let mut r = rng();
        let c = fast.public.encrypt(&nat(5), &mut r).unwrap();
        assert_eq!(slow.private.decrypt(&c), Err(Error::KeyMismatch));
    }

    #[test]
    fn deterministic_blinding_reproduces() {
        let k = keys(128);
        let r = nat(12345);
        let c1 = k.public.encrypt_with_r(&nat(7), &r).unwrap();
        let c2 = k.public.encrypt_with_r(&nat(7), &r).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn obfuscator_encryption_matches_inline() {
        let k = keys(128);
        let r = nat(987_654_321);
        let inline = k.public.encrypt_with_r(&nat(42), &r).unwrap();
        let obf = k.public.precompute_obfuscator(&r);
        let pooled = k.public.encrypt_with_obfuscator(&nat(42), obf).unwrap();
        assert_eq!(inline, pooled);
    }

    #[test]
    fn obfuscator_from_wrong_key_rejected() {
        let k1 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(1), 128).unwrap();
        let k2 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(2), 128).unwrap();
        let obf = k1.public.precompute_obfuscator(&nat(777));
        assert_eq!(
            k2.public.encrypt_with_obfuscator(&nat(1), obf),
            Err(Error::KeyMismatch)
        );
    }

    #[test]
    fn pool_prefill_serves_each_pair_once() {
        let k = keys(128);
        let pool = ObfuscatorPool::new(&k.public);
        pool.prefill_batch(&k.public, 9, 4).unwrap();
        assert_eq!(pool.indexed_len(), 4);
        assert!(pool.take(9, 2).is_some());
        assert!(pool.take(9, 2).is_none(), "pairs are single-use");
        assert!(pool.take(8, 0).is_none(), "other batches miss");
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 2);
        assert_eq!(pool.indexed_len(), 3);
    }

    #[test]
    fn pool_prefill_matches_batch_blinding_derivation() {
        let k = keys(128);
        let pool = ObfuscatorPool::new(&k.public);
        pool.prefill_batch(&k.public, 31, 3).unwrap();
        for i in 0..3 {
            let obf = pool.take(31, i).unwrap();
            let pooled = k.public.encrypt_with_obfuscator(&nat(5), obf).unwrap();
            let inline = k
                .public
                .encrypt_with_r(&nat(5), &k.public.batch_blinding(31, i))
                .unwrap();
            assert_eq!(pooled, inline, "item {i}");
        }
    }

    #[test]
    fn pool_rejects_foreign_key_and_anon_fifo_works() {
        let k1 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(1), 128).unwrap();
        let k2 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(2), 128).unwrap();
        let pool = ObfuscatorPool::new(&k1.public);
        assert_eq!(
            pool.prefill_batch(&k2.public, 0, 1),
            Err(Error::KeyMismatch)
        );
        assert_eq!(
            pool.pregenerate(&k2.public, &mut rng(), 1),
            Err(Error::KeyMismatch)
        );
        pool.pregenerate(&k1.public, &mut rng(), 2).unwrap();
        assert_eq!(pool.anon_len(), 2);
        let obf = pool.take_anon().unwrap();
        let c = k1.public.encrypt_with_obfuscator(&nat(3), obf).unwrap();
        assert_eq!(k1.private.decrypt(&c).unwrap(), nat(3));
        assert_eq!(pool.anon_len(), 1);
    }

    #[test]
    fn checked_scalar_mul_rejects_cross_key() {
        let k1 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(1), 128).unwrap();
        let k2 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(2), 128).unwrap();
        let mut r = rng();
        let c = k1.public.encrypt(&nat(6), &mut r).unwrap();
        assert_eq!(
            k2.public.checked_scalar_mul(&c, &nat(3)),
            Err(Error::KeyMismatch)
        );
        let ok = k1.public.checked_scalar_mul(&c, &nat(3)).unwrap();
        assert_eq!(k1.private.decrypt(&ok).unwrap(), nat(18));
    }

    #[test]
    fn weighted_sum_decrypts_to_weighted_total() {
        let k = keys(128);
        let mut r = rng();
        let ms = [5u64, 11, 0, 1000];
        let ws = [3u64, 1, 999, 7];
        let cts: Vec<Ciphertext> = ms
            .iter()
            .map(|&m| k.public.encrypt(&nat(m), &mut r).unwrap())
            .collect();
        let wnat: Vec<Natural> = ws.iter().map(|&w| nat(w)).collect();
        let sum = k.public.weighted_sum(&cts, &wnat).unwrap();
        let expected: u64 = ms.iter().zip(&ws).map(|(m, w)| m * w).sum();
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(expected));
    }

    #[test]
    fn weighted_sum_matches_scalar_mul_add_loop_exactly() {
        let k = keys(128);
        let mut r = rng();
        let cts: Vec<Ciphertext> = (1u64..6)
            .map(|m| k.public.encrypt(&nat(m * 77), &mut r).unwrap())
            .collect();
        let ws: Vec<Natural> = (0u64..5).map(|w| nat(w * w + 1)).collect();
        let straus = k.public.weighted_sum(&cts, &ws).unwrap();
        let mut naive = k.public.zero_ciphertext();
        for (c, w) in cts.iter().zip(&ws) {
            let scaled = k.public.checked_scalar_mul(c, w).unwrap();
            naive = k.public.checked_add(&naive, &scaled).unwrap();
        }
        // Both paths produce canonical residues mod n², so the ciphertext
        // values — not just the decryptions — must agree bit-for-bit.
        assert_eq!(straus.value, naive.value);
    }

    #[test]
    fn weighted_sum_rejects_bad_shapes_and_keys() {
        let k1 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(1), 128).unwrap();
        let k2 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(2), 128).unwrap();
        let mut r = rng();
        let c1 = k1.public.encrypt(&nat(1), &mut r).unwrap();
        let c2 = k2.public.encrypt(&nat(2), &mut r).unwrap();
        assert!(matches!(
            k1.public.weighted_sum(&[c1.clone()], &[]),
            Err(Error::InvalidParameter(_))
        ));
        // The key-fingerprint failure names the offending position (and
        // its Display pins the index so round logs can blame the upload).
        let err = k1
            .public
            .weighted_sum(&[c1.clone(), c2], &[nat(1), nat(1)])
            .unwrap_err();
        assert_eq!(err, Error::AggregandKeyMismatch { index: 1 });
        assert_eq!(
            err.to_string(),
            "ciphertext at index 1 was produced under a different key"
        );
        let oversized = Ciphertext {
            value: k1.public.n_squared.clone(),
            key_id: k1.public.key_id,
        };
        assert_eq!(
            k1.public.weighted_sum(&[oversized], &[nat(1)]),
            Err(Error::CiphertextOutOfRange)
        );
        // Empty batch: the encryption of zero.
        let empty = k1.public.weighted_sum(&[], &[]).unwrap();
        assert_eq!(k1.private.decrypt(&empty).unwrap(), nat(0));
        let _ = c1;
    }

    #[test]
    fn pooled_estimate_is_much_cheaper_than_full() {
        let k = keys(256);
        assert!(k.public.encrypt_pooled_op_estimate() * 10 < k.public.encrypt_op_estimate());
        assert!(k.public.weighted_sum_op_estimate(64, 32) > 0);
        assert!(k.public.scalar_mul_op_estimate(32) < k.public.encrypt_op_estimate());
    }

    #[test]
    fn sharded_weighted_sum_is_bit_identical_to_flat() {
        let k = keys(128);
        let mut r = rng();
        let cts: Vec<Ciphertext> = (0u64..13)
            .map(|m| k.public.encrypt(&nat(m * 31 + 2), &mut r).unwrap())
            .collect();
        let ws: Vec<Natural> = (0u64..13).map(|w| nat(w * 977 + 1)).collect();
        let flat = k.public.weighted_sum(&cts, &ws).unwrap();
        for shards in [0usize, 1, 2, 3, 7, 13, 64] {
            let sharded = k.public.weighted_sum_sharded(&cts, &ws, shards).unwrap();
            // Canonical residues: value equality, not just plaintext.
            assert_eq!(sharded.value, flat.value, "shards {shards}");
            assert_eq!(sharded.key_id, flat.key_id);
        }
        // Sharded error paths keep the flat semantics.
        assert!(matches!(
            k.public.weighted_sum_sharded(&cts, &ws[..3], 4),
            Err(Error::InvalidParameter(_))
        ));
        let empty = k.public.weighted_sum_sharded(&[], &[], 8).unwrap();
        assert_eq!(empty.value, k.public.zero_ciphertext().value);
    }

    #[test]
    fn sharded_estimates_degenerate_and_scale() {
        let k = keys(256);
        let (count, bits) = (10_000usize, 32u32);
        let flat = k.public.weighted_sum_op_estimate(count, bits);
        // Flat no-regression: a single-shard pass is the flat pass,
        // estimate included — exact equality, not a tolerance.
        assert_eq!(
            k.public.weighted_sum_sharded_op_estimate(count, bits, 1),
            flat
        );
        assert_eq!(
            k.public.weighted_sum_critical_path_estimate(count, bits, 1),
            flat
        );
        // One item can never split, whatever the shard request.
        assert_eq!(
            k.public.weighted_sum_sharded_op_estimate(1, bits, 8),
            k.public.weighted_sum_op_estimate(1, bits)
        );
        let mut prev_cp = flat;
        for shards in [2usize, 4, 8, 16] {
            let total = k
                .public
                .weighted_sum_sharded_op_estimate(count, bits, shards);
            let cp = k
                .public
                .weighted_sum_critical_path_estimate(count, bits, shards);
            // Splitting the squaring chain costs some total work but the
            // per-worker critical path keeps shrinking.
            assert!(cp <= prev_cp, "critical path grew at {shards} shards");
            assert!(cp < total, "critical path not below total at {shards}");
            // Arity-tuned windows keep the overhead modest: total work
            // stays within 2x of flat even at 16 shards.
            assert!(total < flat * 2, "total blew up at {shards} shards");
            prev_cp = cp;
        }
        // The gate the bench enforces: ≥1.5x modeled speedup at 4 shards.
        let cp4 = k.public.weighted_sum_critical_path_estimate(count, bits, 4);
        assert!(
            flat as f64 / cp4 as f64 >= 1.5,
            "modeled scaling under 1.5x"
        );
    }
}
