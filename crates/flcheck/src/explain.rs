//! Rule documentation: one entry per rule id for `flcheck --explain`
//! and the README rule table.
//!
//! Every rule in [`crate::report::ALL_RULES`] has exactly one
//! [`RuleDoc`] here (enforced by test), so adding a rule without
//! documenting it fails the build's own test suite — the same
//! can't-forget property the harness gate gives the summary counts.

/// Documentation for one rule id.
#[derive(Debug)]
pub struct RuleDoc {
    /// Rule id, e.g. `pf-unwrap`.
    pub rule: &'static str,
    /// Rule family, e.g. `panic-freedom`.
    pub family: &'static str,
    /// PR that introduced the rule (`1`-based growth sequence).
    pub since: u32,
    /// One-line summary for the README table.
    pub summary: &'static str,
    /// One-paragraph description for `--explain`.
    pub detail: &'static str,
    /// A minimal triggering example.
    pub example: &'static str,
}

/// All rule docs, sorted by rule id (same order as
/// [`crate::report::ALL_RULES`]).
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        rule: "charge-unphased",
        family: "units",
        since: 10,
        summary: "reachable charge-sink whose seconds miss the phase slots",
        detail: "A `charge-sink` fn reachable from `fl::engine` round execution \
                 that takes a seconds-united amount must land it in exactly one \
                 `EpochBreakdown` phase slot: either it takes a `phase` parameter \
                 (the caller picks the slot) or it — or a transitive callee — \
                 writes exactly one distinct `phases.*_seconds` field. Zero slots \
                 is silently unattributed time (the per-phase breakdown no longer \
                 sums to the totals); two or more is double-charging. Sinks whose \
                 parameters carry no seconds unit (byte/ciphertext meters, \
                 timing-struct ingestion) are exempt: they do not attribute time.",
        example: "pub fn run_round() { charge_lost(1.0); }\n// flcheck: charge-sink\nfn charge_lost(seconds: f64) -> f64 {\n    seconds // charge-unphased: never lands in a phase slot\n}",
    },
    RuleDoc {
        rule: "ct-branch",
        family: "ct-discipline",
        since: 1,
        summary: "secret-dependent `if`/`match` inside a ct-fn",
        detail: "Inside a fn marked `// flcheck: ct-fn`, branching on a value \
                 derived from a secret leaks it through the timing/branch-predictor \
                 side channel: the two arms take different time and leave different \
                 microarchitectural traces. Constant-time code must replace the \
                 branch with masked selection (e.g. `ct_select`).",
        example: "// flcheck: ct-fn\nfn cmp(secret: u64) -> u64 {\n    if secret == 0 { 1 } else { 0 } // ct-branch + ct-compare\n}",
    },
    RuleDoc {
        rule: "ct-compare",
        family: "ct-discipline",
        since: 1,
        summary: "variable-time comparison on secret data in a ct-fn",
        detail: "`==`, `!=`, `<`, `>`, `.min()`, `.max()` and friends on secret \
                 values compile to early-exit comparisons whose duration depends \
                 on the operands. Inside a ct-fn these must go through the \
                 constant-time primitives (`ct_eq`, `ct_lt`), which always scan \
                 every limb.",
        example: "// flcheck: ct-fn\nfn check(tag: &[u8], other: &[u8]) -> bool {\n    tag == other // ct-compare\n}",
    },
    RuleDoc {
        rule: "ct-return",
        family: "ct-discipline",
        since: 1,
        summary: "early return inside a ct-fn",
        detail: "An early `return` inside a ct-fn makes execution time depend on \
                 which path ran — the classic padding-oracle shape. Constant-time \
                 fns compute both outcomes and select at the end.",
        example: "// flcheck: ct-fn\nfn reduce(x: u64, m: u64) -> u64 {\n    if x < m { return x; } // ct-return (after ct-branch)\n    x - m\n}",
    },
    RuleDoc {
        rule: "ct-shortcircuit",
        family: "ct-discipline",
        since: 1,
        summary: "short-circuiting `&&`/`||` in a ct-fn",
        detail: "`&&` and `||` skip evaluating their right operand depending on \
                 the left, so the time taken reveals the left operand. In a ct-fn \
                 use the bitwise `&`/`|` forms on fully-evaluated masks instead.",
        example: "// flcheck: ct-fn\nfn both(a: bool, b: bool) -> bool {\n    a && b // ct-shortcircuit\n}",
    },
    RuleDoc {
        rule: "ct-taint",
        family: "ct-discipline",
        since: 3,
        summary: "secret value flowing into a variable-time operation",
        detail: "Interprocedural taint: values seeded by `// flcheck: secret(x)` \
                 are propagated through assignments, arithmetic, and resolved \
                 calls across the workspace call graph. Reaching a timing sink — \
                 a branch predicate, slice index, early-return condition, loop \
                 bound, or a call into a non-ct fn — fires with the full \
                 propagation chain.",
        example: "// flcheck: secret(key)\nfn seal(key: u64) -> u64 { whiten(key) }\nfn whiten(x: u64) -> u64 {\n    if x == 0 { return 1; } // ct-taint: `key` reached a branch via `whiten`\n    x\n}",
    },
    RuleDoc {
        rule: "guard-across-steal",
        family: "lock-discipline",
        since: 5,
        summary: "pool worker holding its deque guard across park/steal",
        detail: "A work-stealing worker that parks or steals from another deque \
                 while still holding its own deque's guard can deadlock the pool: \
                 the thief blocks on a lock whose owner is itself blocked. Guards \
                 in the rayon shim must be dropped before blocking or stealing.",
        example: "fn run(&self) {\n    let q = self.deques[w].lock();\n    park(); // guard-across-steal: `deques` held across blocking park\n}",
    },
    RuleDoc {
        rule: "guard-escape",
        family: "lock-discipline",
        since: 6,
        summary: "lock guard escaping the analyzer's tracking",
        detail: "The lock graph tracks guards from acquisition to drop. A guard \
                 stored into a struct field or passed by value into an untracked \
                 fn outlives what held-set analysis can see, so every downstream \
                 deadlock check would be unsound. Returned guards are followed \
                 into callers; other escapes must be restructured or allowed with \
                 justification.",
        example: "fn stash(&self) {\n    let g = self.inner.lock();\n    self.slot.guard = g; // guard-escape: stored in struct field\n}",
    },
    RuleDoc {
        rule: "ld-wait",
        family: "lock-discipline",
        since: 1,
        summary: "condvar wait while holding a second lock",
        detail: "Waiting on a condition variable releases only the mutex passed \
                 to `wait`; any other lock held at that point stays held for the \
                 whole sleep, starving or deadlocking its other users.",
        example: "let stats = self.stats.lock();\nlet q = self.queue.lock();\nself.cv.wait(q); // ld-wait: `stats` still held",
    },
    RuleDoc {
        rule: "lock-across-hotpath",
        family: "lock-discipline",
        since: 5,
        summary: "guard held across a call chain reaching a MAC kernel",
        detail: "Holding a lock across a call chain that reaches a `mac-prim` \
                 hot-path kernel (Montgomery multiply, CIOS squaring) serializes \
                 the most parallel part of the workload: every other thread \
                 queues behind a guard held for the kernel's full duration. \
                 Charge/record under the guard, compute outside it.",
        example: "fn hot(&self) {\n    let s = self.stats.lock();\n    helper(); // lock-across-hotpath: chain reaches mont_mul\n}",
    },
    RuleDoc {
        rule: "lock-cycle",
        family: "lock-discipline",
        since: 5,
        summary: "cyclic lock-acquisition order across the workspace",
        detail: "Builds the workspace lock graph from guard bindings, \
                 `lock(a, b)` directives, and declared `lock-order` edges, \
                 propagating held sets over the call graph. Any cycle means two \
                 threads can each hold one lock and block on the other. The \
                 finding reports the cycle with each edge's acquisition site.",
        example: "// thread A: memory then stats; thread B: stats then memory\n// lock-cycle: gpu-sim::memory -> gpu-sim::stats -> gpu-sim::memory",
    },
    RuleDoc {
        rule: "lossy-narrow",
        family: "width",
        since: 8,
        summary: "narrowing cast reaching codec geometry, op-cost, or net accounting",
        detail: "An `as` cast down the width lattice (u8 < u16 < u32 < u64 ≈ \
                 usize < u128) silently truncates. On the scale-out paths — codec \
                 pack/unpack geometry, `*_estimate`/`*_ops`/`*_mac_count` \
                 accounting, `fl::net` byte counters — a truncated count corrupts \
                 results or charging with no panic, and only at large scale. \
                 Casts whose fn computes inside those sinks, or that flow as \
                 arguments into them, fire with the full path. Pure-literal \
                 sources are exempt; `widen-ok(name)` exempts value-range-safe \
                 identifiers; `narrow(reason)` sanctions a deliberately narrowing \
                 fn (e.g. masked limb splits).",
        example: "fn pack(values: &[u64], slots: usize) -> u32 {\n    (slots * values.len()) as u32 // lossy-narrow: geometry overflows at scale\n}",
    },
    RuleDoc {
        rule: "nondet-in-result",
        family: "determinism",
        since: 6,
        summary: "nondeterminism source flowing into a result constructor",
        detail: "Hash-order iteration, wall-clock reads, thread identity, and \
                 declared `nondet(..)` sources are propagated over the call graph. \
                 Reaching a `det-sink` result constructor means reported numbers \
                 can differ run to run — the bit-identical-output invariant every \
                 bench gate relies on breaks. `det-absorb` marks fns that consume \
                 nondeterminism without letting it into results (e.g. stopwatches).",
        example: "fn summarize(m: &HashMap<u32, u64>) -> u64 {\n    m.values().sum() // nondet-in-result when this feeds a det-sink\n}",
    },
    RuleDoc {
        rule: "pf-assert",
        family: "panic-freedom",
        since: 1,
        summary: "assert!/assert_eq! on a library path",
        detail: "Asserts abort the process mid-epoch in a long-running training \
                 job. Library crates must return `Result` instead; \
                 `debug_assert!` stays allowed (compiled out in release).",
        example: "pub fn split(n: usize, k: usize) -> usize {\n    assert!(k > 0); // pf-assert\n    n / k\n}",
    },
    RuleDoc {
        rule: "pf-expect",
        family: "panic-freedom",
        since: 1,
        summary: "`.expect(..)` on a library path",
        detail: "Same failure mode as `pf-unwrap` with a nicer message — still a \
                 process abort. Convert to `ok_or`/`map_err` and propagate.",
        example: "pub fn parse(s: &str) -> u32 {\n    s.parse().expect(\"bad int\") // pf-expect\n}",
    },
    RuleDoc {
        rule: "pf-index",
        family: "panic-freedom",
        since: 1,
        summary: "panicking slice/array index on a library path",
        detail: "`v[i]` panics on out-of-bounds. Library paths must bound-check \
                 (`get`, `get_mut`) or carry an inline \
                 `// flcheck: allow(pf-index)` with a justification for why the \
                 index is provably in range.",
        example: "pub fn first(v: &[u8]) -> u8 {\n    v[0] // pf-index\n}",
    },
    RuleDoc {
        rule: "pf-panic",
        family: "panic-freedom",
        since: 1,
        summary: "explicit panic!/unreachable!/todo! on a library path",
        detail: "An explicit panic is an abort by design; library code must \
                 surface an `Error` variant instead so the training loop can \
                 recover or report.",
        example: "pub fn select(mode: Mode) -> u8 {\n    match mode { Mode::A => 1, _ => panic!(\"bad mode\") } // pf-panic\n}",
    },
    RuleDoc {
        rule: "pf-reach",
        family: "panic-freedom",
        since: 3,
        summary: "public API transitively reaching a panic site",
        detail: "Panic facts (the pf-* sites plus allows' residue) are closed \
                 over the workspace call graph by BFS. A public entry point whose \
                 call chain can reach a panic fires once at the entry, with the \
                 full chain down to the underlying site — so the fix can happen \
                 at whichever layer owns the invariant.",
        example: "pub fn api(v: &[u8]) -> u8 { middle(v) } // pf-reach: 2 calls deep\nfn middle(v: &[u8]) -> u8 { deep(v) }\nfn deep(v: &[u8]) -> u8 { v.first().unwrap() }",
    },
    RuleDoc {
        rule: "pf-unwrap",
        family: "panic-freedom",
        since: 1,
        summary: "`.unwrap()` on a library path",
        detail: "`unwrap` aborts the process on `None`/`Err`. Library crates in \
                 the panic-freedom perimeter must propagate errors; test code is \
                 exempt.",
        example: "pub fn head(v: &[u8]) -> u8 {\n    *v.first().unwrap() // pf-unwrap\n}",
    },
    RuleDoc {
        rule: "race-cell-steal",
        family: "races",
        since: 8,
        summary: "Cell/RefCell/Rc capture crossing the work-stealing boundary",
        detail: "`Cell`, `RefCell`, and `Rc` are single-threaded interior \
                 mutability: they trade the `Sync` bound for zero-cost borrows. \
                 A closure that captures one and is scheduled onto the \
                 work-stealing pool moves that value across threads — in real \
                 rayon this fails to compile, but the dependency-free shim's \
                 looser bounds let it slip through to runtime corruption. Use \
                 `Mutex`/`RwLock`/atomics, or keep the value thread-local.",
        example: "let hits = RefCell::new(0u64);\nitems.par_iter().for_each(|x| {\n    hits.borrow(); // race-cell-steal\n});",
    },
    RuleDoc {
        rule: "race-shared-mut",
        family: "races",
        since: 8,
        summary: "captured binding mutated inside a pool-scheduled closure",
        detail: "A closure scheduled onto the pool (`spawn`, the `par_iter` \
                 family) runs concurrently with other instances of itself. \
                 Writing a captured enclosing binding (`x = ..`, `x += ..`, \
                 handing out `&mut x`) aliases it mutably across those \
                 instances — a data race the shim's relaxed bounds won't reject \
                 at compile time. Reduce with `fold`/`reduce`, or guard the \
                 state with a lock.",
        example: "let mut total = 0u64;\nitems.par_iter().for_each(|x| {\n    total += x; // race-shared-mut\n});",
    },
    RuleDoc {
        rule: "race-unsynced-write",
        family: "races",
        since: 8,
        summary: "unguarded interior write to captured state from the pool",
        detail: "An interior write (`x.push(..)`, `x.field = ..`) to captured \
                 shared state inside a pool-scheduled closure, with no lock \
                 acquisition covering the write — neither the capture being the \
                 lock itself (`stats.lock().push(..)`) nor a guard held around \
                 the statement. The check follows captures passed whole-arg or \
                 as receivers into resolved callees, so a helper that does the \
                 unguarded write is reported with the capture-site → spawn-site \
                 → write-site chain.",
        example: "let mut log = Vec::new();\nspawn(move || {\n    log.push(1); // race-unsynced-write: no guard covers the write\n});",
    },
    RuleDoc {
        rule: "stale-estimate",
        family: "cost-model",
        since: 5,
        summary: "estimates(..) pairing drifted from its kernel",
        detail: "`// flcheck: estimates(kernel, arity)` declares which kernel an \
                 op-cost estimator models and how many parameters that kernel \
                 took when the estimate was written. If the kernel vanishes or \
                 its arity changes, the estimator is silently modeling stale \
                 code and every simulated timing derived from it is wrong.",
        example: "// flcheck: estimates(kernel, 5)\npub fn kernel_op_estimate() -> u64 { .. } // stale-estimate if `kernel` now takes 2",
    },
    RuleDoc {
        rule: "uncharged-work",
        family: "cost-model",
        since: 5,
        summary: "public entry reaching MAC work with no charge-sink path",
        detail: "Public he/gpu-sim/core entry points whose call chains reach a \
                 `mac-prim` kernel must have some path into a `charge-sink` \
                 accounting call — otherwise the simulated clock never advances \
                 for that work and every derived throughput number silently \
                 flatters the system (PR 5 caught core's rsa_decrypt doing \
                 exactly this).",
        example: "pub fn uncharged_entry(x: &N) -> N {\n    kernel(x) // uncharged-work: reaches mont_mul, never charges\n}",
    },
    RuleDoc {
        rule: "unit-mismatch",
        family: "units",
        since: 10,
        summary: "different physical units meeting in one expression",
        detail: "Every fn parameter, return value, and field access is assigned \
                 a unit from {seconds, bytes, limb_mults, messages, \
                 dimensionless} by `unit(name, dim)` directives and naming \
                 conventions (`*_seconds`, `*_bytes`, `*_ops`/`*_mac_count`, \
                 `*_messages`), propagated over the call graph. Adding, \
                 comparing, assigning, or accumulating two *different* known \
                 units (`total_seconds += payload_bytes`) corrupts the cost \
                 accounting silently — the numbers stay plausible and wrong. \
                 Multiplication/division change dimension, so multiplicative \
                 expressions are unit-unknown and never fire (the soundness \
                 boundary); `dimensionless` is the explicit opt-out.",
        example: "fn f(payload_bytes: u64) {\n    let mut total_seconds = 0.0;\n    total_seconds += payload_bytes as f64; // unit-mismatch\n}",
    },
    RuleDoc {
        rule: "unit-unconverted",
        family: "units",
        since: 10,
        summary: "call argument crossing dimensions without a converter",
        detail: "A call argument whose unit differs from the callee parameter's \
                 unit crosses dimensions without passing through a declared \
                 `convert(from->to)` fn — e.g. handing a byte count to a \
                 seconds-taking sleep instead of routing it through the \
                 `fl::net` transfer-time estimator. Parameter units propagate \
                 interprocedurally (fill-only) through unannotated wrappers, and \
                 the finding carries the teaching chain plus the name of a \
                 declared converter for the crossing when one exists anywhere in \
                 the workspace.",
        example: "fn sleep(seconds: f64) {}\nfn g(payload_bytes: f64) {\n    sleep(payload_bytes) // unit-unconverted: route through a convert(bytes->seconds) fn\n}",
    },
];

/// Looks up the doc for a rule id.
pub fn doc_for(rule: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.rule == rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ALL_RULES;

    #[test]
    fn every_rule_is_documented_exactly_once_in_order() {
        let docs: Vec<&str> = RULE_DOCS.iter().map(|d| d.rule).collect();
        assert_eq!(
            docs, ALL_RULES,
            "RULE_DOCS must cover ALL_RULES 1:1 in sorted order"
        );
    }

    #[test]
    fn docs_have_substance() {
        for d in RULE_DOCS {
            assert!(!d.family.is_empty(), "{}: family", d.rule);
            assert!(d.since >= 1 && d.since <= 10, "{}: since", d.rule);
            assert!(
                d.summary.len() < 80,
                "{}: summary must fit a table cell",
                d.rule
            );
            assert!(
                d.detail.len() > 100,
                "{}: detail must be a paragraph",
                d.rule
            );
            assert!(!d.example.is_empty(), "{}: example", d.rule);
        }
    }

    #[test]
    fn lookup_finds_known_and_rejects_unknown() {
        assert_eq!(doc_for("pf-unwrap").unwrap().family, "panic-freedom");
        assert_eq!(doc_for("lossy-narrow").unwrap().since, 8);
        assert!(doc_for("no-such-rule").is_none());
    }
}
