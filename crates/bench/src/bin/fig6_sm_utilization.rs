//! **Figure 6**: GPU SM utilization of HAFLO vs FLBooster in HE
//! operations, per model and key size.
//!
//! Utilization is probed at *saturation* (a full epoch's worth of HE
//! operations in flight, as in the paper's measurements): the reported
//! value is the achieved occupancy × wave fill of the launch the
//! backend's resource manager plans. HAFLO uses naive fixed 256-thread
//! blocks without branch combining; FLBooster's manager adapts the block
//! shape to the kernel's register demand.
//!
//! Paper claims to reproduce: FLBooster > HAFLO everywhere; utilization
//! degrades as the key size grows (register pressure reduces occupancy).
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin fig6_sm_utilization -- [--keys ...]
//! ```

use flbooster_bench::table::{pct, Table};
use flbooster_bench::{bench_dataset, Args, DatasetKind, ModelKind};
use gpu_sim::resource::ResourceManager;
use gpu_sim::{Device, DeviceConfig, ItemOutcome};
use he::GpuHe;

/// HE operations one epoch of `model` keeps in flight (scaled up to the
/// paper's full-dataset sizes so the device saturates).
fn inflight_items(model: ModelKind, dataset: &fl::data::Dataset) -> usize {
    let per_round = match model {
        ModelKind::HomoLr | ModelKind::HeteroLr => dataset.num_features,
        ModelKind::HeteroSbt => 2 * dataset.len(),
        ModelKind::HeteroNn => 2 * 1024 * fl::models::HIDDEN,
    };
    (per_round * 1000).clamp(100_000, 5_000_000)
}

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let keys = args.key_sizes();

    println!("Figure 6 — SM utilization in HE operations at saturation ({preset:?} preset)\n");
    let mut table = Table::new(["Model", "Key", "HAFLO", "FLBooster"]);

    let data = bench_dataset(DatasetKind::Synthetic, preset);
    for model_kind in args.models() {
        let items = inflight_items(model_kind, &data);
        for &key_bits in &keys {
            let mut cells = Vec::new();
            for fixed in [true, false] {
                let device = if fixed {
                    Device::with_manager(DeviceConfig::rtx3090(), ResourceManager::fixed(256))
                } else {
                    Device::new(DeviceConfig::rtx3090())
                };
                let spec = GpuHe::kernel_spec("he_epoch", key_bits, true);
                // One representative launch: items carry the epoch's HE
                // ops; bodies are unit probes (utilization depends only
                // on the launch geometry, not the payload values).
                let probe: Vec<u32> = (0..items.min(1 << 20) as u32).collect();
                let (_, report) = device.launch(&spec, &probe, 0, 0, |i, _| ItemOutcome {
                    output: (),
                    thread_ops: 1,
                    divergent: i % 2 == 0,
                });
                cells.push(pct(report.sm_utilization));
            }
            table.row([
                model_kind.name().to_string(),
                key_bits.to_string(),
                cells[0].clone(),
                cells[1].clone(),
            ]);
        }
    }
    table.print();
    println!("\nPaper reference: FLBooster > HAFLO at every point; utilization falls as the");
    println!("key size (register demand per thread) grows.");
}
