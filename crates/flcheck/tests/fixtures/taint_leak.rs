//! Fixture: a secret that propagates through a constant-time helper and
//! leaks at a branch inside it — the interprocedural ct-taint case.

// flcheck: ct-fn
// flcheck: secret(key)
pub fn seal(key: u64, data: u64) -> u64 {
    let k = key ^ 0x5a5a;
    whiten(k, data)
}

// flcheck: ct-fn
fn whiten(x: u64, d: u64) -> u64 {
    if x & 1 == 1 {
        return d;
    }
    x ^ d
}
