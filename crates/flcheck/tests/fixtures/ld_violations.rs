//! Fixture: lock-discipline violations against a declared order.

// flcheck: lock-order(table < counters)

pub struct Dev {
    table: Mutex<u64>,
    counters: Mutex<u64>,
}

impl Dev {
    pub fn backwards(&self) -> u64 {
        let c = self.counters.lock();
        let t = self.table.lock();
        *c + *t
    }

    pub fn held_across_recv(&self, rx: &Receiver<u64>) -> u64 {
        let g = self.table.lock();
        let v = rx.recv();
        *g + v
    }
}
