//! Multi-precision unsigned integer arithmetic for the FLBooster
//! reproduction.
//!
//! The paper (Sec. IV-A1) represents multi-precision integers in a
//! radix-based number system ("FRNS"): an integer is split into fixed-size
//! *limbs* (words) of `w` bits each, processed in parallel by GPU threads.
//! This crate implements that representation on the CPU with `w = 64`
//! (`u64` limbs, little-endian order) and provides every arithmetic
//! primitive the platform needs:
//!
//! - [`Natural`]: arbitrary-precision unsigned integers with schoolbook and
//!   Karatsuba multiplication, Knuth Algorithm-D division, shifts, bit
//!   operations, and decimal/hex/byte conversions.
//! - [`montgomery`]: the basic Montgomery multiplication of the paper's
//!   Algorithm 1 plus a reusable Montgomery domain context.
//! - [`cios`]: the CIOS (Coarsely Integrated Operand Scanning) Montgomery
//!   multiplication of the paper's Algorithm 2, in both a flat word-serial
//!   form and a *limb-partitioned* form that mirrors the per-thread `x`-word
//!   layout used by the GPU kernels.
//! - [`modpow`]: binary and sliding-window modular exponentiation (the
//!   paper reduces complexity from `e` to `log_{2^b} e` multiplications).
//! - [`prime`]: Miller–Rabin primality testing and random prime generation
//!   used by Paillier/RSA key generation.
//! - [`random`]: uniform random `Natural` generation.
//!
//! # Example
//!
//! ```
//! use mpint::Natural;
//!
//! let a = Natural::from_decimal_str("123456789012345678901234567890").unwrap();
//! let b = Natural::from(42u64);
//! let (q, r) = (&a * &b).div_rem(&a);
//! assert_eq!(q, b);
//! assert!(r.is_zero());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod barrett;
mod bits;
pub mod cios;
mod convert;
pub mod ct;
mod div;
pub mod error;
mod gcd;
pub mod limb;
pub mod modpow;
pub mod montgomery;
mod mul;
mod natural;
pub mod prime;
pub mod random;
mod shift;
pub mod straus;

pub use barrett::BarrettCtx;
pub use ct::{ct_eq, ct_ge_then_sub, ct_lt, ct_select};
pub use error::{Error, Result};
pub use gcd::{gcd, lcm, mod_inv, ExtendedGcd};
pub use limb::{Limb, LIMB_BITS};
pub use montgomery::MontgomeryCtx;
pub use natural::Natural;
