//! **Table V**: ablation — FLBooster vs `w/o GHE` (CPU HE, compression
//! kept) vs `w/o BC` (GPU HE, compression removed).
//!
//! Paper claims to reproduce: removing either module degrades epoch time
//! substantially; `w/o BC` is the bigger loss (14.3×–126.7×), and both
//! gaps widen with the key size.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin table5_ablation -- \
//!     [--quick] [--keys 1024,...] [--models ...] [--datasets ...]
//! ```

use fl::train::FlEnv;
use fl::BackendKind;
use flbooster_bench::table::{secs, speedup, Table};
use flbooster_bench::{backend, bench_dataset, harness_train_config, Args, PARTICIPANTS};

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let keys = args.key_sizes_or(&[1024]);
    let cfg = harness_train_config();

    println!("Table V — module ablation, simulated seconds per epoch ({preset:?} preset)\n");
    let mut table = Table::new([
        "Dataset",
        "Model",
        "Key",
        "FLBooster",
        "w/o GHE",
        "w/o BC",
        "GHE gain",
        "BC gain",
    ]);

    for dataset_kind in args.datasets() {
        for model_kind in args.models() {
            for &key_bits in &keys {
                let mut times = Vec::new();
                for backend_kind in BackendKind::ablations() {
                    let data = bench_dataset(dataset_kind, preset);
                    let env = FlEnv::new(backend(backend_kind, key_bits, PARTICIPANTS), cfg.seed);
                    let mut model = model_kind
                        .build(&data, PARTICIPANTS, &cfg)
                        .expect("model build");
                    let result = model.run_epoch(&env, &cfg, 0).expect("epoch");
                    times.push(result.breakdown.total_seconds());
                }
                table.row([
                    dataset_kind.name().to_string(),
                    model_kind.name().to_string(),
                    key_bits.to_string(),
                    secs(times[0]),
                    secs(times[1]),
                    secs(times[2]),
                    speedup(times[1] / times[0]),
                    speedup(times[2] / times[0]),
                ]);
                eprintln!(
                    "  done {} / {} @ {}",
                    dataset_kind.name(),
                    model_kind.name(),
                    key_bits
                );
            }
        }
    }
    table.print();
    println!("\nPaper reference: w/o BC costs 14.3x-126.7x; w/o GHE costs ~4-9x; both grow");
    println!("with key size.");
}
