//! Fixture: every ct-discipline rule fires inside a marked function.

// flcheck: ct-fn
pub fn leaky_select(secret: u64, a: u64, b: u64) -> u64 {
    if secret == 1 {
        return a;
    }
    let both = secret != 0 && a < b;
    let m = a.min(b);
    let _ = both;
    m
}

/// Unmarked twin: the ct-fn marker must not bleed past one function.
pub fn public_select(flag: u64, a: u64, b: u64) -> u64 {
    if flag == 1 {
        a
    } else {
        b
    }
}
