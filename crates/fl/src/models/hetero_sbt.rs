//! Heterogeneous SecureBoost (the paper's "Hetero SBT", Cheng et al.).
//!
//! Gradient-boosted decision trees over vertically-partitioned data. Per
//! boosting round:
//!
//! 1. the active party computes first/second-order gradients `g, h` of
//!    the logistic loss for every instance and ships them to the passive
//!    parties **encrypted** — packed `[g|h]` per instance under batch
//!    compression (the SecureBoost+ GH-packing layout, with enough guard
//!    bits that a whole node's worth of instances can be summed in-slot),
//!    or as two ciphertexts per instance otherwise;
//! 2. each passive party buckets its node instances by feature-quantile
//!    bins and reduces the encrypted `g`/`h` into per-bin sums with
//!    *homomorphic additions* ([`he::HeBackend::fold_groups`]);
//! 3. bucket sums return to the active party, which decrypts them,
//!    evaluates the XGBoost split gain, and announces the winner;
//! 4. recursion continues to `max_depth`; leaves get `-G/(H+λ)` weights.
//!
//! The active party's own features never leave home, so its histograms
//! are computed in plaintext — exactly as in SecureBoost.

// flcheck: allow-file(pf-index) — instance ids index per-instance vectors
// sized to the dataset; bin ids are clamped to `bins - 1` at quantization.

use codec::{Quantizer, QuantizerConfig};
use he::paillier::Ciphertext;
use mpint::Natural;

use crate::data::{vertical_split, Dataset, VerticalShard};
use crate::metrics::{EpochBreakdown, EpochResult};
use crate::train::{logloss, sigmoid, FlEnv, FlModel, TrainConfig};
use crate::{Error, Result};

/// A decision-tree node.
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// Terminal node carrying the leaf weight.
    Leaf(f64),
    /// Internal split on `shard`'s local `feature` at `threshold`.
    Split {
        /// Owning party.
        shard: usize,
        /// Local feature index within the shard.
        feature: usize,
        /// Instances with value `<= threshold` go left.
        threshold: f64,
        /// Left child.
        left: Box<TreeNode>,
        /// Right child.
        right: Box<TreeNode>,
    },
}

/// One boosted tree.
#[derive(Debug, Clone)]
pub struct Tree {
    /// Root node.
    pub root: TreeNode,
}

impl Tree {
    /// Margin contribution of this tree for instance `i` (rows indexed
    /// across all shards).
    pub fn predict(&self, shards: &[VerticalShard], i: usize) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf(w) => return *w,
                TreeNode::Split {
                    shard,
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let value = feature_value(&shards[*shard], i, *feature);
                    node = if value <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        fn walk(n: &TreeNode) -> usize {
            match n {
                TreeNode::Leaf(_) => 1,
                TreeNode::Split { left, right, .. } => walk(left) + walk(right),
            }
        }
        walk(&self.root)
    }
}

fn feature_value(shard: &VerticalShard, row: usize, feature: usize) -> f64 {
    let r = &shard.rows[row];
    match r.indices.binary_search(&(feature as u32)) {
        Ok(pos) => r.values[pos],
        Err(_) => 0.0,
    }
}

/// Vertically-federated gradient-boosted trees.
pub struct HeteroSbt {
    dataset_name: String,
    shards: Vec<VerticalShard>,
    labels: Vec<f64>,
    margins: Vec<f64>,
    trees: Vec<Tree>,
    /// Quantile bins per shard/feature.
    bin_edges: Vec<Vec<Vec<f64>>>,
    gh_quantizer: Quantizer,
    gh_slot_bits: u32,
    bins: usize,
    max_depth: usize,
    min_node: usize,
    eta: f64,
    lambda: f64,
    max_features_per_node: usize,
    loss: f64,
}

impl HeteroSbt {
    /// Builds the boosting state over a vertical split.
    pub fn new(dataset: &Dataset, participants: u32, _cfg: &TrainConfig) -> Result<Self> {
        let shards = vertical_split(dataset, participants);
        let labels = shards[0]
            .labels
            .clone()
            .ok_or_else(|| Error::BadConfig("active party must hold labels".into()))?;
        let n = labels.len();
        let bins = 8;

        // GH quantizer: 16 value bits, guard bits sized so summing every
        // instance of the dataset in one slot cannot overflow.
        let gh_cfg = QuantizerConfig {
            alpha: 1.0,
            r_bits: 16,
            participants: crate::count_u32(n).max(2),
            clip: true,
        };
        let gh_quantizer = Quantizer::new(gh_cfg).map_err(flbooster_core::Error::from)?;
        let gh_slot_bits = gh_cfg.slot_bits();

        let bin_edges = shards
            .iter()
            .map(|s| {
                (0..s.num_features())
                    .map(|f| quantile_edges(s, f, bins))
                    .collect()
            })
            .collect();

        let mut model = HeteroSbt {
            dataset_name: dataset.name.clone(),
            shards,
            labels,
            margins: vec![0.0; n],
            trees: Vec::new(),
            bin_edges,
            gh_quantizer,
            gh_slot_bits,
            bins,
            max_depth: 3,
            min_node: 8,
            eta: 0.3,
            lambda: 1.0,
            max_features_per_node: 8,
            loss: f64::NAN,
        };
        model.loss = model.global_loss();
        Ok(model)
    }

    /// Trees grown so far.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Margin prediction for training instance `i`.
    pub fn predict_margin(&self, i: usize) -> f64 {
        self.trees.iter().map(|t| t.predict(&self.shards, i)).sum()
    }

    fn global_loss(&self) -> f64 {
        let preds: Vec<f64> = self.margins.iter().map(|&m| sigmoid(m)).collect();
        logloss(&preds, &self.labels)
    }

    /// Quantizes and (optionally) GH-packs the gradient pair of one
    /// instance.
    fn encode_gh(&self, g: f64, h: f64, packed: bool) -> Result<Vec<Natural>> {
        let qg = self
            .gh_quantizer
            .quantize(g)
            .map_err(flbooster_core::Error::from)?;
        let qh = self
            .gh_quantizer
            .quantize(h)
            .map_err(flbooster_core::Error::from)?;
        if packed {
            let word = Natural::from(qg).add_ref(&Natural::from(qh).shl_bits(self.gh_slot_bits));
            Ok(vec![word])
        } else {
            Ok(vec![Natural::from(qg), Natural::from(qh)])
        }
    }

    /// Decodes a decrypted bucket sum into `(G, H)` given the bucket's
    /// member count.
    fn decode_gh_sum(&self, words: &[Natural], count: u32, packed: bool) -> (f64, f64) {
        if packed {
            let w = &words[0];
            let zg = w.extract_bits(0, self.gh_slot_bits);
            let zh = w.extract_bits(self.gh_slot_bits, self.gh_slot_bits);
            (
                self.gh_quantizer.dequantize_sum(zg, count),
                self.gh_quantizer.dequantize_sum(zh, count),
            )
        } else {
            (
                self.gh_quantizer.dequantize_sum(words[0].low_u64(), count),
                self.gh_quantizer.dequantize_sum(words[1].low_u64(), count),
            )
        }
    }

    /// Deterministic feature subsample for a node.
    fn sample_features(&self, shard: usize, node_seed: u64) -> Vec<usize> {
        let total = self.shards[shard].num_features();
        if total <= self.max_features_per_node {
            return (0..total).collect();
        }
        // Low-discrepancy stride sample keyed by the node seed.
        let stride = (total / self.max_features_per_node).max(1);
        let offset = (node_seed as usize) % stride.max(1);
        (0..self.max_features_per_node)
            .map(|j| (offset + j * stride) % total)
            .collect()
    }

    fn bin_of(&self, shard: usize, feature: usize, row: usize) -> usize {
        let v = feature_value(&self.shards[shard], row, feature);
        let edges = &self.bin_edges[shard][feature];
        edges.partition_point(|&e| e < v).min(self.bins - 1)
    }

    /// XGBoost split gain.
    fn gain(&self, gl: f64, hl: f64, g: f64, h: f64) -> f64 {
        let gr = g - gl;
        let hr = h - hl;
        0.5 * (gl * gl / (hl + self.lambda) + gr * gr / (hr + self.lambda)
            - g * g / (h + self.lambda))
    }
}

/// Quantile bin edges for one shard feature (`bins - 1` boundaries).
fn quantile_edges(shard: &VerticalShard, feature: usize, bins: usize) -> Vec<f64> {
    let mut values: Vec<f64> = (0..shard.len())
        .map(|i| feature_value(shard, i, feature))
        .collect();
    // total_cmp orders NaNs deterministically instead of panicking.
    values.sort_by(|a, b| a.total_cmp(b));
    let mut edges = Vec::with_capacity(bins - 1);
    for b in 1..bins {
        let idx = b * (values.len().saturating_sub(1)) / bins;
        let e = values[idx];
        if edges.last() != Some(&e) {
            edges.push(e);
        }
    }
    edges
}

/// One candidate split found from decrypted histograms.
struct BestSplit {
    gain: f64,
    shard: usize,
    feature: usize,
    threshold: f64,
    left: Vec<usize>,
    right: Vec<usize>,
}

impl FlModel for HeteroSbt {
    fn name(&self) -> &'static str {
        "Hetero SBT"
    }

    fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    fn loss(&self) -> f64 {
        self.loss
    }

    /// One epoch = one boosting round (tree).
    fn run_epoch(&mut self, env: &FlEnv, cfg: &TrainConfig, epoch: usize) -> Result<EpochResult> {
        let mut breakdown = EpochBreakdown::default();
        let n = self.labels.len();
        let packed = env.accel.batch_compression();
        let pk = &env.accel.keys().public;
        let sk = &env.accel.keys().private;
        let he = env.accel.he_backend();

        // (1) gradients and their encrypted broadcast.
        let mut g = Vec::with_capacity(n);
        let mut h = Vec::with_capacity(n);
        for i in 0..n {
            let p = sigmoid(self.margins[i]);
            g.push(p - self.labels[i]);
            h.push((p * (1.0 - p)).max(1e-16));
        }
        env.charge_local_compute(8 * n as u64, cfg, &mut breakdown);

        let mut plaintexts = Vec::with_capacity(if packed { n } else { 2 * n });
        for i in 0..n {
            plaintexts.extend(self.encode_gh(g[i], h[i], packed)?);
        }
        let seed = cfg.seed ^ ((epoch as u64) << 20);
        let (gh_cts, t) = he
            .encrypt_batch(pk, &plaintexts, seed)
            .map_err(flbooster_core::Error::from)?;
        // Direct he_backend() use must report back, or the accelerator's
        // own timing accumulator misses every SBT HE operation.
        env.accel.charge_external(&t, plaintexts.len());
        breakdown.he_seconds += t.sim_seconds;
        breakdown.phases.encrypt_seconds += t.sim_seconds;
        breakdown.round_seconds += t.sim_seconds;
        breakdown.he_values += 2 * n as u64;
        let encode_t = n as f64 * 4.0e-8; // encode/pack
        breakdown.other_seconds += encode_t;
        breakdown.phases.encrypt_seconds += encode_t;
        breakdown.round_seconds += encode_t;

        let gh_bytes: u64 = gh_cts.iter().map(|c| c.wire_size_bytes() as u64).sum();
        let passive = self.shards.len().saturating_sub(1) as u32;
        if passive > 0 {
            let t = env
                .network
                .broadcast(passive, gh_cts.len() as u64, gh_bytes)?;
            breakdown.comm_seconds += t;
            breakdown.phases.downlink_seconds += t;
            breakdown.round_seconds += t;
            breakdown.comm_bytes += passive as u64 * gh_bytes;
            breakdown.ciphertexts += passive as u64 * gh_cts.len() as u64;
        }

        // Per-instance ciphertext accessors (packed: one ct; plain: two).
        let ct_of = |i: usize| -> Vec<Ciphertext> {
            if packed {
                vec![gh_cts[i].clone()]
            } else {
                vec![gh_cts[2 * i].clone(), gh_cts[2 * i + 1].clone()]
            }
        };

        // (2)–(4) grow one tree.
        let all: Vec<usize> = (0..n).collect();
        let mut leaf_updates: Vec<(Vec<usize>, f64)> = Vec::new();
        let root = self.grow(
            env,
            cfg,
            &all,
            0,
            seed,
            &g,
            &h,
            &ct_of,
            packed,
            sk,
            &mut breakdown,
            &mut leaf_updates,
        )?;
        let tree = Tree { root };
        self.trees.push(tree);

        // (5) margin updates with shrinkage.
        for (members, weight) in leaf_updates {
            for i in members {
                self.margins[i] += self.eta * weight;
            }
        }
        env.charge_local_compute(2 * n as u64, cfg, &mut breakdown);

        self.loss = self.global_loss();
        Ok(EpochResult {
            breakdown,
            loss: self.loss,
        })
    }
}

impl HeteroSbt {
    /// Recursive node growth. Returns the node and records leaf member
    /// sets for the margin update.
    #[allow(clippy::too_many_arguments)]
    fn grow(
        &self,
        env: &FlEnv,
        cfg: &TrainConfig,
        members: &[usize],
        depth: usize,
        seed: u64,
        g: &[f64],
        h: &[f64],
        ct_of: &dyn Fn(usize) -> Vec<Ciphertext>,
        packed: bool,
        sk: &he::paillier::PaillierPrivateKey,
        breakdown: &mut EpochBreakdown,
        leaves: &mut Vec<(Vec<usize>, f64)>,
    ) -> Result<TreeNode> {
        let g_total: f64 = members.iter().map(|&i| g[i]).sum();
        let h_total: f64 = members.iter().map(|&i| h[i]).sum();

        if depth >= self.max_depth || members.len() < self.min_node {
            let w = -g_total / (h_total + self.lambda);
            leaves.push((members.to_vec(), w));
            return Ok(TreeNode::Leaf(w));
        }

        let mut best: Option<BestSplit> = None;
        let he = env.accel.he_backend();
        let pk = &env.accel.keys().public;

        for shard_idx in 0..self.shards.len() {
            let node_seed = seed ^ ((depth as u64) << 8) ^ (members.len() as u64);
            let features = self.sample_features(shard_idx, node_seed);
            let active = shard_idx == 0;

            // Bucket membership (plaintext at the feature owner).
            // bucket_members[f][b] = instance list.
            let mut bucket_members: Vec<Vec<Vec<usize>>> =
                vec![vec![Vec::new(); self.bins]; features.len()];
            for &i in members {
                for (fi, &f) in features.iter().enumerate() {
                    let b = self.bin_of(shard_idx, f, i);
                    bucket_members[fi][b].push(i);
                }
            }

            // Histogram sums: plaintext for the active party, homomorphic
            // folds + decryption round trip for passive parties.
            let mut sums: Vec<Vec<(f64, f64, u32)>> =
                vec![vec![(0.0, 0.0, 0); self.bins]; features.len()];
            if active {
                for (fi, per_bin) in bucket_members.iter().enumerate() {
                    for (b, bucket) in per_bin.iter().enumerate() {
                        let gs: f64 = bucket.iter().map(|&i| g[i]).sum();
                        let hs: f64 = bucket.iter().map(|&i| h[i]).sum();
                        sums[fi][b] = (gs, hs, bucket.len() as u32);
                    }
                }
                // Local flops: one pass over node instances per feature.
            } else {
                // Build ciphertext groups (one per (feature, bin), with
                // packed GH or separate g/h streams).
                let streams = if packed { 1 } else { 2 };
                let mut groups: Vec<Vec<Ciphertext>> =
                    Vec::with_capacity(features.len() * self.bins * streams);
                for per_bin in &bucket_members {
                    for bucket in per_bin {
                        if packed {
                            groups.push(bucket.iter().map(|&i| ct_of(i).remove(0)).collect());
                        } else {
                            groups.push(bucket.iter().map(|&i| ct_of(i).remove(0)).collect());
                            // Unpacked encryption produced exactly two cts
                            // per instance; pop() yields the h stream.
                            groups.push(bucket.iter().filter_map(|&i| ct_of(i).pop()).collect());
                        }
                    }
                }
                let (folded, t) = he
                    .fold_groups(pk, &groups)
                    .map_err(flbooster_core::Error::from)?;
                env.accel.charge_external(&t, 0);
                breakdown.he_seconds += t.sim_seconds;
                breakdown.phases.aggregate_seconds += t.sim_seconds;
                breakdown.round_seconds += t.sim_seconds;

                // Bucket sums travel back to the active party...
                let bytes: u64 = folded.iter().map(|c| c.wire_size_bytes() as u64).sum();
                let ts = env.network.send(folded.len() as u64, bytes)?;
                breakdown.comm_seconds += ts;
                breakdown.phases.uplink_seconds += ts;
                breakdown.round_seconds += ts;
                breakdown.comm_bytes += bytes;
                breakdown.ciphertexts += folded.len() as u64;

                // ...where they are decrypted and decoded.
                let (words, t) = he
                    .decrypt_batch(sk, &folded)
                    .map_err(flbooster_core::Error::from)?;
                env.accel.charge_external(&t, words.len());
                breakdown.he_seconds += t.sim_seconds;
                breakdown.phases.decrypt_seconds += t.sim_seconds;
                breakdown.round_seconds += t.sim_seconds;
                breakdown.he_values += (features.len() * self.bins * 2) as u64;

                for (fi, per_bin) in bucket_members.iter().enumerate() {
                    for (b, bucket) in per_bin.iter().enumerate() {
                        let gi = (fi * self.bins + b) * streams;
                        let words_gb = if packed {
                            std::slice::from_ref(&words[gi])
                        } else {
                            &words[gi..gi + 2]
                        };
                        let terms = crate::count_u32(bucket.len());
                        let (gs, hs) = self.decode_gh_sum(words_gb, terms, packed);
                        sums[fi][b] = (gs, hs, terms);
                    }
                }
            }

            // Split evaluation at the active party (plaintext gains).
            for (fi, &f) in features.iter().enumerate() {
                let edges = &self.bin_edges[shard_idx][f];
                let mut gl = 0.0;
                let mut hl = 0.0;
                let mut nl = 0u32;
                for b in 0..self.bins.saturating_sub(1) {
                    let (gs, hs, cnt) = sums[fi][b];
                    gl += gs;
                    hl += hs;
                    nl += cnt;
                    if nl == 0 || nl as usize == members.len() || b >= edges.len() {
                        continue;
                    }
                    let gain = self.gain(gl, hl, g_total, h_total);
                    if gain > best.as_ref().map_or(1e-6, |s| s.gain) {
                        let threshold = edges[b];
                        let (mut left, mut right) = (Vec::new(), Vec::new());
                        for &i in members {
                            if feature_value(&self.shards[shard_idx], i, f) <= threshold {
                                left.push(i);
                            } else {
                                right.push(i);
                            }
                        }
                        if !left.is_empty() && !right.is_empty() {
                            best = Some(BestSplit {
                                gain,
                                shard: shard_idx,
                                feature: f,
                                threshold,
                                left,
                                right,
                            });
                        }
                    }
                }
            }
            // Charge the histogram pass as local compute.
            env.charge_local_compute((members.len() * features.len()) as u64 * 3, cfg, breakdown);
        }

        match best {
            None => {
                let w = -g_total / (h_total + self.lambda);
                leaves.push((members.to_vec(), w));
                Ok(TreeNode::Leaf(w))
            }
            Some(split) => {
                let left = self.grow(
                    env,
                    cfg,
                    &split.left,
                    depth + 1,
                    seed.rotate_left(7),
                    g,
                    h,
                    ct_of,
                    packed,
                    sk,
                    breakdown,
                    leaves,
                )?;
                let right = self.grow(
                    env,
                    cfg,
                    &split.right,
                    depth + 1,
                    seed.rotate_left(13),
                    g,
                    h,
                    ct_of,
                    packed,
                    sk,
                    breakdown,
                    leaves,
                )?;
                Ok(TreeNode::Split {
                    shard: split.shard,
                    feature: split.feature,
                    threshold: split.threshold,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Accelerator, BackendKind};
    use crate::data::generators::DatasetSpec;
    use he::paillier::PaillierKeyPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env(kind: BackendKind) -> FlEnv {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5B7);
        let keys = PaillierKeyPair::generate(&mut rng, 128).unwrap();
        FlEnv::new(Accelerator::new(kind, keys, 3).unwrap(), 3)
    }

    fn small_dataset() -> Dataset {
        let mut spec = DatasetSpec::synthetic();
        spec.features = 12;
        spec.nnz_per_row = 12;
        spec.instances = 150;
        spec.generate(1.0)
    }

    #[test]
    fn boosting_reduces_loss() {
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        let initial = model.loss();
        for e in 0..3 {
            model.run_epoch(&env, &cfg, e).unwrap();
        }
        assert!(
            model.loss() < initial - 0.02,
            "{} vs {initial}",
            model.loss()
        );
        assert_eq!(model.trees().len(), 3);
    }

    #[test]
    fn unpacked_backend_also_learns() {
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let env = env(BackendKind::Haflo);
        let mut model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        let initial = model.loss();
        model.run_epoch(&env, &cfg, 0).unwrap();
        assert!(model.loss() < initial);
    }

    #[test]
    fn trees_have_splits_and_leaves() {
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        model.run_epoch(&env, &cfg, 0).unwrap();
        let tree = &model.trees()[0];
        let leaves = tree.leaf_count();
        assert!(leaves >= 2, "tree degenerated to a stump without splits");
        assert!(leaves <= 8, "depth-3 tree cannot exceed 8 leaves");
    }

    #[test]
    fn predict_margin_matches_tracked_margins() {
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        model.run_epoch(&env, &cfg, 0).unwrap();
        model.run_epoch(&env, &cfg, 1).unwrap();
        for i in (0..model.labels.len()).step_by(17) {
            let predicted: f64 = model.predict_margin(i) * model.eta;
            assert!(
                (predicted - model.margins[i]).abs() < 1e-9,
                "instance {i}: {predicted} vs {}",
                model.margins[i]
            );
        }
    }

    #[test]
    fn breakdown_components_present() {
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let env = env(BackendKind::Fate);
        let mut model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        let b = model.run_epoch(&env, &cfg, 0).unwrap().breakdown;
        assert!(b.he_seconds > 0.0);
        assert!(b.comm_seconds > 0.0);
        assert!(b.other_seconds > 0.0);
        assert!(b.he_values >= 2 * 150);
    }

    #[test]
    fn direct_he_backend_use_reports_into_accelerator_timing() {
        // SBT drives the HE engine through `he_backend()` directly; each
        // site must report back via `charge_external`, or the
        // accelerator's own accumulator misses every SBT HE operation
        // while the breakdown still looks complete (the unit-flow audit
        // caught exactly this).
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        let b = model.run_epoch(&env, &cfg, 0).unwrap().breakdown;
        let t = env.accel.timing();
        assert!(
            t.he_seconds > 0.0,
            "direct he_backend() work never reached Accelerator::timing()"
        );
        assert!(t.he_ops > 0 && t.he_items > 0);
        // The accumulator mirrors what the epoch charged into the
        // breakdown: encrypt + fold + decrypt, nothing double-counted.
        assert!(
            t.he_seconds <= b.he_seconds + 1e-12,
            "accumulator {} exceeds breakdown HE time {}",
            t.he_seconds,
            b.he_seconds
        );
    }

    #[test]
    fn gh_encoding_roundtrip() {
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        for packed in [true, false] {
            let words = model.encode_gh(-0.37, 0.21, packed).unwrap();
            let (g, h) = model.decode_gh_sum(&words, 1, packed);
            assert!((g + 0.37).abs() < 1e-4, "g {g}");
            assert!((h - 0.21).abs() < 1e-4, "h {h}");
        }
    }

    #[test]
    fn packed_gh_sums_accumulate() {
        let data = small_dataset();
        let cfg = TrainConfig::default();
        let model = HeteroSbt::new(&data, 3, &cfg).unwrap();
        // Sum three packed GH words as the homomorphic fold would.
        let pairs = [(-0.5, 0.25), (0.1, 0.2), (0.3, 0.05)];
        let mut acc = Natural::zero();
        for (g, h) in pairs {
            acc = acc.add_ref(&model.encode_gh(g, h, true).unwrap()[0]);
        }
        let (gs, hs) = model.decode_gh_sum(&[acc], 3, true);
        assert!((gs - (-0.1)).abs() < 1e-3, "G {gs}");
        assert!((hs - 0.5).abs() < 1e-3, "H {hs}");
    }
}
