//! Heterogeneous neural network (the paper's "Hetero NN": a split
//! network in the style of GELU-Net / FATE's Hetero NN).
//!
//! Each party owns a *bottom* linear model over its feature shard; the
//! active party additionally owns the *top* model (a logistic head over
//! the shared hidden layer). Per mini-batch:
//!
//! 1. every party computes its partial pre-activations `Z_k = X_k·W_k`
//!    (batch × hidden) and the interaction layer is formed by a *secure
//!    sum* — the encrypted aggregation of the partial activations;
//! 2. the active party applies `tanh`, runs the top model, and computes
//!    the output error;
//! 3. the hidden-layer error `δ_Z` (batch × hidden) is *encrypted* and
//!    broadcast to the passive parties;
//! 4. each party updates its bottom weights from `X_kᵀ δ_Z / |B|`; the
//!    active party updates the top model.
//!
//! The forward activations and backward errors are exactly the tensors
//! FATE's Hetero NN moves through its encrypted interactive layer, so the
//! HE volume per batch (`2 · batch · hidden`) matches the real workload.

// flcheck: allow-file(pf-index) — matrix buffers are `batch × hidden` /
// `features × hidden` row-major with loop bounds taken from those same
// dimensions.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::data::{vertical_split, Dataset, VerticalShard};
use crate::metrics::{EpochBreakdown, EpochResult};
use crate::models::{scale_down, scale_up};
use crate::optim::{Adam, Optimizer};
use crate::train::{logloss, sigmoid, FlEnv, FlModel, TrainConfig};
use crate::{Error, Result};

/// Hidden-layer width of the split network.
pub const HIDDEN: usize = 16;

/// Vertically-federated split neural network.
pub struct HeteroNn {
    dataset_name: String,
    shards: Vec<VerticalShard>,
    labels: Vec<f64>,
    /// Bottom weights per party: `[shard][feature * HIDDEN + unit]`.
    bottoms: Vec<Vec<f64>>,
    /// Top model: HIDDEN weights + bias.
    top: Vec<f64>,
    bottom_opts: Vec<Adam>,
    top_opt: Adam,
    loss: f64,
}

impl HeteroNn {
    /// Builds the split network over a vertical partition.
    pub fn new(dataset: &Dataset, participants: u32, cfg: &TrainConfig) -> Result<Self> {
        let shards = vertical_split(dataset, participants);
        let labels = shards[0]
            .labels
            .clone()
            .ok_or_else(|| Error::BadConfig("active party must hold labels".into()))?;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x4E4E);
        let bottoms: Vec<Vec<f64>> = shards
            .iter()
            .map(|s| {
                (0..s.num_features() * HIDDEN)
                    .map(|_| rng.gen_range(-0.1..0.1))
                    .collect()
            })
            .collect();
        let top: Vec<f64> = (0..=HIDDEN).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let bottom_opts = shards
            .iter()
            .map(|_| {
                let mut o = Adam::new(cfg.learning_rate);
                o.l2 = cfg.l2;
                o
            })
            .collect();
        let mut top_opt = Adam::new(cfg.learning_rate);
        top_opt.l2 = cfg.l2;
        let mut model = HeteroNn {
            dataset_name: dataset.name.clone(),
            shards,
            labels,
            bottoms,
            top,
            bottom_opts,
            top_opt,
            loss: f64::NAN,
        };
        model.loss = model.global_loss();
        Ok(model)
    }

    /// Partial pre-activations of one shard for a batch:
    /// `(batch × HIDDEN flattened, flops)`.
    fn partial_activations(&self, shard: usize, range: &std::ops::Range<usize>) -> (Vec<f64>, u64) {
        let s = &self.shards[shard];
        let w = &self.bottoms[shard];
        let mut out = vec![0.0; range.len() * HIDDEN];
        let mut flops = 0u64;
        for (j, i) in range.clone().enumerate() {
            let row = &s.rows[i];
            for (&fi, &v) in row.indices.iter().zip(&row.values) {
                let base = fi as usize * HIDDEN;
                for u in 0..HIDDEN {
                    out[j * HIDDEN + u] += v * w[base + u];
                }
            }
            flops += 2 * (row.nnz() * HIDDEN) as u64;
        }
        (out, flops)
    }

    /// Full forward pass for loss evaluation (no HE, no accounting).
    fn forward_all(&self) -> Vec<f64> {
        let n = self.labels.len();
        let range = 0..n;
        let mut z = vec![0.0; n * HIDDEN];
        for k in 0..self.shards.len() {
            let (zk, _) = self.partial_activations(k, &range);
            for (a, b) in z.iter_mut().zip(&zk) {
                *a += b;
            }
        }
        (0..n)
            .map(|j| {
                let mut acc = self.top[HIDDEN]; // bias
                for u in 0..HIDDEN {
                    acc += z[j * HIDDEN + u].tanh() * self.top[u];
                }
                sigmoid(acc)
            })
            .collect()
    }

    fn global_loss(&self) -> f64 {
        logloss(&self.forward_all(), &self.labels)
    }
}

impl FlModel for HeteroNn {
    fn name(&self) -> &'static str {
        "Hetero NN"
    }

    fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    fn loss(&self) -> f64 {
        self.loss
    }

    fn run_epoch(&mut self, env: &FlEnv, cfg: &TrainConfig, epoch: usize) -> Result<EpochResult> {
        let mut breakdown = EpochBreakdown::default();
        let n = self.labels.len();
        let p = self.shards.len();
        let bs = cfg.batch_size.max(1);

        for (round, start) in (0..n).step_by(bs).enumerate() {
            let range = start..(start + bs).min(n);
            let b = range.len();
            let seed = cfg.seed ^ ((epoch as u64) << 24) ^ ((round as u64) << 4);

            // (1) secure sum of partial pre-activations.
            let mut parts = Vec::with_capacity(p);
            let mut flops = 0u64;
            for k in 0..p {
                let (zk, f) = self.partial_activations(k, &range);
                parts.push(scale_down(&zk));
                flops += f;
            }
            env.charge_local_compute(flops / p as u64, cfg, &mut breakdown);
            let z = scale_up(&env.aggregation_round(&parts, seed, &mut breakdown)?);

            // (2) top model forward + output error (active party).
            let mut hidden = vec![0.0; b * HIDDEN];
            let mut delta = vec![0.0; b];
            for j in 0..b {
                let mut acc = self.top[HIDDEN];
                for u in 0..HIDDEN {
                    let t = z[j * HIDDEN + u].tanh();
                    hidden[j * HIDDEN + u] = t;
                    acc += t * self.top[u];
                }
                delta[j] = sigmoid(acc) - self.labels[range.start + j];
            }
            env.charge_local_compute((4 * b * HIDDEN) as u64, cfg, &mut breakdown);

            // Hidden-layer error δ_Z = δ · w_top ⊙ (1 − tanh²).
            let mut delta_z = vec![0.0; b * HIDDEN];
            for j in 0..b {
                for u in 0..HIDDEN {
                    let t = hidden[j * HIDDEN + u];
                    delta_z[j * HIDDEN + u] = delta[j] * self.top[u] * (1.0 - t * t);
                }
            }

            // (3) encrypted broadcast of δ_Z to the passive parties.
            let mut delta_z_rt = delta_z.clone();
            for k in 1..p {
                delta_z_rt = scale_up(&env.encrypted_exchange(
                    &scale_down(&delta_z),
                    seed ^ ((k as u64) << 16),
                    &mut breakdown,
                )?);
            }

            // (4) bottom updates (passive parties use the round-tripped
            // errors; the active party its exact ones) and top update.
            for k in 0..p {
                let dz = if k == 0 { &delta_z } else { &delta_z_rt };
                let s = &self.shards[k];
                let mut grad = vec![0.0; self.bottoms[k].len()];
                let mut flops = 0u64;
                for (j, i) in range.clone().enumerate() {
                    let row = &s.rows[i];
                    for (&fi, &v) in row.indices.iter().zip(&row.values) {
                        let base = fi as usize * HIDDEN;
                        for u in 0..HIDDEN {
                            grad[base + u] += v * dz[j * HIDDEN + u] / b as f64;
                        }
                    }
                    flops += 2 * (row.nnz() * HIDDEN) as u64;
                }
                env.charge_local_compute(flops / p as u64, cfg, &mut breakdown);
                self.bottom_opts[k].step(&mut self.bottoms[k], &grad);
            }

            let mut top_grad = vec![0.0; HIDDEN + 1];
            for j in 0..b {
                for u in 0..HIDDEN {
                    top_grad[u] += delta[j] * hidden[j * HIDDEN + u] / b as f64;
                }
                top_grad[HIDDEN] += delta[j] / b as f64;
            }
            self.top_opt.step(&mut self.top, &top_grad);
            env.charge_local_compute((2 * b * HIDDEN) as u64, cfg, &mut breakdown);
        }

        self.loss = self.global_loss();
        Ok(EpochResult {
            breakdown,
            loss: self.loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Accelerator, BackendKind};
    use crate::data::generators::DatasetSpec;
    use he::paillier::PaillierKeyPair;
    use rand::SeedableRng;

    fn env(kind: BackendKind) -> FlEnv {
        let mut rng = ChaCha8Rng::seed_from_u64(0x4E4E);
        let keys = PaillierKeyPair::generate(&mut rng, 128).unwrap();
        FlEnv::new(Accelerator::new(kind, keys, 2).unwrap(), 4)
    }

    fn small_dataset() -> Dataset {
        let mut spec = DatasetSpec::synthetic();
        spec.features = 16;
        spec.nnz_per_row = 16;
        spec.instances = 200;
        spec.generate(1.0)
    }

    #[test]
    fn loss_decreases() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 50,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroNn::new(&data, 2, &cfg).unwrap();
        let initial = model.loss();
        for e in 0..4 {
            model.run_epoch(&env, &cfg, e).unwrap();
        }
        assert!(
            model.loss() < initial - 0.01,
            "{} vs {initial}",
            model.loss()
        );
    }

    #[test]
    fn he_volume_is_two_batch_hidden_per_round() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 200,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroNn::new(&data, 2, &cfg).unwrap();
        let b = model.run_epoch(&env, &cfg, 0).unwrap().breakdown;
        // One round of 200 instances: activations (200·16) + errors (200·16).
        assert_eq!(b.he_values, 2 * 200 * HIDDEN as u64);
    }

    #[test]
    fn breakdown_components_present() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 64,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::Fate);
        let mut model = HeteroNn::new(&data, 2, &cfg).unwrap();
        let b = model.run_epoch(&env, &cfg, 0).unwrap().breakdown;
        assert!(b.he_seconds > 0.0 && b.comm_seconds > 0.0 && b.other_seconds > 0.0);
    }

    #[test]
    fn bottom_and_top_models_update() {
        let data = small_dataset();
        let cfg = TrainConfig {
            batch_size: 64,
            ..TrainConfig::default()
        };
        let env = env(BackendKind::FlBooster);
        let mut model = HeteroNn::new(&data, 2, &cfg).unwrap();
        let top_before = model.top.clone();
        let bottom_before = model.bottoms[1].clone();
        model.run_epoch(&env, &cfg, 0).unwrap();
        assert_ne!(model.top, top_before, "top model frozen");
        assert_ne!(model.bottoms[1], bottom_before, "passive bottom frozen");
    }
}
