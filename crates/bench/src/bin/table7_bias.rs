//! **Table VII**: convergence bias (paper Eq. 15) of FLBooster's
//! encoding-quantization at 1024-bit keys.
//!
//! The reference `L` is the model "trained without compression
//! techniques": FATE's float encoding keeps the full 52-bit mantissa, so
//! the reference run uses an `r = 52`-bit quantizer (error at the f64
//! epsilon); the FLBooster run uses the paper's 32-bit slots (`r = 30`
//! value bits at 4 participants). Bias = |L − L_FLBooster| / L.
//!
//! Paper claims to reproduce: bias well under 5% everywhere; LR models
//! lower than SBT/NN.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin table7_bias -- [--quick] [--epochs 4]
//! ```

use codec::QuantizerConfig;
use fl::metrics::convergence_bias;
use fl::train::{train, FlEnv};
use fl::{Accelerator, BackendKind};
use flbooster_bench::table::{pct, Table};
use flbooster_bench::{bench_dataset, harness_train_config, shared_keys, Args, PARTICIPANTS};

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let key_bits = args.get("key").and_then(|s| s.parse().ok()).unwrap_or(1024);
    let epochs: usize = args.get("epochs").and_then(|s| s.parse().ok()).unwrap_or(4);
    let mut cfg = harness_train_config();
    cfg.max_epochs = epochs;

    // Reference quantizer: full f64 mantissa (lossless encoding).
    let reference_q = QuantizerConfig {
        r_bits: 52,
        ..QuantizerConfig::paper_default(PARTICIPANTS)
    };

    println!(
        "Table VII — convergence bias (Eq. 15) @ {key_bits}-bit keys, {epochs} epochs ({preset:?} preset)\n"
    );
    let mut table = Table::new(["Model", "Dataset", "Ref loss", "FLBooster loss", "Bias"]);

    for model_kind in args.models() {
        for dataset_kind in args.datasets() {
            let keys = shared_keys(key_bits);
            let mut losses = Vec::new();
            for reference in [true, false] {
                let data = bench_dataset(dataset_kind, preset);
                let accel = if reference {
                    Accelerator::with_quantizer(
                        BackendKind::Fate,
                        keys.clone(),
                        PARTICIPANTS,
                        reference_q,
                    )
                    .expect("reference backend")
                } else {
                    Accelerator::new(BackendKind::FlBooster, keys.clone(), PARTICIPANTS)
                        .expect("flbooster backend")
                };
                let env = FlEnv::new(accel, cfg.seed);
                let mut model = model_kind
                    .build(&data, PARTICIPANTS, &cfg)
                    .expect("model build");
                let report = train(model.as_mut(), &env, &cfg).expect("training");
                losses.push(report.final_loss());
            }
            let bias = convergence_bias(losses[0], losses[1]);
            table.row([
                model_kind.name().to_string(),
                dataset_kind.name().to_string(),
                format!("{:.6}", losses[0]),
                format!("{:.6}", losses[1]),
                pct(bias),
            ]);
            eprintln!("  done {} / {}", model_kind.name(), dataset_kind.name());
        }
    }
    table.print();
    println!("\nPaper reference: 0.2%-3.3% bias; LR models lowest, SBT highest.");
}
