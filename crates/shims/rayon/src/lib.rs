//! Offline stand-in for `rayon` — now a real parallel runtime.
//!
//! Earlier revisions of this shim degraded every `par_iter()` to the
//! sequential iterator. That made the GPU simulator's "kernel launches"
//! run on one host thread, so every wall-clock number in the bench
//! harness measured serial execution. This crate now implements the
//! subset of rayon the workspace uses on top of a dependency-free
//! work-stealing pool:
//!
//! - [`prelude`]: `par_iter` / `par_iter_mut` / `into_par_iter` with
//!   `map`, `enumerate`, `zip`, `fold`/`reduce`, `sum`, `for_each`, and
//!   order-preserving `collect` (including `collect::<Result<Vec<_>, E>>`
//!   with deterministic earliest-error selection).
//! - [`ThreadPoolBuilder`] / [`ThreadPool::install`] for explicit thread
//!   counts, plus a global default sized from `RAYON_NUM_THREADS` or
//!   `std::thread::available_parallelism()`.
//! - Work stealing: per-worker deques seeded with contiguous chunk
//!   spans; idle workers steal from the back of a victim's deque, so
//!   skewed item costs (e.g. `fold_groups` over uneven histogram
//!   buckets) rebalance automatically. See [`pool`] for the execution
//!   model and panic semantics.
//!
//! Determinism contract: item values, collect order, and zip alignment
//! are identical at every thread count (including 1); only wall-clock
//! changes. A panic in one item cancels the remaining work, is re-raised
//! on the caller, and leaves the pool reusable.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    //! The conversion traits, mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn env_override_is_respected_or_default_positive() {
        // The global default is computed once per process; whatever it
        // resolved to must be a positive worker count.
        assert!(crate::current_num_threads() >= 1);
    }
}
