//! Unit-flow (dimensional) analysis over the charging and
//! time-accounting layers.
//!
//! FLBooster's claimed speedups are only as trustworthy as its cost
//! accounting, and that accounting mixes four physical dimensions —
//! simulated seconds, wire bytes, limb-multiply counts, and message
//! counts — across `fl::net`, `fl::engine`, the model trainers, and
//! gpu-sim, with nothing but naming conventions keeping a bytes value
//! out of a seconds accumulator. This pass makes the conventions
//! checkable:
//!
//! - Every fn parameter and return value is assigned a unit from the
//!   lattice `{seconds, bytes, limb_mults, messages, dimensionless}`,
//!   first by explicit `// flcheck: unit(name, dim)` directives, then by
//!   inference from the workspace naming conventions (`*_seconds`,
//!   `*_bytes`, `*_ops` / `*_mac_count`, `*_messages`). `dimensionless`
//!   is the explicit opt-out: a declared-neutral value never conflicts.
//! - Units propagate interprocedurally over the call graph: a caller
//!   param with no unit of its own that is passed verbatim into a
//!   unit-carrying callee param inherits that unit (fill-only — a
//!   directive or name inference is never overwritten), with the
//!   teaching callee recorded so findings can show the chain.
//! - A fn marked `// flcheck: convert(from->to)` is a sanctioned
//!   dimension crossing (e.g. the `fl::net` transfer-time estimator
//!   converting bytes to seconds); its return value carries the target
//!   unit.
//!
//! Three rules consume the table:
//!
//! - **unit-mismatch** — two different known units meet in one additive
//!   expression, comparison, assignment, or accumulation
//!   (`total_seconds += payload_bytes`).
//! - **unit-unconverted** — a call argument's unit differs from the
//!   callee parameter's unit: the value crosses dimensions without
//!   passing through a declared `convert(..)` fn. The finding carries
//!   the propagation chain when the parameter's unit was inherited.
//! - **charge-unphased** — a `charge-sink` fn reachable from
//!   `fl::engine` round execution takes a seconds-united amount but
//!   never lands it in exactly one `EpochBreakdown` phase slot: zero
//!   slots is silently unattributed time, two or more is
//!   double-charging. A sink is phased when it takes a `phase`
//!   parameter (the slot is the caller's choice) or when it (or a
//!   transitive callee) writes exactly one distinct
//!   `phases.*_seconds` slot.
//!
//! **Soundness boundary** (where the pass stays silent rather than
//! guessing): multiplication/division/modulo legitimately change
//! dimension, so any multiplicative expression with two or more factors
//! is unit-unknown — `bytes as f64 / bandwidth_bytes_per_sec` never
//! fires. Identifiers outside the naming conventions, tuple fields,
//! struct literals, control-flow expressions (`if`/`match`), closures,
//! and macro bodies are likewise unknown. Mismatches need *two known*
//! units, so unknowns silence a site rather than flagging it.

use crate::callgraph::{hop, path_to, CallGraph, NodeId};
use crate::lexer::{TokKind, Token};
use crate::parse::{FnItem, ParsedFile};
use crate::report::Finding;
use crate::rules::debug_assert_span;
use crate::source::match_brace;
use std::collections::{BTreeMap, BTreeSet};

/// The unit lattice. `Dimensionless` is the declared opt-out: it is
/// compatible with everything and never participates in a mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Simulated wall-clock seconds.
    Seconds,
    /// Wire/payload byte counts.
    Bytes,
    /// Limb-multiply (MAC) operation counts.
    LimbMults,
    /// Network message counts.
    Messages,
    /// Explicitly unitless (ratios, ids, flags).
    Dimensionless,
}

impl Unit {
    /// The directive spelling of this unit.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Seconds => "seconds",
            Unit::Bytes => "bytes",
            Unit::LimbMults => "limb_mults",
            Unit::Messages => "messages",
            Unit::Dimensionless => "dimensionless",
        }
    }

    /// Parses a directive dimension name.
    pub fn from_dim(s: &str) -> Option<Unit> {
        match s {
            "seconds" => Some(Unit::Seconds),
            "bytes" => Some(Unit::Bytes),
            "limb_mults" => Some(Unit::LimbMults),
            "messages" => Some(Unit::Messages),
            "dimensionless" => Some(Unit::Dimensionless),
            _ => None,
        }
    }
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifiers whose `_bytes` suffix is a std byte-*array* idiom, not a
/// byte count.
const BYTE_ARRAY_IDIOMS: &[&str] = &[
    "to_le_bytes",
    "to_be_bytes",
    "to_ne_bytes",
    "from_le_bytes",
    "from_be_bytes",
    "from_ne_bytes",
    "as_bytes",
    "into_bytes",
];

/// Infers a unit from an identifier by the workspace naming
/// conventions. Returns `None` (unknown — silent) outside them.
pub fn infer_name(name: &str) -> Option<Unit> {
    if BYTE_ARRAY_IDIOMS.contains(&name) {
        return None;
    }
    if name == "seconds" || name.ends_with("_seconds") {
        Some(Unit::Seconds)
    } else if name == "bytes" || name.ends_with("_bytes") {
        Some(Unit::Bytes)
    } else if name == "ops"
        || name.ends_with("_ops")
        || name == "mac_count"
        || name.ends_with("_mac_count")
        || name == "limb_mults"
        || name.ends_with("_mults")
    {
        Some(Unit::LimbMults)
    } else if name == "messages" || name.ends_with("_messages") {
        Some(Unit::Messages)
    } else {
        None
    }
}

/// An explicit `unit(name, dim)` directive on `f`, if any.
fn directive_unit(f: &FnItem, name: &str) -> Option<Unit> {
    f.units
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, d)| Unit::from_dim(d))
}

/// Per-fn unit table: one slot per parameter (positionally aligned with
/// [`FnItem::params`], `self` included) plus the return unit.
#[derive(Debug, Clone)]
pub struct FnUnits {
    /// Parameter units (directive wins over inference; `None` unknown).
    pub params: Vec<Option<Unit>>,
    /// For a *propagated* param unit, the callee that taught it.
    pub prov: Vec<Option<NodeId>>,
    /// Return unit: `unit(return, dim)` directive, else the target of a
    /// `convert(..)` declaration, else inference from the fn name.
    pub ret: Option<Unit>,
}

/// Seeds the unit table from directives and name inference, before
/// propagation.
fn seed_units(files: &[ParsedFile]) -> Vec<Vec<FnUnits>> {
    files
        .iter()
        .map(|pf| {
            pf.fns
                .iter()
                .map(|f| {
                    let params: Vec<Option<Unit>> = f
                        .params
                        .iter()
                        .map(|p| directive_unit(f, p).or_else(|| infer_name(p)))
                        .collect();
                    let prov = vec![None; params.len()];
                    let ret = directive_unit(f, "return")
                        .or_else(|| f.converts.first().and_then(|(_, to)| Unit::from_dim(to)))
                        .or_else(|| infer_name(&f.name));
                    FnUnits { params, prov, ret }
                })
                .collect()
        })
        .collect()
}

/// The single unambiguous callee of call `ci` in `n`, if resolution
/// produced exactly one candidate. Ambiguous names are skipped: guessing
/// a unit from the wrong overload would poison the table.
fn sole_target(graph: &CallGraph, n: NodeId, ci: usize) -> Option<NodeId> {
    let mut it = graph.out(n).iter().filter(|e| e.call == ci);
    match (it.next(), it.next()) {
        (Some(e), None) => Some(e.to),
        _ => None,
    }
}

/// A bare identifier argument (`x`, `&x`, `&mut x`, `*x`), if the token
/// span is nothing more.
fn bare_ident(toks: &[Token]) -> Option<&str> {
    let mut i = 0;
    while i < toks.len() && (toks[i].is_op("&") || toks[i].is_op("*") || toks[i].is_ident("mut")) {
        i += 1;
    }
    if i + 1 == toks.len() && toks[i].kind == TokKind::Ident {
        Some(&toks[i].text)
    } else {
        None
    }
}

/// Arg index → param index: method-style calls skip the `self` slot.
fn param_offset(call_is_method: bool) -> usize {
    usize::from(call_is_method)
}

/// Fill-only interprocedural propagation: a caller param with no unit
/// that is passed verbatim to a unit-carrying callee param inherits that
/// unit. Monotone (slots only go `None` → `Some`), so the fixpoint
/// terminates; iteration order never affects the result because filled
/// slots are never rewritten.
fn propagate(files: &[ParsedFile], graph: &CallGraph, units: &mut [Vec<FnUnits>]) {
    loop {
        let mut changed = false;
        for (fi, pf) in files.iter().enumerate() {
            for (gi, f) in pf.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                for (ci, call) in f.calls.iter().enumerate() {
                    let Some(to) = sole_target(graph, (fi, gi), ci) else {
                        continue;
                    };
                    let off = param_offset(call.is_method);
                    for (j, &(s, e)) in call.args.iter().enumerate() {
                        let pu = units[to.0][to.1].params.get(j + off).copied().flatten();
                        let Some(pu) = pu else { continue };
                        if pu == Unit::Dimensionless {
                            continue;
                        }
                        let Some(name) = bare_ident(&pf.src.tokens[s..e]) else {
                            continue;
                        };
                        let Some(pi) = f.params.iter().position(|p| p == name) else {
                            continue;
                        };
                        if units[fi][gi].params[pi].is_none() {
                            units[fi][gi].params[pi] = Some(pu);
                            units[fi][gi].prov[pi] = Some(to);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// A known, conflict-relevant unit (`Dimensionless` is neutral).
fn strict(u: Option<Unit>) -> Option<Unit> {
    u.filter(|u| *u != Unit::Dimensionless)
}

/// Expression evaluation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Unparseable construct — abandon the enclosing expression.
    Bail,
    /// No unit information (silent).
    Unknown,
    /// Literal / unit-agnostic constant: compatible with anything.
    Neutral,
    /// A known unit.
    Known(Unit),
}

/// Keywords that start constructs the expression grammar does not model.
const BAIL_KEYWORDS: &[&str] = &[
    "if", "match", "loop", "while", "for", "return", "move", "unsafe", "break", "continue", "else",
    "let", "async", "await", "dyn", "impl", "fn",
];

/// Expression evaluator over one fn's token stream. Collects
/// `unit-mismatch` conflicts as it walks additive expressions.
struct ExprCx<'a> {
    files: &'a [ParsedFile],
    units: &'a [Vec<FnUnits>],
    /// The fn being scanned.
    node: NodeId,
    /// Call-site callee ident index → sole resolved target.
    targets: BTreeMap<usize, NodeId>,
    /// `(line, message)` unit-mismatch conflicts found while walking.
    conflicts: Vec<(u32, String)>,
}

impl<'a> ExprCx<'a> {
    fn toks(&self) -> &'a [Token] {
        &self.files[self.node.0].src.tokens
    }

    fn f(&self) -> &'a FnItem {
        &self.files[self.node.0].fns[self.node.1]
    }

    /// Renders a token span for messages (truncated join).
    fn text(&self, s: usize, e: usize) -> String {
        let mut parts: Vec<&str> = self.toks()[s..e].iter().map(|t| t.text.as_str()).collect();
        if parts.len() > 8 {
            parts.truncate(8);
            parts.push("..");
        }
        parts.join(" ")
    }

    /// The unit of a single identifier in this fn's scope: a parameter's
    /// table entry when it is one, else name inference.
    fn ident_unit(&self, name: &str, single_bare: bool) -> Option<Unit> {
        if single_bare {
            if let Some(pi) = self.f().params.iter().position(|p| p == name) {
                return strict(self.units[self.node.0][self.node.1].params[pi]);
            }
        }
        strict(infer_name(name))
    }

    /// The return unit of the call whose callee ident sits at `name_idx`.
    /// Falls back to name inference when resolution is ambiguous or
    /// out-of-workspace (`.bytes()` stays bytes either way).
    fn call_ret_unit(&self, name_idx: usize) -> Option<Unit> {
        if let Some(&to) = self.targets.get(&name_idx) {
            return strict(self.units[to.0][to.1].ret);
        }
        strict(infer_name(&self.toks()[name_idx].text))
    }

    /// Additive expression: `mul (('+'|'-') mul)*`. Two different known
    /// units meeting here is a `unit-mismatch`. The result unit is the
    /// single known unit when the addends agree (literals are neutral),
    /// else unknown.
    fn eval_add(&mut self, i: &mut usize, end: usize) -> Ev {
        let mut acc: Option<(Unit, (usize, usize))> = None;
        let mut any_unknown = false;
        loop {
            let start = *i;
            let term = self.eval_mul(i, end);
            let span = (start, *i);
            match term {
                Ev::Bail => return Ev::Bail,
                Ev::Unknown => any_unknown = true,
                Ev::Neutral => {}
                Ev::Known(u) => match acc {
                    None => acc = Some((u, span)),
                    Some((au, aspan)) if au != u => {
                        let line = self.toks()[span.0].line;
                        self.conflicts.push((
                            line,
                            format!(
                                "adds `{}` ({au}) and `{}` ({u}): incompatible units",
                                self.text(aspan.0, aspan.1),
                                self.text(span.0, span.1),
                            ),
                        ));
                        any_unknown = true;
                    }
                    Some(_) => {}
                },
            }
            if *i < end && (self.toks()[*i].is_op("+") || self.toks()[*i].is_op("-")) {
                *i += 1;
            } else {
                break;
            }
        }
        match acc {
            Some((u, _)) if !any_unknown => Ev::Known(u),
            Some(_) => Ev::Unknown,
            None if any_unknown => Ev::Unknown,
            None => Ev::Neutral,
        }
    }

    /// Multiplicative expression. Two or more factors change dimension,
    /// so the result is unknown (the soundness boundary): the pass never
    /// guesses what `bytes / bandwidth` means.
    fn eval_mul(&mut self, i: &mut usize, end: usize) -> Ev {
        let first = self.eval_term(i, end);
        if first == Ev::Bail {
            return Ev::Bail;
        }
        let mut factors = 1;
        while *i < end
            && (self.toks()[*i].is_op("*")
                || self.toks()[*i].is_op("/")
                || self.toks()[*i].is_op("%"))
        {
            *i += 1;
            if self.eval_term(i, end) == Ev::Bail {
                return Ev::Bail;
            }
            factors += 1;
        }
        if factors > 1 {
            Ev::Unknown
        } else {
            first
        }
    }

    /// One operand: literal, parenthesized expression, or an
    /// ident/field/call chain, with `as`-cast and `?` postfixes.
    fn eval_term(&mut self, i: &mut usize, end: usize) -> Ev {
        let toks = self.toks();
        // Prefix operators that preserve units.
        while *i < end
            && (toks[*i].is_op("&")
                || toks[*i].is_op("*")
                || toks[*i].is_op("-")
                || toks[*i].is_op("!")
                || toks[*i].is_ident("mut"))
        {
            *i += 1;
        }
        if *i >= end {
            return Ev::Bail;
        }
        let t = &toks[*i];
        let mut result = match t.kind {
            TokKind::Num | TokKind::Lit => {
                *i += 1;
                Ev::Neutral
            }
            TokKind::Open if t.text == "(" => {
                let close = match_brace(toks, *i); // one past `)`
                let inner_end = close.saturating_sub(1).max(*i + 1);
                let mut depth = 0i32;
                let tuple = toks[*i + 1..inner_end].iter().any(|t| {
                    match t.kind {
                        TokKind::Open => depth += 1,
                        TokKind::Close => depth -= 1,
                        _ => {}
                    }
                    depth == 0 && t.is_op(",")
                });
                let unit = if tuple {
                    Ev::Unknown
                } else {
                    let mut k = *i + 1;
                    match self.eval_add(&mut k, inner_end) {
                        Ev::Known(u) if k == inner_end => Ev::Known(u),
                        Ev::Neutral if k == inner_end => Ev::Neutral,
                        _ => Ev::Unknown,
                    }
                };
                *i = close;
                // A postfix chain on a group (`(a + b).sqrt()`) is not
                // modeled: the method may change dimension.
                if *i < end && (self.toks()[*i].is_op(".") || self.toks()[*i].is_op("?")) {
                    return Ev::Unknown;
                }
                unit
            }
            TokKind::Open => {
                // `[..]` array literal or block start: not modeled.
                *i = match_brace(toks, *i);
                Ev::Unknown
            }
            TokKind::Ident if BAIL_KEYWORDS.contains(&t.text.as_str()) => {
                return Ev::Bail;
            }
            TokKind::Ident => self.eval_chain(i, end),
            _ => return Ev::Bail,
        };
        // `as`-casts re-type but never re-unit.
        while *i < end && self.toks()[*i].is_ident("as") && *i + 1 < end {
            *i += 1;
            if self.toks()[*i].kind == TokKind::Ident {
                *i += 1;
                while *i + 1 < end
                    && self.toks()[*i].is_op("::")
                    && self.toks()[*i + 1].kind == TokKind::Ident
                {
                    *i += 2;
                }
            } else {
                result = Ev::Unknown;
                break;
            }
        }
        result
    }

    /// An ident / field-access / call chain:
    /// `a`, `a.b`, `a::b`, `a.b(..).c`, `a[i].b`, with `?` links. The
    /// unit is the last element's: a call's return unit, a lone
    /// parameter's table entry, or name inference on the final field.
    fn eval_chain(&mut self, i: &mut usize, end: usize) -> Ev {
        let toks = self.toks();
        let chain_start = *i;
        let mut last_ident = *i; // index of most recent ident
        let mut last_is_call = false;
        let mut call_unit: Option<Unit> = None;
        let mut unknown_tail = false; // tuple index etc.
        *i += 1;
        while *i < end {
            let t = &toks[*i];
            if (t.is_op(".") || t.is_op("::")) && *i + 1 < end {
                match toks[*i + 1].kind {
                    TokKind::Ident => {
                        last_ident = *i + 1;
                        last_is_call = false;
                        unknown_tail = false;
                        *i += 2;
                    }
                    TokKind::Num if t.is_op(".") => {
                        // Tuple field: positional, no name to infer from.
                        unknown_tail = true;
                        last_is_call = false;
                        *i += 2;
                    }
                    _ => break,
                }
            } else if t.kind == TokKind::Open && t.text == "(" {
                // Call: the chain's unit becomes the return unit.
                call_unit = self.call_ret_unit(last_ident);
                last_is_call = true;
                *i = match_brace(toks, *i);
            } else if t.kind == TokKind::Open && t.text == "[" {
                // Indexing keeps the container's element naming.
                *i = match_brace(toks, *i);
            } else if t.is_op("?") {
                *i += 1;
            } else if t.is_op("!") {
                // Macro invocation: contents are not modeled.
                *i += 1;
                if *i < end && self.toks()[*i].kind == TokKind::Open {
                    *i = match_brace(self.toks(), *i);
                }
                return Ev::Unknown;
            } else {
                break;
            }
        }
        if last_is_call {
            return match call_unit {
                Some(u) => Ev::Known(u),
                None => Ev::Unknown,
            };
        }
        if unknown_tail {
            return Ev::Unknown;
        }
        let name = &self.toks()[last_ident].text;
        let single_bare = chain_start == last_ident && *i == last_ident + 1;
        match self.ident_unit(name, single_bare) {
            Some(u) => Ev::Known(u),
            None => Ev::Unknown,
        }
    }
}

/// Tokens at which an additive expression may legitimately stop (`{`
/// ends an `if`/`while` condition); a `Known` result followed by
/// anything else is downgraded to unknown (unmodeled syntax — e.g. a
/// `>` turning the span into a comparison).
fn safe_stop(toks: &[Token], i: usize, end: usize) -> bool {
    if i >= end {
        return true;
    }
    let t = &toks[i];
    matches!(
        t.text.as_str(),
        ";" | "," | ")" | "]" | "}" | "{" | "&&" | "||"
    ) && matches!(t.kind, TokKind::Op | TokKind::Close | TokKind::Open)
}

/// [`ExprCx::eval_add`] with the [`safe_stop`] downgrade applied.
fn eval_span(cx: &mut ExprCx<'_>, s: usize, e: usize) -> Ev {
    let mut i = s;
    let ev = cx.eval_add(&mut i, e);
    match ev {
        Ev::Known(_) | Ev::Neutral if !safe_stop(cx.toks(), i, e) => Ev::Unknown,
        ev => ev,
    }
}

/// Walks an lvalue / comparison-operand chain *backward* from `op`
/// (exclusive): `nodes[k].busy_until`, `self.stats.bytes`, `total`.
/// Returns `(unit, rendered chain)` when the final element carries one.
fn lhs_chain(cx: &ExprCx<'_>, lo: usize, op: usize) -> Option<(Unit, String)> {
    let toks = cx.toks();
    let mut j = op; // exclusive end of the remaining walk
    let mut last: Option<usize> = None;
    while j > lo {
        let t = &toks[j - 1];
        if t.kind == TokKind::Close && t.text == "]" {
            // Skip the index group backward.
            let mut depth = 1i32;
            let mut k = j - 1;
            while k > lo && depth > 0 {
                k -= 1;
                match toks[k].kind {
                    TokKind::Close => depth += 1,
                    TokKind::Open => depth -= 1,
                    _ => {}
                }
            }
            if depth != 0 {
                return None;
            }
            j = k;
        } else if t.kind == TokKind::Ident {
            if BAIL_KEYWORDS.contains(&t.text.as_str()) {
                break;
            }
            if last.is_none() {
                last = Some(j - 1);
            }
            j -= 1;
            if j > lo && (toks[j - 1].is_op(".") || toks[j - 1].is_op("::")) {
                j -= 1;
            } else {
                break;
            }
        } else if t.kind == TokKind::Num && last.is_none() {
            // `x.0` tuple target: positional, no unit.
            return None;
        } else {
            break;
        }
    }
    let li = last?;
    let name = &toks[li].text;
    let single_bare = j == li && op == li + 1;
    let unit = cx.ident_unit(name, single_bare)?;
    Some((unit, cx.text(j, op)))
}

/// Scans forward from `i` to the end of the statement (`;` at depth 0,
/// or a closing/opening brace), bounded by `end`.
fn stmt_end(toks: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = i;
    while k < end {
        let t = &toks[k];
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            TokKind::Op if depth == 0 && t.text == ";" => return k,
            _ => {}
        }
        k += 1;
    }
    end
}

/// Comparison operators checked for cross-unit operands. `<` and `>`
/// also appear as generic brackets; those sides never both carry known
/// units, so the both-known requirement keeps them silent.
const CMP_OPS: &[&str] = &["<", "<=", ">", ">=", "==", "!="];

/// Runs the `unit-mismatch` and `unit-unconverted` rules over one fn.
fn scan_fn(
    files: &[ParsedFile],
    graph: &CallGraph,
    units: &[Vec<FnUnits>],
    node: NodeId,
    out: &mut Vec<Finding>,
) {
    let pf = &files[node.0];
    let f = &pf.fns[node.1];
    let mut targets = BTreeMap::new();
    for (ci, call) in f.calls.iter().enumerate() {
        if let Some(to) = sole_target(graph, node, ci) {
            targets.insert(call.name_idx, to);
        }
    }
    let mut cx = ExprCx {
        files,
        units,
        node,
        targets,
        conflicts: Vec::new(),
    };

    // Statement walk: compound assignments, plain assignments, and
    // comparisons. Nested fns and debug_assert bodies are skipped (the
    // former are scanned as their own items, the latter are test-only
    // arithmetic by definition).
    let toks = &pf.src.tokens;
    let mut i = f.body_start;
    while i < f.body_end {
        if let Some(&(_, ne)) = f.nested.iter().find(|&&(ns, ne)| ns <= i && i < ne) {
            i = ne;
            continue;
        }
        if let Some(skip) = debug_assert_span(toks, i) {
            i = skip;
            continue;
        }
        let t = &toks[i];
        // `return expr;` — evaluate the expression for internal mixed
        // additions (the evaluator records conflicts as a side effect).
        // `i` still advances by one so a comparison inside the return
        // value gets its own check below.
        if t.kind == TokKind::Ident && t.text == "return" {
            let se = stmt_end(toks, i + 1, f.body_end);
            let _ = eval_span(&mut cx, i + 1, se);
            i += 1;
            continue;
        }
        if t.kind == TokKind::Op && (t.text == "+=" || t.text == "-=" || t.text == "=") {
            let se = stmt_end(toks, i + 1, f.body_end);
            let rhs = eval_span(&mut cx, i + 1, se);
            if let Some((lu, ltext)) = lhs_chain(&cx, f.body_start, i) {
                if let Ev::Known(ru) = rhs {
                    if ru != lu {
                        let verb = if t.text == "=" {
                            "assigns"
                        } else {
                            "accumulates"
                        };
                        cx.conflicts.push((
                            t.line,
                            format!(
                                "{verb} a {ru} value into `{ltext}` ({lu}): incompatible units"
                            ),
                        ));
                    }
                }
            }
            i = se;
            continue;
        }
        if t.kind == TokKind::Op && CMP_OPS.contains(&t.text.as_str()) {
            if let Some((lu, ltext)) = lhs_chain(&cx, f.body_start, i) {
                let se = stmt_end(toks, i + 1, f.body_end);
                if let Ev::Known(ru) = eval_span(&mut cx, i + 1, se) {
                    if ru != lu {
                        cx.conflicts.push((
                            t.line,
                            format!(
                                "compares `{ltext}` ({lu}) with a {ru} value: incompatible units"
                            ),
                        ));
                    }
                }
            }
            i += 1;
            continue;
        }
        i += 1;
    }

    // Call-argument units vs callee parameter units (`unit-unconverted`).
    let mut unconverted: Vec<Finding> = Vec::new();
    for (ci, call) in f.calls.iter().enumerate() {
        let Some(to) = sole_target(graph, node, ci) else {
            continue;
        };
        let callee = &files[to.0].fns[to.1];
        let off = param_offset(call.is_method);
        for (j, &(s, e)) in call.args.iter().enumerate() {
            let au = eval_span(&mut cx, s, e);
            let pj = j + off;
            let Some(pu) = strict(units[to.0][to.1].params.get(pj).copied().flatten()) else {
                continue;
            };
            let Ev::Known(au) = au else { continue };
            if au == pu {
                continue;
            }
            let line = toks.get(s).map_or(call.line, |t| t.line);
            if pf.src.is_allowed("unit-unconverted", line) {
                continue;
            }
            let mut msg = format!(
                "passes `{}` ({au}) to parameter `{}` ({pu}) of `{}` without a convert({au}->{pu}) conversion",
                cx.text(s, e),
                callee.params.get(pj).map_or("?", |p| p.as_str()),
                callee.name,
            );
            if let Some(conv) = find_converter(files, au, pu) {
                msg.push_str(&format!(" — route it through `{conv}`"));
            }
            // Chain: the call edge, extended through propagation
            // provenance when the parameter's unit was inherited.
            let mut chain = vec![hop(files, node), hop(files, to)];
            let mut cur = to;
            let mut pcur = pj;
            let mut seen = BTreeSet::from([cur]);
            while let Some(next) = units[cur.0][cur.1].prov[pcur] {
                if !seen.insert(next) {
                    break;
                }
                chain.push(hop(files, next));
                // The inherited unit fills some param of `next`; find a
                // slot declaring it natively or keep following.
                let nu = &units[next.0][next.1];
                match nu.params.iter().position(|p| *p == Some(pu)) {
                    Some(np) => {
                        cur = next;
                        pcur = np;
                    }
                    None => break,
                }
            }
            unconverted.push(Finding::with_chain(
                "unit-unconverted",
                &pf.src.rel_path,
                line,
                msg,
                chain,
            ));
        }
    }

    for (line, msg) in std::mem::take(&mut cx.conflicts) {
        if !pf.src.is_allowed("unit-mismatch", line) {
            out.push(Finding::new("unit-mismatch", &pf.src.rel_path, line, msg));
        }
    }
    out.extend(unconverted);
}

/// The first fn (in file/fn order) declaring `convert(from->to)`.
fn find_converter(files: &[ParsedFile], from: Unit, to: Unit) -> Option<String> {
    for pf in files {
        for f in &pf.fns {
            if f.converts
                .iter()
                .any(|(a, b)| a == from.name() && b == to.name())
            {
                return Some(f.name.clone());
            }
        }
    }
    None
}

/// Runs the `unit-mismatch` and `unit-unconverted` rules.
pub fn check_units(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut units = seed_units(files);
    propagate(files, graph, &mut units);
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            scan_fn(files, graph, &units, (fi, gi), out);
        }
    }
}

/// The six `EpochBreakdown` phase slots (all simulated seconds).
const PHASE_SLOTS: &[&str] = &[
    "compute_seconds",
    "encrypt_seconds",
    "uplink_seconds",
    "aggregate_seconds",
    "downlink_seconds",
    "decrypt_seconds",
];

/// Forward closure over call edges (seeds included), skipping test fns.
fn forward_reach(
    files: &[ParsedFile],
    graph: &CallGraph,
    seed: &BTreeSet<NodeId>,
) -> BTreeSet<NodeId> {
    let mut set = seed.clone();
    loop {
        let mut grow: BTreeSet<NodeId> = BTreeSet::new();
        for &n in &set {
            for e in graph.out(n) {
                if !set.contains(&e.to) && !files[e.to.0].fns[e.to.1].in_test {
                    grow.insert(e.to);
                }
            }
        }
        if grow.is_empty() {
            return set;
        }
        set.extend(grow);
    }
}

/// Distinct `phases.*_seconds` slots written (`+=` or `=`) by fn `n`.
fn slot_writes(files: &[ParsedFile], n: NodeId) -> BTreeSet<&'static str> {
    let pf = &files[n.0];
    let f = &pf.fns[n.1];
    let toks = &pf.src.tokens;
    let mut slots = BTreeSet::new();
    let mut i = f.body_start;
    while i < f.body_end {
        if let Some(&(_, ne)) = f.nested.iter().find(|&&(ns, ne)| ns <= i && i < ne) {
            i = ne;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Op && (t.text == "+=" || t.text == "=") {
            // Chain walk-back: does the lvalue end in a phase slot under
            // a `phases` field?
            let mut j = i;
            let mut names: Vec<&str> = Vec::new();
            while j > f.body_start {
                let p = &toks[j - 1];
                if p.kind == TokKind::Ident {
                    names.push(p.text.as_str());
                    j -= 1;
                    if j > f.body_start && (toks[j - 1].is_op(".") || toks[j - 1].is_op("::")) {
                        j -= 1;
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            if let (Some(first), true) = (names.first(), names.contains(&"phases")) {
                if let Some(slot) = PHASE_SLOTS.iter().find(|s| *s == first) {
                    slots.insert(*slot);
                }
            }
        }
        i += 1;
    }
    slots
}

/// Runs the `charge-unphased` rule: every charge-sink reachable from
/// `fl::engine` round execution that takes a seconds amount must be
/// *phased* — a `phase` parameter, or exactly one distinct
/// `phases.*_seconds` slot written by the sink or its callees. Sinks
/// whose parameters carry no seconds unit (byte/ciphertext meters,
/// timing-struct ingestion) are exempt: they do not attribute time.
/// Parameter units here are directive/name-seeded only — propagation
/// would let an unannotated helper chain mask a sink's own contract.
pub fn check_charge_phase(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut anchors: BTreeSet<NodeId> = BTreeSet::new();
    for (fi, pf) in files.iter().enumerate() {
        if !pf.src.rel_path.ends_with("fl/src/engine.rs") {
            continue;
        }
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.name == "run_round" && !f.in_test {
                anchors.insert((fi, gi));
            }
        }
    }
    if anchors.is_empty() {
        return;
    }
    let units = seed_units(files);
    let reach = forward_reach(files, graph, &anchors);
    for &n in &reach {
        let pf = &files[n.0];
        let f = &pf.fns[n.1];
        if !f.is_charge_sink || f.in_test {
            continue;
        }
        let takes_seconds = units[n.0][n.1]
            .params
            .iter()
            .any(|u| strict(*u) == Some(Unit::Seconds));
        if !takes_seconds {
            continue;
        }
        if f.params.iter().any(|p| p == "phase") {
            continue;
        }
        let mut slots: BTreeSet<&'static str> = BTreeSet::new();
        for &m in &forward_reach(files, graph, &BTreeSet::from([n])) {
            slots.extend(slot_writes(files, m));
        }
        if slots.len() == 1 {
            continue;
        }
        if pf.src.is_allowed("charge-unphased", f.line) {
            continue;
        }
        let msg = if slots.is_empty() {
            format!(
                "charge-sink `{}` is reachable from round execution but its seconds never land in an `EpochBreakdown` phase slot (silently unattributed time)",
                f.name
            )
        } else {
            format!(
                "charge-sink `{}` is reachable from round execution and lands its seconds in {} phase slots ({}): double-charged time",
                f.name,
                slots.len(),
                slots.iter().copied().collect::<Vec<_>>().join(", "),
            )
        };
        let chain = anchors
            .iter()
            .find_map(|&a| path_to(graph, a, |x| x == n))
            .map(|nodes| nodes.iter().map(|&x| hop(files, x)).collect())
            .unwrap_or_default();
        out.push(Finding::with_chain(
            "charge-unphased",
            &pf.src.rel_path,
            f.line,
            msg,
            chain,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        check_units(&parsed, &graph, &mut out);
        check_charge_phase(&parsed, &graph, &mut out);
        out
    }

    fn rules_lines(out: &[Finding]) -> Vec<(String, u32)> {
        out.iter().map(|f| (f.rule.clone(), f.line)).collect()
    }

    #[test]
    fn name_inference_follows_the_conventions() {
        assert_eq!(infer_name("total_seconds"), Some(Unit::Seconds));
        assert_eq!(infer_name("bytes"), Some(Unit::Bytes));
        assert_eq!(infer_name("mont_mul_mac_count"), Some(Unit::LimbMults));
        assert_eq!(infer_name("thread_ops"), Some(Unit::LimbMults));
        assert_eq!(infer_name("messages"), Some(Unit::Messages));
        // `flops` is floating-point ops, not `_ops`; and std byte-array
        // idioms are arrays, not counts.
        assert_eq!(infer_name("flops"), None);
        assert_eq!(infer_name("to_le_bytes"), None);
        assert_eq!(infer_name("busy_until"), None);
    }

    #[test]
    fn accumulating_bytes_into_seconds_is_flagged() {
        let out = run(&[(
            "src/a.rs",
            "fn f(payload_bytes: u64) {\n    let mut total_seconds = 0.0;\n    total_seconds += payload_bytes as f64;\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-mismatch".to_string(), 3)]);
        assert!(out[0].message.contains("accumulates a bytes value"));
    }

    #[test]
    fn adding_mixed_units_in_one_expression_is_flagged() {
        let out = run(&[(
            "src/a.rs",
            "fn f(a_seconds: f64, b_bytes: f64) -> f64 {\n    let x = a_seconds + b_bytes;\n    x\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-mismatch".to_string(), 2)]);
    }

    #[test]
    fn adding_mixed_units_in_a_return_expression_is_flagged() {
        let out = run(&[(
            "src/a.rs",
            "fn f(a_seconds: f64, b_bytes: f64) -> f64 {\n    return a_seconds + b_bytes;\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-mismatch".to_string(), 2)]);
        assert!(out[0].message.contains("incompatible units"));
    }

    #[test]
    fn comparison_inside_a_return_still_gets_its_own_check() {
        let out = run(&[(
            "src/a.rs",
            "fn f(deadline_seconds: f64, payload_bytes: f64) -> bool {\n    return deadline_seconds < payload_bytes;\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-mismatch".to_string(), 2)]);
        assert!(out[0].message.contains("compares"));
    }

    #[test]
    fn comparing_across_units_is_flagged() {
        let out = run(&[(
            "src/a.rs",
            "fn f(deadline_seconds: f64, payload_bytes: f64) -> bool {\n    deadline_seconds < payload_bytes\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-mismatch".to_string(), 2)]);
    }

    #[test]
    fn multiplicative_factors_silence_the_expression() {
        // The canonical transfer-time shape: latency + count * per_item
        // + bytes / bandwidth. Division/multiplication change dimension,
        // so no mismatch fires.
        let out = run(&[(
            "src/a.rs",
            "fn f(latency_seconds: f64, n: f64, per_item_seconds: f64, bytes: f64, bandwidth_bytes_per_sec: f64) -> f64 {\n    latency_seconds + n * per_item_seconds + bytes / bandwidth_bytes_per_sec\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![]);
    }

    #[test]
    fn directives_beat_inference_and_dimensionless_opts_out() {
        let out = run(&[(
            "src/a.rs",
            "// flcheck: unit(payload_bytes, dimensionless)\nfn f(payload_bytes: u64) {\n    let mut total_seconds = 0.0;\n    total_seconds += payload_bytes as f64;\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![]);
    }

    #[test]
    fn call_args_crossing_dimensions_are_unconverted() {
        let out = run(&[(
            "src/a.rs",
            "fn sleep(seconds: f64) -> f64 {\n    seconds\n}\nfn g(payload_bytes: f64) -> f64 {\n    sleep(payload_bytes)\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-unconverted".to_string(), 5)]);
        assert!(out[0].message.contains("bytes"));
        assert!(out[0].chain.len() >= 2, "chain: {:?}", out[0].chain);
    }

    #[test]
    fn declared_converters_sanction_the_crossing() {
        let out = run(&[(
            "src/a.rs",
            "// flcheck: convert(bytes->seconds)\nfn transfer_time(bytes: f64) -> f64 {\n    bytes / 1.0e9\n}\nfn sleep(seconds: f64) -> f64 {\n    seconds\n}\nfn g(payload_bytes: f64) -> f64 {\n    sleep(transfer_time(payload_bytes))\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![]);
    }

    #[test]
    fn unconverted_message_names_a_known_converter() {
        let out = run(&[(
            "src/a.rs",
            "// flcheck: convert(bytes->seconds)\nfn transfer_time(bytes: f64) -> f64 {\n    bytes / 1.0e9\n}\nfn sleep(seconds: f64) -> f64 {\n    seconds\n}\nfn g(payload_bytes: f64) -> f64 {\n    sleep(payload_bytes)\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-unconverted".to_string(), 9)]);
        assert!(
            out[0].message.contains("route it through `transfer_time`"),
            "message: {}",
            out[0].message
        );
    }

    #[test]
    fn param_units_propagate_through_unannotated_wrappers() {
        // `relay`'s `amount` has no unit of its own; it inherits seconds
        // from `sleep`, so the bytes argument in `g` is flagged with the
        // full teaching chain.
        let out = run(&[(
            "src/a.rs",
            "fn sleep(seconds: f64) -> f64 {\n    seconds\n}\nfn relay(amount: f64) -> f64 {\n    sleep(amount)\n}\nfn g(payload_bytes: f64) -> f64 {\n    relay(payload_bytes)\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("unit-unconverted".to_string(), 8)]);
        assert!(
            out[0].chain.len() == 3,
            "expected g -> relay -> sleep, got {:?}",
            out[0].chain
        );
    }

    #[test]
    fn allow_suppressions_work_for_unit_rules() {
        let out = run(&[(
            "src/a.rs",
            "fn f(payload_bytes: u64) {\n    let mut total_seconds = 0.0;\n    // flcheck: allow(unit-mismatch) — deliberate\n    total_seconds += payload_bytes as f64;\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![]);
    }

    #[test]
    fn test_code_is_exempt() {
        let out = run(&[(
            "src/a.rs",
            "#[cfg(test)]\nmod tests {\n    fn f(payload_bytes: u64) {\n        let mut total_seconds = 0.0;\n        total_seconds += payload_bytes as f64;\n    }\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![]);
    }

    const ENGINE: &str = "crates/fl/src/engine.rs";

    #[test]
    fn unphased_sink_reachable_from_round_execution_is_flagged() {
        let out = run(&[(
            ENGINE,
            "pub fn run_round() {\n    charge_lost(1.0);\n}\n// flcheck: charge-sink\nfn charge_lost(seconds: f64) -> f64 {\n    seconds\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("charge-unphased".to_string(), 5)]);
        assert!(out[0].message.contains("never land"));
        assert_eq!(out[0].chain.len(), 2, "chain: {:?}", out[0].chain);
    }

    #[test]
    fn double_charging_two_phase_slots_is_flagged() {
        let out = run(&[(
            ENGINE,
            "pub fn run_round() {\n    charge_twice(1.0);\n}\n// flcheck: charge-sink\nfn charge_twice(seconds: f64) {\n    let mut b = new_breakdown();\n    b.phases.compute_seconds += seconds;\n    b.phases.encrypt_seconds += seconds;\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![("charge-unphased".to_string(), 5)]);
        assert!(out[0].message.contains("double-charged"));
    }

    #[test]
    fn single_slot_phase_param_and_unitless_sinks_pass() {
        let out = run(&[(
            ENGINE,
            "pub fn run_round() {\n    charge_ok(1.0);\n    charge_routed(1.0, 0);\n    meter(64, 2);\n}\n// flcheck: charge-sink\nfn charge_ok(seconds: f64) {\n    let mut b = new_breakdown();\n    b.phases.compute_seconds += seconds;\n}\n// flcheck: charge-sink\nfn charge_routed(seconds: f64, phase: u32) -> f64 {\n    seconds + phase as f64\n}\n// flcheck: charge-sink\nfn meter(bytes: u64, ciphertexts: u64) -> u64 {\n    bytes + ciphertexts\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![]);
    }

    #[test]
    fn sinks_not_reachable_from_run_round_are_ignored() {
        let out = run(&[(
            "crates/fl/src/train.rs",
            "// flcheck: charge-sink\nfn charge_lost(seconds: f64) -> f64 {\n    seconds\n}\npub fn classic(seconds: f64) -> f64 {\n    charge_lost(seconds)\n}\n",
        )]);
        assert_eq!(rules_lines(&out), vec![]);
    }
}
