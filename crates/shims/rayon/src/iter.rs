//! Parallel iterators over the work-stealing pool.
//!
//! The model is *indexed random access*: every parallel sequence is an
//! [`IndexedSource`] — a `Sync` description that can produce the item at
//! any index on any thread. Combinators (`map`, `enumerate`, `zip`) wrap
//! sources in sources; a terminal operation (`collect`, `for_each`,
//! `fold`/`reduce`, `sum`) splits `0..len` into chunks sized by the
//! [granularity heuristic](ParIter::with_max_len) and drives them through
//! [`pool::run_ordered`], which returns chunk outputs in chunk order —
//! so `collect` is order-preserving by construction and item values never
//! depend on the thread count.
//!
//! Owned (`into_par_iter`) and mutable (`par_iter_mut`) sequences reuse
//! the same machinery through take-once slots: each item sits in a
//! `Mutex<Option<_>>` cell that the evaluating worker takes exactly once,
//! which keeps the whole crate free of `unsafe`.

use std::ops::Range;

use parking_lot::Mutex;

use crate::pool::{self, CHUNKS_PER_WORKER};

/// A random-access parallel sequence: `get(i)` may be called from any
/// worker thread, and is called exactly once per index per drive.
pub trait IndexedSource: Sync {
    /// The element type produced at each index.
    type Item: Send;
    /// Number of items.
    fn length(&self) -> usize;
    /// Produces the item at `index` (`index < self.length()`).
    fn get(&self, index: usize) -> Self::Item;
}

// ---------------------------------------------------------------------
// Leaf sources
// ---------------------------------------------------------------------

/// Borrowing source over a slice (`par_iter`).
pub struct SliceSource<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> IndexedSource for SliceSource<'data, T> {
    type Item = &'data T;
    fn length(&self) -> usize {
        self.slice.len()
    }
    fn get(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// Take-once source over owned items (`into_par_iter`).
pub struct OwnedSource<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T: Send> IndexedSource for OwnedSource<T> {
    type Item = T;
    fn length(&self) -> usize {
        self.slots.len()
    }
    fn get(&self, index: usize) -> T {
        self.slots[index]
            .lock()
            .take()
            .expect("parallel drive evaluated an index twice")
    }
}

/// Take-once source over exclusive borrows (`par_iter_mut`).
pub struct MutSliceSource<'data, T> {
    slots: Vec<Mutex<Option<&'data mut T>>>,
}

impl<'data, T: Send> IndexedSource for MutSliceSource<'data, T> {
    type Item = &'data mut T;
    fn length(&self) -> usize {
        self.slots.len()
    }
    fn get(&self, index: usize) -> &'data mut T {
        self.slots[index]
            .lock()
            .take()
            .expect("parallel drive evaluated an index twice")
    }
}

/// Source over a `usize` range.
pub struct RangeSource {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeSource {
    type Item = usize;
    fn length(&self) -> usize {
        self.len
    }
    fn get(&self, index: usize) -> usize {
        self.start + index
    }
}

// ---------------------------------------------------------------------
// Combinator sources
// ---------------------------------------------------------------------

/// `map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> IndexedSource for Map<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn length(&self) -> usize {
        self.inner.length()
    }
    fn get(&self, index: usize) -> R {
        (self.f)(self.inner.get(index))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<S> {
    inner: S,
}

impl<S: IndexedSource> IndexedSource for Enumerate<S> {
    type Item = (usize, S::Item);
    fn length(&self) -> usize {
        self.inner.length()
    }
    fn get(&self, index: usize) -> (usize, S::Item) {
        (index, self.inner.get(index))
    }
}

/// `zip` adapter (length is the shorter of the two).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedSource, B: IndexedSource> IndexedSource for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn length(&self) -> usize {
        self.a.length().min(self.b.length())
    }
    fn get(&self, index: usize) -> (A::Item, B::Item) {
        (self.a.get(index), self.b.get(index))
    }
}

// ---------------------------------------------------------------------
// The parallel iterator
// ---------------------------------------------------------------------

/// A parallel iterator: an [`IndexedSource`] plus chunk-granularity
/// bounds. Produced by `par_iter` / `par_iter_mut` / `into_par_iter`;
/// consumed by a terminal operation.
pub struct ParIter<S> {
    source: S,
    min_len: usize,
    max_len: usize,
}

/// Chunk size for a drive: over-partition [`CHUNKS_PER_WORKER`]× the
/// worker count so stealing can rebalance uneven items, clamped to the
/// caller's `[min_len, max_len]` granularity bounds (`max_len` wins on
/// conflict: it expresses "items are expensive, schedule them finely").
// flcheck: det-absorb — pool width tunes chunk granularity only; drives
// return per-chunk outputs in chunk order
fn chunk_size(len: usize, min_len: usize, max_len: usize) -> usize {
    let workers = pool::current_num_threads().max(1);
    let target = workers * CHUNKS_PER_WORKER;
    len.div_ceil(target).max(min_len).min(max_len).max(1)
}

/// Splits `0..source.length()` into chunks and evaluates `eval` over each
/// chunk on the pool, returning per-chunk outputs in chunk order.
fn drive<S, T, E>(source: S, min_len: usize, max_len: usize, eval: E) -> Vec<T>
where
    S: IndexedSource,
    T: Send,
    E: Fn(&S, Range<usize>) -> T + Sync,
{
    let len = source.length();
    if len == 0 {
        return Vec::new();
    }
    let chunk = chunk_size(len, min_len, max_len);
    let chunks = len.div_ceil(chunk);
    let src = &source;
    pool::run_ordered(chunks, |c| {
        let start = c * chunk;
        eval(src, start..(start + chunk).min(len))
    })
}

impl<S: IndexedSource> ParIter<S> {
    pub(crate) fn new(source: S) -> Self {
        ParIter {
            source,
            min_len: 1,
            max_len: usize::MAX,
        }
    }

    /// Number of items this iterator will produce.
    pub fn len(&self) -> usize {
        self.source.length()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lower bound on items per scheduled chunk — raise it when per-item
    /// work is so cheap that scheduling would dominate.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Upper bound on items per scheduled chunk — lower it (typically to
    /// 1) when items are expensive or skewed, so work stealing can
    /// balance them individually.
    pub fn with_max_len(mut self, max: usize) -> Self {
        self.max_len = max.max(1);
        self
    }

    /// Maps each item through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> ParIter<Map<S, F>>
    where
        F: Fn(S::Item) -> R + Sync,
        R: Send,
    {
        ParIter {
            source: Map {
                inner: self.source,
                f,
            },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<Enumerate<S>> {
        ParIter {
            source: Enumerate { inner: self.source },
            min_len: self.min_len,
            max_len: self.max_len,
        }
    }

    /// Pairs items positionally with `other`'s items; the result has the
    /// shorter length. Alignment is by index, so it is exact regardless
    /// of thread count.
    pub fn zip<S2: IndexedSource>(self, other: ParIter<S2>) -> ParIter<Zip<S, S2>> {
        ParIter {
            source: Zip {
                a: self.source,
                b: other.source,
            },
            min_len: self.min_len.max(other.min_len),
            max_len: self.max_len.min(other.max_len),
        }
    }

    /// Collects items in order. `Vec<T>` preserves exact item order;
    /// `Result<Vec<T>, E>` yields the error of the *earliest* failing
    /// item, so the outcome is deterministic across thread counts.
    pub fn collect<C: FromParallelIterator<S::Item>>(self) -> C {
        let chunks = drive(self.source, self.min_len, self.max_len, |src, range| {
            range.map(|i| src.get(i)).collect::<Vec<_>>()
        });
        C::from_ordered_chunks(chunks)
    }

    /// Calls `f` on every item (no ordering guarantee on side effects).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        drive(self.source, self.min_len, self.max_len, |src, range| {
            for i in range {
                f(src.get(i));
            }
        });
    }

    /// Folds each chunk with `fold_op` starting from `identity()`,
    /// yielding the per-chunk accumulators (in chunk order) for a final
    /// [`FoldParts::reduce`].
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> FoldParts<A>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, S::Item) -> A + Sync,
    {
        let parts = drive(self.source, self.min_len, self.max_len, |src, range| {
            let mut acc = identity();
            for i in range {
                acc = fold_op(acc, src.get(i));
            }
            acc
        });
        FoldParts { parts }
    }

    /// Reduces all items with `op` (must be associative for the result to
    /// be independent of chunking), starting each chunk from
    /// `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Sync,
    {
        let parts = drive(self.source, self.min_len, self.max_len, |src, range| {
            let mut acc = identity();
            for i in range {
                acc = op(acc, src.get(i));
            }
            acc
        });
        parts.into_iter().fold(identity(), op)
    }

    /// Sums the items. Chunk partials are combined in chunk order, so
    /// integer sums are exact and deterministic; float sums depend on
    /// chunk boundaries (as with rayon).
    pub fn sum<Out>(self) -> Out
    where
        Out: std::iter::Sum<S::Item> + std::iter::Sum<Out> + Send,
    {
        let parts = drive(self.source, self.min_len, self.max_len, |src, range| {
            range.map(|i| src.get(i)).sum::<Out>()
        });
        parts.into_iter().sum()
    }

    /// Number of items (the length is known up front).
    pub fn count(self) -> usize {
        self.source.length()
    }
}

/// Per-chunk accumulators produced by [`ParIter::fold`], combined by
/// [`reduce`](FoldParts::reduce) in chunk order.
pub struct FoldParts<A> {
    parts: Vec<A>,
}

impl<A: Send> FoldParts<A> {
    /// Combines the chunk accumulators left-to-right starting from
    /// `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> A
    where
        ID: FnOnce() -> A,
        OP: FnMut(A, A) -> A,
    {
        self.parts.into_iter().fold(identity(), op)
    }

    /// The raw accumulators, in chunk order.
    pub fn into_inner(self) -> Vec<A> {
        self.parts
    }
}

/// Types constructible from ordered chunks of parallel output (the shim's
/// analogue of rayon's `FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Assembles the final collection from per-chunk item vectors, given
    /// in chunk (= item) order.
    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_chunks(chunks: Vec<Vec<T>>) -> Vec<T> {
        let total = chunks.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_chunks(chunks: Vec<Vec<Result<T, E>>>) -> Result<Vec<T>, E> {
        // Sequential collect short-circuits on the first error in item
        // order — deterministic regardless of chunking.
        chunks.into_iter().flatten().collect()
    }
}

impl<T: Send> FromParallelIterator<Option<T>> for Option<Vec<T>> {
    fn from_ordered_chunks(chunks: Vec<Vec<Option<T>>>) -> Option<Vec<T>> {
        chunks.into_iter().flatten().collect()
    }
}

// ---------------------------------------------------------------------
// Conversion traits (the prelude)
// ---------------------------------------------------------------------

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// Item produced (a shared reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter;
    /// Returns a parallel iterator over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter::new(SliceSource { slice: self })
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter::new(SliceSource { slice: self })
    }
}

/// `.par_iter_mut()` on borrowed collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// Item produced (an exclusive reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter;
    /// Returns a parallel iterator over `&mut self`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParIter<MutSliceSource<'data, T>>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        ParIter::new(MutSliceSource {
            slots: self.iter_mut().map(|r| Mutex::new(Some(r))).collect(),
        })
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParIter<MutSliceSource<'data, T>>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Item produced (owned).
    type Item: Send;
    /// The parallel iterator type.
    type Iter;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<OwnedSource<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(OwnedSource {
            slots: self.into_iter().map(|v| Mutex::new(Some(v))).collect(),
        })
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParIter<RangeSource>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(RangeSource {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

impl<S: IndexedSource> IntoParallelIterator for ParIter<S> {
    type Item = S::Item;
    type Iter = ParIter<S>;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        for threads in [1, 4, 16] {
            let out: Vec<u64> = with_threads(threads, || v.par_iter().map(|x| x * 2).collect());
            assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn enumerate_and_zip_align_by_index() {
        let a: Vec<u32> = (0..257).collect();
        let b: Vec<u32> = (1000..1257).collect();
        let out: Vec<(usize, u32)> = with_threads(8, || {
            a.par_iter()
                .zip(b.par_iter())
                .enumerate()
                .map(|(i, (x, y))| (i, x + y))
                .collect()
        });
        for (i, s) in out {
            assert_eq!(s, i as u32 + 1000 + i as u32);
        }
    }

    #[test]
    fn zip_truncates_to_shorter() {
        let a = vec![1u8, 2, 3, 4, 5];
        let b = vec![10u8, 20];
        let out: Vec<u8> = with_threads(4, || {
            a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect()
        });
        assert_eq!(out, vec![11, 22]);
    }

    #[test]
    fn collect_result_yields_earliest_error() {
        let v: Vec<u32> = (0..500).collect();
        for threads in [1, 4, 16] {
            let out: Result<Vec<u32>, u32> = with_threads(threads, || {
                v.par_iter()
                    .map(|&x| if x % 100 == 99 { Err(x) } else { Ok(x) })
                    .collect()
            });
            assert_eq!(out, Err(99), "earliest failing item, at {threads} threads");
        }
        let ok: Result<Vec<u32>, u32> = with_threads(4, || v.par_iter().map(|&x| Ok(x)).collect());
        assert_eq!(ok.unwrap(), v);
    }

    #[test]
    fn fold_reduce_and_sum_agree() {
        let v: Vec<u64> = (1..=10_000).collect();
        let folded = with_threads(4, || {
            v.par_iter()
                .fold(|| 0u64, |acc, x| acc + x)
                .reduce(|| 0, |a, b| a + b)
        });
        let summed: u64 = with_threads(4, || v.par_iter().map(|&x| x).sum());
        let reduced = with_threads(4, || v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b));
        assert_eq!(folded, 50_005_000);
        assert_eq!(summed, 50_005_000);
        assert_eq!(reduced, 50_005_000);
    }

    #[test]
    fn into_par_iter_moves_items() {
        let v: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
        let out: Vec<String> = with_threads(4, || v.into_par_iter().map(|s| s + "!").collect());
        assert_eq!(out.len(), 100);
        assert_eq!(out[7], "s7!");
    }

    #[test]
    fn range_into_par_iter() {
        let total: usize = with_threads(4, || (0..101usize).into_par_iter().sum());
        assert_eq!(total, 5050);
    }

    #[test]
    fn par_iter_mut_updates_every_item() {
        let mut v: Vec<u32> = (0..300).collect();
        with_threads(4, || v.par_iter_mut().for_each(|x| *x *= 3));
        assert_eq!(v, (0..300).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_enumerate_map_collects() {
        let mut v = vec![5u32; 64];
        let out: Vec<u32> = with_threads(4, || {
            v.par_iter_mut()
                .enumerate()
                .map(|(i, x)| {
                    *x += i as u32;
                    *x
                })
                .collect()
        });
        assert_eq!(out, (0..64).map(|i| 5 + i).collect::<Vec<_>>());
        assert_eq!(v, out);
    }

    #[test]
    fn granularity_bounds_are_respected() {
        // max_len=1 schedules each item as its own task; min_len larger
        // than the length degrades to a single chunk. Both must still
        // produce ordered output.
        let v: Vec<u32> = (0..37).collect();
        let fine: Vec<u32> = with_threads(4, || v.par_iter().with_max_len(1).map(|&x| x).collect());
        let coarse: Vec<u32> =
            with_threads(4, || v.par_iter().with_min_len(1000).map(|&x| x).collect());
        assert_eq!(fine, v);
        assert_eq!(coarse, v);
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = with_threads(4, || v.par_iter().map(|&x| x).collect());
        assert!(out.is_empty());
        let s: u32 = with_threads(4, || v.par_iter().map(|&x| x as u32).sum());
        assert_eq!(s, 0);
    }
}
