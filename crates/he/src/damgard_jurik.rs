//! The Damgård–Jurik generalization of Paillier (the paper's reference
//! [21]): ciphertexts in `Z*_{n^{s+1}}` with plaintext space `Z_{n^s}`.
//!
//! At `s = 1` this is exactly Paillier; larger `s` widens the plaintext
//! space *without generating new keys*, which composes naturally with
//! batch compression: a 1024-bit key at `s = 2` packs twice the slots per
//! ciphertext at a ciphertext expansion of only 1.5× (versus 2× for
//! Paillier), raising the paper's plaintext-space-utilization ceiling.
//!
//! Implemented here as an optional extension (the paper's future-work
//! direction of pushing compression further); the FL backends default to
//! plain Paillier.
//!
//! Encryption: `E(m) = (1+n)^m · r^{n^s} mod n^{s+1}` for `m < n^s`.
//! Decryption uses the recursive Damgård–Jurik algorithm to extract `m`
//! from `c^λ mod n^{s+1}` digit by digit in base `n`.

// flcheck: allow-file(uncharged-work) — ablation-only extension: the FL
// backends and the simulator default to plain Paillier and nothing
// dispatches Damgård–Jurik on a charged path, so this module sits outside
// the cost-model perimeter by design (no launch accounting, no op
// estimates to pair with). Revisit if a backend ever routes through it.

use mpint::modpow::mod_pow_ctx;
use mpint::prime::{generate_prime_pair, DEFAULT_MR_ROUNDS};
use mpint::random::random_coprime;
use mpint::{mod_inv, MontgomeryCtx, Natural};
use rand::Rng;

use crate::{Error, Result};

/// Minimum key size, as for Paillier.
pub const MIN_KEY_BITS: u32 = 64;

/// Damgård–Jurik public key for a fixed exponent `s`.
#[derive(Debug, Clone)]
pub struct DjPublicKey {
    /// Modulus `n = p·q`.
    pub n: Natural,
    /// The generalization exponent `s >= 1`.
    pub s: u32,
    /// `n^s` — the plaintext modulus.
    pub n_s: Natural,
    /// `n^{s+1}` — the ciphertext modulus.
    pub n_s1: Natural,
    /// Nominal key size in bits.
    pub key_bits: u32,
    ctx: MontgomeryCtx,
}

/// Damgård–Jurik private key.
#[derive(Debug, Clone)]
pub struct DjPrivateKey {
    /// `λ = lcm(p-1, q-1)`.
    pub lambda: Natural,
    /// Copy of the public key.
    pub public: DjPublicKey,
    /// `λ^{-1} mod n^s` (the decryption post-factor).
    lambda_inv: Natural,
}

/// A generated key pair.
#[derive(Debug, Clone)]
pub struct DjKeyPair {
    /// Public key.
    pub public: DjPublicKey,
    /// Private key.
    pub private: DjPrivateKey,
}

impl DjKeyPair {
    /// Generates a key pair with an `bits`-bit modulus and exponent `s`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u32, s: u32) -> Result<Self> {
        if bits < MIN_KEY_BITS {
            return Err(Error::KeySizeTooSmall {
                bits,
                min: MIN_KEY_BITS,
            });
        }
        if !(1..=8).contains(&s) {
            return Err(Error::InvalidParameter(
                "Damgård–Jurik exponent s must be in 1..=8",
            ));
        }
        loop {
            let (p, q) = generate_prime_pair(rng, bits / 2, DEFAULT_MR_ROUNDS)?;
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let one = Natural::one();
            // Generated primes exceed 1; resample on the impossible case.
            let Some(p1) = p.checked_sub(&one) else {
                continue;
            };
            let Some(q1) = q.checked_sub(&one) else {
                continue;
            };
            let lambda = mpint::lcm(&p1, &q1);
            let n_s = n.pow(s);
            let n_s1 = n.pow(s + 1);
            let ctx = MontgomeryCtx::new(&n_s1)?;
            let lambda_inv = mod_inv(&(&lambda % &n_s), &n_s)?;
            let public = DjPublicKey {
                n,
                s,
                n_s,
                n_s1,
                key_bits: bits,
                ctx,
            };
            let private = DjPrivateKey {
                lambda,
                public: public.clone(),
                lambda_inv,
            };
            return Ok(DjKeyPair { public, private });
        }
    }
}

impl DjPublicKey {
    /// Encrypts `m < n^s`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &Natural, rng: &mut R) -> Result<Natural> {
        if m >= &self.n_s {
            return Err(Error::PlaintextTooLarge {
                plaintext_bits: m.bit_len(),
                modulus_bits: self.n_s.bit_len(),
            });
        }
        // (1+n)^m mod n^{s+1} via the binomial expansion (all terms with
        // n^{s+1} vanish): sum_{k=0..s} C(m,k) n^k.
        let g_m = self.one_plus_n_pow(m);
        let r = random_coprime(rng, &self.n);
        let r_ns = mod_pow_ctx(&self.ctx, &r, &self.n_s);
        Ok(self.ctx.mod_mul(&g_m, &r_ns))
    }

    /// Homomorphic addition: `c₁·c₂ mod n^{s+1}`.
    pub fn add(&self, c1: &Natural, c2: &Natural) -> Natural {
        self.ctx.mod_mul(c1, c2)
    }

    /// Plaintext-scalar multiplication: `c^k mod n^{s+1}`.
    pub fn scalar_mul(&self, c: &Natural, k: &Natural) -> Natural {
        mod_pow_ctx(&self.ctx, c, k)
    }

    /// Ciphertext expansion factor versus the plaintext: `(s+1)/s`.
    pub fn expansion_factor(&self) -> f64 {
        (self.s as f64 + 1.0) / self.s as f64
    }

    /// `(1+n)^m mod n^{s+1}` by binomial expansion: exact with `s+1`
    /// terms because `n^{s+1} ≡ 0`.
    fn one_plus_n_pow(&self, m: &Natural) -> Natural {
        let mut acc = Natural::one();
        let mut term = Natural::one(); // C(m, k) · n^k
        let mut n_pow = Natural::one();
        for k in 1..=self.s {
            // term_k = term_{k-1} * (m - k + 1) / k * n
            let factor = match m.checked_sub(&Natural::from(k as u64 - 1)) {
                Some(f) => f,
                None => break, // m < k: remaining binomials are zero
            };
            n_pow = &n_pow * &self.n;
            term = &term * &factor;
            let (t, rem) = term.div_rem_small(k as u64);
            debug_assert_eq!(rem, 0, "binomial coefficients are integral");
            term = t;
            acc = &(&acc + &(&(&term % &self.n_s1) * &n_pow)) % &self.n_s1;
            // Reset term to C(m,k) for the next iteration (without n^k).
        }
        acc
    }
}

impl DjPrivateKey {
    /// Decrypts `c < n^{s+1}` with the recursive digit-extraction
    /// algorithm of Damgård–Jurik.
    pub fn decrypt(&self, c: &Natural) -> Result<Natural> {
        let pk = &self.public;
        if c >= &pk.n_s1 {
            return Err(Error::CiphertextOutOfRange);
        }
        // u = c^λ mod n^{s+1} = (1+n)^{λm} mod n^{s+1}
        let u = mod_pow_ctx(&pk.ctx, c, &self.lambda);

        // Extract x = λm mod n^s from u = (1+n)^x digit by digit.
        let mut x = Natural::zero();
        let mut n_pow_j = pk.n.clone(); // n^{j+1} while processing digit j
        for j in 1..=pk.s {
            let n_j1 = if j == pk.s {
                pk.n_s1.clone()
            } else {
                &n_pow_j * &pk.n
            };
            // t1 = L(u mod n^{j+1}) = (u mod n^{j+1} - 1) / n
            // u ≡ 1 mod n for well-formed ciphertexts; anything else is a
            // value outside the ciphertext group.
            let u_j = &u % &n_j1;
            let (t1, _) = u_j
                .checked_sub(&Natural::one())
                .ok_or(Error::CiphertextOutOfRange)?
                .div_rem(&pk.n);
            // t2 = correction: subtract the higher binomial contributions
            // (k >= 2) of the digits found so far.
            let mut t2 = Natural::zero();
            let mut term = x.clone(); // running C(x, k), starting at C(x, 1)
            let mut kfact_n = Natural::one();
            for k in 2..=j {
                // term = C(x, k) · n^{k-1} accumulated iteratively:
                // C(x,k) = C(x,k-1)·(x-k+1)/k
                let factor = match x.checked_sub(&Natural::from(k as u64 - 1)) {
                    Some(f) => f,
                    None => {
                        term = Natural::zero();
                        Natural::zero()
                    }
                };
                if term.is_zero() {
                    break;
                }
                term = &term * &factor;
                let (t, rem) = term.div_rem_small(k as u64);
                debug_assert_eq!(rem, 0);
                term = t;
                kfact_n = &kfact_n * &pk.n;
                let contribution = &(&term % &n_pow_j) * &kfact_n;
                t2 = &(&t2 + &(&contribution % &n_pow_j)) % &n_pow_j;
            }
            let t2 = &t2 % &n_pow_j;
            let t1_mod = &t1 % &n_pow_j;
            // Both operands are reduced mod n^j; lift the difference.
            x = t1_mod.mod_sub(&t2, &n_pow_j);
            n_pow_j = &n_pow_j * &pk.n;
        }

        // m = x · λ^{-1} mod n^s
        Ok(&(&x * &self.lambda_inv) % &pk.n_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xD7)
    }

    fn keys(bits: u32, s: u32) -> DjKeyPair {
        DjKeyPair::generate(&mut rng(), bits, s).unwrap()
    }

    #[test]
    fn s1_matches_paillier_semantics() {
        let k = keys(128, 1);
        let mut r = rng();
        for v in [0u64, 1, 42, u32::MAX as u64] {
            let m = Natural::from(v);
            let c = k.public.encrypt(&m, &mut r).unwrap();
            assert_eq!(k.private.decrypt(&c).unwrap(), m, "roundtrip {v}");
        }
    }

    #[test]
    fn s2_widens_plaintext_space() {
        let k = keys(128, 2);
        let mut r = rng();
        // A plaintext larger than n (impossible for Paillier at this key).
        let m = &k.public.n + &Natural::from(12345u64);
        assert!(m < k.public.n_s);
        let c = k.public.encrypt(&m, &mut r).unwrap();
        assert_eq!(k.private.decrypt(&c).unwrap(), m);
    }

    #[test]
    fn s3_roundtrip_near_max() {
        let k = keys(64, 3);
        let mut r = rng();
        let m = k.public.n_s.checked_sub(&Natural::one()).unwrap();
        let c = k.public.encrypt(&m, &mut r).unwrap();
        assert_eq!(k.private.decrypt(&c).unwrap(), m);
    }

    #[test]
    fn homomorphic_addition_mod_ns() {
        let k = keys(128, 2);
        let mut r = rng();
        let m1 = &k.public.n + &Natural::from(7u64); // > n, exercises wide space
        let m2 = Natural::from(100u64);
        let c1 = k.public.encrypt(&m1, &mut r).unwrap();
        let c2 = k.public.encrypt(&m2, &mut r).unwrap();
        let sum = k.public.add(&c1, &c2);
        assert_eq!(
            k.private.decrypt(&sum).unwrap(),
            &(&m1 + &m2) % &k.public.n_s
        );
    }

    #[test]
    fn scalar_multiplication() {
        let k = keys(128, 2);
        let mut r = rng();
        let m = Natural::from(1234u64);
        let c = k.public.encrypt(&m, &mut r).unwrap();
        let scaled = k.public.scalar_mul(&c, &Natural::from(99u64));
        assert_eq!(
            k.private.decrypt(&scaled).unwrap(),
            Natural::from(1234u64 * 99)
        );
    }

    #[test]
    fn expansion_factor_shrinks_with_s() {
        assert_eq!(keys(64, 1).public.expansion_factor(), 2.0);
        assert_eq!(keys(64, 2).public.expansion_factor(), 1.5);
        // The batch-compression payoff: more plaintext bits per
        // ciphertext bit as s grows.
    }

    #[test]
    fn s_out_of_range_rejected() {
        for s in [0u32, 9, 100] {
            assert!(matches!(
                DjKeyPair::generate(&mut rng(), 64, s),
                Err(Error::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn oversized_plaintext_rejected() {
        let k = keys(64, 2);
        let mut r = rng();
        assert!(matches!(
            k.public.encrypt(&k.public.n_s, &mut r),
            Err(Error::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_ciphertext_rejected() {
        let k = keys(64, 1);
        assert!(matches!(
            k.private.decrypt(&k.public.n_s1),
            Err(Error::CiphertextOutOfRange)
        ));
    }
}
