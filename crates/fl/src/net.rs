//! The client↔server network simulator.
//!
//! The paper's testbed connects four servers over Gigabit Ethernet
//! (Sec. VI-B); communication cost there is dominated not by raw
//! bandwidth but by the *number of ciphertexts* each message carries —
//! FATE serializes every `PaillierEncryptedNumber` individually, which is
//! why batch compression (fewer ciphertexts) wins far more than the byte
//! reduction alone would suggest. The model here charges, per message:
//!
//! ```text
//! t = latency + ciphertexts · per_ciphertext_seconds + bytes / bandwidth
//! ```
//!
//! with optional packet loss (the whole message retries, adding latency
//! and bytes). All times are simulated; no real sockets are involved, but
//! every byte that would cross the wire is counted.

use parking_lot::Mutex;

use crate::{Error, Result};

/// Static description of a link and its serialization stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Link bandwidth in bytes/second (Gigabit Ethernet ≈ 125 MB/s).
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency in seconds.
    pub latency_seconds: f64,
    /// Serialization/deserialization cost per ciphertext object. This is
    /// the FATE-style per-object overhead; FLBooster's batched binary
    /// framing sets it lower (see [`NetworkConfig::flbooster_profile`]).
    pub per_ciphertext_seconds: f64,
    /// Probability that a message is dropped and must be retried.
    pub drop_probability: f64,
    /// Maximum send attempts before reporting failure.
    pub max_attempts: u32,
    /// Transfers the link can carry simultaneously (duplex / multi-queue
    /// NIC factor). This never changes what a message *costs* — per-message
    /// seconds and byte accounting are identical at any value — only how
    /// many in-flight transfers a [`LinkSchedule`] overlaps when the round
    /// engine lays messages out on simulated time. The default of 1 is
    /// today's strictly serial NIC.
    pub duplex_streams: u32,
}

impl NetworkConfig {
    /// FATE-style profile: Gigabit link, per-object Python serialization.
    ///
    /// `per_ciphertext_seconds` is calibrated so that a CPU-HE epoch
    /// splits ≈50% HE / ≈50% communication at 1024-bit keys (each value
    /// crosses the NIC several times per aggregation round), matching the
    /// paper's Fig. 1 / Table VI FATE rows.
    pub fn fate_profile() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 125.0e6,
            latency_seconds: 2.0e-4,
            per_ciphertext_seconds: 4.5e-4,
            drop_probability: 0.0,
            max_attempts: 5,
            duplex_streams: 1,
        }
    }

    /// FLBooster's transport: same link, but ciphertexts travel in packed
    /// binary buffers instead of per-object pickles, cutting the
    /// per-object overhead ~5x (calibrated to the Table VI FLBooster
    /// component shares).
    pub fn flbooster_profile() -> Self {
        NetworkConfig {
            per_ciphertext_seconds: 8.4e-5,
            ..Self::fate_profile()
        }
    }

    /// A lossy variant for failure-injection tests.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Sets the number of concurrent transfers the link can overlap
    /// (clamped up to 1). Cost accounting is unchanged; only the round
    /// engine's simulated-time layout reads this.
    pub fn with_duplex_streams(mut self, streams: u32) -> Self {
        self.duplex_streams = streams.max(1);
        self
    }
}

/// Simulated-time occupancy of one link with a fixed number of
/// concurrent streams ([`NetworkConfig::duplex_streams`]).
///
/// The round engine asks the schedule to *admit* each transfer: given the
/// instant the payload became ready and the per-message duration (from
/// [`Network::send`], which also does all byte/seconds accounting), the
/// schedule picks the stream that frees up earliest and returns the
/// transfer's `(start, finish)` on simulated time. With one stream and
/// every payload ready at the same instant this reproduces today's
/// strictly sequential NIC layout exactly: transfer `k` starts when
/// transfer `k − 1` finishes, and the last finish equals the sum of
/// durations.
///
/// Admission is deterministic: the earliest-free stream wins ties by
/// lowest index, and the caller admits transfers in a deterministic
/// order, so the layout never depends on host thread count.
#[derive(Debug, Clone)]
pub struct LinkSchedule {
    free_at: Vec<f64>,
}

impl LinkSchedule {
    /// A schedule over `streams` concurrent channels (clamped up to 1),
    /// all idle at simulated time zero.
    pub fn new(streams: u32) -> Self {
        LinkSchedule {
            free_at: vec![0.0; streams.max(1) as usize],
        }
    }

    /// A schedule sized from a link configuration.
    pub fn for_config(cfg: &NetworkConfig) -> Self {
        Self::new(cfg.duplex_streams)
    }

    /// Concurrent streams this schedule overlaps.
    pub fn streams(&self) -> usize {
        self.free_at.len()
    }

    /// Admits a transfer that becomes ready at `ready` and occupies one
    /// stream for `duration` simulated seconds; returns its
    /// `(start, finish)` instants.
    pub fn admit(&mut self, ready: f64, duration: f64) -> (f64, f64) {
        let mut best = 0usize;
        for (i, &free) in self.free_at.iter().enumerate().skip(1) {
            // Strict less-than: ties resolve to the lowest stream index.
            // `free_at` entries are finite sums of finite durations, so
            // total_cmp is a plain numeric comparison here.
            // `best` stays inside `free_at`: it only ever holds indices
            // yielded by this enumeration (or 0, and the vec is built
            // non-empty).
            // flcheck: allow(pf-index)
            if free.total_cmp(&self.free_at[best]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        // flcheck: allow(pf-index) — same bound as above.
        let free = self.free_at[best];
        let start = if ready > free { ready } else { free };
        let finish = start + duration;
        // flcheck: allow(pf-index) — same bound as above.
        self.free_at[best] = finish;
        (start, finish)
    }

    /// The instant every admitted transfer has finished.
    pub fn quiescent_at(&self) -> f64 {
        let mut t = 0.0f64;
        for &f in &self.free_at {
            if f > t {
                t = f;
            }
        }
        t
    }
}

/// Cumulative traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Messages successfully delivered.
    pub messages: u64,
    /// Ciphertexts carried.
    pub ciphertexts: u64,
    /// Payload bytes carried (including retransmissions).
    pub bytes: u64,
    /// Simulated seconds spent communicating.
    pub seconds: f64,
    /// Retransmissions performed.
    pub retries: u64,
}

/// The simulated link.
#[derive(Debug)]
pub struct Network {
    cfg: NetworkConfig,
    stats: Mutex<NetStats>,
    /// Deterministic xorshift state for drop decisions.
    rng_state: Mutex<u64>,
}

impl Network {
    /// Creates a link with the given profile and a deterministic seed for
    /// loss decisions.
    pub fn new(cfg: NetworkConfig, seed: u64) -> Self {
        Network {
            cfg,
            stats: Mutex::new(NetStats::default()),
            rng_state: Mutex::new(seed | 1),
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Sends one message carrying `ciphertexts` ciphertext objects and
    /// `bytes` payload bytes; returns the simulated seconds it took
    /// (including any retries).
    // flcheck: convert(bytes->seconds) — THE transfer-time estimator:
    // latency + per-ciphertext overhead + bytes / bandwidth.
    pub fn send(&self, ciphertexts: u64, bytes: u64) -> Result<f64> {
        let per_try = self.cfg.latency_seconds
            + ciphertexts as f64 * self.cfg.per_ciphertext_seconds
            + bytes as f64 / self.cfg.bandwidth_bytes_per_sec;
        let mut total = 0.0;
        let mut sent_bytes = 0u64;
        let mut retries = 0u64;
        for attempt in 1..=self.cfg.max_attempts {
            total += per_try;
            sent_bytes += bytes;
            if !self.drop() {
                let mut s = self.stats.lock();
                s.messages += 1;
                s.ciphertexts += ciphertexts;
                s.bytes += sent_bytes;
                s.seconds += total;
                s.retries += retries;
                return Ok(total);
            }
            retries += 1;
            let _ = attempt;
        }
        Err(Error::NetworkFailure {
            attempts: self.cfg.max_attempts,
        })
    }

    /// Broadcast: the server sends the same message to `receivers` peers
    /// (sequentially on one NIC, as a parameter server does).
    // flcheck: convert(bytes->seconds) — fan-out of `send`.
    pub fn broadcast(&self, receivers: u32, ciphertexts: u64, bytes: u64) -> Result<f64> {
        let mut total = 0.0;
        for _ in 0..receivers {
            total += self.send(ciphertexts, bytes)?;
        }
        Ok(total)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> NetStats {
        *self.stats.lock()
    }

    /// Clears the traffic counters.
    pub fn reset(&self) {
        *self.stats.lock() = NetStats::default();
    }

    fn drop(&self) -> bool {
        if self.cfg.drop_probability <= 0.0 {
            return false;
        }
        let mut s = self.rng_state.lock();
        // xorshift64*
        let mut x = *s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *s = x;
        let u = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.cfg.drop_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_time_formula() {
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        let t = net.send(10, 125_000_000).unwrap();
        // latency + 10 * 0.45ms + 1 second of bytes
        let expected = 2.0e-4 + 10.0 * 4.5e-4 + 1.0;
        assert!((t - expected).abs() < 1e-9);
        let s = net.stats();
        assert_eq!(s.messages, 1);
        assert_eq!(s.ciphertexts, 10);
        assert_eq!(s.bytes, 125_000_000);
    }

    #[test]
    fn per_ciphertext_cost_dominates_small_payloads() {
        // The BC insight: 32 ciphertexts cost ~32x one ciphertext even at
        // equal byte volume.
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        let many = net.send(32, 8192).unwrap();
        let one = net.send(1, 8192).unwrap();
        assert!(many > 20.0 * one, "many={many} one={one}");
    }

    #[test]
    fn broadcast_multiplies() {
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        let single = net.send(1, 100).unwrap();
        let bcast = net.broadcast(4, 1, 100).unwrap();
        assert!((bcast - 4.0 * single).abs() < 1e-12);
        assert_eq!(net.stats().messages, 5);
    }

    #[test]
    fn lossy_link_retries_and_counts() {
        let cfg = NetworkConfig::fate_profile().with_drop_probability(0.5);
        let net = Network::new(cfg, 42);
        let mut retried = false;
        for _ in 0..100 {
            match net.send(1, 100) {
                Ok(_) => {}
                Err(Error::NetworkFailure { attempts }) => assert_eq!(attempts, 5),
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        if net.stats().retries > 0 {
            retried = true;
        }
        assert!(retried, "a 50% lossy link must retry within 100 sends");
    }

    #[test]
    fn hopeless_link_fails() {
        let cfg = NetworkConfig::fate_profile().with_drop_probability(1.0);
        let net = Network::new(cfg, 7);
        assert_eq!(net.send(1, 1), Err(Error::NetworkFailure { attempts: 5 }));
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn reset_clears() {
        let net = Network::new(NetworkConfig::fate_profile(), 1);
        net.send(1, 1).unwrap();
        net.reset();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn flbooster_profile_is_cheaper_per_ciphertext() {
        let f = NetworkConfig::fate_profile();
        let b = NetworkConfig::flbooster_profile();
        assert!(b.per_ciphertext_seconds < f.per_ciphertext_seconds);
        assert_eq!(b.bandwidth_bytes_per_sec, f.bandwidth_bytes_per_sec);
    }

    #[test]
    fn default_profiles_are_single_stream_and_accounting_is_unchanged() {
        // The duplex factor must not disturb the per-message cost model:
        // both built-in profiles stay at one stream, and `send` charges
        // the same seconds and bytes regardless of the factor.
        assert_eq!(NetworkConfig::fate_profile().duplex_streams, 1);
        assert_eq!(NetworkConfig::flbooster_profile().duplex_streams, 1);
        let serial = Network::new(NetworkConfig::fate_profile(), 1);
        let duplex = Network::new(NetworkConfig::fate_profile().with_duplex_streams(8), 1);
        let a = serial.send(10, 125_000_000).unwrap();
        let b = duplex.send(10, 125_000_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(serial.stats(), duplex.stats());
    }

    #[test]
    fn duplex_streams_clamp_to_one() {
        assert_eq!(
            NetworkConfig::fate_profile()
                .with_duplex_streams(0)
                .duplex_streams,
            1
        );
        assert_eq!(LinkSchedule::new(0).streams(), 1);
    }

    #[test]
    fn single_stream_schedule_reproduces_sequential_layout() {
        // Three messages ready at t=0 on one stream: back to back, last
        // finish equals the duration sum — today's serial NIC exactly.
        let mut link = LinkSchedule::new(1);
        assert_eq!(link.admit(0.0, 2.0), (0.0, 2.0));
        assert_eq!(link.admit(0.0, 3.0), (2.0, 5.0));
        assert_eq!(link.admit(0.0, 1.0), (5.0, 6.0));
        assert_eq!(link.quiescent_at(), 6.0);
    }

    #[test]
    fn multi_stream_schedule_overlaps_and_breaks_ties_by_index() {
        let mut link = LinkSchedule::new(2);
        // Both streams idle: the tie goes to stream 0, the next transfer
        // overlaps on stream 1.
        assert_eq!(link.admit(0.0, 4.0), (0.0, 4.0));
        assert_eq!(link.admit(0.0, 4.0), (0.0, 4.0));
        // Third transfer waits for the earliest-free stream.
        assert_eq!(link.admit(1.0, 1.0), (4.0, 5.0));
        // A transfer that becomes ready after every stream frees starts
        // at its ready instant, not earlier.
        assert_eq!(link.admit(10.0, 0.5), (10.0, 10.5));
        assert_eq!(link.quiescent_at(), 10.5);
    }

    #[test]
    fn for_config_reads_the_duplex_factor() {
        let cfg = NetworkConfig::fate_profile().with_duplex_streams(3);
        assert_eq!(LinkSchedule::for_config(&cfg).streams(), 3);
    }
}
