//! Straus (interleaved) multi-exponentiation: `∏ bᵢ^{eᵢ} mod n` with one
//! shared squaring chain.
//!
//! Weighted federated aggregation multiplies many ciphertext powers
//! together: `∏ cᵢ^{kᵢ} mod n²` (each participant's gradient scaled by
//! its sample count). Computed pairwise — one sliding-window
//! exponentiation per base plus a product — every base pays its own
//! squaring chain: `B·(bits + bits/(w+1))` Montgomery multiplications for
//! `B` bases. Straus' trick (Straus 1964; Menezes et al., *Handbook of
//! Applied Cryptography*, Alg. 14.88) scans all exponents' windows in
//! lockstep from the most significant digit down, so the whole batch
//! shares a *single* chain of `bits` squarings: `bits` squarings +
//! `≤ B·bits/w` table multiplications + `B·(2^w − 2)` table-build
//! multiplications. For the paper's 64-participant aggregates the shared
//! chain cuts total Montgomery multiplications by well over 2×.
//!
//! Exponents here are *public* aggregation weights (sample counts), so
//! the digit-dependent multiply schedule leaks nothing; secret exponents
//! must keep using [`crate::modpow::mod_pow_ct`]. Squarings route through
//! the dedicated [`crate::cios::mont_sqr`] kernel.

use crate::montgomery::MontgomeryCtx;
use crate::natural::Natural;

/// Window width (bits per digit) for a Straus pass over `count` bases
/// whose largest exponent has `max_bits` bits.
///
/// Per window column every base multiplies with probability
/// `1 − 2^{-w}`, so widening `w` saves `≈ count·bits·(1/w − 1/(w+1))`
/// multiplies while the table build costs `count·(2^w − 2)` extra; the
/// break-even point depends only on `bits`, not `count`, and matches the
/// single-base table of [`crate::modpow::window_size_for`] shifted one
/// down (the shared squaring chain removes the incentive for very wide
/// windows). Clamped to `[1, 8]`.
pub fn straus_window_for(max_bits: u32) -> u32 {
    match max_bits {
        0..=8 => 1,
        9..=32 => 2,
        33..=128 => 3,
        129..=768 => 4,
        769..=2304 => 5,
        _ => 6,
    }
}

/// Window width for one *shard* of a sharded Straus pass: `arity` bases
/// sharing one squaring chain, exponents of at most `max_bits` bits.
///
/// [`straus_window_for`] is tuned for the paper's wide 64-way aggregates,
/// where the shared squaring chain is fully amortized and only the
/// per-base break-even matters. A shard amortizes its chain over just
/// `arity` bases, so the squaring/table trade-off genuinely shifts with
/// the shard size. This picks the `w ∈ [1, 8]` minimizing the modeled
/// Montgomery-multiplication cost
///
/// ```text
/// 3/4 · (⌈bits/w⌉ − 1) · w      (squarings, dedicated-kernel rate)
///   + arity · (⌈bits/w⌉ + 2^w − 2)   (column + table-build multiplies)
/// ```
///
/// with ties going to the narrower window. The choice affects cost only:
/// [`multi_exp_mont`] returns the identical canonical product at any
/// width.
pub fn straus_window_for_arity(max_bits: u32, arity: usize) -> u32 {
    if max_bits == 0 || arity == 0 {
        return 1;
    }
    let mut best_w = 1u32;
    let mut best_cost = u64::MAX;
    for w in 1..=8u32 {
        let columns = max_bits.div_ceil(w) as u64;
        // Quarter-multiply units keep the 3/4 squaring weight integral.
        let sqr = 3 * columns.saturating_sub(1) * w as u64;
        let mul = 4 * arity as u64 * (columns + (1u64 << w) - 2);
        let cost = sqr + mul;
        if cost < best_cost {
            best_cost = cost;
            best_w = w;
        }
    }
    best_w
}

/// Splits `len` items into at most `shards` contiguous balanced spans:
/// the first `len % shards` spans carry one extra item, so sizes differ
/// by at most 1 and the widest span is exactly `⌈len/shards⌉` (the
/// critical path of a parallel fold). Deterministic in its arguments;
/// never emits an empty span, so the result holds
/// `min(shards.max(1), len)` ranges — and none at all for `len = 0`.
pub fn shard_spans(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let base = len / shards;
    let extra = len % shards;
    let mut spans = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        spans.push(start..start + size);
        start += size;
    }
    spans
}

/// Interleaved multi-exponentiation over Montgomery-form bases: returns
/// `∏ bases_m[i]^{exps[i]}` in Montgomery form. Empty input yields the
/// Montgomery form of 1.
///
/// `bases_m` must be in the Montgomery domain of `ctx` and reduced mod
/// `n`; `exps` are plain (non-Montgomery) public exponents.
///
/// # Panics
///
/// Panics if the slice lengths differ or `window` is outside `[1, 8]`.
pub fn multi_exp_mont(
    ctx: &MontgomeryCtx,
    bases_m: &[Natural],
    exps: &[Natural],
    window: u32,
) -> Natural {
    // Documented precondition (see `# Panics`): callers validate shapes
    // before entering the kernel (`weighted_sum` returns a typed error).
    // flcheck: allow(pf-assert)
    assert_eq!(
        bases_m.len(),
        exps.len(),
        "each base needs exactly one exponent"
    );
    // Same documented precondition: window widths beyond 8 would build
    // 255+-entry tables and are rejected up front.
    // flcheck: allow(pf-assert)
    assert!((1..=8).contains(&window), "window must be in [1, 8]");
    let mut acc = ctx.one_mont();
    let max_bits = exps.iter().map(Natural::bit_len).max().unwrap_or(0);
    if max_bits == 0 {
        // All exponents zero (or no bases): the empty product.
        return acc;
    }

    // Per-base digit tables: tables[i][d-1] = bases_m[i]^d for
    // d = 1..2^w − 1. Bases with a zero exponent never contribute a
    // nonzero digit, so their table build is skipped outright.
    let table_len = (1usize << window) - 1;
    let tables: Vec<Vec<Natural>> = bases_m
        .iter()
        .zip(exps)
        .map(|(b, e)| {
            if e.is_zero() {
                return Vec::new();
            }
            let mut t = Vec::with_capacity(table_len);
            t.push(b.clone());
            for d in 1..table_len {
                // d ranges over 1..table_len and t holds d entries here,
                // so t[d-1] is always the most recent push.
                // flcheck: allow(pf-index)
                t.push(ctx.mont_mul(&t[d - 1], b));
            }
            t
        })
        .collect();

    // One shared squaring chain over the digit columns, most significant
    // first: w squarings per column, then one table multiply per base
    // whose digit is nonzero.
    let columns = max_bits.div_ceil(window);
    for col in (0..columns).rev() {
        if col + 1 < columns {
            for _ in 0..window {
                acc = ctx.mont_sqr(&acc);
            }
        }
        for (table, e) in tables.iter().zip(exps) {
            if table.is_empty() {
                continue;
            }
            let digit = e.extract_bits(col * window, window);
            if digit != 0 {
                // digit is a w-bit value in [1, 2^w - 1] and the table
                // holds exactly 2^w - 1 entries, so digit-1 is in bounds.
                // flcheck: allow(pf-index)
                acc = ctx.mont_mul(&acc, &table[(digit - 1) as usize]);
            }
        }
    }
    acc
}

/// Convenience form over plain residues: reduces and converts each base
/// into the Montgomery domain, runs [`multi_exp_mont`] with the window
/// from [`straus_window_for`], and converts the product back out.
pub fn multi_exp_ctx(ctx: &MontgomeryCtx, bases: &[Natural], exps: &[Natural]) -> Natural {
    let bases_m: Vec<Natural> = bases
        .iter()
        .map(|b| ctx.to_mont(&(b % ctx.modulus())))
        .collect();
    let max_bits = exps.iter().map(Natural::bit_len).max().unwrap_or(0);
    let window = straus_window_for(max_bits);
    ctx.from_mont(&multi_exp_mont(ctx, &bases_m, exps, window))
}

/// Montgomery multiplications a Straus pass performs, worst case: the
/// shared squaring chain, a full column of table multiplies per digit,
/// and the table builds. Used by the GPU simulator's timing model and the
/// hot-path bench's limb-mult accounting.
pub fn straus_mult_count(count: u64, max_bits: u32, window: u32) -> u64 {
    if count == 0 || max_bits == 0 {
        return 0;
    }
    let w = window.max(1);
    let columns = max_bits.div_ceil(w) as u64;
    let squarings = columns.saturating_sub(1) * w as u64;
    let column_muls = count * columns;
    let table_muls = count * ((1u64 << w) - 2);
    squarings + column_muls + table_muls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modpow::mod_pow_ctx;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    /// Reference: pairwise sliding-window exponentiation and product.
    fn naive(ctx: &MontgomeryCtx, bases: &[Natural], exps: &[Natural]) -> Natural {
        let mut acc = &Natural::one() % ctx.modulus();
        for (b, e) in bases.iter().zip(exps) {
            let p = mod_pow_ctx(ctx, b, e);
            acc = ctx.mod_mul(&acc, &p);
        }
        acc
    }

    #[test]
    fn matches_naive_product() {
        let p = (1u128 << 127) - 1;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let bases: Vec<Natural> = [3u128, (1 << 90) + 7, p - 2, 65537]
            .iter()
            .map(|&b| n(b))
            .collect();
        let exps: Vec<Natural> = [12345u128, 0, (1 << 60) + 3, 999_999_999]
            .iter()
            .map(|&e| n(e))
            .collect();
        assert_eq!(
            multi_exp_ctx(&ctx, &bases, &exps),
            naive(&ctx, &bases, &exps)
        );
    }

    #[test]
    fn empty_and_all_zero_exponents() {
        let ctx = MontgomeryCtx::new(&n(101)).unwrap();
        assert_eq!(multi_exp_ctx(&ctx, &[], &[]), n(1));
        let bases = [n(7), n(9)];
        let exps = [n(0), n(0)];
        assert_eq!(multi_exp_ctx(&ctx, &bases, &exps), n(1));
    }

    #[test]
    fn single_base_matches_mod_pow() {
        let p = 1_000_000_007u128;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let (b, e) = (n(123_456_789), n(0xDEAD_BEEF_u128));
        assert_eq!(
            multi_exp_ctx(&ctx, &[b.clone()], &[e.clone()]),
            mod_pow_ctx(&ctx, &b, &e)
        );
    }

    #[test]
    fn every_window_width_agrees() {
        let p = (1u128 << 127) - 1;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let bases: Vec<Natural> = (2..10u128).map(n).collect();
        let exps: Vec<Natural> = (0..8u128).map(|i| n(i * 7919 + 1)).collect();
        let bases_m: Vec<Natural> = bases.iter().map(|b| ctx.to_mont(b)).collect();
        let reference = naive(&ctx, &bases, &exps);
        for w in 1..=8 {
            let got = ctx.from_mont(&multi_exp_mont(&ctx, &bases_m, &exps, w));
            assert_eq!(got, reference, "window {w}");
        }
    }

    #[test]
    fn unreduced_bases_are_reduced() {
        let ctx = MontgomeryCtx::new(&n(97)).unwrap();
        assert_eq!(
            multi_exp_ctx(&ctx, &[n(1000)], &[n(3)]),
            n(1000u128.pow(3) % 97)
        );
    }

    #[test]
    fn shared_chain_beats_pairwise_in_mult_count() {
        // 64 bases, 32-bit weights, 1024-bit modulus: the Table-IV shape.
        let bits = 32;
        let w = straus_window_for(bits);
        let straus = straus_mult_count(64, bits, w);
        // Pairwise: per base, bits squarings + bits/(w'+1) multiplies +
        // table + one product multiply.
        let w1 = crate::modpow::window_size_for(bits) as u64;
        let pairwise = 64 * (bits as u64 + bits as u64 / (w1 + 1) + (1 << (w1 - 1)) + 1);
        assert!(
            straus * 2 < pairwise,
            "straus {straus} not 2x under pairwise {pairwise}"
        );
    }

    #[test]
    #[should_panic(expected = "exactly one exponent")]
    fn mismatched_lengths_panic() {
        let ctx = MontgomeryCtx::new(&n(101)).unwrap();
        multi_exp_mont(&ctx, &[n(3)], &[], 4);
    }

    #[test]
    fn shard_spans_tile_exactly() {
        for len in 0..40usize {
            for shards in 0..10usize {
                let spans = shard_spans(len, shards);
                // Contiguous, in order, non-empty, covering 0..len.
                let mut next = 0usize;
                for s in &spans {
                    assert_eq!(s.start, next, "len {len} shards {shards}");
                    assert!(s.end > s.start, "empty span at len {len} shards {shards}");
                    next = s.end;
                }
                assert_eq!(next, len, "coverage at len {len} shards {shards}");
                if len > 0 {
                    assert_eq!(spans.len(), shards.clamp(1, len));
                    // Balanced split: sizes differ by at most 1 and the
                    // widest span is exactly ⌈len/shards⌉ (the parallel
                    // fold's critical path).
                    let min = spans.iter().map(|s| s.len()).min().unwrap();
                    let max = spans.iter().map(|s| s.len()).max().unwrap();
                    assert!(max - min <= 1, "len {len} shards {shards}");
                    assert_eq!(max, len.div_ceil(shards.clamp(1, len)));
                } else {
                    assert!(spans.is_empty());
                }
            }
        }
    }

    #[test]
    fn shard_spans_zero_items_is_empty() {
        assert!(shard_spans(0, 0).is_empty());
        assert!(shard_spans(0, 1).is_empty());
        assert!(shard_spans(0, 17).is_empty());
    }

    #[test]
    fn shard_spans_one_item_is_one_span() {
        for shards in 0..5usize {
            assert_eq!(shard_spans(1, shards), vec![0..1], "shards {shards}");
        }
    }

    #[test]
    fn shard_spans_more_shards_than_items_degenerates_to_singletons() {
        let spans = shard_spans(3, 8);
        assert_eq!(spans, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn shard_spans_are_disjoint_covering_and_balanced() {
        // A non-divisible case: 10 items over 4 shards must come out as
        // 3/3/2/2 — never the lopsided 3/3/3/1 a naive ceiling tiling
        // produces (the last worker would idle while the rest run long).
        assert_eq!(shard_spans(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        // Disjointness + coverage as an explicit element-level check.
        let mut seen = [false; 10];
        for s in shard_spans(10, 4) {
            for i in s {
                assert!(!seen[i], "element {i} covered twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn arity_window_degenerates_and_widens() {
        assert_eq!(straus_window_for_arity(0, 5), 1);
        assert_eq!(straus_window_for_arity(32, 0), 1);
        // A single base pays the whole squaring chain alone, so its best
        // window is at least as wide as a large shard's.
        for bits in [8u32, 32, 128, 1024, 2048] {
            let solo = straus_window_for_arity(bits, 1);
            let wide = straus_window_for_arity(bits, 4096);
            assert!((1..=8).contains(&solo), "solo window {solo} at {bits} bits");
            assert!((1..=8).contains(&wide), "wide window {wide} at {bits} bits");
            assert!(solo >= wide, "bits {bits}: solo {solo} < wide {wide}");
        }
    }

    #[test]
    fn arity_window_minimizes_modeled_cost() {
        // The returned window must beat (or tie, resolved to narrower)
        // every other width under the documented quarter-multiply model.
        let cost = |bits: u32, arity: u64, w: u32| {
            let columns = bits.div_ceil(w) as u64;
            3 * columns.saturating_sub(1) * w as u64 + 4 * arity * (columns + (1u64 << w) - 2)
        };
        for bits in [8u32, 32, 256, 1024] {
            for arity in [1u64, 2, 16, 100, 2500] {
                let best = straus_window_for_arity(bits, arity as usize);
                for w in 1..=8u32 {
                    let (cb, cw) = (cost(bits, arity, best), cost(bits, arity, w));
                    assert!(
                        cb < cw || (cb == cw && best <= w),
                        "bits {bits} arity {arity}: window {best} loses to {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_chains_agree_with_flat_pass() {
        // A sharded pass — independent chains per span with arity-tuned
        // windows, partials merged by modular multiplication — equals the
        // flat fold bit for bit: every chain returns the canonical
        // residue of its partial product.
        let p = (1u128 << 127) - 1;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let bases: Vec<Natural> = (2..15u128).map(n).collect();
        let exps: Vec<Natural> = (0..13u128).map(|i| n(i * 104_729 + 3)).collect();
        let bases_m: Vec<Natural> = bases.iter().map(|b| ctx.to_mont(b)).collect();
        let max_bits = exps.iter().map(Natural::bit_len).max().unwrap();
        let flat = multi_exp_mont(&ctx, &bases_m, &exps, straus_window_for(max_bits));
        for shards in [1usize, 2, 3, 7, 13, 40] {
            let merged = shard_spans(bases.len(), shards)
                .into_iter()
                .map(|s| {
                    let w = straus_window_for_arity(max_bits, s.len());
                    multi_exp_mont(&ctx, &bases_m[s.clone()], &exps[s], w)
                })
                .reduce(|a, b| ctx.mont_mul(&a, &b))
                .unwrap();
            assert_eq!(merged, flat, "shards {shards}");
        }
    }
}
