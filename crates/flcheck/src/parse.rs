//! Item-level parser: function items with signatures and the call
//! expressions inside their bodies.
//!
//! This is deliberately **not** a Rust grammar. The interprocedural passes
//! ([`crate::callgraph`], [`crate::taint`]) need exactly three things from
//! each file — which functions exist (name, visibility, parameters,
//! `ct-fn` / `secret(..)` markers), where their bodies are, and which
//! calls each body makes with which argument spans — and a token-walking
//! extractor over [`SourceFile`] recovers all of that without `syn`.
//!
//! Known, documented approximations:
//!
//! - Turbofish calls (`collect::<Vec<_>>()`) are not recorded as calls.
//! - Closures are not items; their bodies (and calls) belong to the
//!   enclosing `fn`, and closure parameters may shadow outer names.
//!   They *are* recorded as [`ClosureSite`]s with capture lists and
//!   per-capture write classification for the race pass
//!   ([`crate::races`]) — a capture is an identifier used in the body
//!   that is bound in the enclosing fn and not rebound by the closure.
//!   A closure-local binding that shadows an enclosing binding hides
//!   the capture (accepted: the shadowed value is unreachable inside).
//! - Narrowing `as`-casts (`as u8/u16/u32/i8/i16/i32`) are recorded as
//!   [`CastSite`]s with the source-expression token range for the
//!   width pass ([`crate::width`]); widening casts are not recorded.
//! - Calls inside `debug_assert*!` are dropped: the macro is compiled out
//!   of release builds, so it can neither panic in production nor leak
//!   timing. Casts inside `debug_assert*!` are dropped for the same
//!   reason.

use crate::lexer::{TokKind, Token};
use crate::source::{match_brace, SourceFile};

/// Rust keywords that can directly precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "dyn", "where", "unsafe", "pub", "use", "mod",
    "struct", "enum", "trait", "const", "static", "type", "crate", "super", "self", "Self",
];

/// Integer types a cast *to* which is potentially lossy on the 64-bit
/// targets this workspace runs on. The width lattice is
/// `u8 < u16 < u32 < u64 ≈ usize < u128` (signed alike): casts to
/// `usize`/`u64`/`u128`/`i64`/`isize` and to floats are
/// widening-or-same and never recorded.
pub const NARROW_TARGETS: &[&str] = &["i16", "i32", "i8", "u16", "u32", "u8"];

/// Mutating container/collection methods: a call `cap.m(..)` anywhere in
/// a captured binding's selector chain counts as an interior write for
/// the race pass. Atomic RMW ops (`store`, `fetch_*`, `swap` on atomics)
/// are deliberately absent — they are synchronized by construction —
/// except `swap`, which is kept because slice/`mem` swaps dominate the
/// workspace and atomics are not used through captures here.
pub const MUT_METHODS: &[&str] = &[
    "append",
    "clear",
    "drain",
    "extend",
    "fill",
    "insert",
    "pop",
    "pop_back",
    "pop_front",
    "push",
    "push_back",
    "push_front",
    "remove",
    "replace",
    "resize",
    "retain",
    "set",
    "sort",
    "sort_by",
    "sort_unstable",
    "swap",
    "truncate",
];

/// Compound-assignment operators the lexer emits as single tokens.
const COMPOUND_ASSIGN: &[&str] = &["%=", "&=", "*=", "+=", "-=", "/=", "^=", "|="];

/// One write to a captured binding inside a closure body.
#[derive(Debug, Clone)]
pub struct CaptureWrite {
    /// 1-based line of the write.
    pub line: u32,
    /// Token index of the capture use the write goes through.
    pub idx: usize,
    /// Human-readable description, e.g. `` mutating call `.push(..)` ``.
    pub desc: String,
    /// A *binding* write (`x = ..`, `x += ..`, `&mut x`) as opposed to an
    /// *interior* write through a selector chain (`x.field = ..`,
    /// `x.push(..)`, `x[i] = ..`). Binding writes race even when every
    /// access is individually synchronized; interior writes may be
    /// exempted by a covering lock acquisition.
    pub direct: bool,
}

/// One identifier captured by a closure from its enclosing fn.
#[derive(Debug, Clone)]
pub struct Capture {
    /// Captured identifier.
    pub name: String,
    /// 1-based line of the first use inside the closure body.
    pub line: u32,
    /// Token index of the first use.
    pub idx: usize,
    /// Writes to this capture inside the closure body.
    pub writes: Vec<CaptureWrite>,
}

/// One closure expression inside a function body.
#[derive(Debug, Clone)]
pub struct ClosureSite {
    /// 1-based line of the opening `|` (or the `move` keyword).
    pub line: u32,
    /// Token index of the closure expression's first token (`move` or the
    /// opening `|`), used to match the closure to a call argument span.
    pub start: usize,
    /// One past the closure expression's last token.
    pub end: usize,
    /// Declared with the `move` keyword.
    pub is_move: bool,
    /// Closure parameter names.
    pub params: Vec<String>,
    /// Token range `[body_start, body_end)` of the closure body.
    pub body_start: usize,
    /// End of the body range.
    pub body_end: usize,
    /// When the closure is the initializer of a `let` binding
    /// (`let work = || ..;`), the bound name — so passing `work` by name
    /// into a pool entry point can be traced.
    pub bound_name: Option<String>,
    /// Identifiers captured from the enclosing fn.
    pub captures: Vec<Capture>,
}

/// One narrowing `as`-cast inside a function body.
#[derive(Debug, Clone)]
pub struct CastSite {
    /// 1-based line of the `as` keyword.
    pub line: u32,
    /// Token index of the `as` keyword.
    pub as_idx: usize,
    /// Target type, e.g. `u32`.
    pub target: String,
    /// Token index where the cast's source expression starts (the source
    /// range is `[src_start, as_idx)`).
    pub src_start: usize,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: the identifier directly before the argument list
    /// (the last path segment for `a::b::f(..)`).
    pub callee: String,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Token index of the callee identifier.
    pub name_idx: usize,
    /// `recv.callee(..)` (a method call) vs `callee(..)` / `path::callee(..)`.
    pub is_method: bool,
    /// Token range `[start, end)` of the receiver chain, for method calls.
    pub recv: Option<(usize, usize)>,
    /// Token ranges `[start, end)` of each argument (top-level commas).
    pub args: Vec<(usize, usize)>,
}

/// A function item with everything the graph passes need.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Unrestricted `pub` (`pub(crate)` and friends do not count).
    pub is_pub: bool,
    /// Marked `// flcheck: ct-fn`.
    pub is_ct: bool,
    /// First parameter is `self` (an inherent/trait method).
    pub is_method: bool,
    /// Lives inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Parameter names in order (`self` included when present).
    pub params: Vec<String>,
    /// Names marked secret by `// flcheck: secret(..)`.
    pub secrets: Vec<String>,
    /// Locks this fn acquires for its whole body (`// flcheck: lock(..)`).
    pub locks: Vec<String>,
    /// Marked `// flcheck: mac-prim` (performs Montgomery MACs).
    pub is_mac_prim: bool,
    /// Marked `// flcheck: charge-sink` (records simulated-time cost).
    pub is_charge_sink: bool,
    /// `// flcheck: estimates(kernel, arity)` pairings.
    pub estimates: Vec<(String, usize)>,
    /// Marked `// flcheck: det-sink` (produces result bytes that must be
    /// deterministic at any thread count).
    pub is_det_sink: bool,
    /// Marked `// flcheck: det-absorb` (measures nondeterminism without
    /// letting it reach result bytes).
    pub is_det_absorb: bool,
    /// `// flcheck: nondet(..)` descriptions: opaque nondeterminism
    /// sources the token scan cannot see.
    pub nondets: Vec<String>,
    /// Identifiers sanctioned by `// flcheck: widen-ok(..)`: narrowing
    /// casts whose source expression mentions one are value-range safe.
    pub widen_ok: Vec<String>,
    /// `// flcheck: narrow(..)` descriptions: the fn performs intentional
    /// narrowing and all its narrowing casts are sanctioned.
    pub narrows: Vec<String>,
    /// `// flcheck: unit(name, dim)` declarations for params (or the
    /// return value, under the name `return`).
    pub units: Vec<(String, String)>,
    /// `// flcheck: convert(from->to)` declarations: sanctioned dimension
    /// conversions this fn performs.
    pub converts: Vec<(String, String)>,
    /// Token index range `[body_start, body_end)` of the body (inside the
    /// braces).
    pub body_start: usize,
    /// End of the body range (one past the closing brace).
    pub body_end: usize,
    /// Body sub-ranges that belong to *nested* `fn` items (skipped when
    /// scanning this fn's own statements).
    pub nested: Vec<(usize, usize)>,
    /// Calls made by this fn's own statements (nested fns excluded,
    /// `debug_assert*!` spans excluded).
    pub calls: Vec<CallSite>,
    /// Closure expressions in this fn's own statements, with capture
    /// lists and per-capture write classification.
    pub closures: Vec<ClosureSite>,
    /// Narrowing `as`-casts in this fn's own statements
    /// (`debug_assert*!` spans excluded).
    pub casts: Vec<CastSite>,
}

/// A file after item-level parsing.
#[derive(Debug)]
pub struct ParsedFile {
    /// The underlying lexed/analyzed source.
    pub src: SourceFile,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    /// Parses one file (lex + directives + item extraction).
    pub fn parse(rel_path: &str, text: &str) -> ParsedFile {
        let src = SourceFile::parse(rel_path, text);
        let mut fns = Vec::new();
        for (idx, span) in src.fns.iter().enumerate() {
            let nested: Vec<(usize, usize)> = src
                .fns
                .iter()
                .enumerate()
                .filter(|(j, g)| {
                    *j != idx && g.body_start >= span.body_start && g.body_end <= span.body_end
                })
                .map(|(_, g)| (g.body_start, g.body_end))
                .collect();
            let (params, is_method) = parse_params(&src.tokens, span.line, span.body_start);
            fns.push(FnItem {
                name: span.name.clone(),
                line: span.line,
                is_pub: is_public(&src.tokens, span.line, span.body_start),
                is_ct: span.is_ct,
                is_method,
                in_test: src.in_test_region(span.body_start),
                params,
                secrets: span.secrets.clone(),
                locks: span.locks.clone(),
                is_mac_prim: span.is_mac_prim,
                is_charge_sink: span.is_charge_sink,
                estimates: span.estimates.clone(),
                is_det_sink: span.is_det_sink,
                is_det_absorb: span.is_det_absorb,
                nondets: span.nondets.clone(),
                widen_ok: span.widen_ok.clone(),
                narrows: span.narrows.clone(),
                units: span.units.clone(),
                converts: span.converts.clone(),
                body_start: span.body_start,
                body_end: span.body_end,
                nested,
                calls: Vec::new(),
                closures: Vec::new(),
                casts: Vec::new(),
            });
        }
        for f in &mut fns {
            f.calls = collect_calls(&src.tokens, f.body_start, f.body_end, &f.nested);
            f.closures =
                collect_closures(&src.tokens, f.body_start, f.body_end, &f.nested, &f.params);
            f.casts = collect_casts(&src.tokens, f.body_start, f.body_end, &f.nested);
        }
        ParsedFile { src, fns }
    }
}

/// Locates the `fn` keyword token for the fn whose body starts at
/// `body_start`, then decides visibility: a bare `pub` immediately before
/// it (skipping `const` / `unsafe` / `async` / `extern "..."`).
fn is_public(toks: &[Token], fn_line: u32, body_start: usize) -> bool {
    // Find the `fn` keyword: last `fn` ident before the body on the fn line.
    let mut fn_idx = None;
    for (i, t) in toks[..body_start].iter().enumerate().rev() {
        if t.is_ident("fn") && t.line == fn_line {
            fn_idx = Some(i);
            break;
        }
    }
    let Some(mut k) = fn_idx else { return false };
    while k > 0 {
        let prev = &toks[k - 1];
        match prev.kind {
            TokKind::Ident if matches!(prev.text.as_str(), "const" | "unsafe" | "async") => k -= 1,
            TokKind::Lit => k -= 1, // the ABI string of `extern "C"`
            TokKind::Ident if prev.text == "extern" => k -= 1,
            TokKind::Close if prev.text == ")" => {
                // `pub(crate)` / `pub(super)`: restricted, not public.
                return false;
            }
            TokKind::Ident if prev.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Parses the parameter list of the fn whose body starts at `body_start`:
/// finds the signature's `(` by scanning forward from the `fn` keyword
/// over the generic list, then takes the first binding-position identifier
/// of each top-level comma group.
fn parse_params(toks: &[Token], fn_line: u32, body_start: usize) -> (Vec<String>, bool) {
    // Locate the `fn` keyword (same back-scan as `is_public`), then walk
    // forward: the parameter list is the first `(` outside the generic
    // angle brackets — a back-scan from the body brace would stop at a
    // parenthesized return type like `-> (u64, u64)` instead.
    let mut fn_idx = None;
    for (i, t) in toks[..body_start.min(toks.len())].iter().enumerate().rev() {
        if t.is_ident("fn") && t.line == fn_line {
            fn_idx = Some(i);
            break;
        }
    }
    let Some(fi) = fn_idx else {
        return (Vec::new(), false);
    };
    let mut angle = 0i32;
    let mut open = None;
    for (i, t) in toks.iter().enumerate().take(body_start).skip(fi + 1) {
        match t.kind {
            TokKind::Op if t.text == "<" || t.text == "<=" => angle += 1,
            TokKind::Op if t.text == "<<" => angle += 2,
            TokKind::Op if t.text == ">" || t.text == ">=" => angle -= 1,
            TokKind::Op if t.text == ">>" => angle -= 2,
            TokKind::Open if t.text == "(" && angle <= 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return (Vec::new(), false);
    };
    let end = match_brace(toks, open); // one past `)`
    let inner = &toks[open + 1..end.saturating_sub(1)];
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut group_start = 0usize;
    let flush = |range: &[Token], params: &mut Vec<String>| {
        for t in range {
            if t.kind == TokKind::Ident {
                if matches!(t.text.as_str(), "mut" | "ref") {
                    continue;
                }
                // Uppercase identifiers are enum/struct patterns, not names.
                if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
                    continue;
                }
                params.push(t.text.clone());
                return;
            }
        }
    };
    for (i, t) in inner.iter().enumerate() {
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if t.text == "," && depth == 0 => {
                flush(&inner[group_start..i], &mut params);
                group_start = i + 1;
            }
            _ => {}
        }
    }
    if group_start < inner.len() {
        flush(&inner[group_start..], &mut params);
    }
    let is_method = params.first().is_some_and(|p| p == "self");
    (params, is_method)
}

/// Collects call sites in `[start, end)`, skipping nested-fn ranges and
/// `debug_assert*!` spans.
fn collect_calls(
    toks: &[Token],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if let Some(&(_, nend)) = nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
            i = nend;
            continue;
        }
        if let Some(skip) = crate::rules::debug_assert_span(toks, i) {
            i = skip;
            continue;
        }
        let t = &toks[i];
        let is_call = t.kind == TokKind::Ident
            && !KEYWORDS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if !is_call {
            i += 1;
            continue;
        }
        // `name!(..)` is a macro, not a call — but its arguments are still
        // scanned (the walk continues into the group).
        let close = match_brace(toks, i + 1);
        let is_method = i > 0 && toks[i - 1].is_op(".");
        let recv = if is_method {
            receiver_range(toks, i).map(|s| (s, i - 1))
        } else {
            None
        };
        calls.push(CallSite {
            callee: t.text.clone(),
            line: t.line,
            name_idx: i,
            is_method,
            recv,
            args: split_args(toks, i + 2, close.saturating_sub(1)),
        });
        i += 1; // keep scanning inside the argument list for nested calls
    }
    calls
}

/// Splits `[start, end)` (the inside of an argument list) on top-level
/// commas, returning non-empty ranges.
fn split_args(toks: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = start;
    for i in start..end.min(toks.len()) {
        match toks[i].kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if toks[i].text == "," && depth == 0 => {
                if i > arg_start {
                    out.push((arg_start, i));
                }
                arg_start = i + 1;
            }
            _ => {}
        }
    }
    if end > arg_start {
        out.push((arg_start, end));
    }
    out
}

/// Walks back from the `.` before a method name over the receiver chain
/// (`a.b(x).c[i].norm()` → index of `a`), returning the chain's start
/// index.
fn receiver_range(toks: &[Token], method_idx: usize) -> Option<usize> {
    let mut k = method_idx.checked_sub(2)?; // token before the `.`
    let mut start;
    loop {
        match toks[k].kind {
            TokKind::Close => {
                // Jump back over the balanced group (`(..)` / `[..]`).
                let mut depth = 0i32;
                loop {
                    match toks[k].kind {
                        TokKind::Close => depth += 1,
                        TokKind::Open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k = k.checked_sub(1)?;
                }
                start = k;
            }
            TokKind::Ident | TokKind::Num | TokKind::Lit => start = k,
            TokKind::Op if toks[k].text == "?" => {
                // `foo()?.bar()`: the `?` is postfix, keep walking left.
                k = k.checked_sub(1)?;
                continue;
            }
            _ => return None,
        }
        let Some(p) = k.checked_sub(1) else {
            return Some(start);
        };
        let prev = &toks[p];
        if prev.is_op(".") || prev.is_op("::") {
            // `recv.field` / `Path::item`: skip the separator and the
            // segment to its left is part of the chain.
            match p.checked_sub(1) {
                Some(pp) => k = pp,
                None => return Some(start),
            }
        } else if toks[k].kind == TokKind::Open
            && matches!(prev.kind, TokKind::Ident | TokKind::Close)
            && !KEYWORDS.contains(&prev.text.as_str())
        {
            // `name(..)` call or `base[..]` index: the base continues the
            // chain directly, no separator.
            k = p;
        } else {
            return Some(start);
        }
    }
}

/// True when a `|` / `||` token at `i` sits in expression position (a
/// closure head) rather than being a binary-or / or-pattern. The
/// preceding token decides: after a value (plain identifier, number,
/// literal, or a closing bracket) the pipe is an operator; after an
/// opening bracket, another operator, or a non-value keyword (`return`,
/// `else`, `move`, ...) it starts a closure. `self`/`Self` count as
/// values despite being keywords.
fn pipe_is_closure(toks: &[Token], i: usize, lo: usize) -> bool {
    if i == lo || i == 0 {
        return true;
    }
    let prev = &toks[i - 1];
    match prev.kind {
        TokKind::Num | TokKind::Lit | TokKind::Close | TokKind::Lifetime => false,
        TokKind::Ident => {
            KEYWORDS.contains(&prev.text.as_str()) && prev.text != "self" && prev.text != "Self"
        }
        _ => true,
    }
}

/// Collects binding-position identifiers in `[start, end)`: names bound
/// by `let` (including `if let` / `while let` patterns, scanned up to
/// the `=`), and `for` loop variables (scanned up to `in`). Uppercase
/// identifiers (enum variants, types) and `mut`/`ref` are skipped.
fn scan_bindings(toks: &[Token], start: usize, end: usize, out: &mut std::vec::Vec<String>) {
    let mut i = start;
    while i < end.min(toks.len()) {
        let stop_kw: &str = if toks[i].is_ident("let") {
            "="
        } else if toks[i].is_ident("for") {
            "in"
        } else {
            i += 1;
            continue;
        };
        let mut j = i + 1;
        while j < end.min(toks.len()) && j < i + 40 {
            let t = &toks[j];
            if (stop_kw == "=" && (t.is_op("=") || t.is_op(";")))
                || (stop_kw == "in" && t.is_ident("in"))
            {
                break;
            }
            if t.kind == TokKind::Ident
                && !KEYWORDS.contains(&t.text.as_str())
                && !t.text.chars().next().is_some_and(|c| c.is_uppercase())
            {
                out.push(t.text.clone());
            }
            j += 1;
        }
        i = j;
    }
}

/// Scans the selector chain after a capture use at `k` (`.field`,
/// `.method(..)`, `[..]` steps) for an interior write: a terminal
/// `=` / compound assignment, or a call to a [`MUT_METHODS`] method
/// anywhere in the chain. Returns `(line, description)`.
fn interior_write_after(toks: &[Token], k: usize, end: usize) -> Option<(u32, String)> {
    let mut j = k + 1;
    let mut selected = false;
    while j < end.min(toks.len()) {
        let t = &toks[j];
        if t.is_op(".") {
            let m = j + 1;
            if m >= end || toks[m].kind != TokKind::Ident {
                return None;
            }
            if toks.get(m + 1).is_some_and(|n| n.text == "(") {
                if MUT_METHODS.contains(&toks[m].text.as_str()) {
                    return Some((
                        toks[m].line,
                        format!("mutating call `.{}(..)`", toks[m].text),
                    ));
                }
                // A lock acquisition in the chain means everything after
                // it mutates the *guard*, under that very lock — e.g.
                // `shared.deques[w].lock().pop_front()` is synchronized
                // by construction, not a racy write to `shared`.
                if matches!(toks[m].text.as_str(), "lock" | "read" | "write") {
                    return None;
                }
                j = match_brace(toks, m + 1);
            } else {
                j = m + 1;
            }
            selected = true;
        } else if t.kind == TokKind::Open && t.text == "[" {
            j = match_brace(toks, j);
            selected = true;
        } else if selected
            && (t.is_op("=")
                || COMPOUND_ASSIGN.contains(&t.text.as_str())
                || ((t.is_op("<<") || t.is_op(">>"))
                    && toks.get(j + 1).is_some_and(|n| n.is_op("="))))
        {
            return Some((
                toks[k].line,
                "assignment through a selector chain".to_string(),
            ));
        } else {
            return None;
        }
    }
    None
}

/// Classifies the use of captured binding `name` at token `k`: a direct
/// binding write (`x = ..`, `x += ..`, `&mut x`), an interior write
/// through a selector chain, or a read.
pub(crate) fn classify_capture_use(toks: &[Token], k: usize, end: usize) -> Option<CaptureWrite> {
    let name = &toks[k].text;
    // `&mut name`: a mutable reborrow hands out write access.
    if k >= 2 && toks[k - 1].is_ident("mut") && toks[k - 2].is_op("&") {
        return Some(CaptureWrite {
            line: toks[k].line,
            idx: k,
            desc: format!("`&mut {name}` borrow"),
            direct: true,
        });
    }
    if let Some(next) = toks.get(k + 1) {
        let compound_shift =
            (next.is_op("<<") || next.is_op(">>")) && toks.get(k + 2).is_some_and(|n| n.is_op("="));
        if next.is_op("=") || COMPOUND_ASSIGN.contains(&next.text.as_str()) || compound_shift {
            return Some(CaptureWrite {
                line: toks[k].line,
                idx: k,
                desc: format!("assignment `{name} {} ..`", next.text),
                direct: true,
            });
        }
    }
    interior_write_after(toks, k, end).map(|(line, desc)| CaptureWrite {
        line,
        idx: k,
        desc: format!("{desc} on `{name}`"),
        direct: false,
    })
}

/// Collects closure expressions in `[start, end)` (nested-fn ranges
/// excluded), with capture lists. A capture is an identifier used in
/// the closure body that is bound in the enclosing fn (parameter,
/// `let`, or `for` binding) and not rebound by the closure itself.
fn collect_closures(
    toks: &[Token],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
    params: &[String],
) -> Vec<ClosureSite> {
    let mut enclosing: Vec<String> = params.to_vec();
    scan_bindings(toks, start, end, &mut enclosing);
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if let Some(&(_, nend)) = nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
            i = nend;
            continue;
        }
        let t = &toks[i];
        let (pipe_idx, is_move) = if t.is_ident("move")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_op("|") || n.is_op("||"))
        {
            (i + 1, true)
        } else if (t.is_op("|") || t.is_op("||")) && pipe_is_closure(toks, i, start) {
            (i, false)
        } else {
            i += 1;
            continue;
        };
        let expr_start = if is_move { i } else { pipe_idx };
        // Parameter list: `||` carries none; otherwise scan to the
        // closing `|` (bail on statement boundaries — a stray pipe).
        let (cl_params, after_params) = if toks[pipe_idx].is_op("||") {
            (Vec::new(), pipe_idx + 1)
        } else {
            let mut close = None;
            let mut depth = 0i32;
            let mut j = pipe_idx + 1;
            while j < end.min(toks.len()) {
                let t = &toks[j];
                match t.kind {
                    TokKind::Open => depth += 1,
                    TokKind::Close => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokKind::Op if depth == 0 && t.text == "|" => {
                        close = Some(j);
                        break;
                    }
                    TokKind::Op if depth == 0 && (t.text == ";" || t.text == "=>") => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(close) = close else {
                i = pipe_idx + 1;
                continue;
            };
            let mut names = Vec::new();
            let mut group: Vec<&Token> = Vec::new();
            let mut depth = 0i32;
            for t in &toks[pipe_idx + 1..close] {
                match t.kind {
                    TokKind::Open => depth += 1,
                    TokKind::Close => depth -= 1,
                    TokKind::Op if t.text == "," && depth == 0 => {
                        if let Some(first) = first_binding_ident(&group) {
                            names.push(first);
                        }
                        group.clear();
                        continue;
                    }
                    _ => {}
                }
                group.push(t);
            }
            if let Some(first) = first_binding_ident(&group) {
                names.push(first);
            }
            (names, close + 1)
        };
        // Body: a `{ .. }` block, or a bare expression up to a top-level
        // `,` / `;` / closing bracket.
        let (body_start, body_end) = if toks
            .get(after_params)
            .is_some_and(|t| t.kind == TokKind::Open && t.text == "{")
        {
            (after_params + 1, match_brace(toks, after_params) - 1)
        } else {
            let mut depth = 0i32;
            let mut j = after_params;
            while j < end.min(toks.len()) {
                let t = &toks[j];
                match t.kind {
                    TokKind::Open => depth += 1,
                    TokKind::Close => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    TokKind::Op if depth == 0 && (t.text == "," || t.text == ";") => break,
                    _ => {}
                }
                j += 1;
            }
            (after_params, j)
        };
        let bound_name = if expr_start >= 2
            && toks[expr_start - 1].is_op("=")
            && toks[expr_start - 2].kind == TokKind::Ident
            && expr_start >= 3
            && (toks[expr_start - 3].is_ident("let") || toks[expr_start - 3].is_ident("mut"))
        {
            Some(toks[expr_start - 2].text.clone())
        } else {
            None
        };
        // Closure-local bindings shadow enclosing ones.
        let mut locals: Vec<String> = cl_params.clone();
        scan_bindings(toks, body_start, body_end, &mut locals);
        let mut captures: Vec<Capture> = Vec::new();
        let mut k = body_start;
        while k < body_end.min(toks.len()) {
            let u = &toks[k];
            let is_use = u.kind == TokKind::Ident
                && !KEYWORDS.contains(&u.text.as_str())
                && !u.text.chars().next().is_some_and(|c| c.is_uppercase())
                && enclosing.contains(&u.text)
                && !locals.contains(&u.text)
                && !(k > 0 && (toks[k - 1].is_op(".") || toks[k - 1].is_op("::")))
                && !toks
                    .get(k + 1)
                    .is_some_and(|n| n.is_op("::") || n.text == "(");
            if is_use {
                let write = classify_capture_use(toks, k, body_end);
                match captures.iter_mut().find(|c| c.name == u.text) {
                    Some(c) => c.writes.extend(write),
                    None => captures.push(Capture {
                        name: u.text.clone(),
                        line: u.line,
                        idx: k,
                        writes: write.into_iter().collect(),
                    }),
                }
            }
            k += 1;
        }
        out.push(ClosureSite {
            line: toks[pipe_idx].line,
            start: expr_start,
            end: body_end + usize::from(toks.get(body_end).is_some_and(|t| t.text == "}")),
            is_move,
            params: cl_params,
            body_start,
            body_end,
            bound_name,
            captures,
        });
        // Continue inside the body so nested closures are recorded too.
        i = body_start.max(pipe_idx + 1);
    }
    out
}

/// First binding-position identifier of a closure parameter group
/// (mirrors the `flush` logic of [`parse_params`]).
fn first_binding_ident(group: &[&Token]) -> Option<String> {
    for t in group {
        if t.kind == TokKind::Ident {
            if matches!(t.text.as_str(), "mut" | "ref")
                || t.text.chars().next().is_some_and(|c| c.is_uppercase())
                || KEYWORDS.contains(&t.text.as_str())
            {
                continue;
            }
            return Some(t.text.clone());
        }
        // A `:` starts the type ascription — nothing binds after it.
        if t.is_op(":") {
            break;
        }
    }
    None
}

/// Collects narrowing `as`-casts in `[start, end)` (nested-fn ranges and
/// `debug_assert*!` spans excluded), with the source-expression range.
fn collect_casts(
    toks: &[Token],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
) -> Vec<CastSite> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if let Some(&(_, nend)) = nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
            i = nend;
            continue;
        }
        if let Some(skip) = crate::rules::debug_assert_span(toks, i) {
            i = skip;
            continue;
        }
        let t = &toks[i];
        let is_narrow_cast = t.is_ident("as")
            && toks.get(i + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && NARROW_TARGETS.contains(&n.text.as_str())
            })
            && i > start; // `as` first in a body is `use .. as ..` debris
        if is_narrow_cast {
            out.push(CastSite {
                line: t.line,
                as_idx: i,
                target: toks[i + 1].text.clone(),
                src_start: cast_source_start(toks, i, start),
            });
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Walks back from an `as` keyword over the cast's source expression
/// (identifiers, numbers, literals, `.`/`::`/`?` chains, balanced
/// groups, and chained `as` casts), returning its start index.
fn cast_source_start(toks: &[Token], as_idx: usize, lo: usize) -> usize {
    let mut start = as_idx;
    let mut j = as_idx;
    while j > lo {
        let t = &toks[j - 1];
        match t.kind {
            TokKind::Close => {
                // Jump back over the balanced group.
                let mut depth = 0i32;
                let mut k = j - 1;
                loop {
                    match toks[k].kind {
                        TokKind::Close => depth += 1,
                        TokKind::Open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    match k.checked_sub(1) {
                        Some(p) if p >= lo => k = p,
                        _ => return start,
                    }
                }
                start = k;
                j = k;
            }
            TokKind::Num | TokKind::Lit => {
                start = j - 1;
                j -= 1;
            }
            TokKind::Ident
                if !KEYWORDS.contains(&t.text.as_str()) || t.text == "as" || t.text == "self" =>
            {
                start = j - 1;
                j -= 1;
            }
            TokKind::Op if t.text == "." || t.text == "::" || t.text == "?" => {
                j -= 1;
            }
            _ => return start,
        }
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/core/src/x.rs", src)
    }

    #[test]
    fn signatures_params_and_visibility() {
        let src = "\
pub fn free(a: u64, mut b: &[u8]) -> u64 { a }
pub(crate) fn scoped(x: u8) {}
impl T {
    pub fn method(&self, count: usize) -> u8 { 0 }
    fn helper<R: Rng + ?Sized>(rng: &mut R, bits: u32) {}
}
";
        let p = parsed(src);
        let names: Vec<(&str, bool, bool, Vec<&str>)> = p
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.is_pub,
                    f.is_method,
                    f.params.iter().map(|s| s.as_str()).collect(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", true, false, vec!["a", "b"]),
                ("scoped", false, false, vec!["x"]),
                ("method", true, true, vec!["self", "count"]),
                ("helper", false, false, vec!["rng", "bits"]),
            ]
        );
    }

    #[test]
    fn tuple_return_type_does_not_confuse_params() {
        let p = parsed("fn pair(lo: u64, hi: u64) -> (u64, u64) { (lo, hi) }");
        assert_eq!(p.fns[0].params, vec!["lo", "hi"]);
    }

    #[test]
    fn calls_free_path_method_and_macro() {
        let src = "\
fn f(v: &[u8]) {
    helper(v);
    crate::util::norm(v, 2);
    v.first();
    vec![1, 2];
    g(h(v));
}
";
        let p = parsed(src);
        let calls: Vec<(&str, bool)> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.is_method))
            .collect();
        // `vec!` is a macro (no `(`-follow on the bang pattern — `vec![`),
        // nested `h(v)` is its own call.
        assert_eq!(
            calls,
            vec![
                ("helper", false),
                ("norm", false),
                ("first", true),
                ("g", false),
                ("h", false),
            ]
        );
    }

    #[test]
    fn call_args_split_on_top_level_commas() {
        let p = parsed("fn f() { g(a, h(b, c), d + e); }");
        let g = &p.fns[0].calls[0];
        assert_eq!(g.callee, "g");
        assert_eq!(g.args.len(), 3);
        let arg_texts: Vec<String> = g
            .args
            .iter()
            .map(|&(s, e)| {
                p.src.tokens[s..e]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert_eq!(arg_texts, vec!["a", "h ( b , c )", "d + e"]);
    }

    #[test]
    fn method_receiver_chain_is_recovered() {
        let p = parsed("fn f(x: &T) { x.inner().data[0].norm(); }");
        let norm = p.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "norm")
            .expect("norm");
        let (s, e) = norm.recv.expect("receiver");
        let text: Vec<&str> = p.src.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            text,
            vec!["x", ".", "inner", "(", ")", ".", "data", "[", "0", "]"]
        );
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_fn() {
        let src = "fn outer() { fn inner() { deep(); } inner(); }";
        let p = parsed(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_calls: Vec<&str> = outer.calls.iter().map(|c| c.callee.as_str()).collect();
        let inner_calls: Vec<&str> = inner.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(outer_calls, vec!["inner"]);
        assert_eq!(inner_calls, vec!["deep"]);
    }

    #[test]
    fn debug_assert_calls_are_dropped() {
        let p = parsed("fn f(x: u64) { debug_assert!(x.leaky() == probe(x)); real(x); }");
        let calls: Vec<&str> = p.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(calls, vec!["real"]);
    }

    #[test]
    fn test_region_fns_are_flagged() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { lib(); }
}
";
        let p = parsed(src);
        assert!(!p.fns.iter().find(|f| f.name == "lib").unwrap().in_test);
        assert!(p.fns.iter().find(|f| f.name == "t").unwrap().in_test);
    }

    #[test]
    fn move_closure_records_capture_and_compound_write() {
        let src = "\
fn f(items: &[u64]) {
    let mut total = 0u64;
    run(move |x| {
        total += x;
    });
}
";
        let p = parsed(src);
        let f = &p.fns[0];
        assert_eq!(f.closures.len(), 1);
        let c = &f.closures[0];
        assert!(c.is_move);
        assert_eq!(c.params, vec!["x"]);
        assert_eq!(c.captures.len(), 1);
        let cap = &c.captures[0];
        assert_eq!(cap.name, "total");
        assert_eq!(cap.writes.len(), 1);
        assert!(cap.writes[0].direct);
        assert_eq!(cap.writes[0].desc, "assignment `total += ..`");
    }

    #[test]
    fn binary_or_is_not_a_closure() {
        let p = parsed("fn f(a: u64, b: u64) -> u64 { let c = a | b; c || a > 0; a }");
        assert!(p.fns[0].closures.is_empty());
    }

    #[test]
    fn closure_params_and_locals_are_not_captures() {
        let src = "\
fn f(seed: u64) {
    run(|x, mut acc| {
        let local = x + seed;
        acc += local;
    });
}
";
        let p = parsed(src);
        let c = &p.fns[0].closures[0];
        assert_eq!(c.params, vec!["x", "acc"]);
        let names: Vec<&str> = c.captures.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["seed"], "x/acc/local are closure-local");
        assert!(c.captures[0].writes.is_empty(), "seed is only read");
    }

    #[test]
    fn interior_writes_through_selector_chains_are_classified() {
        let src = "\
fn f() {
    let mut table = Table::new();
    run(|| {
        table.rows.push(1);
        table.count = 2;
        table.name();
    });
}
";
        let p = parsed(src);
        let cap = &p.fns[0].closures[0].captures[0];
        assert_eq!(cap.name, "table");
        let descs: Vec<&str> = cap.writes.iter().map(|w| w.desc.as_str()).collect();
        assert_eq!(
            descs,
            vec![
                "mutating call `.push(..)` on `table`",
                "assignment through a selector chain on `table`",
            ],
            "the read-only `.name()` probe must not classify as a write"
        );
        assert!(cap.writes.iter().all(|w| !w.direct));
    }

    #[test]
    fn mut_borrow_of_a_capture_is_a_direct_write() {
        let src = "\
fn f() {
    let mut sums = Vec::new();
    run(|| helper(&mut sums));
}
";
        let p = parsed(src);
        let cap = &p.fns[0].closures[0].captures[0];
        assert_eq!(cap.writes.len(), 1);
        assert!(cap.writes[0].direct);
        assert_eq!(cap.writes[0].desc, "`&mut sums` borrow");
    }

    #[test]
    fn let_bound_closures_record_their_binding_name() {
        let src = "\
fn f() {
    let work = || step();
    let mut again = move || step();
    run(work);
}
";
        let p = parsed(src);
        let bounds: Vec<Option<&str>> = p.fns[0]
            .closures
            .iter()
            .map(|c| c.bound_name.as_deref())
            .collect();
        assert_eq!(bounds, vec![Some("work"), Some("again")]);
    }

    #[test]
    fn narrowing_casts_record_target_and_source_span() {
        let src = "\
fn f(n: usize, w: u64) -> u32 {
    let a = n as u32;
    let b = w as u64;
    helper(n) as u16;
    a
}
";
        let p = parsed(src);
        let casts = &p.fns[0].casts;
        assert_eq!(casts.len(), 2, "the widening `as u64` is not recorded");
        assert_eq!(casts[0].target, "u32");
        assert_eq!(casts[0].line, 2);
        assert_eq!(casts[1].target, "u16");
        assert_eq!(casts[1].line, 4);
        // The second cast's source spans the whole `helper(n)` call.
        let texts: Vec<&str> = p.src.tokens[casts[1].src_start..casts[1].as_idx]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(texts, vec!["helper", "(", "n", ")"]);
    }

    #[test]
    fn debug_assert_and_nested_fn_casts_are_dropped() {
        let src = "\
fn outer(n: usize) -> u32 {
    debug_assert!(n as u32 > 0);
    fn inner(m: usize) -> u8 { m as u8 }
    n as u32
}
";
        let p = parsed(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(
            outer.casts.len(),
            1,
            "debug_assert + nested-fn casts excluded"
        );
        assert_eq!(outer.casts[0].line, 4);
        assert_eq!(inner.casts.len(), 1);
        assert_eq!(inner.casts[0].target, "u8");
    }
}
