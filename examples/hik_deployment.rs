//! The paper's Fig.-5 deployment scenario: several departments of one
//! organization each load their own data and jointly train through the
//! FLBooster platform — department→FLBooster→department traffic is
//! accelerated by GPU-HE and batch compression, and no raw data crosses
//! department boundaries.
//!
//! ```text
//! cargo run --release --example hik_deployment
//! ```

use fl::data::generators::DatasetSpec;
use fl::models::HomoLr;
use fl::train::{train, FlEnv, TrainConfig};
use fl::{metrics, Accelerator, BackendKind};
use he::paillier::PaillierKeyPair;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Six departments (e.g. regional business units) with the same
    // feature schema and disjoint customers.
    const DEPARTMENTS: u32 = 6;
    let mut spec = DatasetSpec::synthetic();
    spec.features = 48;
    spec.nnz_per_row = 48;
    spec.instances = 600;
    let dataset = spec.generate(1.0);

    println!(
        "FLBooster deployment: {DEPARTMENTS} departments, {} joint instances",
        dataset.len()
    );

    let cfg = TrainConfig {
        batch_size: 100,
        max_epochs: 6,
        learning_rate: 0.2,
        ..TrainConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0x411);
    let keys = PaillierKeyPair::generate(&mut rng, 256).expect("keygen");

    let accel = Accelerator::new(BackendKind::FlBooster, keys, DEPARTMENTS).expect("backend");
    let env = FlEnv::new(accel, cfg.seed);
    let mut model = HomoLr::new(&dataset, DEPARTMENTS, &cfg);
    let report = train(&mut model, &env, &cfg).expect("training");

    // Evaluate the joint model on the union of department data.
    let preds: Vec<f64> = dataset
        .rows
        .iter()
        .map(|r| {
            let z = r.dot(model.weights());
            1.0 / (1.0 + (-z).exp())
        })
        .collect();
    let auc = metrics::auc(&preds, &dataset.labels);
    let acc = metrics::accuracy(&preds, &dataset.labels);

    println!(
        "\ntraining: {} epochs, final loss {:.4}",
        report.epochs.len(),
        report.final_loss()
    );
    println!("joint model quality: AUC {auc:.3}, accuracy {acc:.3}");

    let b = report.total_breakdown();
    let (others, he, comm) = b.shares();
    println!(
        "cost profile: {:.3} sim s total (others {:.1}% | HE {:.1}% | comm {:.1}%)",
        b.total_seconds(),
        others * 100.0,
        he * 100.0,
        comm * 100.0
    );
    let net = env.network.stats();
    println!(
        "traffic through the platform: {} messages, {} ciphertexts, {:.1} KiB",
        net.messages,
        net.ciphertexts,
        net.bytes as f64 / 1024.0
    );
    println!(
        "privacy: every cross-department value was one of those {} Paillier ciphertexts.",
        net.ciphertexts
    );

    assert!(auc > 0.7, "the joint model should clearly beat chance");
}
