//! Fixture: allow directives suppress every finding the sibling
//! fixtures raise.

// flcheck: allow-file(pf-index)
// flcheck: lock-order(table < counters)

// flcheck: ct-fn
pub fn masked_select(secret: u64, a: u64, b: u64) -> u64 {
    // flcheck: allow(ct-branch, ct-compare)
    if secret == 1 {
        // flcheck: allow(ct-return)
        return a;
    }
    // flcheck: allow(ct-compare, ct-shortcircuit)
    let both = secret != 0 && a < b;
    let _ = both;
    b
}

pub fn checked(xs: &[u64]) -> u64 {
    // flcheck: allow(pf-unwrap)
    let head = xs.first().unwrap();
    // flcheck: allow(pf-expect)
    let tail = xs.last().expect("non-empty");
    // flcheck: allow(pf-assert)
    assert!(xs.len() > 1, "need two");
    head + tail + xs[0]
}

pub struct Dev {
    table: Mutex<u64>,
    counters: Mutex<u64>,
}

impl Dev {
    pub fn backwards(&self) -> u64 {
        let c = self.counters.lock();
        // flcheck: allow(ld-order)
        let t = self.table.lock();
        *c + *t
    }

    pub fn waits(&self, rx: &Receiver<u64>) -> u64 {
        let g = self.table.lock();
        // flcheck: allow(ld-wait)
        let v = rx.recv();
        *g + v
    }
}
