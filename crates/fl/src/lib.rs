//! The federated-learning substrate for the FLBooster reproduction.
//!
//! The paper evaluates FLBooster by plugging it into FATE and training
//! four standard FL models on three datasets (Sec. VI). This crate
//! provides everything that evaluation needs, from scratch:
//!
//! - [`data`]: deterministic dataset generators with the statistical
//!   profiles of RCV1 / Avazu / LEAF-Synthetic, plus horizontal and
//!   vertical partitioners.
//! - [`models`]: the four benchmark models — Homo LR, Hetero LR, Hetero
//!   SBT (SecureBoost), and Hetero NN (split network) — implemented as
//!   federated training protocols over encrypted exchanges.
//! - [`optim`]: SGD and Adam with L2 regularization (paper Sec. VI-B
//!   parameter settings).
//! - [`net`]: a byte- and message-accurate network simulator
//!   (Gigabit-Ethernet profile, per-ciphertext serialization overheads,
//!   optional packet loss with retry).
//! - [`backend`]: the acceleration systems under test — **FATE** (CPU HE,
//!   no compression), **HAFLO** (GPU HE, no compression), **FLBooster**
//!   (GPU HE + batch compression), and the two ablations `w/o GHE` and
//!   `w/o BC` of the paper's Table V.
//! - [`train`]: the epoch loop with the HE / communication / other time
//!   attribution of the paper's Fig. 1 and Table VI.
//! - [`metrics`]: convergence bias (paper Eq. 15), throughput, and epoch
//!   summaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod data;
pub mod engine;
mod error;
pub mod metrics;
pub mod models;
pub mod net;
pub mod optim;
pub mod topology;
pub mod train;

pub use backend::{Accelerator, BackendKind};
pub use engine::{EngineConfig, RoundOutcome};
pub use error::{Error, Result};
pub use metrics::{EpochBreakdown, TrainReport};
pub use net::{Network, NetworkConfig};
pub use topology::AggregationTopology;

/// Saturating `usize -> u32` for participant/sample/feature counts on
/// the codec and accounting paths. A plain `as u32` silently wraps past
/// 2^32, which would undersize guard bits and mis-scale dequantized
/// sums with no error; saturating instead makes the downstream capacity
/// checks (`check_terms`, quantizer sizing) fail loudly.
pub(crate) fn count_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod count_tests {
    use super::count_u32;

    #[test]
    fn count_u32_is_exact_below_and_saturates_above() {
        assert_eq!(count_u32(0), 0);
        assert_eq!(count_u32(7), 7);
        assert_eq!(count_u32(u32::MAX as usize), u32::MAX);
        // Past 2^32 a wrapping cast would fold back to small values
        // (e.g. 2^32 + 5 -> 5) and silently corrupt term counts;
        // saturation pins them at the ceiling instead.
        assert_eq!(count_u32(u32::MAX as usize + 1), u32::MAX);
        assert_eq!(count_u32(usize::MAX), u32::MAX);
    }
}
