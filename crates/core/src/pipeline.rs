//! The FLBooster platform object and its pipelined data processing
//! (paper Sec. V-A, Fig. 4).
//!
//! An encryption pass runs: *load gradients → data conversion →
//! encode/quantize → pad/pack (batch compression) → copy to GPU → compute
//! → copy back*; decryption runs the mirror image. [`FlBooster`] bundles
//! the key pair, the simulated device, the GPU-HE backend, and the batch
//! codec, and reports per-stage timing so the FL trainer can attribute
//! epoch time to HE / communication / other exactly as the paper's Table
//! VI does.

use std::sync::Arc;
use std::time::Instant;

use codec::{BatchCodec, QuantizerConfig};
use gpu_sim::{Device, DeviceConfig};
use he::ghe::{GpuHe, HeTiming};
use he::paillier::{Ciphertext, ObfuscatorPool, PaillierKeyPair};
use he::HeBackend;
use mpint::Natural;
use rand::Rng;

use crate::Result;

/// Per-call stage report (the paper's Fig. 4 stages).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineReport {
    /// Wall seconds in data conversion + encode/quantize/pack (host side;
    /// the paper's "Others" component is dominated by this).
    pub codec_seconds: f64,
    /// HE timing (simulated device seconds, ops, items).
    pub he: HeTiming,
    /// Number of ciphertexts produced/consumed.
    pub ciphertexts: usize,
    /// Total ciphertext bytes (what communication would carry).
    pub ciphertext_bytes: u64,
    /// Gradient components carried.
    pub values: usize,
}

impl PipelineReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &PipelineReport) {
        self.codec_seconds += other.codec_seconds;
        self.he.merge(&other.he);
        self.ciphertexts += other.ciphertexts;
        self.ciphertext_bytes += other.ciphertext_bytes;
        self.values += other.values;
    }
}

/// Builder for [`FlBooster`].
#[derive(Debug, Clone)]
pub struct FlBoosterBuilder {
    key_bits: u32,
    participants: u32,
    quantizer: Option<QuantizerConfig>,
    device_config: DeviceConfig,
    batch_compression: bool,
    chunk_size: usize,
}

impl Default for FlBoosterBuilder {
    fn default() -> Self {
        FlBoosterBuilder {
            key_bits: 1024,
            participants: 4,
            quantizer: None,
            device_config: DeviceConfig::rtx3090(),
            batch_compression: true,
            chunk_size: 4096,
        }
    }
}

impl FlBoosterBuilder {
    /// Paillier key size in bits (default 1024).
    pub fn key_bits(mut self, bits: u32) -> Self {
        self.key_bits = bits;
        self
    }

    /// Number of FL participants (fixes the guard bits; default 4).
    pub fn participants(mut self, p: u32) -> Self {
        self.participants = p;
        self
    }

    /// Overrides the quantizer configuration (default:
    /// [`QuantizerConfig::paper_default`]).
    pub fn quantizer(mut self, cfg: QuantizerConfig) -> Self {
        self.quantizer = Some(cfg);
        self
    }

    /// Overrides the simulated device (default: RTX 3090).
    pub fn device_config(mut self, cfg: DeviceConfig) -> Self {
        self.device_config = cfg;
        self
    }

    /// Disables batch compression (the paper's `w/o BC` ablation: one
    /// gradient component per ciphertext).
    pub fn without_batch_compression(mut self) -> Self {
        self.batch_compression = false;
        self
    }

    /// Kernel chunk size for the pipelined stream (default 4096 items).
    pub fn chunk_size(mut self, items: usize) -> Self {
        self.chunk_size = items.max(1);
        self
    }

    /// Generates keys and assembles the platform.
    // Platform assembly runs once before training; the only MAC work is
    // key generation, which the cost model excludes (see
    // PaillierKeyPair::generate).
    // flcheck: allow(uncharged-work) — one-time platform assembly
    pub fn build<R: Rng + ?Sized>(self, rng: &mut R) -> Result<FlBooster> {
        let keys = PaillierKeyPair::generate(rng, self.key_bits)?;
        self.build_with_keys(keys)
    }

    /// Assembles the platform around existing keys (deterministic
    /// harnesses reuse one key pair across backends).
    pub fn build_with_keys(self, keys: PaillierKeyPair) -> Result<FlBooster> {
        let qcfg = self
            .quantizer
            .unwrap_or_else(|| QuantizerConfig::paper_default(self.participants));
        let codec = BatchCodec::new(qcfg, self.key_bits)?;
        let device = Arc::new(Device::new(self.device_config));
        let pool = Arc::new(ObfuscatorPool::new(&keys.public));
        let ghe = GpuHe::new(Arc::clone(&device)).with_pool(Arc::clone(&pool));
        Ok(FlBooster {
            keys,
            device,
            ghe,
            codec,
            batch_compression: self.batch_compression,
            chunk_size: self.chunk_size,
            pool,
        })
    }
}

/// The assembled FLBooster platform.
pub struct FlBooster {
    /// The Paillier key pair.
    pub keys: PaillierKeyPair,
    /// The simulated GPU.
    pub device: Arc<Device>,
    /// The GPU-HE backend bound to [`FlBooster::device`].
    pub ghe: GpuHe,
    /// The encoding-quantization + batch-compression codec.
    pub codec: BatchCodec,
    batch_compression: bool,
    chunk_size: usize,
    /// Blinding-factor pool feeding [`FlBooster::ghe`]'s encrypt path.
    pool: Arc<ObfuscatorPool>,
}

impl FlBooster {
    /// Starts a builder with paper defaults.
    pub fn builder() -> FlBoosterBuilder {
        FlBoosterBuilder::default()
    }

    /// Whether batch compression is active.
    pub fn batch_compression(&self) -> bool {
        self.batch_compression
    }

    /// Encryption pipeline (paper Fig. 4 ①–④): quantize, pack, encrypt in
    /// chunks through the device stream.
    pub fn encrypt_gradients(
        &self,
        gradients: &[f64],
        seed: u64,
    ) -> Result<(Vec<Ciphertext>, PipelineReport)> {
        // Stopwatch feeds PipelineReport.codec_seconds (timing metadata);
        // ciphertext bytes derive only from gradients and the seed.
        // flcheck: allow(nondet-in-result)
        let t0 = Instant::now();
        let plaintexts: Vec<Natural> = if self.batch_compression {
            self.codec.pack(gradients)?
        } else {
            // w/o BC: one quantized value per plaintext.
            gradients
                .iter()
                .map(|&g| self.codec.quantizer().quantize(g).map(Natural::from))
                .collect::<codec::Result<_>>()?
        };
        let codec_seconds = t0.elapsed().as_secs_f64();

        let mut cts = Vec::with_capacity(plaintexts.len());
        let mut he = HeTiming::default();
        for (i, chunk) in plaintexts.chunks(self.chunk_size).enumerate() {
            let chunk_seed = seed ^ ((i as u64) << 32);
            // Pre-generate the chunk's (r, r^n) pairs: same deterministic
            // r derivation as the inline path (ciphertexts unchanged),
            // with the r^n exponentiations amortized off the hot path.
            self.pool
                .prefill_batch(&self.keys.public, chunk_seed, chunk.len())?;
            let (mut chunk_cts, t) =
                self.ghe
                    .encrypt_batch(&self.keys.public, chunk, chunk_seed)?;
            he.merge(&t);
            cts.append(&mut chunk_cts);
        }
        let bytes: u64 = cts.iter().map(|c| c.wire_size_bytes() as u64).sum();
        let report = PipelineReport {
            codec_seconds,
            he,
            ciphertexts: cts.len(),
            ciphertext_bytes: bytes,
            values: gradients.len(),
        };
        Ok((cts, report))
    }

    /// Homomorphic aggregation (paper Fig. 4 ⑩–⑫): folds every batch into
    /// the first with pairwise ciphertext multiplication.
    pub fn aggregate(
        &self,
        batches: &[Vec<Ciphertext>],
    ) -> Result<(Vec<Ciphertext>, PipelineReport)> {
        let mut iter = batches.iter();
        let mut acc = iter.next().cloned().unwrap_or_default();
        let mut he = HeTiming::default();
        for batch in iter {
            let (next, t) = self.ghe.add_batch(&self.keys.public, &acc, batch)?;
            he.merge(&t);
            acc = next;
        }
        let report = PipelineReport {
            codec_seconds: 0.0,
            he,
            ciphertexts: acc.len(),
            ciphertext_bytes: acc.iter().map(|c| c.wire_size_bytes() as u64).sum(),
            values: 0,
        };
        Ok((acc, report))
    }

    /// Weighted homomorphic aggregation: slot `j` of the result holds
    /// `E(Σᵢ weights[i] · mᵢⱼ)`, computed as one Straus
    /// multi-exponentiation per slot with a single shared squaring chain
    /// across the batch (replacing a per-party `scalar_mul` + `add`
    /// loop). Weights are public sample counts.
    pub fn aggregate_weighted(
        &self,
        batches: &[Vec<Ciphertext>],
        weights: &[u64],
    ) -> Result<(Vec<Ciphertext>, PipelineReport)> {
        let (acc, he) = self
            .ghe
            .weighted_aggregate(&self.keys.public, batches, weights)?;
        let report = PipelineReport {
            codec_seconds: 0.0,
            he,
            ciphertexts: acc.len(),
            ciphertext_bytes: acc.iter().map(|c| c.wire_size_bytes() as u64).sum(),
            values: 0,
        };
        Ok((acc, report))
    }

    /// Decryption pipeline (paper Fig. 4 ⑤–⑨): decrypt in chunks, then
    /// unpack/dequantize `count` values, each slot holding a sum of
    /// `terms` contributions.
    pub fn decrypt_gradients(
        &self,
        ciphertexts: &[Ciphertext],
        count: usize,
        terms: u32,
    ) -> Result<(Vec<f64>, PipelineReport)> {
        let mut plaintexts = Vec::with_capacity(ciphertexts.len());
        let mut he = HeTiming::default();
        for chunk in ciphertexts.chunks(self.chunk_size) {
            let (mut ms, t) = self.ghe.decrypt_batch(&self.keys.private, chunk)?;
            he.merge(&t);
            plaintexts.append(&mut ms);
        }

        // Stopwatch feeds PipelineReport.codec_seconds (timing metadata);
        // decoded values derive only from the plaintexts.
        // flcheck: allow(nondet-in-result)
        let t0 = Instant::now();
        let values: Vec<f64> = if self.batch_compression {
            self.codec.unpack_sums(&plaintexts, count, terms)?
        } else {
            self.codec.quantizer().check_terms(terms)?;
            if count > plaintexts.len() {
                return Err(codec::Error::NotEnoughData {
                    requested: count,
                    available: plaintexts.len(),
                }
                .into());
            }
            plaintexts
                .iter()
                .take(count)
                .map(|m| self.codec.quantizer().dequantize_sum(m.low_u64(), terms))
                .collect()
        };
        let codec_seconds = t0.elapsed().as_secs_f64();

        let report = PipelineReport {
            codec_seconds,
            he,
            ciphertexts: ciphertexts.len(),
            ciphertext_bytes: ciphertexts.iter().map(|c| c.wire_size_bytes() as u64).sum(),
            values: count,
        };
        Ok((values, report))
    }

    /// Ciphertexts needed to carry `count` gradient components under the
    /// current compression setting.
    pub fn ciphertexts_for(&self, count: usize) -> usize {
        if self.batch_compression {
            self.codec.words_for(count)
        } else {
            count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn platform(bits: u32) -> FlBooster {
        let mut rng = ChaCha8Rng::seed_from_u64(0xB00);
        FlBooster::builder()
            .key_bits(bits)
            .participants(4)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let p = platform(256);
        let grads: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.7).sin() * 0.9).collect();
        let (cts, enc) = p.encrypt_gradients(&grads, 1).unwrap();
        assert!(
            enc.ciphertexts < grads.len(),
            "compression must shrink ciphertext count"
        );
        let (back, dec) = p.decrypt_gradients(&cts, grads.len(), 1).unwrap();
        let bound = p.codec.quantizer().max_error();
        for (a, b) in grads.iter().zip(&back) {
            assert!((a - b).abs() <= bound);
        }
        assert!(dec.he.sim_seconds > 0.0);
    }

    #[test]
    fn aggregation_of_four_participants() {
        let p = platform(256);
        let parties: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                (0..30)
                    .map(|i| ((k * 30 + i) as f64 * 0.005) - 0.15)
                    .collect()
            })
            .collect();
        let batches: Vec<Vec<Ciphertext>> = parties
            .iter()
            .enumerate()
            .map(|(k, g)| p.encrypt_gradients(g, k as u64).unwrap().0)
            .collect();
        let (agg, _) = p.aggregate(&batches).unwrap();
        let (sums, _) = p.decrypt_gradients(&agg, 30, 4).unwrap();
        let bound = 4.0 * p.codec.quantizer().max_error();
        for i in 0..30 {
            let expected: f64 = parties.iter().map(|g| g[i]).sum();
            assert!((sums[i] - expected).abs() <= bound, "component {i}");
        }
    }

    #[test]
    fn without_bc_uses_one_ciphertext_per_value() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let p = FlBooster::builder()
            .key_bits(256)
            .participants(2)
            .without_batch_compression()
            .build(&mut rng)
            .unwrap();
        let grads = vec![0.5, -0.5, 0.25];
        let (cts, _) = p.encrypt_gradients(&grads, 0).unwrap();
        assert_eq!(cts.len(), 3);
        let (back, _) = p.decrypt_gradients(&cts, 3, 1).unwrap();
        for (a, b) in grads.iter().zip(&back) {
            assert!((a - b).abs() <= p.codec.quantizer().max_error());
        }
    }

    #[test]
    fn bc_reduces_ciphertext_bytes() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let keys = PaillierKeyPair::generate(&mut rng, 256).unwrap();
        let with = FlBooster::builder()
            .key_bits(256)
            .build_with_keys(keys.clone())
            .unwrap();
        let without = FlBooster::builder()
            .key_bits(256)
            .without_batch_compression()
            .build_with_keys(keys)
            .unwrap();
        let grads: Vec<f64> = (0..64).map(|i| (i as f64 / 64.0) - 0.5).collect();
        let (_, r1) = with.encrypt_gradients(&grads, 0).unwrap();
        let (_, r2) = without.encrypt_gradients(&grads, 0).unwrap();
        assert!(
            r1.ciphertext_bytes * 4 < r2.ciphertext_bytes,
            "BC bytes {} !<< plain bytes {}",
            r1.ciphertext_bytes,
            r2.ciphertext_bytes
        );
        assert!(r1.he.items < r2.he.items, "BC must also cut HE operations");
    }

    #[test]
    fn ciphertexts_for_matches_encrypt() {
        let p = platform(256);
        let grads = vec![0.1; 100];
        let (cts, _) = p.encrypt_gradients(&grads, 0).unwrap();
        assert_eq!(cts.len(), p.ciphertexts_for(100));
    }

    #[test]
    fn chunked_encryption_matches_single_chunk() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let keys = PaillierKeyPair::generate(&mut rng, 256).unwrap();
        let small_chunks = FlBooster::builder()
            .key_bits(256)
            .chunk_size(2)
            .build_with_keys(keys.clone())
            .unwrap();
        let one_chunk = FlBooster::builder()
            .key_bits(256)
            .build_with_keys(keys)
            .unwrap();
        let grads: Vec<f64> = (0..40).map(|i| (i as f64 * 0.03) - 0.5).collect();
        let (c1, _) = small_chunks.encrypt_gradients(&grads, 123).unwrap();
        let (back1, _) = small_chunks.decrypt_gradients(&c1, 40, 1).unwrap();
        let (c2, _) = one_chunk.encrypt_gradients(&grads, 123).unwrap();
        let (back2, _) = one_chunk.decrypt_gradients(&c2, 40, 1).unwrap();
        assert_eq!(back1, back2);
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = PipelineReport {
            codec_seconds: 1.0,
            he: HeTiming {
                sim_seconds: 2.0,
                ops: 10,
                items: 1,
            },
            ciphertexts: 3,
            ciphertext_bytes: 100,
            values: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.ciphertexts, 6);
        assert_eq!(a.ciphertext_bytes, 200);
        assert_eq!(a.values, 10);
        assert!((a.codec_seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_is_empty() {
        let p = platform(256);
        let (agg, _) = p.aggregate(&[]).unwrap();
        assert!(agg.is_empty());
    }
}
