//! Cost-model conformance checking.
//!
//! The simulated-time results (Tables III–VII) are only as good as the
//! pairing between the kernels that do the work and the accounting that
//! charges for it. Three directives make that pairing checkable:
//!
//! - `// flcheck: mac-prim` — the fn performs Montgomery MACs (the
//!   workspace's unit of HE work; the CIOS kernels in `mpint::cios`).
//! - `// flcheck: charge-sink` — the fn records simulated-time cost (the
//!   `*_op_estimate` fns, `fl`'s `charge*` accessors, gpu-sim's launch
//!   accounting).
//! - `// flcheck: estimates(kernel, arity)` — the fn is the op-count
//!   estimate paired with `kernel`, which must still exist with that many
//!   parameters.
//!
//! Two rules close those facts over the workspace call graph:
//!
//! - **uncharged-work** — a public fn in the cost perimeter (`he`,
//!   `gpu-sim`, `core`) whose call chain reaches a MAC primitive but
//!   never flows into a charge sink. Key generation and the bench bins
//!   stay outside the perimeter: keygen is a one-time setup cost the
//!   paper does not time, and the bench bins *are* the measurement.
//! - **stale-estimate** — an `estimates(kernel, arity)` pairing whose
//!   kernel no longer exists or changed arity, i.e. an estimate drifting
//!   from the code it models. Same-file kernels win over cross-file
//!   namesakes, mirroring call-graph resolution.

use crate::callgraph::{backward_reach, hop, path_to, CallGraph, NodeId};
use crate::parse::ParsedFile;
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Crates whose public surface must charge for the MAC work it triggers.
const COST_PERIMETER: &[&str] = &["he", "gpu-sim", "core"];

/// Estimate/counter name suffixes: these fns *model* work (and are the
/// pairing targets of charge sinks), they do not perform it.
pub(crate) fn is_accounting_name(name: &str) -> bool {
    name.ends_with("_estimate") || name.ends_with("_mac_count") || name.ends_with("_ops")
}

/// Runs both cost-model rules.
pub fn check_cost_model(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    let mut mac_seed: BTreeSet<NodeId> = BTreeSet::new();
    let mut charge_seed: BTreeSet<NodeId> = BTreeSet::new();
    // Per-file kernel names claimed by an estimates(..) directive in that
    // file: exempt from uncharged-work (their cost is modeled).
    let mut estimated: BTreeMap<usize, BTreeSet<&str>> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            if f.is_mac_prim {
                mac_seed.insert((fi, gi));
            }
            if f.is_charge_sink {
                charge_seed.insert((fi, gi));
            }
            for (kernel, _) in &f.estimates {
                estimated.entry(fi).or_default().insert(kernel.as_str());
            }
        }
    }
    let reaches_mac = backward_reach(files, graph, mac_seed);
    let reaches_charge = backward_reach(files, graph, charge_seed);

    check_uncharged(files, graph, &reaches_mac, &reaches_charge, &estimated, out);
    check_stale(files, out);
}

fn check_uncharged(
    files: &[ParsedFile],
    graph: &CallGraph,
    reaches_mac: &BTreeSet<NodeId>,
    reaches_charge: &BTreeSet<NodeId>,
    estimated: &BTreeMap<usize, BTreeSet<&str>>,
    out: &mut Vec<Finding>,
) {
    for (fi, pf) in files.iter().enumerate() {
        if !COST_PERIMETER.contains(&crate::lockgraph::crate_of(&pf.src.rel_path)) {
            continue;
        }
        for (gi, f) in pf.fns.iter().enumerate() {
            let n = (fi, gi);
            if !f.is_pub
                || f.in_test
                || f.is_mac_prim
                || f.is_charge_sink
                || is_accounting_name(&f.name)
                || estimated
                    .get(&fi)
                    .is_some_and(|k| k.contains(f.name.as_str()))
                || !reaches_mac.contains(&n)
                || reaches_charge.contains(&n)
                || pf.src.is_allowed("uncharged-work", f.line)
            {
                continue;
            }
            let Some(path) = path_to(graph, n, |m| files[m.0].fns[m.1].is_mac_prim) else {
                continue;
            };
            let prim = &files[path[path.len() - 1].0].fns[path[path.len() - 1].1];
            let chain: Vec<String> = path.iter().map(|&m| hop(files, m)).collect();
            out.push(Finding::with_chain(
                "uncharged-work",
                &pf.src.rel_path,
                f.line,
                format!(
                    "public fn `{}` performs MAC work (reaches `{}`) but its call \
                     chain never flows into a charge sink: pair it with an \
                     estimates(..) directive or charge the cost",
                    f.name, prim.name
                ),
                chain,
            ));
        }
    }
}

fn check_stale(files: &[ParsedFile], out: &mut Vec<Finding>) {
    // All non-test fns by name, for kernel existence/arity checks.
    let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for (fi, pf) in files.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            if !f.in_test {
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
    }
    for (fi, pf) in files.iter().enumerate() {
        for f in &pf.fns {
            if f.in_test || f.estimates.is_empty() {
                continue;
            }
            for (kernel, arity) in &f.estimates {
                if pf.src.is_allowed("stale-estimate", f.line) {
                    continue;
                }
                let mut cands: Vec<NodeId> =
                    by_name.get(kernel.as_str()).cloned().unwrap_or_default();
                if cands.iter().any(|&(cf, _)| cf == fi) {
                    cands.retain(|&(cf, _)| cf == fi);
                }
                if cands.is_empty() {
                    out.push(Finding::with_chain(
                        "stale-estimate",
                        &pf.src.rel_path,
                        f.line,
                        format!(
                            "estimate fn `{}` pairs kernel `{kernel}`, which no longer \
                             exists: update or remove the estimates(..) directive",
                            f.name
                        ),
                        vec![format!("{} ({}:{})", f.name, pf.src.rel_path, f.line)],
                    ));
                    continue;
                }
                if cands
                    .iter()
                    .any(|&(cf, cg)| files[cf].fns[cg].params.len() == *arity)
                {
                    continue;
                }
                let mut arities: Vec<usize> = cands
                    .iter()
                    .map(|&(cf, cg)| files[cf].fns[cg].params.len())
                    .collect();
                arities.sort_unstable();
                arities.dedup();
                let found = arities
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join("/");
                let chain = vec![
                    format!("{} ({}:{})", f.name, pf.src.rel_path, f.line),
                    hop(files, cands[0]),
                ];
                out.push(Finding::with_chain(
                    "stale-estimate",
                    &pf.src.rel_path,
                    f.line,
                    format!(
                        "estimate fn `{}` pairs kernel `{kernel}` with {arity} \
                         parameter(s), but `{kernel}` now takes {found}: the \
                         estimate has drifted from its kernel",
                        f.name
                    ),
                    chain,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect();
        let graph = CallGraph::build(&parsed);
        let mut out = Vec::new();
        check_cost_model(&parsed, &graph, &mut out);
        out
    }

    const BASE: &str = "\
// flcheck: mac-prim
fn mont_mul(a: u64, b: u64) -> u64 {
    a.wrapping_mul(b)
}
// flcheck: charge-sink
fn charge(ops: u64) -> u64 {
    ops
}
fn kernel(a: u64, b: u64) -> u64 {
    mont_mul(a, b)
}
";

    #[test]
    fn uncharged_public_entry_is_flagged_with_chain() {
        let src = format!(
            "{BASE}\
pub fn charged_entry(a: u64, b: u64) -> u64 {{
    charge(kernel(a, b))
}}
pub fn uncharged_entry(a: u64, b: u64) -> u64 {{
    kernel(a, b)
}}
"
        );
        let got = run(&[("crates/he/src/m.rs", &src)]);
        let hits: Vec<&Finding> = got.iter().filter(|f| f.rule == "uncharged-work").collect();
        assert_eq!(hits.len(), 1, "{got:?}");
        assert_eq!(hits[0].line, 15, "flagged at the uncharged fn item");
        assert_eq!(
            hits[0].chain,
            vec![
                "uncharged_entry (crates/he/src/m.rs:15)",
                "kernel (crates/he/src/m.rs:9)",
                "mont_mul (crates/he/src/m.rs:2)",
            ]
        );
    }

    #[test]
    fn estimates_pairing_exempts_the_kernel() {
        let src = format!(
            "{BASE}\
pub fn encrypt(a: u64, b: u64) -> u64 {{
    kernel(a, b)
}}
// flcheck: estimates(encrypt, 2)
pub fn encrypt_op_estimate() -> u64 {{
    17
}}
"
        );
        let got = run(&[("crates/he/src/m.rs", &src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn outside_the_perimeter_is_silent() {
        let src = format!("{BASE}pub fn bench(a: u64) -> u64 {{ kernel(a, a) }}\n");
        let got = run(&[("crates/bench/src/m.rs", &src)]);
        assert!(got.iter().all(|f| f.rule != "uncharged-work"), "{got:?}");
        // fl is also outside: its accelerator surface charges internally
        // and is gated by the charge-sink marks it carries.
        let got = run(&[("crates/fl/src/m.rs", &src)]);
        assert!(got.iter().all(|f| f.rule != "uncharged-work"), "{got:?}");
    }

    #[test]
    fn stale_estimate_vanished_and_arity_drift() {
        let src = "\
fn kernel(a: u64, b: u64) -> u64 {
    a + b
}
// flcheck: estimates(kernel, 2)
// flcheck: estimates(vanished_kernel, 2)
// flcheck: estimates(kernel, 5)
pub fn kernel_op_estimate() -> u64 {
    3
}
";
        let got = run(&[("crates/he/src/m.rs", src)]);
        let stale: Vec<&Finding> = got.iter().filter(|f| f.rule == "stale-estimate").collect();
        assert_eq!(stale.len(), 2, "{got:?}");
        assert!(stale.iter().any(|f| f
            .message
            .contains("`vanished_kernel`, which no longer exists")));
        assert!(stale.iter().any(|f| f.message.contains("now takes 2")));
    }

    #[test]
    fn same_file_kernel_wins_over_namesake() {
        let other = "fn kernel(a: u64, b: u64, c: u64) -> u64 { a + b + c }\n";
        let here = "\
fn kernel(a: u64, b: u64) -> u64 { a + b }
// flcheck: estimates(kernel, 2)
pub fn kernel_op_estimate() -> u64 { 3 }
";
        let got = run(&[
            ("crates/he/src/here.rs", here),
            ("crates/he/src/other.rs", other),
        ]);
        assert!(got.iter().all(|f| f.rule != "stale-estimate"), "{got:?}");
        // And the cross-file namesake alone satisfies a pairing when no
        // same-file kernel exists.
        let remote = "\
// flcheck: estimates(kernel, 3)
pub fn kernel_op_estimate() -> u64 { 3 }
";
        let got = run(&[
            ("crates/he/src/here.rs", remote),
            ("crates/he/src/other.rs", other),
        ]);
        assert!(got.iter().all(|f| f.rule != "stale-estimate"), "{got:?}");
    }

    #[test]
    fn allows_suppress_both_rules() {
        let src = format!(
            "{BASE}\
// flcheck: allow(uncharged-work) — exercised one-shot at setup, untimed
pub fn setup(a: u64) -> u64 {{
    kernel(a, a)
}}
// flcheck: estimates(gone, 1)
// flcheck: allow(stale-estimate)
pub fn gone_op_estimate() -> u64 {{
    1
}}
"
        );
        let got = run(&[("crates/he/src/m.rs", &src)]);
        assert!(got.is_empty(), "{got:?}");
    }
}
