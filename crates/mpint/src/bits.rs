//! Bitwise operations and miscellaneous integer utilities.

use std::ops::{BitAnd, BitOr, BitXor};
use std::str::FromStr;

use crate::limb::Limb;
use crate::natural::Natural;

impl Natural {
    /// Number of one-bits (population count).
    pub fn count_ones(&self) -> u64 {
        self.limbs().iter().map(|l| l.count_ones() as u64).sum()
    }

    /// Floor of the integer square root (Newton's method).
    pub fn isqrt(&self) -> Natural {
        if self.limb_len() <= 1 {
            let v = self.low_u64();
            // f64 sqrt is only a seed: correct it (it rounds up for
            // values near u64::MAX).
            let mut r = (v as f64).sqrt() as u64;
            while r.checked_mul(r).map_or(true, |sq| sq > v) {
                r -= 1;
            }
            while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= v) {
                r += 1;
            }
            return Natural::from(r);
        }
        // Initial guess: 2^ceil(bits/2), always >= isqrt(self).
        let mut x = Natural::one().shl_bits(self.bit_len().div_ceil(2));
        loop {
            // x' = (x + self/x) / 2
            let (q, _) = self.div_rem(&x);
            let (next, _) = (&x + &q).div_rem_small(2);
            if next >= x {
                break;
            }
            x = next;
        }
        debug_assert!(&x.square() <= self);
        debug_assert!(&(&x + &Natural::one()).square() > self);
        x
    }

    /// True iff the value is a perfect square.
    pub fn is_perfect_square(&self) -> bool {
        self.isqrt().square() == *self
    }

    /// Big-endian byte serialization (network order), no leading zeros.
    pub fn to_be_bytes(&self) -> Vec<u8> {
        let mut v = self.to_le_bytes();
        v.reverse();
        v
    }

    /// Parses big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Natural {
        let mut v = bytes.to_vec();
        v.reverse();
        Natural::from_le_bytes(&v)
    }
}

fn zip_limbs(a: &Natural, b: &Natural, f: impl Fn(Limb, Limb) -> Limb) -> Natural {
    let len = a.limb_len().max(b.limb_len());
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let x = a.limbs().get(i).copied().unwrap_or(0);
        let y = b.limbs().get(i).copied().unwrap_or(0);
        out.push(f(x, y));
    }
    Natural::from_limbs(out)
}

impl BitAnd for &Natural {
    type Output = Natural;
    fn bitand(self, rhs: &Natural) -> Natural {
        zip_limbs(self, rhs, |a, b| a & b)
    }
}

impl BitOr for &Natural {
    type Output = Natural;
    fn bitor(self, rhs: &Natural) -> Natural {
        zip_limbs(self, rhs, |a, b| a | b)
    }
}

impl BitXor for &Natural {
    type Output = Natural;
    fn bitxor(self, rhs: &Natural) -> Natural {
        zip_limbs(self, rhs, |a, b| a ^ b)
    }
}

impl FromStr for Natural {
    type Err = crate::Error;

    /// Parses decimal by default, hex with an `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => Natural::from_hex(hex),
            None => Natural::from_decimal_str(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn bitwise_match_u128() {
        let a = 0xF0F0_F0F0_F0F0_F0F0_1234u128;
        let b = 0x0FF0_0FF0_0FF0_0FF0_ABCDu128;
        assert_eq!(&n(a) & &n(b), n(a & b));
        assert_eq!(&n(a) | &n(b), n(a | b));
        assert_eq!(&n(a) ^ &n(b), n(a ^ b));
        // Mismatched lengths treat missing limbs as zero.
        assert_eq!(&n(a) & &n(0xFF), n(a & 0xFF));
        assert_eq!(&n(a) ^ &Natural::zero(), n(a));
    }

    #[test]
    fn count_ones_matches() {
        assert_eq!(Natural::zero().count_ones(), 0);
        assert_eq!(n(u128::MAX).count_ones(), 128);
        assert_eq!(n(0b1011).count_ones(), 3);
    }

    #[test]
    fn isqrt_small_and_large() {
        for v in [0u128, 1, 2, 3, 4, 15, 16, 17, 1_000_000, u64::MAX as u128] {
            let r = n(v).isqrt().to_u128().unwrap();
            assert!(r * r <= v && (r + 1) * (r + 1) > v, "isqrt({v}) = {r}");
        }
        // Multi-limb: isqrt(x²) == x and isqrt(x²+1) == x.
        let x = Natural::from_decimal_str("123456789012345678901234567890123456789").unwrap();
        let sq = x.square();
        assert_eq!(sq.isqrt(), x);
        assert_eq!((&sq + &Natural::one()).isqrt(), x);
    }

    #[test]
    fn perfect_square_detection() {
        assert!(n(0).is_perfect_square());
        assert!(n(144).is_perfect_square());
        assert!(!n(145).is_perfect_square());
        let x = Natural::from(0xFFFF_FFFF_FFFFu64);
        assert!(x.square().is_perfect_square());
        assert!(!(&x.square() + &Natural::one()).is_perfect_square());
    }

    #[test]
    fn be_bytes_roundtrip_and_order() {
        let v = n(0x0102_0304);
        assert_eq!(v.to_be_bytes(), vec![1, 2, 3, 4]);
        assert_eq!(Natural::from_be_bytes(&[1, 2, 3, 4]), v);
        assert!(Natural::zero().to_be_bytes().is_empty());
    }

    #[test]
    fn from_str_dispatches_on_prefix() {
        assert_eq!("255".parse::<Natural>().unwrap(), n(255));
        assert_eq!("0xff".parse::<Natural>().unwrap(), n(255));
        assert_eq!("0XFF".parse::<Natural>().unwrap(), n(255));
        assert!("0xzz".parse::<Natural>().is_err());
        assert!("12a".parse::<Natural>().is_err());
    }
}
