//! Security- and failure-oriented integration tests: what must never
//! leak, and how the system degrades under injected faults.

use fl::data::generators::DatasetSpec;
use fl::models::HomoLr;
use fl::train::{FlEnv, FlModel, TrainConfig};
use fl::{Accelerator, BackendKind, Network, NetworkConfig};
use he::paillier::PaillierKeyPair;
use mpint::Natural;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn keys(seed: u64) -> PaillierKeyPair {
    PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(seed), 128).unwrap()
}

#[test]
fn ciphertexts_are_semantically_hiding() {
    // Identical plaintexts under fresh blinding are unlinkable, and the
    // encoding does not expose a plaintext exponent (the attack the paper
    // raises against significand/exponent encodings).
    let k = keys(1);
    let acc = Accelerator::new(BackendKind::FlBooster, k, 4).unwrap();
    let tiny = vec![1e-9; 8]; // tiny magnitudes
    let large = vec![0.999; 8]; // large magnitudes
    let c_tiny = acc.encrypt(&tiny, 11).unwrap();
    let c_large = acc.encrypt(&large, 12).unwrap();
    // Same ciphertext shape regardless of magnitude: byte sizes match.
    assert_eq!(c_tiny.ciphertext_count(), c_large.ciphertext_count());
    let size = |v: &fl::backend::EncryptedVector| -> Vec<usize> {
        v.cts
            .iter()
            .map(|c| c.value.bit_len() as usize / 8)
            .collect()
    };
    // Bit lengths differ only by blinding noise, not systematically.
    assert_eq!(size(&c_tiny).len(), size(&c_large).len());

    // Fresh encryptions of the same vector differ.
    let c1 = acc.encrypt(&tiny, 100).unwrap();
    let c2 = acc.encrypt(&tiny, 101).unwrap();
    assert_ne!(c1.cts[0].value, c2.cts[0].value);
}

#[test]
fn cross_key_ciphertexts_are_rejected_not_garbled() {
    let acc1 = Accelerator::new(BackendKind::Fate, keys(2), 4).unwrap();
    let acc2 = Accelerator::new(BackendKind::Fate, keys(3), 4).unwrap();
    let enc = acc1.encrypt(&[0.5, -0.5], 0).unwrap();
    let err = acc2.decrypt_sum(&enc, 1);
    assert!(err.is_err(), "foreign ciphertexts must be rejected loudly");
}

#[test]
fn guard_bit_exhaustion_is_a_typed_error() {
    // 4 participants reserve 2 guard bits; claiming a 5-term sum must be
    // rejected before decoding garbage.
    let acc = Accelerator::new(BackendKind::FlBooster, keys(4), 4).unwrap();
    let enc = acc.encrypt(&[0.1, 0.2], 0).unwrap();
    let result = acc.decrypt_sum(&enc, 5);
    match result {
        Err(fl::Error::Platform(flbooster_core::Error::Codec(
            codec::Error::OverflowBitsExhausted {
                terms: 5,
                max_terms: 4,
            },
        ))) => {}
        other => panic!("expected OverflowBitsExhausted, got {other:?}"),
    }
}

#[test]
fn plaintext_too_large_is_rejected_at_the_he_boundary() {
    let k = keys(5);
    let big = &k.public.n + &Natural::one();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    assert!(matches!(
        k.public.encrypt(&big, &mut rng),
        Err(he::Error::PlaintextTooLarge { .. })
    ));
}

#[test]
fn lossy_network_retries_and_training_still_succeeds() {
    let mut spec = DatasetSpec::synthetic();
    spec.features = 8;
    spec.nnz_per_row = 8;
    spec.instances = 40;
    let data = spec.generate(1.0);
    let cfg = TrainConfig {
        batch_size: 40,
        ..TrainConfig::default()
    };

    let accel = Accelerator::new(BackendKind::FlBooster, keys(6), 4).unwrap();
    let lossy = NetworkConfig::flbooster_profile().with_drop_probability(0.3);
    let env = FlEnv {
        network: Network::new(lossy, 0xBAD),
        accel,
    };
    let mut model = HomoLr::new(&data, 4, &cfg);
    let before = model.loss();
    let result = model.run_epoch(&env, &cfg, 0).unwrap();
    assert!(
        model.loss() < before,
        "training must survive a 30%-loss link"
    );
    assert!(env.network.stats().retries > 0, "drops must actually occur");
    // Retries inflate communication time.
    assert!(result.breakdown.comm_seconds > 0.0);
}

#[test]
fn dead_network_surfaces_a_typed_failure() {
    let mut spec = DatasetSpec::synthetic();
    spec.features = 8;
    spec.nnz_per_row = 8;
    spec.instances = 16;
    let data = spec.generate(1.0);
    let cfg = TrainConfig {
        batch_size: 16,
        ..TrainConfig::default()
    };

    let accel = Accelerator::new(BackendKind::FlBooster, keys(7), 4).unwrap();
    let dead = NetworkConfig::flbooster_profile().with_drop_probability(1.0);
    let env = FlEnv {
        network: Network::new(dead, 1),
        accel,
    };
    let mut model = HomoLr::new(&data, 4, &cfg);
    match model.run_epoch(&env, &cfg, 0) {
        Err(fl::Error::NetworkFailure { attempts }) => assert_eq!(attempts, 5),
        other => panic!("expected NetworkFailure, got {other:?}"),
    }
}

#[test]
fn vertical_split_never_moves_raw_features() {
    // Structural invariant: vertical shards partition the feature space;
    // the only cross-party payloads in the protocols are Ciphertext
    // values (enforced by the EncryptedVector type), never SparseRows.
    let data = DatasetSpec::rcv1().generate(0.0001);
    let shards = fl::data::vertical_split(&data, 3);
    for (i, shard) in shards.iter().enumerate() {
        let (lo, hi) = shard.feature_range;
        for row in &shard.rows {
            for &idx in &row.indices {
                assert!(
                    (idx as usize) < (hi - lo) as usize,
                    "shard {i} leaked foreign feature"
                );
            }
        }
    }
    // Labels exist only at the active party.
    assert!(shards[0].labels.is_some());
    assert!(shards[1..].iter().all(|s| s.labels.is_none()));
}

#[test]
fn quantizer_and_keys_must_be_consistent() {
    // A key too small for the paper quantizer is rejected at
    // construction, not at first use.
    let k = keys(8); // 128-bit keys: 4 slots of 32 bits => works
    assert!(Accelerator::new(BackendKind::FlBooster, k, 4).is_ok());
    let tiny = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(9), 64).unwrap();
    // 64-bit key = 2 slots - 1 usable: still constructible…
    let acc = Accelerator::new(BackendKind::FlBooster, tiny, 4).unwrap();
    // …and correct, just with compression ratio 1.
    let enc = acc.encrypt(&[0.25, -0.75], 0).unwrap();
    let back = acc.decrypt_sum(&enc, 1).unwrap();
    assert!((back[0] - 0.25).abs() < 1e-8);
    assert!((back[1] + 0.75).abs() < 1e-8);
}
