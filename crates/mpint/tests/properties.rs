//! Property-based tests for the multi-precision arithmetic core.
//!
//! Strategy: compare every operation against a `u128` oracle on small
//! operands, and against algebraic identities (ring axioms, reconstruction,
//! inverse laws) on multi-limb operands where no native oracle exists.

use mpint::{cios, modpow, straus, Natural};
use proptest::prelude::*;

fn nat(v: u128) -> Natural {
    Natural::from(v)
}

/// Arbitrary multi-limb natural of up to 8 limbs.
fn big_natural() -> impl Strategy<Value = Natural> {
    proptest::collection::vec(any::<u64>(), 0..8).prop_map(Natural::from_limbs)
}

/// Arbitrary odd multi-limb modulus of 1..=4 limbs, > 1.
fn odd_modulus() -> impl Strategy<Value = Natural> {
    proptest::collection::vec(any::<u64>(), 1..=4).prop_map(|mut limbs| {
        limbs[0] |= 1; // odd
        let mut n = Natural::from_limbs(limbs);
        if n.is_one() {
            n = Natural::from(3u64);
        }
        n
    })
}

/// Arbitrary odd modulus of 1..=32 limbs with the top limb's high bit
/// set, exercising the squaring kernel across its full width range —
/// up to 2048-bit operands — with maximal-weight top words.
fn wide_odd_modulus() -> impl Strategy<Value = Natural> {
    proptest::collection::vec(any::<u64>(), 1..=32).prop_map(|mut limbs| {
        limbs[0] |= 1; // odd
        let last = limbs.len() - 1;
        limbs[last] |= 1 << 63; // top-limb-set
        Natural::from_limbs(limbs)
    })
}

/// Arbitrary natural up to 32 limbs (wide operands for the squaring
/// kernel).
fn wide_natural() -> impl Strategy<Value = Natural> {
    proptest::collection::vec(any::<u64>(), 0..=32).prop_map(Natural::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&nat(a as u128) + &nat(b as u128), nat(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&nat(a as u128) * &nat(b as u128), nat(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = nat(a).div_rem(&nat(b));
        prop_assert_eq!(q, nat(a / b));
        prop_assert_eq!(r, nat(a % b));
    }

    #[test]
    fn addition_commutes_and_associates(a in big_natural(), b in big_natural(), c in big_natural()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn multiplication_commutes_and_associates(a in big_natural(), b in big_natural(), c in big_natural()) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributive_law(a in big_natural(), b in big_natural(), c in big_natural()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in big_natural(), b in big_natural()) {
        prop_assert_eq!((&a + &b).checked_sub(&b), Some(a));
    }

    #[test]
    fn division_reconstruction(a in big_natural(), b in big_natural()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in big_natural(), bits in 0u32..200) {
        let shifted = a.shl_bits(bits);
        let pow2 = Natural::one().shl_bits(bits);
        prop_assert_eq!(&shifted, &(&a * &pow2));
        prop_assert_eq!(shifted.shr_bits(bits), a);
    }

    #[test]
    fn low_bits_is_remainder(a in big_natural(), bits in 1u32..200) {
        let pow2 = Natural::one().shl_bits(bits);
        prop_assert_eq!(a.low_bits(bits), &a % &pow2);
    }

    #[test]
    fn bytes_and_hex_roundtrip(a in big_natural()) {
        prop_assert_eq!(Natural::from_le_bytes(&a.to_le_bytes()), a.clone());
        prop_assert_eq!(Natural::from_hex(&a.to_hex()).unwrap(), a.clone());
        prop_assert_eq!(Natural::from_decimal_str(&a.to_decimal_string()).unwrap(), a);
    }

    #[test]
    fn gcd_divides_both_and_lcm_identity(a in big_natural(), b in big_natural()) {
        let g = mpint::gcd(&a, &b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
            // gcd * lcm == a * b
            prop_assert_eq!(&g * &mpint::lcm(&a, &b), &a * &b);
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn mod_inv_law(a in big_natural(), n in odd_modulus()) {
        let a = &a % &n;
        match mpint::mod_inv(&a, &n) {
            Ok(inv) => {
                prop_assert!(inv < n);
                prop_assert_eq!(&(&inv * &a) % &n, &Natural::one() % &n);
            }
            Err(_) => {
                prop_assert!(!mpint::gcd(&a, &n).is_one());
            }
        }
    }

    #[test]
    fn montgomery_roundtrip_and_mul(a in big_natural(), b in big_natural(), n in odd_modulus()) {
        let ctx = mpint::MontgomeryCtx::new(&n).unwrap();
        let a = &a % &n;
        let b = &b % &n;
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        prop_assert_eq!(ctx.from_mont(&am), a.clone());
        let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        prop_assert_eq!(prod, &(&a * &b) % &n);
    }

    #[test]
    fn cios_agrees_with_algorithm1(a in big_natural(), b in big_natural(), n in odd_modulus()) {
        let ctx = mpint::MontgomeryCtx::new(&n).unwrap();
        let am = ctx.to_mont(&(&a % &n));
        let bm = ctx.to_mont(&(&b % &n));
        let reference = ctx.mont_mul(&am, &bm);
        let flat = cios::mont_mul_natural(&ctx, &am, &bm);
        prop_assert_eq!(&flat, &reference);
        // Partitioned kernel agrees for several lane counts.
        let s = ctx.width();
        for threads in [1usize, 2, 3, 8] {
            let (part, stats) = cios::mont_mul_partitioned(
                &am.to_padded_limbs(s),
                &bm.to_padded_limbs(s),
                &ctx.modulus().to_padded_limbs(s),
                ctx.n0_inv(),
                threads,
            );
            prop_assert_eq!(Natural::from_limbs(part), reference.clone());
            prop_assert_eq!(stats.mac_ops.len(), threads);
        }
    }

    #[test]
    fn modpow_matches_iterated_multiplication(
        base in big_natural(),
        e in 0u32..24,
        n in odd_modulus(),
    ) {
        let got = modpow::mod_pow(&base, &Natural::from(e as u64), &n).unwrap();
        let mut expected = &Natural::one() % &n;
        for _ in 0..e {
            expected = &(&expected * &base) % &n;
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn modpow_sliding_equals_binary(base in big_natural(), exp in big_natural(), n in odd_modulus()) {
        prop_assert_eq!(
            modpow::mod_pow(&base, &exp, &n).unwrap(),
            modpow::mod_pow_binary(&base, &exp, &n).unwrap()
        );
    }

    #[test]
    fn modpow_product_law(base in big_natural(), e1 in 0u64..1000, e2 in 0u64..1000, n in odd_modulus()) {
        // base^(e1+e2) == base^e1 * base^e2 (mod n)
        let p1 = modpow::mod_pow(&base, &Natural::from(e1), &n).unwrap();
        let p2 = modpow::mod_pow(&base, &Natural::from(e2), &n).unwrap();
        let sum = modpow::mod_pow(&base, &Natural::from(e1 + e2), &n).unwrap();
        prop_assert_eq!(&(&p1 * &p2) % &n, sum);
    }

    #[test]
    fn mont_sqr_matches_mont_mul(a in wide_natural(), n in wide_odd_modulus()) {
        let ctx = mpint::MontgomeryCtx::new(&n).unwrap();
        let am = ctx.to_mont(&(&a % &n));
        // The dedicated squaring kernel must agree bit-for-bit with the
        // general multiply on equal operands, at every limb width.
        prop_assert_eq!(ctx.mont_sqr(&am), ctx.mont_mul(&am, &am));
        // Boundary operands: zero and the maximal residue n-1.
        let zero = Natural::zero();
        prop_assert_eq!(ctx.mont_sqr(&zero), ctx.mont_mul(&zero, &zero));
        let top = ctx.to_mont(&n.checked_sub(&Natural::one()).unwrap());
        prop_assert_eq!(ctx.mont_sqr(&top), ctx.mont_mul(&top, &top));
    }

    #[test]
    fn straus_multi_exp_matches_pairwise(
        pairs in proptest::collection::vec((big_natural(), any::<u64>()), 0..6),
        n in odd_modulus(),
    ) {
        let ctx = mpint::MontgomeryCtx::new(&n).unwrap();
        let bases: Vec<Natural> = pairs.iter().map(|(b, _)| b % &n).collect();
        let exps: Vec<Natural> = pairs.iter().map(|(_, e)| Natural::from(*e)).collect();
        let got = straus::multi_exp_ctx(&ctx, &bases, &exps);
        let mut expected = &Natural::one() % &n;
        for (b, e) in bases.iter().zip(&exps) {
            expected = &(&expected * &modpow::mod_pow(b, e, &n).unwrap()) % &n;
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn extract_bits_agrees_with_shift_mask(a in big_natural(), offset in 0u32..300, count in 0u32..=64) {
        let expected = a.shr_bits(offset).low_bits(count).to_u64().unwrap_or_else(|| {
            // count == 64 can still fit in u64
            a.shr_bits(offset).low_bits(count).low_u64()
        });
        prop_assert_eq!(a.extract_bits(offset, count), expected);
    }
}
