//! The Paillier cryptosystem (paper Sec. III-B).
//!
//! Additive homomorphic encryption over `Z_n` with ciphertexts in
//! `Z*_{n²}`:
//!
//! - **Key generation**: primes `p, q` of `k/2` bits, `n = p·q`,
//!   `λ = lcm(p-1, q-1)`. The default generator is `g = n + 1`, which
//!   satisfies the paper's `gcd(n, L(g^λ mod n²)) = 1` condition and makes
//!   `g^m mod n² = 1 + m·n` a single multiplication — the fast path every
//!   encryption takes. [`PaillierKeyPair::from_primes_with_g`] accepts an
//!   arbitrary valid `g`; those keys fall back to a generic constant-time
//!   exponentiation for `g^m` (the plaintext is secret), one extra modexp
//!   per encryption, reflected in
//!   [`PaillierPublicKey::encrypt_op_estimate`].
//! - **Encryption** (paper Eq. 3): `E(m) = g^m · r^n mod n²`.
//! - **Decryption** (paper Eq. 4): `D(c) = L(c^λ mod n²) / L(g^λ mod n²)
//!   mod n`, with an optional CRT fast path that exponentiates modulo `p²`
//!   and `q²` separately (≈4× fewer limb operations).
//! - **Homomorphic addition** (paper Eq. 5): `E(m₁)·E(m₂) = E(m₁+m₂)`,
//!   plus plaintext-scalar multiplication `E(m)^k = E(k·m)` used for
//!   weighted gradient aggregation.

use mpint::modpow::{mod_pow_ct, mod_pow_ctx, window_size_for};
use mpint::prime::{generate_prime_pair, DEFAULT_MR_ROUNDS};
use mpint::random::random_coprime;
use mpint::{mod_inv, MontgomeryCtx, Natural};
use rand::Rng;

use crate::{Error, Result};

/// Smallest accepted key size. Real deployments need ≥1024 (paper Sec.
/// IV-A: "only HE with enough large key size can be allowed"); tests use
/// smaller keys for speed.
pub const MIN_KEY_BITS: u32 = 64;

/// A Paillier ciphertext: an element of `Z*_{n²}` tagged with a key
/// fingerprint so cross-key operations fail loudly instead of decrypting
/// to garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    /// The ciphertext value `c ∈ Z*_{n²}`.
    pub value: Natural,
    pub(crate) key_id: u64,
}

impl Ciphertext {
    /// Bytes this ciphertext occupies on the wire (what the network
    /// simulator charges).
    pub fn wire_size_bytes(&self) -> usize {
        self.value.wire_size_bytes()
    }
}

/// Public key: `(g, n)` plus precomputed Montgomery state for `mod n²`.
#[derive(Debug, Clone)]
pub struct PaillierPublicKey {
    /// The modulus `n = p·q`.
    pub n: Natural,
    /// `n²`, the ciphertext modulus.
    pub n_squared: Natural,
    /// The generator `g ∈ Z*_{n²}` (normally `n + 1`).
    pub g: Natural,
    /// Nominal key size in bits.
    pub key_bits: u32,
    /// Whether `g = n + 1`, enabling the closed-form `g^m = 1 + m·n`.
    pub(crate) g_fast: bool,
    pub(crate) ctx_n2: MontgomeryCtx,
    pub(crate) key_id: u64,
}

/// Private key: `(p, q)` with both the direct (`λ, μ`) and CRT decryption
/// precomputations.
#[derive(Debug, Clone)]
pub struct PaillierPrivateKey {
    /// Prime factor `p`.
    pub p: Natural,
    /// Prime factor `q`.
    pub q: Natural,
    /// `λ = lcm(p-1, q-1)`.
    pub lambda: Natural,
    /// `μ = L(g^λ mod n²)^{-1} mod n`.
    pub mu: Natural,
    /// Copy of the public key for the moduli and contexts.
    pub public: PaillierPublicKey,
    // CRT precomputation.
    p_squared: Natural,
    q_squared: Natural,
    p_minus_1: Natural,
    q_minus_1: Natural,
    ctx_p2: MontgomeryCtx,
    ctx_q2: MontgomeryCtx,
    /// `h_p = L_p(g^{p-1} mod p²)^{-1} mod p`.
    h_p: Natural,
    /// `h_q = L_q(g^{q-1} mod q²)^{-1} mod q`.
    h_q: Natural,
    /// `p^{-1} mod q` for the CRT recombination.
    p_inv_q: Natural,
}

/// A generated key pair.
#[derive(Debug, Clone)]
pub struct PaillierKeyPair {
    /// The public (encryption) key.
    pub public: PaillierPublicKey,
    /// The private (decryption) key.
    pub private: PaillierPrivateKey,
}

/// `L(x) = (x - 1) / n` — the paper's L function, defined on `x ≡ 1 mod n`.
/// Callers pass exponentiation outputs, which are `>= 1` for `x` in
/// `Z*_{n²}`; the (unreachable) `x = 0` case maps to `L(0) = 0`.
fn l_function(x: &Natural, n: &Natural) -> Natural {
    let (q, _r) = x
        .checked_sub(&Natural::one())
        .unwrap_or_default()
        .div_rem(n);
    q
}

/// Secret-exponent exponentiation for decryption: `λ` and the CRT
/// exponents `p-1`, `q-1` are private-key material, so they go through the
/// square-and-multiply-always ladder with a public key-size step bound
/// rather than the sliding-window path (whose multiply schedule mirrors
/// the exponent bits).
// flcheck: ct-fn
// flcheck: secret(exp)
fn pow_secret(ctx: &MontgomeryCtx, base: &Natural, exp: &Natural, bits: u32) -> Natural {
    mod_pow_ct(ctx, base, exp, bits)
}

impl PaillierKeyPair {
    /// Generates a key pair with an `bits`-bit modulus `n`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Result<Self> {
        if bits < MIN_KEY_BITS {
            return Err(Error::KeySizeTooSmall {
                bits,
                min: MIN_KEY_BITS,
            });
        }
        loop {
            let (p, q) = generate_prime_pair(rng, bits / 2, DEFAULT_MR_ROUNDS)?;
            let n = &p * &q;
            // Equal-size primes guarantee gcd(n, (p-1)(q-1)) = 1 unless
            // p | q-1 or q | p-1, impossible at equal bit lengths — but n
            // can land at bits-1 when both primes are near 2^(b/2); retry.
            if n.bit_len() != bits {
                continue;
            }
            return Self::from_primes(p, q, bits);
        }
    }

    /// Builds a key pair from explicit primes (used by tests and by the
    /// deterministic benchmark harness) with the standard fast generator
    /// `g = n + 1`.
    pub fn from_primes(p: Natural, q: Natural, key_bits: u32) -> Result<Self> {
        let g = &(&p * &q) + &Natural::one();
        Self::from_primes_with_g(p, q, key_bits, g)
    }

    /// Builds a key pair from explicit primes and an explicit generator
    /// `g ∈ Z*_{n²}`.
    ///
    /// `g = n + 1` (what [`from_primes`](Self::from_primes) passes) gets
    /// the closed-form encryption fast path; any other `g` is validated by
    /// deriving `μ = L(g^λ mod n²)^{-1} mod n` — an invalid generator
    /// (e.g. `g = 1`, or any `g` whose order does not make `L(g^λ)`
    /// invertible) fails here with an [`Error::Arithmetic`] inverse
    /// failure instead of producing a key that decrypts to garbage.
    pub fn from_primes_with_g(p: Natural, q: Natural, key_bits: u32, g: Natural) -> Result<Self> {
        let n = &p * &q;
        let n_squared = n.square();
        let one = Natural::one();
        if g.is_zero() || g >= n_squared {
            return Err(Error::InvalidParameter("generator g must lie in [1, n²)"));
        }
        let g_fast = g == &n + &one;
        let ctx_n2 = MontgomeryCtx::new(&n_squared)?;
        let key_id = key_fingerprint(&n, &g);
        let public = PaillierPublicKey {
            n: n.clone(),
            n_squared: n_squared.clone(),
            g: g.clone(),
            key_bits,
            g_fast,
            ctx_n2,
            key_id,
        };

        let p_minus_1 = p
            .checked_sub(&one)
            .ok_or(Error::InvalidParameter("prime factor p must exceed 1"))?;
        let q_minus_1 = q
            .checked_sub(&one)
            .ok_or(Error::InvalidParameter("prime factor q must exceed 1"))?;
        let lambda = mpint::lcm(&p_minus_1, &q_minus_1);

        // μ = L(g^λ mod n²)^{-1} mod n. With g = n+1,
        // g^λ mod n² = 1 + λ·n mod n², hence L(g^λ) = λ mod n; a generic g
        // needs the exponentiation (λ is secret, so the ct ladder).
        let l_g_lambda = if g_fast {
            &lambda % &n
        } else {
            let g_lambda = pow_secret(&public.ctx_n2, &g, &lambda, n.bit_len());
            &l_function(&g_lambda, &n) % &n
        };
        let mu = mod_inv(&l_g_lambda, &n)?;

        // CRT precomputation.
        let p_squared = p.square();
        let q_squared = q.square();
        let ctx_p2 = MontgomeryCtx::new(&p_squared)?;
        let ctx_q2 = MontgomeryCtx::new(&q_squared)?;
        // With g = n+1: n² ≡ 0 (mod p²), so g^k mod p² = 1 + k·n mod p² —
        // no exponentiation needed. Generic g goes through the ct ladder
        // (the exponent p-1 is private-key material).
        let g_p = if g_fast {
            &(&one + &(&p_minus_1 * &n)) % &p_squared
        } else {
            pow_secret(&ctx_p2, &(&g % &p_squared), &p_minus_1, p.bit_len())
        };
        let h_p = mod_inv(&(&l_function(&g_p, &p) % &p), &p)?;
        let g_q = if g_fast {
            &(&one + &(&q_minus_1 * &n)) % &q_squared
        } else {
            pow_secret(&ctx_q2, &(&g % &q_squared), &q_minus_1, q.bit_len())
        };
        let h_q = mod_inv(&(&l_function(&g_q, &q) % &q), &q)?;
        let p_inv_q = mod_inv(&(&p % &q), &q)?;

        let private = PaillierPrivateKey {
            p,
            q,
            lambda,
            mu,
            public: public.clone(),
            p_squared,
            q_squared,
            p_minus_1,
            q_minus_1,
            ctx_p2,
            ctx_q2,
            h_p,
            h_q,
            p_inv_q,
        };
        Ok(PaillierKeyPair { public, private })
    }
}

/// Cheap structural fingerprint of a key's modulus and generator, embedded
/// in ciphertexts to catch cross-key mixing. Two keys sharing `n` but
/// using different `g` decrypt each other's ciphertexts to garbage, so `g`
/// is part of the identity.
fn key_fingerprint(n: &Natural, g: &Natural) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &l in n.limbs().iter().chain(g.limbs()) {
        h ^= l;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl PaillierPublicKey {
    /// Encrypts `m < n` with a fresh blinding factor (paper Eq. 3).
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &Natural, rng: &mut R) -> Result<Ciphertext> {
        let r = random_coprime(rng, &self.n);
        self.encrypt_with_r(m, &r)
    }

    /// Encrypts with an explicit blinding factor (deterministic tests).
    // flcheck: secret(m)
    pub fn encrypt_with_r(&self, m: &Natural, r: &Natural) -> Result<Ciphertext> {
        // The range check leaks only whether the plaintext is valid — a
        // bit the caller already knows.
        // flcheck: allow(ct-taint)
        if m >= &self.n {
            // The error path reports the oversize plaintext's bit length
            // to the caller who supplied it; nothing else observes it.
            // flcheck: allow(ct-taint)
            let plaintext_bits = m.bit_len();
            // flcheck: allow(ct-taint)
            return Err(Error::PlaintextTooLarge {
                plaintext_bits,
                modulus_bits: self.n.bit_len(),
            });
        }
        // Fast path (g = n+1): g^m mod n² = 1 + m·n — one multiplication.
        // Generic g pays a full exponentiation; the plaintext m is secret,
        // so it goes through the constant-time ladder with the public
        // bound m < n.
        let g_m = if self.g_fast {
            &(&Natural::one() + &(m * &self.n)) % &self.n_squared
        } else {
            pow_secret(&self.ctx_n2, &self.g, m, self.n.bit_len())
        };
        // r^n mod n²: the expensive modular exponentiation.
        let r_n = mod_pow_ctx(&self.ctx_n2, r, &self.n);
        // mod_mul's reduction cost tracks the public operand widths (all
        // values are full-width mod n²), not the residue being blinded.
        // flcheck: allow(ct-taint)
        let value = self.ctx_n2.mod_mul(&g_m, &r_n);
        Ok(Ciphertext {
            value,
            key_id: self.key_id,
        })
    }

    /// Homomorphic addition (paper Eq. 5): `E(m₁)·E(m₂) mod n²`.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        debug_assert_eq!(c1.key_id, self.key_id);
        debug_assert_eq!(c2.key_id, self.key_id);
        Ciphertext {
            value: self.ctx_n2.mod_mul(&c1.value, &c2.value),
            key_id: self.key_id,
        }
    }

    /// Checked homomorphic addition: fails on key mismatch.
    pub fn checked_add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Result<Ciphertext> {
        if c1.key_id != self.key_id || c2.key_id != self.key_id {
            return Err(Error::KeyMismatch);
        }
        Ok(self.add(c1, c2))
    }

    /// Plaintext-scalar multiplication: `E(m)^k = E(k·m mod n)`.
    pub fn scalar_mul(&self, c: &Ciphertext, k: &Natural) -> Ciphertext {
        debug_assert_eq!(c.key_id, self.key_id);
        Ciphertext {
            value: mod_pow_ctx(&self.ctx_n2, &c.value, k),
            key_id: self.key_id,
        }
    }

    /// Encryption of zero with unit blinding — the additive identity used
    /// to initialize aggregation accumulators.
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext {
            value: Natural::one(),
            key_id: self.key_id,
        }
    }

    /// Estimated limb-level operation count of one encryption, used by the
    /// GPU simulator's timing model: a `bits(n)`-bit exponentiation of
    /// `s²`-cost Montgomery multiplications plus the blinding multiply.
    /// Keys with a generic generator (no `g = n+1` closed form) also pay
    /// the constant-time `g^m` ladder: one squaring and one multiply per
    /// exponent bit.
    pub fn encrypt_op_estimate(&self) -> u64 {
        let s = self.ctx_n2.width() as u64;
        let e_bits = self.n.bit_len() as u64;
        let w = window_size_for(self.n.bit_len()) as u64;
        // squarings + window multiplies + table build
        let mont_muls = e_bits + e_bits / (w + 1) + (1 << (w - 1));
        let g_muls = if self.g_fast { 0 } else { 2 * e_bits };
        (mont_muls + g_muls + 2) * s * s
    }

    /// Estimated limb-level operation count of one homomorphic addition.
    pub fn add_op_estimate(&self) -> u64 {
        let s = self.ctx_n2.width() as u64;
        3 * s * s // to-Montgomery ×2 is amortized; one mont-mul + reduce
    }
}

impl PaillierPrivateKey {
    /// Direct decryption (paper Eq. 4), constant-time in `λ`.
    // flcheck: secret(lambda)
    pub fn decrypt(&self, c: &Ciphertext) -> Result<Natural> {
        self.check(c)?;
        // λ = lcm(p-1, q-1) < n: the public modulus size bounds the ladder.
        let u = pow_secret(
            &self.public.ctx_n2,
            &c.value,
            &self.lambda,
            self.public.n.bit_len(),
        );
        // L(u) = (u-1)/n is variable-time in the *decryption output*, not
        // in the λ bits the ladder above protects.
        // flcheck: allow(ct-taint)
        let l = l_function(&u, &self.public.n);
        Ok(&(&l * &self.mu) % &self.public.n)
    }

    /// CRT decryption: exponentiates modulo `p²` and `q²` (half-width
    /// operands, half-length exponents) and recombines — the fast path the
    /// GPU layer batches.
    // flcheck: secret(p_minus_1, q_minus_1)
    pub fn decrypt_crt(&self, c: &Ciphertext) -> Result<Natural> {
        self.check(c)?;
        // m_p = L_p(c^{p-1} mod p²) · h_p mod p; the exponent p-1 is
        // private-key material, bounded by the public half-key size.
        let cp = &c.value % &self.p_squared;
        let up = pow_secret(&self.ctx_p2, &cp, &self.p_minus_1, self.p.bit_len());
        // L_p operates on the recovered residue, not the p-1 exponent bits;
        // its division timing tracks the public half-key width.
        // flcheck: allow(ct-taint)
        let m_p = &(&l_function(&up, &self.p) * &self.h_p) % &self.p;

        let cq = &c.value % &self.q_squared;
        let uq = pow_secret(&self.ctx_q2, &cq, &self.q_minus_1, self.q.bit_len());
        // Same as the p branch: post-ladder output processing.
        // flcheck: allow(ct-taint)
        let m_q = &(&l_function(&uq, &self.q) * &self.h_q) % &self.q;

        // CRT: m = m_p + p·((m_q - m_p)·p^{-1} mod q), with m_p reduced
        // into [0, q) before the difference (p and q have no ordering).
        let m_p_mod_q = &m_p % &self.q;
        // CRT recombination of the two plaintext residues; both ladders
        // are already done and the arithmetic is width-bounded.
        // flcheck: allow(ct-taint)
        let diff = m_q.mod_sub(&m_p_mod_q, &self.q);
        let t = &(&diff * &self.p_inv_q) % &self.q;
        Ok(&m_p + &(&self.p * &t))
    }

    /// Estimated limb-level op count of one CRT decryption.
    pub fn decrypt_op_estimate(&self) -> u64 {
        let s = self.ctx_p2.width() as u64;
        let e_bits = self.p.bit_len() as u64;
        let w = window_size_for(self.p.bit_len()) as u64;
        let mont_muls = e_bits + e_bits / (w + 1) + (1 << (w - 1));
        2 * (mont_muls + 4) * s * s // two half-width exponentiations
    }

    fn check(&self, c: &Ciphertext) -> Result<()> {
        if c.key_id != self.public.key_id {
            return Err(Error::KeyMismatch);
        }
        if c.value >= self.public.n_squared {
            return Err(Error::CiphertextOutOfRange);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x5EED)
    }

    fn keys(bits: u32) -> PaillierKeyPair {
        PaillierKeyPair::generate(&mut rng(), bits).unwrap()
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn roundtrip_small_values() {
        let k = keys(128);
        let mut r = rng();
        for v in [0u64, 1, 42, 0xFFFF_FFFF] {
            let c = k.public.encrypt(&nat(v), &mut r).unwrap();
            assert_eq!(k.private.decrypt(&c).unwrap(), nat(v), "direct {v}");
            assert_eq!(k.private.decrypt_crt(&c).unwrap(), nat(v), "crt {v}");
        }
    }

    #[test]
    fn roundtrip_near_modulus() {
        let k = keys(128);
        let mut r = rng();
        let m = k.public.n.checked_sub(&Natural::one()).unwrap();
        let c = k.public.encrypt(&m, &mut r).unwrap();
        assert_eq!(k.private.decrypt(&c).unwrap(), m);
        assert_eq!(k.private.decrypt_crt(&c).unwrap(), m);
    }

    #[test]
    fn plaintext_too_large_rejected() {
        let k = keys(128);
        let mut r = rng();
        assert!(matches!(
            k.public.encrypt(&k.public.n, &mut r),
            Err(Error::PlaintextTooLarge { .. })
        ));
    }

    #[test]
    fn homomorphic_addition() {
        let k = keys(128);
        let mut r = rng();
        let c1 = k.public.encrypt(&nat(1000), &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(2345), &mut r).unwrap();
        let sum = k.public.add(&c1, &c2);
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(3345));
    }

    #[test]
    fn homomorphic_addition_wraps_mod_n() {
        let k = keys(128);
        let mut r = rng();
        let m = k.public.n.checked_sub(&Natural::one()).unwrap();
        let c1 = k.public.encrypt(&m, &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(2), &mut r).unwrap();
        let sum = k.public.add(&c1, &c2);
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(1));
    }

    #[test]
    fn scalar_multiplication() {
        let k = keys(128);
        let mut r = rng();
        let c = k.public.encrypt(&nat(111), &mut r).unwrap();
        let scaled = k.public.scalar_mul(&c, &nat(9));
        assert_eq!(k.private.decrypt(&scaled).unwrap(), nat(999));
    }

    #[test]
    fn zero_ciphertext_is_additive_identity() {
        let k = keys(128);
        let mut r = rng();
        let c = k.public.encrypt(&nat(77), &mut r).unwrap();
        let sum = k.public.add(&c, &k.public.zero_ciphertext());
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(77));
    }

    #[test]
    fn encryption_is_probabilistic() {
        let k = keys(128);
        let mut r = rng();
        let c1 = k.public.encrypt(&nat(5), &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(5), &mut r).unwrap();
        assert_ne!(c1.value, c2.value, "fresh blinding must differ");
        assert_eq!(
            k.private.decrypt(&c1).unwrap(),
            k.private.decrypt(&c2).unwrap()
        );
    }

    #[test]
    fn cross_key_operations_fail() {
        let k1 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(1), 128).unwrap();
        let k2 = PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(2), 128).unwrap();
        let mut r = rng();
        let c1 = k1.public.encrypt(&nat(1), &mut r).unwrap();
        let c2 = k2.public.encrypt(&nat(2), &mut r).unwrap();
        assert_eq!(k1.public.checked_add(&c1, &c2), Err(Error::KeyMismatch));
        assert_eq!(k2.private.decrypt(&c1), Err(Error::KeyMismatch));
    }

    #[test]
    fn ciphertext_out_of_range_rejected() {
        let k = keys(128);
        let bogus = Ciphertext {
            value: k.public.n_squared.clone(),
            key_id: k.public.key_id,
        };
        assert_eq!(k.private.decrypt(&bogus), Err(Error::CiphertextOutOfRange));
    }

    #[test]
    fn key_size_floor_enforced() {
        assert!(matches!(
            PaillierKeyPair::generate(&mut rng(), 32),
            Err(Error::KeySizeTooSmall { .. })
        ));
    }

    #[test]
    fn modulus_has_requested_size() {
        for bits in [64u32, 128, 256] {
            let k = keys(bits);
            assert_eq!(k.public.n.bit_len(), bits);
            assert_eq!(k.public.key_bits, bits);
        }
    }

    #[test]
    fn ciphertext_is_about_twice_key_size() {
        // The paper's communication overhead: a k-bit key yields 2k-bit
        // ciphertexts.
        let k = keys(128);
        let mut r = rng();
        let c = k.public.encrypt(&nat(1), &mut r).unwrap();
        let bits = c.value.bit_len();
        assert!(bits > 192 && bits <= 256, "ciphertext bits {bits}");
    }

    #[test]
    fn op_estimates_scale_with_key_size() {
        let k1 = keys(64);
        let k2 = keys(256);
        assert!(k2.public.encrypt_op_estimate() > 4 * k1.public.encrypt_op_estimate());
        assert!(k2.private.decrypt_op_estimate() > 4 * k1.private.decrypt_op_estimate());
        assert!(k1.public.add_op_estimate() < k1.public.encrypt_op_estimate());
    }

    /// Key pair over the same primes as `keys(128)` but with the generic
    /// generator `g = 1 + 2n` (valid: `L((1+2n)^λ) = 2λ mod n`, coprime to
    /// the odd `n` because `gcd(λ, n) = 1` for equal-size primes).
    fn generic_g_keys() -> PaillierKeyPair {
        let k = keys(128);
        let n = &k.public.n;
        let g = &Natural::one() + &(&Natural::from(2u64) * n);
        PaillierKeyPair::from_primes_with_g(k.private.p.clone(), k.private.q.clone(), 128, g)
            .unwrap()
    }

    #[test]
    fn generic_g_roundtrip_and_addition() {
        let k = generic_g_keys();
        assert!(!k.public.g_fast);
        let mut r = rng();
        for v in [0u64, 1, 42, 0xFFFF_FFFF] {
            let c = k.public.encrypt(&nat(v), &mut r).unwrap();
            assert_eq!(k.private.decrypt(&c).unwrap(), nat(v), "direct {v}");
            assert_eq!(k.private.decrypt_crt(&c).unwrap(), nat(v), "crt {v}");
        }
        let c1 = k.public.encrypt(&nat(1000), &mut r).unwrap();
        let c2 = k.public.encrypt(&nat(2345), &mut r).unwrap();
        let sum = k.public.checked_add(&c1, &c2).unwrap();
        assert_eq!(k.private.decrypt(&sum).unwrap(), nat(3345));
    }

    #[test]
    fn explicit_n_plus_1_matches_default_path() {
        let k = keys(128);
        let g = &k.public.n + &Natural::one();
        let k2 =
            PaillierKeyPair::from_primes_with_g(k.private.p.clone(), k.private.q.clone(), 128, g)
                .unwrap();
        assert!(k2.public.g_fast);
        assert_eq!(k.public.key_id, k2.public.key_id);
        let r = nat(987_654_321);
        let c1 = k.public.encrypt_with_r(&nat(7777), &r).unwrap();
        let c2 = k2.public.encrypt_with_r(&nat(7777), &r).unwrap();
        assert_eq!(c1.value, c2.value);
    }

    #[test]
    fn invalid_generators_rejected() {
        let k = keys(128);
        let (p, q) = (k.private.p.clone(), k.private.q.clone());
        // g = 1 has order 1: L(1^λ) = 0, not invertible.
        assert!(
            PaillierKeyPair::from_primes_with_g(p.clone(), q.clone(), 128, Natural::one()).is_err()
        );
        // g outside [1, n²) is structurally invalid.
        assert!(matches!(
            PaillierKeyPair::from_primes_with_g(
                p.clone(),
                q.clone(),
                128,
                k.public.n_squared.clone()
            ),
            Err(Error::InvalidParameter(_))
        ));
        assert!(matches!(
            PaillierKeyPair::from_primes_with_g(p, q, 128, Natural::from(0u64)),
            Err(Error::InvalidParameter(_))
        ));
    }

    #[test]
    fn generic_g_costs_more_and_mixing_fails() {
        let fast = keys(128);
        let slow = generic_g_keys();
        // Same modulus width, but the generic ladder adds 2·bits(n)
        // Montgomery multiplications per encryption.
        assert!(slow.public.encrypt_op_estimate() > fast.public.encrypt_op_estimate());
        // Same n, different g: the fingerprint must differ so cross-g
        // mixing fails loudly instead of decrypting to garbage.
        assert_ne!(fast.public.key_id, slow.public.key_id);
        let mut r = rng();
        let c = fast.public.encrypt(&nat(5), &mut r).unwrap();
        assert_eq!(slow.private.decrypt(&c), Err(Error::KeyMismatch));
    }

    #[test]
    fn deterministic_blinding_reproduces() {
        let k = keys(128);
        let r = nat(12345);
        let c1 = k.public.encrypt_with_r(&nat(7), &r).unwrap();
        let c2 = k.public.encrypt_with_r(&nat(7), &r).unwrap();
        assert_eq!(c1, c2);
    }
}
