//! Federated logistic regression end-to-end: train Homo LR on a
//! synthetic horizontal federation under FATE-style CPU acceleration and
//! under FLBooster, and compare simulated epoch times — the paper's
//! headline scenario.
//!
//! ```text
//! cargo run --release --example federated_training
//! ```

use fl::data::generators::DatasetSpec;
use fl::models::HomoLr;
use fl::train::{train, FlEnv, TrainConfig};
use fl::{Accelerator, BackendKind};
use he::paillier::PaillierKeyPair;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A small dense classification task (LEAF-Synthetic profile, scaled).
    let mut spec = DatasetSpec::synthetic();
    spec.features = 64;
    spec.nnz_per_row = 64;
    spec.instances = 400;
    let dataset = spec.generate(1.0);
    println!(
        "dataset: {} instances x {} features, {:.0}% positive",
        dataset.len(),
        dataset.num_features,
        dataset.positive_rate() * 100.0
    );

    let cfg = TrainConfig {
        batch_size: 100,
        max_epochs: 4,
        ..TrainConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let keys = PaillierKeyPair::generate(&mut rng, 256).expect("keygen");

    let mut epoch_times = Vec::new();
    for kind in [BackendKind::Fate, BackendKind::FlBooster] {
        let accel = Accelerator::new(kind, keys.clone(), 4).expect("backend");
        let env = FlEnv::new(accel, cfg.seed);
        let mut model = HomoLr::new(&dataset, 4, &cfg);
        let report = train(&mut model, &env, &cfg).expect("training");
        println!(
            "\n{} ({} epochs, converged: {}):",
            report.backend,
            report.epochs.len(),
            report.converged
        );
        for (e, res) in report.epochs.iter().enumerate() {
            let (others, he, comm) = res.breakdown.shares();
            println!(
                "  epoch {}: loss {:.5}, {:.3} sim s (others {:.1}% | HE {:.1}% | comm {:.1}%)",
                e + 1,
                res.loss,
                res.breakdown.total_seconds(),
                others * 100.0,
                he * 100.0,
                comm * 100.0
            );
        }
        epoch_times.push(report.mean_epoch_seconds());
    }

    println!(
        "\nFLBooster speedup over FATE: {:.1}x per epoch (same loss trajectory — both use\nthe same quantizer, so updates are bit-identical)",
        epoch_times[0] / epoch_times[1]
    );
}
