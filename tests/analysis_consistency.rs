//! Consistency between the paper's closed-form analysis (Sec. V-B), the
//! codec implementation, the GPU execution model, and the measured
//! behaviour of the backends — plus the committed flcheck report, which
//! must match what a fresh scan of this tree produces.

use fl::{Accelerator, BackendKind};
use flbooster_core::analysis;
use gpu_sim::{Device, DeviceConfig};
use he::paillier::PaillierKeyPair;
use he::GpuHe;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn keys(bits: u32) -> PaillierKeyPair {
    PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(0xA0A0 ^ bits as u64), bits).unwrap()
}

#[test]
fn measured_compression_matches_eq11_within_headroom_slot() {
    // The implementation reserves one slot per word (packed value must
    // stay below n); Eq. 11 is the theoretical bound.
    for key_bits in [128u32, 256] {
        let acc = Accelerator::new(BackendKind::FlBooster, keys(key_bits), 4).unwrap();
        let n = 200usize;
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.004) - 0.4).collect();
        let enc = acc.encrypt(&values, 1).unwrap();
        let measured = n as f64 / enc.ciphertext_count() as f64;
        let r_bits = acc.codec().quantizer().config().r_bits;
        let bound = analysis::compression_ratio(n as u64, key_bits, r_bits, 4);
        assert!(
            measured <= bound + 1e-9,
            "measured {measured} exceeds Eq.11 {bound}"
        );
        // Within one slot of the bound (plus ceiling slack on the word
        // count).
        let slots = analysis::slots_per_word(key_bits, r_bits, 4) as f64;
        assert!(
            measured >= bound * (slots - 1.0) / slots * 0.95,
            "measured {measured} too far below Eq.11 {bound}"
        );
    }
}

#[test]
fn ac_bc_equals_he_operation_reduction() {
    // Eq. 13: the BC acceleration on HE operations equals the compression
    // ratio — verified against actual ciphertext counts of the two
    // backends.
    let shared = keys(256);
    let n = 180usize;
    let values: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.05).sin() * 0.5).collect();
    let with_bc = Accelerator::new(BackendKind::FlBooster, shared.clone(), 4).unwrap();
    let without = Accelerator::new(BackendKind::WithoutBc, shared, 4).unwrap();
    let e1 = with_bc.encrypt(&values, 1).unwrap();
    let e2 = without.encrypt(&values, 1).unwrap();
    let measured_ac = e2.ciphertext_count() as f64 / e1.ciphertext_count() as f64;
    let measured_ratio = n as f64 / e1.ciphertext_count() as f64;
    assert!((measured_ac - measured_ratio).abs() < 1e-9);
}

#[test]
fn ghe_model_and_simulator_agree_on_direction() {
    // Eq. 10 says GPU acceleration grows with batch size; the simulator
    // must agree.
    let model = analysis::GheModel {
        beta_cpu: 2.7e-3,
        beta_transfer: 6.25e-11,
        beta_gpu: 1.9,
        t_max: 82 * 1536,
    };
    let small = model.ac_ghe(64, 64 * 32, 64 * 2048);
    let large = model.ac_ghe(100_000, 100_000 * 32, 100_000u64 * 2048);
    assert!(large > small, "Eq.10: bigger batches amortize better");

    // Simulator: per-item kernel seconds shrink as the batch grows.
    let device = Device::new(DeviceConfig::rtx3090());
    let spec = GpuHe::kernel_spec("enc", 1024, true);
    let per_item = |items: usize| {
        let data: Vec<u32> = (0..items as u32).collect();
        let (_, report) = device.launch(&spec, &data, 0, 0, |_, _| {
            gpu_sim::ItemOutcome::new((), 1_000_000)
        });
        report.sim_kernel_seconds / items as f64
    };
    assert!(
        per_item(10_000) < per_item(16),
        "simulator must show batch amortization"
    );
}

#[test]
fn utilization_decreases_with_key_size_for_both_gpu_backends() {
    // The Fig. 6 trend holds in both the plan (analysis) and the measured
    // launches.
    let shared128 = keys(128);
    for kind in [BackendKind::Haflo, BackendKind::FlBooster] {
        let device_check = Device::new(DeviceConfig::rtx3090());
        let mut last_occ = f64::INFINITY;
        for key_bits in [1024u32, 2048, 4096] {
            let spec = GpuHe::kernel_spec("enc", key_bits, true);
            let plan = device_check
                .manager()
                .plan(device_check.config(), &spec, 100_000);
            assert!(plan.occupancy <= last_occ + 1e-12, "{kind:?} at {key_bits}");
            last_occ = plan.occupancy;
        }
        let _ = &shared128;
    }
}

#[test]
fn flbooster_manager_beats_haflo_fixed_blocks_at_large_keys() {
    // Fig. 6's gap comes from the resource manager: at large key sizes
    // the register demand per thread grows and a fixed 256-thread block
    // wastes occupancy, while the adaptive manager picks a better shape.
    use gpu_sim::resource::ResourceManager;
    let cfg = DeviceConfig::rtx3090();
    let adaptive = ResourceManager::new();
    let fixed = ResourceManager::fixed(256);
    let mut gap_seen = false;
    for key_bits in [1024u32, 2048, 4096] {
        let spec = GpuHe::kernel_spec("enc", key_bits, true);
        let a = adaptive.plan(&cfg, &spec, 1_000_000);
        let f = fixed.plan(&cfg, &spec, 1_000_000);
        assert!(
            a.occupancy >= f.occupancy - 1e-12,
            "adaptive {} < fixed {} at {key_bits}",
            a.occupancy,
            f.occupancy
        );
        if a.occupancy > f.occupancy + 1e-9 {
            gap_seen = true;
        }
    }
    assert!(gap_seen, "the manager must win strictly at some key size");

    // Measured, like-for-like (same ciphertext count): the adaptive
    // backend's utilization is never below the fixed-block one.
    let shared = keys(128);
    let values: Vec<f64> = (0..4096).map(|i| ((i as f64) * 0.01).sin() * 0.9).collect();
    let mut utils = Vec::new();
    for kind in [BackendKind::Haflo, BackendKind::WithoutBc] {
        let acc = Accelerator::new(kind, shared.clone(), 4).unwrap();
        acc.encrypt(&values, 3).unwrap();
        utils.push(acc.device_stats().unwrap().mean_sm_utilization());
    }
    assert!(
        utils[1] >= utils[0] - 1e-9,
        "adaptive utilization {} must be >= fixed-block {}",
        utils[1],
        utils[0]
    );
}

#[test]
fn total_acceleration_is_product_of_modules() {
    // Eq. 14 sanity over the real backends: FLBooster's advantage over
    // FATE decomposes into the GHE win (w/o BC vs FATE-like CPU) times
    // the BC win (FLBooster vs w/o BC), in HE seconds.
    let shared = keys(256);
    let n = 240usize;
    let values: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.02).cos() * 0.6).collect();
    let he_secs = |kind: BackendKind| {
        let acc = Accelerator::new(kind, shared.clone(), 4).unwrap();
        acc.encrypt(&values, 1).unwrap();
        acc.timing().he_seconds
    };
    let fate = he_secs(BackendKind::Fate);
    let wo_bc = he_secs(BackendKind::WithoutBc);
    let flb = he_secs(BackendKind::FlBooster);
    let ac_ghe = fate / wo_bc;
    let ac_bc = wo_bc / flb;
    let ac_total = fate / flb;
    assert!((ac_total - ac_ghe * ac_bc).abs() / ac_total < 1e-9);
    assert!(ac_ghe > 1.0 && ac_bc > 1.0);
}

#[test]
fn committed_flcheck_report_matches_a_fresh_scan() {
    // `results/flcheck_report.json` is committed so reviewers can read
    // the analyzer's verdict without building; it must never drift from
    // what the tree actually produces. A fresh scan at schema 6 has to
    // reproduce the committed bytes exactly — zero findings included.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(root.join("results/flcheck_report.json"))
        .expect("results/flcheck_report.json is committed");
    assert!(
        committed.contains("\"schema\": 6"),
        "committed report is not at schema 6"
    );
    let fresh = flcheck::run(root).expect("workspace scan").render_json();
    assert_eq!(
        fresh, committed,
        "committed flcheck report drifted from a fresh scan: \
         regenerate with `cargo run --release --bin flcheck -- --json results/flcheck_report.json`"
    );
}
