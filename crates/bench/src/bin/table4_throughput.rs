//! **Table IV**: throughput of HE operations (instances per second) for
//! FATE / HAFLO / FLBooster across models, datasets, and key sizes.
//!
//! Two numbers per cell:
//!
//! - **measured** — real crypto at the harness scale (a few hundred
//!   values). GPU backends are *under-utilization-bound* here: a small
//!   batch cannot fill 82 SMs, exactly as a small batch would not fill
//!   the paper's RTX 3090.
//! - **modeled** — the paper's Sec. V-B analysis (Eq. 10) evaluated at
//!   device saturation (hundreds of thousands of concurrent operations,
//!   the regime Table IV was measured in).
//!
//! Paper reference shapes @1024: FATE ~360/s, HAFLO ~59 k/s, FLBooster
//! ~0.4–0.5 M/s; throughput falls ~6× per key-size doubling.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin table4_throughput -- [--keys ...]
//! ```

use fl::BackendKind;
use flbooster_bench::table::Table;
use flbooster_bench::{backend, bench_dataset, shared_keys, Args, ModelKind, PARTICIPANTS};
use gpu_sim::{resource::ResourceManager, Device, DeviceConfig};
use he::ghe::DEFAULT_CPU_SECONDS_PER_OP;
use he::GpuHe;

/// Characteristic per-round HE vector length for a model on a dataset.
fn workload_values(model: ModelKind, dataset: &fl::data::Dataset) -> usize {
    match model {
        ModelKind::HomoLr => dataset.num_features,
        ModelKind::HeteroLr => dataset.num_features + 2 * 64,
        ModelKind::HeteroSbt => 2 * dataset.len(),
        ModelKind::HeteroNn => 2 * 64 * fl::models::HIDDEN,
    }
    .clamp(16, 256)
}

/// Eq.-10-style saturated throughput model: one encrypt + one homomorphic
/// add + one decrypt per instance, `1e6` instances in flight.
fn modeled_throughput(kind: BackendKind, key_bits: u32) -> f64 {
    let keys = shared_keys(key_bits);
    let ops_per_item = keys.public.encrypt_op_estimate()
        + keys.public.add_op_estimate()
        + keys.private.decrypt_op_estimate();
    let values_per_ct = match kind {
        BackendKind::FlBooster | BackendKind::WithoutGhe => {
            (key_bits / 32).saturating_sub(1).max(1) as f64
        }
        _ => 1.0,
    };
    match kind {
        BackendKind::Fate | BackendKind::WithoutGhe => {
            values_per_ct / (ops_per_item as f64 * DEFAULT_CPU_SECONDS_PER_OP)
        }
        _ => {
            let device = match kind {
                BackendKind::Haflo => {
                    Device::with_manager(DeviceConfig::rtx3090(), ResourceManager::fixed(256))
                }
                _ => Device::new(DeviceConfig::rtx3090()),
            };
            let cfg = device.config();
            let spec = GpuHe::kernel_spec("saturated", key_bits, true);
            let items = 1_000_000usize;
            let plan = device.manager().plan(cfg, &spec, items);
            let concurrent = plan.concurrent_threads(cfg).max(1) as f64;
            let kernel_seconds =
                items as f64 * ops_per_item as f64 / concurrent * cfg.sec_per_thread_op;
            let ct_bytes = (2 * key_bits as u64).div_ceil(8);
            let transfer_seconds =
                (items as u64 * 2 * ct_bytes) as f64 / cfg.transfer_bytes_per_sec;
            items as f64 * values_per_ct / (kernel_seconds + transfer_seconds)
        }
    }
}

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let keys = args.key_sizes();

    println!("Table IV — HE throughput in instances/simulated second ({preset:?} preset)");
    println!("Each cell: measured-at-harness-scale / modeled-at-saturation (Eq. 10)\n");
    let mut table = Table::new(["Dataset", "Model", "Key", "FATE", "HAFLO", "FLBooster"]);

    for dataset_kind in args.datasets() {
        let data = bench_dataset(dataset_kind, preset);
        for model_kind in args.models() {
            let n = workload_values(model_kind, &data);
            let values: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.61).sin() * 0.9).collect();
            for &key_bits in &keys {
                let mut cells = Vec::new();
                for backend_kind in BackendKind::headline() {
                    let acc = backend(backend_kind, key_bits, PARTICIPANTS);
                    let enc = acc.encrypt(&values, 7).expect("encrypt");
                    let agg = acc.aggregate(&[enc.clone(), enc]).expect("aggregate");
                    let _ = acc.decrypt_sum(&agg, 2).expect("decrypt");
                    let t = acc.timing();
                    let measured = 2.0 * n as f64 / t.he_seconds;
                    let modeled = modeled_throughput(backend_kind, key_bits);
                    cells.push(format!("{measured:.0} / {modeled:.0}"));
                }
                table.row([
                    dataset_kind.name().to_string(),
                    model_kind.name().to_string(),
                    key_bits.to_string(),
                    cells[0].clone(),
                    cells[1].clone(),
                    cells[2].clone(),
                ]);
            }
        }
    }
    table.print();
    println!("\nPaper reference @1024: FATE ~360/s, HAFLO ~59k/s, FLBooster ~400-530k/s;");
    println!("throughput falls ~6x per key-size doubling (modeled column).");
}
