//! flcheck — workspace static analysis for the FLBooster reproduction.
//!
//! Federated-learning acceleration lives or dies on its cryptographic
//! core: the Montgomery/CIOS kernels in `mpint` and the Paillier/RSA
//! paths in `he` process secret plaintexts and private exponents, the GPU
//! simulator and pipeline are concurrent, and every library crate is
//! consumed by long-running training jobs that must not abort mid-epoch.
//! flcheck enforces three corresponding disciplines with a hand-rolled
//! lexer and zero external dependencies (the build environment has no
//! registry access):
//!
//! | family          | rules                                                    |
//! |-----------------|----------------------------------------------------------|
//! | ct-discipline   | `ct-branch`, `ct-return`, `ct-compare`, `ct-shortcircuit`|
//! | panic-freedom   | `pf-unwrap`, `pf-expect`, `pf-panic`, `pf-assert`, `pf-index` |
//! | lock-discipline | `ld-wait` (per-file), `lock-cycle`, `lock-across-hotpath`, `guard-across-steal`, `guard-escape` |
//! | cost-model      | `uncharged-work`, `stale-estimate`                       |
//! | determinism     | `nondet-in-result` (source-to-result-sink flow)          |
//! | races           | `race-shared-mut`, `race-unsynced-write`, `race-cell-steal` (closure captures crossing the pool) |
//! | width           | `lossy-narrow` (narrowing casts reaching codec/cost/net sinks) |
//! | units           | `unit-mismatch`, `unit-unconverted`, `charge-unphased` (dimensional analysis over charging) |
//! | interprocedural | `ct-taint` (secret propagation), `pf-reach` (transitive panics) |
//!
//! The ct- and pf- families plus `ld-wait` are per-file lexer passes; the
//! rest run on a workspace call graph built by the item-level parser
//! ([`parse`], [`callgraph`], [`taint`], [`detflow`], [`escape`],
//! [`lockgraph`], [`costmodel`], [`races`], [`width`], [`units`]) and
//! report full call/lock/capture chains. See [`rules`] for rule
//! semantics and [`source`] for the directive grammar (`ct-fn`,
//! `secret(..)`, `lock(..)`, `mac-prim`, `charge-sink`,
//! `estimates(..)`, `det-sink`, `det-absorb`, `nondet(..)`,
//! `widen-ok(..)`, `narrow(..)`, `unit(..)`, and `convert(..)` markers,
//! `allow` / `allow-file` suppressions, `lock-order` declarations).
//!
//! The analyzer's own sources are excluded from the default walk: they
//! discuss directives and violations in documentation and fixtures, and
//! the tool is a dev-time binary, not part of the library surface. The
//! dependency shims are skipped too, with one exception: the rayon shim
//! hosts the work-stealing thread pool that every kernel launch runs on,
//! so its lock discipline (per-worker deques vs the shared panic slot) is
//! checked like any first-party crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod costmodel;
pub mod detflow;
pub mod escape;
pub mod explain;
pub mod lexer;
pub mod lockgraph;
pub mod parse;
pub mod races;
pub mod report;
pub mod rules;
pub mod source;
pub mod taint;
pub mod units;
pub mod width;

use rayon::prelude::*;
use report::{Finding, Report};
use source::SourceFile;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Library crates subject to the panic-freedom rules. `bench` (a binary
/// crate), the dependency shims, and flcheck itself are out of scope.
pub const PANIC_FREEDOM_CRATES: &[&str] = &["mpint", "he", "codec", "core", "fl", "gpu-sim"];

/// Path components that terminate the walk.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "flcheck", "fixtures"];

/// Directories re-included despite a skipped ancestor: the rayon shim is
/// real concurrent runtime code (workers, deques, a shared panic slot),
/// not a thin API veneer, so its lock discipline is analyzed.
const RESCAN_DIRS: &[&str] = &["rayon"];

/// True when the panic-freedom family applies to this workspace-relative
/// path (non-test source of a library crate).
pub fn panic_rules_apply(rel_path: &str) -> bool {
    PANIC_FREEDOM_CRATES
        .iter()
        .any(|c| rel_path.starts_with(&format!("crates/{c}/src/")))
}

/// Analyzes one file's source text with the intraprocedural rule
/// families only. `rel_path` selects which apply (panic-freedom is
/// scoped by crate; ct- and lock-discipline run everywhere
/// markers/locks appear). The interprocedural passes need the whole
/// workspace — see [`check_workspace`].
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let file = SourceFile::parse(rel_path, src);
    let mut out = Vec::new();
    rules::check_ct(&file, &mut out);
    if panic_rules_apply(rel_path) {
        rules::check_panics(&file, &mut out);
    }
    rules::check_locks(&file, &mut out);
    out
}

/// Wall-clock timings for each analysis phase of a workspace scan, used
/// by the self-benchmark (`bench_flcheck`) and available to any caller
/// via [`check_workspace_with_stats`]. Timings never influence report
/// content — the report is byte-identical whatever these read.
#[derive(Debug, Default, Clone)]
pub struct ScanStats {
    /// Per-file phase (lexing + intraprocedural rules + item parsing),
    /// wall-clock across the parallel map, not summed per file.
    pub per_file: Duration,
    /// Call-graph construction.
    pub callgraph: Duration,
    /// `ct-taint` secret-propagation pass.
    pub taint: Duration,
    /// `pf-reach` panic-propagation pass.
    pub reach: Duration,
    /// `nondet-in-result` determinism-flow pass.
    pub detflow: Duration,
    /// `guard-escape` pass (escape findings + the returned-guard map the
    /// lock graph consumes).
    pub escape: Duration,
    /// Lock-graph pass (`lock-cycle`, `lock-across-hotpath`,
    /// `guard-across-steal`).
    pub lockgraph: Duration,
    /// Cost-model pass (`uncharged-work`, `stale-estimate`).
    pub costmodel: Duration,
    /// Race pass (`race-shared-mut`, `race-unsynced-write`,
    /// `race-cell-steal`).
    pub races: Duration,
    /// Width pass (`lossy-narrow`).
    pub width: Duration,
    /// Unit-flow pass (`unit-mismatch`, `unit-unconverted`).
    pub units: Duration,
    /// Charge-phase pass (`charge-unphased`).
    pub charge_phase: Duration,
    /// Whole scan, including sort.
    pub total: Duration,
}

/// Analyzes a whole workspace given as (workspace-relative path, source)
/// pairs: the per-file rule families (fanned out over the rayon
/// work-stealing pool), then the call graph and the interprocedural
/// passes (`ct-taint`, `pf-reach`, `nondet-in-result`, `guard-escape`,
/// the lock-graph rules, the cost-model rules, the race rules, the
/// width rules, and the unit-flow rules) on top.
pub fn check_workspace(inputs: &[(String, String)]) -> Report {
    check_workspace_with_stats(inputs).0
}

/// [`check_workspace`], additionally returning per-phase wall-clock
/// timings. The per-file phase runs as a parallel map over the input
/// list; every downstream pass consumes the collected results in input
/// order, so findings (and the rendered report) are independent of
/// thread count.
pub fn check_workspace_with_stats(inputs: &[(String, String)]) -> (Report, ScanStats) {
    let start = Instant::now();
    let mut stats = ScanStats::default();
    let mut report = Report::default();

    let t = Instant::now();
    let per_file: Vec<(Vec<Finding>, parse::ParsedFile)> = inputs
        .par_iter()
        .map(|(rel, src)| (check_file(rel, src), parse::ParsedFile::parse(rel, src)))
        .collect();
    stats.per_file = t.elapsed();
    let mut parsed = Vec::with_capacity(inputs.len());
    for (findings, file) in per_file {
        report.findings.extend(findings);
        parsed.push(file);
        report.files_scanned += 1;
    }

    let t = Instant::now();
    let graph = callgraph::CallGraph::build(&parsed);
    stats.callgraph = t.elapsed();

    let t = Instant::now();
    taint::check_taint(&parsed, &graph, &mut report.findings);
    stats.taint = t.elapsed();

    let t = Instant::now();
    callgraph::check_reach(&parsed, &graph, &mut report.findings);
    stats.reach = t.elapsed();

    let t = Instant::now();
    detflow::check_detflow(&parsed, &graph, &mut report.findings);
    stats.detflow = t.elapsed();

    let t = Instant::now();
    let escape_info = escape::analyze(&parsed, &graph, &mut report.findings);
    stats.escape = t.elapsed();

    let t = Instant::now();
    lockgraph::check_lock_graph(&parsed, &graph, &escape_info, &mut report.findings);
    stats.lockgraph = t.elapsed();

    let t = Instant::now();
    costmodel::check_cost_model(&parsed, &graph, &mut report.findings);
    stats.costmodel = t.elapsed();

    let t = Instant::now();
    races::check_races(&parsed, &graph, &mut report.findings);
    stats.races = t.elapsed();

    let t = Instant::now();
    width::check_width(&parsed, &graph, &mut report.findings);
    stats.width = t.elapsed();

    let t = Instant::now();
    units::check_units(&parsed, &graph, &mut report.findings);
    stats.units = t.elapsed();

    let t = Instant::now();
    units::check_charge_phase(&parsed, &graph, &mut report.findings);
    stats.charge_phase = t.elapsed();

    report.sort();
    stats.total = start.elapsed();
    (report, stats)
}

/// Recursively collects the `.rs` files to analyze under `root`,
/// workspace-relative, sorted for deterministic reports.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.starts_with('.') {
                    continue;
                }
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                } else if name == "shims" {
                    // Descend selectively: most shims are inert API
                    // veneers, but RESCAN_DIRS members carry real
                    // concurrency worth checking.
                    for sub in std::fs::read_dir(&path)? {
                        let sub = sub?;
                        let sub_name = sub.file_name();
                        let sub_path = sub.path();
                        if sub_path.is_dir()
                            && RESCAN_DIRS.contains(&sub_name.to_string_lossy().as_ref())
                        {
                            stack.push(sub_path);
                        }
                    }
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full analysis over a workspace rooted at `root`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    Ok(run_with_stats(root)?.0)
}

/// [`run`], additionally returning per-phase wall-clock timings.
pub fn run_with_stats(root: &Path) -> std::io::Result<(Report, ScanStats)> {
    let mut inputs = Vec::new();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        inputs.push((rel, src));
    }
    Ok(check_workspace_with_stats(&inputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_scope_is_path_based() {
        assert!(panic_rules_apply("crates/mpint/src/limb.rs"));
        assert!(panic_rules_apply("crates/gpu-sim/src/device.rs"));
        assert!(!panic_rules_apply("crates/bench/src/main.rs"));
        assert!(!panic_rules_apply("crates/shims/rand/src/lib.rs"));
        assert!(!panic_rules_apply("src/lib.rs"));
        assert!(!panic_rules_apply("crates/mpint/tests/props.rs"));
    }

    #[test]
    fn check_file_routes_rules_by_path() {
        let src = "fn f(v: &[u8]) -> u8 { v.first().unwrap(); v[0] }";
        let in_scope = check_file("crates/he/src/x.rs", src);
        assert_eq!(in_scope.len(), 2);
        let out_of_scope = check_file("crates/bench/src/x.rs", src);
        assert!(out_of_scope.is_empty());
    }

    #[test]
    fn rayon_shim_is_scanned_but_other_shims_are_not() {
        // Walk from the workspace root two levels up from this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        let files = collect_files(&root).unwrap();
        let rel: Vec<String> = files
            .iter()
            .map(|p| {
                p.strip_prefix(&root)
                    .unwrap()
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        assert!(
            rel.iter().any(|p| p == "crates/shims/rayon/src/pool.rs"),
            "pool.rs must be in the walk: {rel:?}"
        );
        assert!(
            !rel.iter()
                .any(|p| p.starts_with("crates/shims/parking_lot/")),
            "inert shims stay excluded"
        );
        // Lock discipline applies to the shim; panic-freedom does not
        // (it is still outside PANIC_FREEDOM_CRATES).
        assert!(!panic_rules_apply("crates/shims/rayon/src/pool.rs"));
    }
}
