//! Error type for the platform layer.

use std::fmt;

/// Result alias for platform operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the FLBooster platform.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A homomorphic-encryption failure.
    He(he::Error),
    /// A quantization/compression failure.
    Codec(codec::Error),
    /// An arithmetic failure from the multi-precision layer.
    Arithmetic(mpint::Error),
    /// Operand arrays of a vectorized API had different lengths.
    LengthMismatch {
        /// Left operand length.
        left: usize,
        /// Right operand length.
        right: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::He(e) => write!(f, "homomorphic encryption: {e}"),
            Error::Codec(e) => write!(f, "codec: {e}"),
            Error::Arithmetic(e) => write!(f, "arithmetic: {e}"),
            Error::LengthMismatch { left, right } => {
                write!(f, "vectorized operands differ in length: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::He(e) => Some(e),
            Error::Codec(e) => Some(e),
            Error::Arithmetic(e) => Some(e),
            Error::LengthMismatch { .. } => None,
        }
    }
}

impl From<he::Error> for Error {
    fn from(e: he::Error) -> Self {
        Error::He(e)
    }
}

impl From<codec::Error> for Error {
    fn from(e: codec::Error) -> Self {
        Error::Codec(e)
    }
}

impl From<mpint::Error> for Error {
    fn from(e: mpint::Error) -> Self {
        Error::Arithmetic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = he::Error::KeyMismatch.into();
        assert!(e.to_string().contains("different keys"));
        let e: Error = codec::Error::BadConfig("x".into()).into();
        assert!(e.to_string().contains("codec"));
        let e: Error = mpint::Error::DivisionByZero.into();
        assert!(e.to_string().contains("zero"));
        let e = Error::LengthMismatch { left: 2, right: 3 };
        assert!(e.to_string().contains("2 vs 3"));
    }
}
