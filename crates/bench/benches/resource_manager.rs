//! Resource-manager ablation bench (DESIGN.md §5.5): launch throughput
//! and achieved occupancy of the adaptive FLBooster manager vs naive
//! fixed-block launches, plus the branch-combining policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::resource::ResourceManager;
use gpu_sim::{Device, DeviceConfig, ItemOutcome, KernelSpec};
use he::GpuHe;
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("resource_plan");
    let cfg = DeviceConfig::rtx3090();
    let spec = GpuHe::kernel_spec("enc", 2048, true);

    let adaptive = ResourceManager::new();
    group.bench_function("adaptive", |b| {
        b.iter(|| black_box(adaptive.plan(&cfg, black_box(&spec), 100_000)))
    });
    let fixed = ResourceManager::fixed(256);
    group.bench_function("fixed256", |b| {
        b.iter(|| black_box(fixed.plan(&cfg, black_box(&spec), 100_000)))
    });
    group.finish();

    // Report the occupancy outcome next to the timing so the ablation
    // result is visible in the bench log.
    for key_bits in [1024u32, 2048, 4096] {
        let spec = GpuHe::kernel_spec("enc", key_bits, true);
        let a = adaptive.plan(&cfg, &spec, 100_000);
        let f = fixed.plan(&cfg, &spec, 100_000);
        eprintln!(
            "occupancy @{key_bits}: adaptive {:.3} (block {}), fixed256 {:.3}",
            a.occupancy, a.threads_per_block, f.occupancy
        );
    }
}

fn bench_launch(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_launch");
    group.sample_size(20);
    let items: Vec<u64> = (0..4096).collect();
    for (name, device) in [
        ("adaptive", Device::new(DeviceConfig::rtx3090())),
        (
            "fixed256",
            Device::with_manager(DeviceConfig::rtx3090(), ResourceManager::fixed(256)),
        ),
    ] {
        let spec = KernelSpec {
            divergence: 0.4,
            ..KernelSpec::simple("bench_kernel")
        };
        group.bench_with_input(BenchmarkId::new("launch4096", name), &name, |b, _| {
            b.iter(|| {
                let (out, _) = device.launch(&spec, &items, 1024, 1024, |i, &x| ItemOutcome {
                    output: x.wrapping_mul(x),
                    thread_ops: 64,
                    divergent: i % 3 == 0,
                });
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_planning, bench_launch
}
criterion_main!(benches);
