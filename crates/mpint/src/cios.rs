//! CIOS Montgomery multiplication — the paper's Algorithm 2.
//!
//! Of the five CPU Montgomery variants analysed by Koç, Acar & Kaliski
//! (SOS, CIOS, FIOS, FIPS, CIHS), the paper selects CIOS — Coarsely
//! Integrated Operand Scanning — as the fastest and smallest, and ports it
//! to the GPU with each thread owning `x = s/T` words of every operand
//! (Sec. IV-A3). This module provides:
//!
//! - [`mont_mul`]: the flat word-serial CIOS loop (the per-thread inner
//!   body of Algorithm 2);
//! - [`mont_mul_partitioned`]: the same computation *partitioned into `T`
//!   lanes of `x` words each*, reporting per-lane work so the GPU
//!   simulator can account occupancy and inter-thread communication
//!   exactly as the paper describes.
//!
//! Both agree with the reference Algorithm-1 implementation in
//! [`crate::montgomery`]; the agreement is property-tested.

// flcheck: allow-file(pf-index) — accumulator/word indices are bounded by the
// fixed operand width `s` established on entry; bounds checks in the CIOS
// inner loop are the hot path of the whole workspace.
// flcheck: allow-file(pf-assert) — width preconditions are documented API
// contract (covered by `unpadded_operands_rejected`), mirroring slice-length
// panics in std.

use crate::limb::{adc, mac, Limb, LIMB_BITS};
use crate::natural::Natural;

/// Per-lane work accounting for the partitioned kernel.
///
/// One entry per simulated GPU thread; used by `gpu-sim` to model SM
/// occupancy and the carry-propagation communication between threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Multiply-accumulate limb operations executed by each lane.
    pub mac_ops: Vec<u64>,
    /// Inter-lane carry/borrow propagations (the paper's "inter-thread
    /// communication" for carry and borrow).
    pub carry_transfers: u64,
}

impl LaneStats {
    /// Total MAC operations across lanes.
    pub fn total_mac_ops(&self) -> u64 {
        self.mac_ops.iter().sum()
    }

    /// Load imbalance: max lane work / mean lane work (1.0 = perfectly
    /// balanced). Returns 1.0 for empty stats.
    pub fn imbalance(&self) -> f64 {
        if self.mac_ops.is_empty() {
            return 1.0;
        }
        let max = self.mac_ops.iter().max().copied().unwrap_or(0) as f64;
        let mean = self.total_mac_ops() as f64 / self.mac_ops.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Flat CIOS Montgomery multiplication: computes `a·b·R^{-1} mod n` where
/// `R = 2^{64·s}`, `s = n_limbs.len()`, for `a, b < n` and odd `n`.
///
/// `a` and `b` must be padded to exactly `s` limbs ([`Natural::to_padded_limbs`]);
/// `n0_inv = -n[0]^{-1} mod 2^64` ([`crate::limb::mont_neg_inv`]).
// flcheck: ct-fn
// flcheck: secret(a, b)
// flcheck: mac-prim
pub fn mont_mul(a: &[Limb], b: &[Limb], n: &[Limb], n0_inv: Limb) -> Vec<Limb> {
    let s = n.len();
    assert_eq!(a.len(), s, "operand a must be padded to the modulus width");
    assert_eq!(b.len(), s, "operand b must be padded to the modulus width");
    // t has s+2 words: the running accumulator of Algorithm 2.
    let mut t = vec![0 as Limb; s + 2];

    for &bi in b.iter() {
        // t += a * b_i  (lines 3–9)
        let mut carry = 0;
        for (j, &aj) in a.iter().enumerate() {
            let (lo, hi) = mac(aj, bi, t[j], carry);
            t[j] = lo;
            carry = hi;
        }
        let (s0, c) = adc(t[s], carry, 0);
        t[s] = s0;
        t[s + 1] = t[s + 1].wrapping_add(c);

        // m = t[0] * n'_0 mod 2^64 (line 10)
        let m = t[0].wrapping_mul(n0_inv);

        // t += m * n; then shift one word right (lines 11–17).
        let (_, mut carry) = mac(m, n[0], t[0], 0); // low word becomes 0 by construction
        for j in 1..s {
            let (lo, hi) = mac(m, n[j], t[j], carry);
            t[j - 1] = lo;
            carry = hi;
        }
        let (s1, c) = adc(t[s], carry, 0);
        t[s - 1] = s1;
        t[s] = t[s + 1].wrapping_add(c);
        t[s + 1] = 0;
    }

    conditional_subtract(&mut t, n);
    t.truncate(s);
    t
}

/// MAC (multiply-accumulate) operations one [`mont_mul`] call executes for
/// an `s`-limb modulus: `s` MACs for `a·b_i` plus `s` MACs for `m·n` in
/// each of the `s` outer iterations.
pub const fn mont_mul_mac_count(s: usize) -> u64 {
    2 * (s as u64) * (s as u64)
}

/// MAC operations one [`mont_sqr`] call executes for an `s`-limb modulus:
/// `s·(s−1)/2` off-diagonal products (each `a_i·a_j`, `i < j`, computed
/// once and doubled by a shift), `s` diagonal products `a_i²`, and `s²`
/// reduction MACs — `1.5·s² + 0.5·s` total, versus `2·s²` for the general
/// multiplication. The saved `0.5·s² − 0.5·s` MACs are exactly the
/// `a_i·a_j`/`a_j·a_i` symmetry.
pub const fn mont_sqr_mac_count(s: usize) -> u64 {
    // s·(s−1)/2 + s  =  s·(s+1)/2, written underflow-safe.
    let s = s as u64;
    s * (s + 1) / 2 + s * s
}

/// Dedicated Montgomery squaring: computes `a²·R^{-1} mod n` for `a < n`
/// and odd `n`, with ~25% fewer MACs than `mont_mul(a, a, ..)` (see
/// [`mont_sqr_mac_count`]).
///
/// The product phase exploits the `a_i·a_j = a_j·a_i` symmetry: each
/// off-diagonal pair is multiplied once and the partial sum doubled with a
/// single full-width shift, then the diagonal terms `a_i²` are added. The
/// reduction phase is the separated (SOS) Montgomery reduction: `s` rounds
/// of `m = t_i·n'₀; t += m·n·B^i`, with every carry propagated to the top
/// of the accumulator by a fixed-length chain so the instruction trace
/// depends only on the public width `s` — squarings sit inside the
/// constant-time ladder of [`crate::modpow::mod_pow_ct`], where the
/// squared value derives from secret exponent bits.
///
/// `a` must be padded to exactly `s = n.len()` limbs; `n0_inv` as in
/// [`mont_mul`]. The result is bit-identical to `mont_mul(a, a, n,
/// n0_inv)` (property-tested across limb widths).
// flcheck: ct-fn
// flcheck: secret(a)
// flcheck: mac-prim
pub fn mont_sqr(a: &[Limb], n: &[Limb], n0_inv: Limb) -> Vec<Limb> {
    let s = n.len();
    assert_eq!(a.len(), s, "operand a must be padded to the modulus width");
    // Accumulator: 2s limbs for a² plus one word of reduction headroom.
    let mut t = vec![0 as Limb; 2 * s + 1];

    // Off-diagonal half-product: t += a_i·a_j for all i < j. Pass i's
    // carry lands at t[i+s], which no earlier pass has written (pass k
    // writes words [2k+1, k+s-1] and its carry at k+s < i+s).
    for i in 0..s {
        let mut carry = 0;
        for j in (i + 1)..s {
            let (lo, hi) = mac(a[i], a[j], t[i + j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        t[i + s] = carry;
    }

    // Double the half-product: one left shift across the accumulator.
    // 2·Σ_{i<j} a_i·a_j ≤ a² < 2^{2·64·s}, so nothing escapes word 2s-1.
    let mut top = 0;
    for word in t.iter_mut() {
        let next_top = *word >> (LIMB_BITS - 1);
        *word = (*word << 1) | top;
        top = next_top;
    }

    // Diagonal terms: t[2i..] += a_i². The mac carry (≤ 2^64−1) feeds the
    // next even word; the odd-word adc carry (0/1) rides along with it.
    let mut carry = 0;
    for i in 0..s {
        let (lo, hi) = mac(a[i], a[i], t[2 * i], carry);
        t[2 * i] = lo;
        let (mid, c) = adc(t[2 * i + 1], hi, 0);
        t[2 * i + 1] = mid;
        carry = c;
    }
    debug_assert_eq!(carry, 0, "a² fits in 2s limbs");

    // Separated Montgomery reduction: s rounds of m = t_i·n'₀ mod 2^64;
    // t += m·n·B^i. Each round's carry is pushed to the top of the
    // accumulator by a fixed-length adc chain (no data-dependent early
    // exit: the squared value is secret-derived inside the ct ladder).
    for i in 0..s {
        let m = t[i].wrapping_mul(n0_inv);
        let mut carry = 0;
        for j in 0..s {
            let (lo, hi) = mac(m, n[j], t[i + j], carry);
            t[i + j] = lo;
            carry = hi;
        }
        let mut c = carry;
        for k in (i + s)..(2 * s + 1) {
            let (lo, c2) = adc(t[k], c, 0);
            t[k] = lo;
            c = c2;
        }
        debug_assert_eq!(c, 0, "t < 2nR throughout the reduction");
    }

    // Result is t / B^s, a value < 2n in s+1 words; one masked
    // subtraction reduces it (same final step as Algorithm 2).
    let mut out = t[s..].to_vec();
    conditional_subtract(&mut out, n);
    out.truncate(s);
    out
}

/// Convenience wrapper: Montgomery squaring over [`Natural`]s with a
/// precomputed context.
pub fn mont_sqr_natural(ctx: &crate::MontgomeryCtx, a: &Natural) -> Natural {
    let s = ctx.width();
    let out = mont_sqr(
        &a.to_padded_limbs(s),
        &ctx.modulus().to_padded_limbs(s),
        ctx.n0_inv(),
    );
    Natural::from_limbs(out)
}

/// Partitioned CIOS: identical arithmetic to [`mont_mul`] but with every
/// operand split into `threads` lanes of `x = ceil(s/threads)` words, as in
/// the paper's GPU kernel. Returns the product limbs plus per-lane stats.
///
/// The lane structure is *semantic* (it drives the simulator's accounting);
/// execution here is sequential, because the real parallel scheduling is
/// the GPU simulator's job.
// flcheck: mac-prim
pub fn mont_mul_partitioned(
    a: &[Limb],
    b: &[Limb],
    n: &[Limb],
    n0_inv: Limb,
    threads: usize,
) -> (Vec<Limb>, LaneStats) {
    let s = n.len();
    assert!(threads > 0, "at least one lane required");
    assert_eq!(a.len(), s);
    assert_eq!(b.len(), s);
    let x = s.div_ceil(threads);
    let mut stats = LaneStats {
        mac_ops: vec![0; threads],
        carry_transfers: 0,
    };
    let lane_of = |word: usize| (word / x).min(threads - 1);

    let mut t = vec![0 as Limb; s + 2];
    // Outer structure of Algorithm 2: every lane i walks its x words of b
    // (lines 1–2); the flat iteration order below visits the same (i, j)
    // pairs. Each b-word is fetched from its owning lane — one inter-thread
    // transfer when the consumer differs from the owner.
    for (bw, &bi) in b.iter().enumerate() {
        let owner = lane_of(bw);
        let mut carry = 0;
        for (j, &aj) in a.iter().enumerate() {
            let (lo, hi) = mac(aj, bi, t[j], carry);
            t[j] = lo;
            carry = hi;
            stats.mac_ops[lane_of(j)] += 1;
            if lane_of(j) != owner {
                stats.carry_transfers += 1; // b_i broadcast across lanes
            }
        }
        let (s0, c) = adc(t[s], carry, 0);
        t[s] = s0;
        t[s + 1] = t[s + 1].wrapping_add(c);
        stats.carry_transfers += 1; // carry into the top lane

        let m = t[0].wrapping_mul(n0_inv);
        let (_, mut carry) = mac(m, n[0], t[0], 0);
        stats.mac_ops[0] += 1;
        for j in 1..s {
            let (lo, hi) = mac(m, n[j], t[j], carry);
            t[j - 1] = lo;
            carry = hi;
            stats.mac_ops[lane_of(j)] += 1;
            if lane_of(j) != lane_of(j - 1) {
                stats.carry_transfers += 1; // word shift crosses a lane edge
            }
        }
        let (s1, c) = adc(t[s], carry, 0);
        t[s - 1] = s1;
        t[s] = t[s + 1].wrapping_add(c);
        t[s + 1] = 0;
    }

    // Overflow check / subtraction (lines 18–22) runs on all lanes; the
    // borrow chain is one more full propagation.
    stats.carry_transfers += threads as u64;
    conditional_subtract(&mut t, n);
    t.truncate(s);
    (t, stats)
}

/// Final reduction (lines 18–22 of Algorithm 2): subtracts `n` once when
/// `t >= n`, via the constant-time masked subtraction from [`crate::ct`].
///
/// `t` has `s + 2` words holding a value `< 2n`; the accumulator words are
/// secret-derived, so the earlier compare-then-branch implementation
/// leaked whether the final subtraction ran. `ct_ge_then_sub` executes an
/// identical instruction sequence either way.
// flcheck: ct-fn
// flcheck: secret(t)
fn conditional_subtract(t: &mut [Limb], n: &[Limb]) {
    crate::ct::ct_ge_then_sub(t, n);
}

/// Convenience wrapper operating on [`Natural`]s with a precomputed
/// Montgomery context.
pub fn mont_mul_natural(ctx: &crate::MontgomeryCtx, a: &Natural, b: &Natural) -> Natural {
    let s = ctx.width();
    let out = mont_mul(
        &a.to_padded_limbs(s),
        &b.to_padded_limbs(s),
        &ctx.modulus().to_padded_limbs(s),
        ctx.n0_inv(),
    );
    Natural::from_limbs(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limb::mont_neg_inv;
    use crate::MontgomeryCtx;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    fn check_against_alg1(modulus: u128, a: u128, b: u128) {
        let ctx = MontgomeryCtx::new(&n(modulus)).unwrap();
        let am = ctx.to_mont(&n(a));
        let bm = ctx.to_mont(&n(b));
        let expected = ctx.mont_mul(&am, &bm);
        let got = mont_mul_natural(&ctx, &am, &bm);
        assert_eq!(got, expected, "CIOS vs Alg.1 for {a}*{b} mod {modulus}");
    }

    #[test]
    fn cios_matches_algorithm1_single_limb() {
        check_against_alg1(0xFFFF_FFFF_FFFF_FFC5, 3, 5);
        check_against_alg1(0xFFFF_FFFF_FFFF_FFC5, 0xFFFF_FFFF_FFFF_FFC4, 2);
        check_against_alg1(101, 100, 100);
    }

    #[test]
    fn cios_matches_algorithm1_two_limbs() {
        let p = (1u128 << 127) - 1;
        check_against_alg1(p, (1 << 100) + 7, (1 << 120) + 13);
        check_against_alg1(p, p - 1, p - 1);
        check_against_alg1(p, 0, 42);
    }

    #[test]
    fn cios_full_modmul_via_context() {
        let p = (1u128 << 127) - 1;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let (a, b) = ((1u128 << 126) + 3, (1u128 << 125) + 11);
        let am = ctx.to_mont(&n(a));
        let bm = ctx.to_mont(&n(b));
        let prod = ctx.from_mont(&mont_mul_natural(&ctx, &am, &bm));
        assert_eq!(prod, &(&n(a) * &n(b)) % &n(p));
    }

    #[test]
    fn partitioned_matches_flat_and_reports_lanes() {
        let p = (1u128 << 127) - 1;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let s = ctx.width();
        let a = ctx.to_mont(&n((1 << 99) + 1)).to_padded_limbs(s);
        let b = ctx.to_mont(&n((1 << 88) + 9)).to_padded_limbs(s);
        let nn = ctx.modulus().to_padded_limbs(s);
        let flat = mont_mul(&a, &b, &nn, ctx.n0_inv());
        for threads in [1usize, 2] {
            let (part, stats) = mont_mul_partitioned(&a, &b, &nn, ctx.n0_inv(), threads);
            assert_eq!(part, flat, "{threads} lanes");
            assert_eq!(stats.mac_ops.len(), threads);
            assert!(stats.total_mac_ops() > 0);
        }
    }

    #[test]
    fn partitioned_carry_transfers_grow_with_lanes() {
        // Build an 8-limb odd modulus.
        let mut limbs = vec![u64::MAX; 8];
        limbs[0] = u64::MAX - 2; // still odd
        let modulus = Natural::from_limbs(limbs);
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let s = ctx.width();
        let a = n(123_456_789).to_padded_limbs(s);
        let b = n(987_654_321).to_padded_limbs(s);
        let nn = modulus.to_padded_limbs(s);
        let (_, s1) = mont_mul_partitioned(&a, &b, &nn, ctx.n0_inv(), 1);
        let (_, s4) = mont_mul_partitioned(&a, &b, &nn, ctx.n0_inv(), 4);
        assert!(s4.carry_transfers > s1.carry_transfers);
        // Same arithmetic => same total work.
        assert_eq!(s1.total_mac_ops(), s4.total_mac_ops());
    }

    #[test]
    fn lane_stats_imbalance() {
        let balanced = LaneStats {
            mac_ops: vec![10, 10, 10],
            carry_transfers: 0,
        };
        assert!((balanced.imbalance() - 1.0).abs() < 1e-12);
        let skewed = LaneStats {
            mac_ops: vec![30, 0, 0],
            carry_transfers: 0,
        };
        assert!((skewed.imbalance() - 3.0).abs() < 1e-12);
        assert!((LaneStats::default().imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mont_identity_element() {
        // mont_mul(xR, R mod n) should give x·R·R·R^{-1} = xR ... i.e.
        // multiplying by the Montgomery form of 1 is the identity.
        let p = 1_000_000_007u128;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let s = ctx.width();
        let x = ctx.to_mont(&n(999_999_999));
        let one = ctx.one_mont();
        let out = mont_mul(
            &x.to_padded_limbs(s),
            &one.to_padded_limbs(s),
            &ctx.modulus().to_padded_limbs(s),
            ctx.n0_inv(),
        );
        assert_eq!(Natural::from_limbs(out), x);
    }

    #[test]
    fn n0_inv_consistency() {
        let p = 0xFFFF_FFFF_FFFF_FFC5u64;
        assert_eq!(mont_neg_inv(p).wrapping_mul(p), 1u64.wrapping_neg());
    }

    #[test]
    #[should_panic(expected = "padded")]
    fn unpadded_operands_rejected() {
        mont_mul(&[1], &[1, 2], &[3, 5], mont_neg_inv(3));
    }

    #[test]
    fn sqr_matches_mul_small_moduli() {
        for (modulus, a) in [
            (101u128, 0u128),
            (101, 100),
            (0xFFFF_FFFF_FFFF_FFC5, 0xFFFF_FFFF_FFFF_FFC4),
            ((1 << 127) - 1, (1 << 126) + 12345),
            ((1 << 127) - 1, 0),
        ] {
            let ctx = MontgomeryCtx::new(&n(modulus)).unwrap();
            let s = ctx.width();
            let am = ctx.to_mont(&n(a)).to_padded_limbs(s);
            let nn = ctx.modulus().to_padded_limbs(s);
            let via_mul = mont_mul(&am, &am, &nn, ctx.n0_inv());
            let via_sqr = mont_sqr(&am, &nn, ctx.n0_inv());
            assert_eq!(via_sqr, via_mul, "{a}² mod {modulus}");
        }
    }

    #[test]
    fn sqr_full_modsquare_via_context() {
        let p = (1u128 << 127) - 1;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let a = (1u128 << 126) + 7;
        let am = ctx.to_mont(&n(a));
        let sq = ctx.from_mont(&mont_sqr_natural(&ctx, &am));
        assert_eq!(sq, &(&n(a) * &n(a)) % &n(p));
    }

    #[test]
    fn sqr_mac_count_beats_mul() {
        // s = 1 has no off-diagonal terms to save: counts are equal.
        assert_eq!(mont_sqr_mac_count(1), mont_mul_mac_count(1));
        for s in [2usize, 8, 16, 32, 64] {
            let (mul, sqr) = (mont_mul_mac_count(s), mont_sqr_mac_count(s));
            assert!(sqr < mul, "s={s}: sqr {sqr} !< mul {mul}");
            // Asymptotically 1.5s² + s/2 vs 2s²: the ratio approaches 3/4.
            if s >= 16 {
                let ratio = sqr as f64 / mul as f64;
                assert!((0.74..0.78).contains(&ratio), "s={s}: ratio {ratio}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "padded")]
    fn sqr_unpadded_operand_rejected() {
        mont_sqr(&[1], &[3, 5], mont_neg_inv(3));
    }
}
