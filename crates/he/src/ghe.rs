//! GPU-HE: batched homomorphic operations (paper Sec. IV-A).
//!
//! The paper's key observation is that HE operations over a gradient
//! vector are *independent*, so encryption, decryption, and homomorphic
//! computation parallelize perfectly across GPU threads. This module
//! provides a [`HeBackend`] abstraction with two implementations:
//!
//! - [`CpuHe`] — the FATE-style baseline: serial CPU loops, with simulated
//!   time `n · β_cpu` per the paper's Eq. 10 numerator.
//! - [`GpuHe`] — the GHE layer: every batch becomes one kernel launch on a
//!   [`gpu_sim::Device`], with the kernel spec (lanes, registers) derived
//!   from the key size, so occupancy and SM utilization respond to the key
//!   size exactly as in the paper's Fig. 6.
//!
//! Both backends perform the *real* cryptographic computation — the
//! backends differ only in parallel scheduling and in the simulated-time
//! accounting the FL trainer consumes.

use std::sync::Arc;

use gpu_sim::{Device, KernelSpec};
use mpint::Natural;
use rayon::prelude::*;

use crate::paillier::{Ciphertext, ObfuscatorPool, PaillierPrivateKey, PaillierPublicKey};
use crate::Result;

/// Timing and volume accounting for one batched HE call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HeTiming {
    /// Simulated seconds the operation took on its backend.
    pub sim_seconds: f64,
    /// Limb-level operations executed.
    pub ops: u64,
    /// Items processed.
    pub items: u64,
}

impl HeTiming {
    /// Accumulates another timing into this one.
    pub fn merge(&mut self, other: &HeTiming) {
        self.sim_seconds += other.sim_seconds;
        self.ops += other.ops;
        self.items += other.items;
    }
}

/// A batched homomorphic-encryption execution backend.
pub trait HeBackend: Send + Sync {
    /// Backend name for reports ("cpu", "gpu").
    fn name(&self) -> &'static str;

    /// Encrypts a batch of plaintexts. `seed` derives per-item blinding
    /// randomness deterministically (each item gets an independent
    /// stream, matching the paper's per-thread RNG).
    fn encrypt_batch(
        &self,
        pk: &PaillierPublicKey,
        plaintexts: &[Natural],
        seed: u64,
    ) -> Result<(Vec<Ciphertext>, HeTiming)>;

    /// Decrypts a batch of ciphertexts (CRT fast path).
    fn decrypt_batch(
        &self,
        sk: &PaillierPrivateKey,
        ciphertexts: &[Ciphertext],
    ) -> Result<(Vec<Natural>, HeTiming)>;

    /// Pairwise homomorphic addition of two equal-length batches.
    fn add_batch(
        &self,
        pk: &PaillierPublicKey,
        a: &[Ciphertext],
        b: &[Ciphertext],
    ) -> Result<(Vec<Ciphertext>, HeTiming)>;

    /// Folds each group of ciphertexts into one by homomorphic addition —
    /// the gradient-histogram reduction of SecureBoost (one group per
    /// (feature, bin) bucket). Empty groups yield the encryption of zero.
    fn fold_groups(
        &self,
        pk: &PaillierPublicKey,
        groups: &[Vec<Ciphertext>],
    ) -> Result<(Vec<Ciphertext>, HeTiming)>;

    /// Weighted aggregation across participant batches:
    /// `out[j] = ∏ᵢ batches[i][j] ^ weights[i] mod n²` — one Straus
    /// multi-exponentiation per slot
    /// ([`PaillierPublicKey::weighted_sum`]), parallel across slots.
    /// Weights are public sample counts. All batches must share a length;
    /// an empty batch list yields an empty output.
    fn weighted_aggregate(
        &self,
        pk: &PaillierPublicKey,
        batches: &[Vec<Ciphertext>],
        weights: &[u64],
    ) -> Result<(Vec<Ciphertext>, HeTiming)>;

    /// Sharded form of
    /// [`weighted_aggregate`](Self::weighted_aggregate): each slot's
    /// Straus fold is split into `shards` independent chains merged by a
    /// streaming homomorphic addition
    /// ([`PaillierPublicKey::weighted_sum_sharded`]). Bit-identical to
    /// the flat fold at any shard or thread count; timing is charged from
    /// the MAC-derived sharded estimate instead of the flat one.
    fn weighted_aggregate_sharded(
        &self,
        pk: &PaillierPublicKey,
        batches: &[Vec<Ciphertext>],
        weights: &[u64],
        shards: usize,
    ) -> Result<(Vec<Ciphertext>, HeTiming)>;
}

/// Chunk-granularity cap for HE batch loops: schedule every item as its
/// own stealable task. One item is a full multi-kilobit modular
/// exponentiation (≈10⁵–10⁶ limb ops at 1024 bits), which dwarfs the
/// ~100 ns per-task scheduling cost, and per-item scheduling lets the
/// pool rebalance skewed batches (e.g. `fold_groups` over uneven
/// histogram buckets) that coarse chunking would serialize.
const HE_MAX_CHUNK: usize = 1;

/// Derives the per-item blinding factor from a batch seed — delegated to
/// the key so [`ObfuscatorPool::prefill_batch`] derives the *same* `r`
/// values and pooled encryption stays bit-identical.
fn blinding(pk: &PaillierPublicKey, seed: u64, index: usize) -> Natural {
    pk.batch_blinding(seed, index)
}

/// Encrypts one batch item, preferring a pool-precomputed `(r, r^n)`
/// pair; on a pool miss it computes `r^n` inline from the same
/// deterministically derived `r`, so the ciphertext is bit-identical
/// either way. Returns whether the pool served the item (the pooled path
/// skips the `bits(n)`-bit exponentiation, so it is charged differently).
fn encrypt_item(
    pk: &PaillierPublicKey,
    pool: Option<&ObfuscatorPool>,
    m: &Natural,
    seed: u64,
    index: usize,
) -> (Result<Ciphertext>, bool) {
    match pool.and_then(|p| p.take(seed, index)) {
        Some(obf) => (pk.encrypt_with_obfuscator(m, obf), true),
        None => (pk.encrypt_with_r(m, &blinding(pk, seed, index)), false),
    }
}

/// Shape-checks a weighted-aggregate call: one weight per batch, all
/// batches the same length. Returns the slot count and the weights as
/// [`Natural`]s.
fn weighted_shape(batches: &[Vec<Ciphertext>], weights: &[u64]) -> (usize, Vec<Natural>) {
    // Documented trait contract: misaligned batches are a caller bug.
    // flcheck: allow(pf-assert)
    assert_eq!(
        batches.len(),
        weights.len(),
        "weighted_aggregate requires one weight per batch"
    );
    let slots = batches.first().map_or(0, Vec::len);
    for b in batches {
        // flcheck: allow(pf-assert)
        assert_eq!(b.len(), slots, "weighted_aggregate requires equal lengths");
    }
    (slots, weights.iter().map(|&w| Natural::from(w)).collect())
}

/// Gathers slot `j` across every participant batch.
fn slot_column(batches: &[Vec<Ciphertext>], j: usize) -> Vec<Ciphertext> {
    // In range: weighted_shape verified every batch has `slots` items.
    // flcheck: allow(pf-index)
    batches.iter().map(|b| b[j].clone()).collect()
}

/// Bit length of the widest weight.
fn max_weight_bits(weights: &[u64]) -> u32 {
    weights
        .iter()
        .map(|&w| 64 - w.leading_zeros())
        .max()
        .unwrap_or(0)
}

// ---------------------------------------------------------------------
// CPU baseline (FATE-style)
// ---------------------------------------------------------------------

/// CPU execution of HE batches — the paper's FATE baseline.
///
/// Simulated time charges `β_cpu` per limb-level operation *serially*
/// (FATE's per-value Python loop); the computation itself runs on the
/// host thread pool so that large benchmark batches finish quickly —
/// wall-clock and simulated time are decoupled throughout the harness.
/// The default `β_cpu` is calibrated so 1024-bit Paillier encryption
/// throughput lands near the paper's Table IV FATE row (~360
/// instances/s).
#[derive(Debug, Clone)]
pub struct CpuHe {
    /// Seconds per limb-level operation (`β_cpu`).
    pub seconds_per_op: f64,
    pool: Option<Arc<ObfuscatorPool>>,
}

/// Calibrated default `β_cpu` (see struct docs).
pub const DEFAULT_CPU_SECONDS_PER_OP: f64 = 2.0e-9;

impl Default for CpuHe {
    fn default() -> Self {
        CpuHe {
            seconds_per_op: DEFAULT_CPU_SECONDS_PER_OP,
            pool: None,
        }
    }
}

impl CpuHe {
    /// Attaches a blinding-factor pool: batch encryption consumes
    /// precomputed `(r, r^n)` pairs where available.
    pub fn with_pool(mut self, pool: Arc<ObfuscatorPool>) -> Self {
        self.pool = Some(pool);
        self
    }
}

impl HeBackend for CpuHe {
    fn name(&self) -> &'static str {
        "cpu"
    }

    // flcheck: det-sink — ciphertext bytes are result content
    fn encrypt_batch(
        &self,
        pk: &PaillierPublicKey,
        plaintexts: &[Natural],
        seed: u64,
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let results: Vec<(crate::Result<Ciphertext>, bool)> = plaintexts
            .par_iter()
            .with_max_len(HE_MAX_CHUNK)
            .enumerate()
            .map(|(i, m)| encrypt_item(pk, self.pool.as_deref(), m, seed, i))
            .collect();
        let pooled = results.iter().filter(|(_, hit)| *hit).count() as u64;
        let out: crate::Result<Vec<Ciphertext>> = results.into_iter().map(|(r, _)| r).collect();
        let out = out?;
        let full = plaintexts.len() as u64 - pooled;
        let ops = pk.encrypt_op_estimate() * full + pk.encrypt_pooled_op_estimate() * pooled;
        Ok((out, self.timing(ops, plaintexts.len())))
    }

    // flcheck: det-sink — decrypted plaintexts are result content
    fn decrypt_batch(
        &self,
        sk: &PaillierPrivateKey,
        ciphertexts: &[Ciphertext],
    ) -> Result<(Vec<Natural>, HeTiming)> {
        let out: crate::Result<Vec<Natural>> = ciphertexts
            .par_iter()
            .with_max_len(HE_MAX_CHUNK)
            .map(|c| sk.decrypt_crt(c))
            .collect();
        let out = out?;
        let ops = sk.decrypt_op_estimate() * ciphertexts.len() as u64;
        Ok((out, self.timing(ops, ciphertexts.len())))
    }

    // flcheck: det-sink — aggregate ciphertexts are result content
    fn add_batch(
        &self,
        pk: &PaillierPublicKey,
        a: &[Ciphertext],
        b: &[Ciphertext],
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        // Documented trait contract: misaligned batches are a caller bug.
        // flcheck: allow(pf-assert)
        assert_eq!(a.len(), b.len(), "add_batch requires equal lengths");
        let out: crate::Result<Vec<Ciphertext>> = a
            .par_iter()
            .with_max_len(HE_MAX_CHUNK)
            .zip(b.par_iter())
            .map(|(x, y)| pk.checked_add(x, y))
            .collect();
        let ops = pk.add_op_estimate() * a.len() as u64;
        Ok((out?, self.timing(ops, a.len())))
    }

    fn fold_groups(
        &self,
        pk: &PaillierPublicKey,
        groups: &[Vec<Ciphertext>],
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let out: crate::Result<Vec<Ciphertext>> = groups
            .par_iter()
            .with_max_len(HE_MAX_CHUNK)
            .map(|group| {
                let mut acc = pk.zero_ciphertext();
                for c in group {
                    acc = pk.checked_add(&acc, c)?;
                }
                Ok(acc)
            })
            .collect();
        let adds: u64 = groups.iter().map(|g| g.len() as u64).sum();
        let ops = pk.add_op_estimate() * adds;
        Ok((out?, self.timing(ops, groups.len())))
    }

    fn weighted_aggregate(
        &self,
        pk: &PaillierPublicKey,
        batches: &[Vec<Ciphertext>],
        weights: &[u64],
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let (slots, wnat) = weighted_shape(batches, weights);
        let out: crate::Result<Vec<Ciphertext>> = (0..slots)
            .into_par_iter()
            .with_max_len(HE_MAX_CHUNK)
            .map(|j| pk.weighted_sum(&slot_column(batches, j), &wnat))
            .collect();
        let per_slot = pk.weighted_sum_op_estimate(batches.len(), max_weight_bits(weights));
        Ok((out?, self.timing(per_slot * slots as u64, slots)))
    }

    fn weighted_aggregate_sharded(
        &self,
        pk: &PaillierPublicKey,
        batches: &[Vec<Ciphertext>],
        weights: &[u64],
        shards: usize,
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let (slots, wnat) = weighted_shape(batches, weights);
        let out: crate::Result<Vec<Ciphertext>> = (0..slots)
            .into_par_iter()
            .with_max_len(HE_MAX_CHUNK)
            .map(|j| pk.weighted_sum_sharded(&slot_column(batches, j), &wnat, shards))
            .collect();
        // The serial CPU baseline pays every shard's chain plus the
        // merges — the *total* estimate, not the critical path.
        let per_slot =
            pk.weighted_sum_sharded_op_estimate(batches.len(), max_weight_bits(weights), shards);
        Ok((out?, self.timing(per_slot * slots as u64, slots)))
    }
}

impl CpuHe {
    fn timing(&self, ops: u64, items: usize) -> HeTiming {
        HeTiming {
            sim_seconds: ops as f64 * self.seconds_per_op,
            ops,
            items: items as u64,
        }
    }
}

// ---------------------------------------------------------------------
// GPU-HE (the paper's GHE layer)
// ---------------------------------------------------------------------

/// Batched HE dispatched through the GPU execution-model simulator.
#[derive(Clone)]
pub struct GpuHe {
    device: Arc<Device>,
    pool: Option<Arc<ObfuscatorPool>>,
}

impl GpuHe {
    /// Wraps a simulated device.
    pub fn new(device: Arc<Device>) -> Self {
        GpuHe { device, pool: None }
    }

    /// Attaches a blinding-factor pool: batch encryption consumes
    /// precomputed `(r, r^n)` pairs where available.
    pub fn with_pool(mut self, pool: Arc<ObfuscatorPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The underlying device (for stats inspection).
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Kernel spec for an HE operation over a `key_bits`-bit cryptosystem.
    ///
    /// Each work item is one HE operation executed by a 32-lane thread
    /// group (the paper's `T` threads); each lane holds `x = s/T` words of
    /// the four working operands in registers, so register demand — and
    /// with it occupancy, Fig. 6 — scales with the key size.
    pub fn kernel_spec(name: &'static str, key_bits: u32, ciphertext: bool) -> KernelSpec {
        let bits = if ciphertext { 2 * key_bits } else { key_bits };
        let s = (bits as usize).div_ceil(64) as u32; // operand limbs
        let lanes = 32u32;
        let x = s.div_ceil(lanes); // words per lane
        KernelSpec {
            name,
            lanes_per_item: lanes,
            // 4 working operands × x 64-bit words × 2 registers, plus
            // bookkeeping.
            registers_per_thread: 24 + 8 * x,
            shared_mem_per_block: 0,
            // The final conditional subtraction of Algorithm 2 is a
            // data-dependent branch taken by roughly half the warps.
            divergence: 0.5,
        }
    }
}

impl HeBackend for GpuHe {
    fn name(&self) -> &'static str {
        "gpu"
    }

    // flcheck: det-sink — ciphertext bytes are result content
    fn encrypt_batch(
        &self,
        pk: &PaillierPublicKey,
        plaintexts: &[Natural],
        seed: u64,
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let spec = Self::kernel_spec("paillier_encrypt", pk.key_bits, true);
        let full_ops = pk.encrypt_op_estimate();
        let pooled_ops = pk.encrypt_pooled_op_estimate();
        // Plaintexts go up (quantized words), ciphertexts come back.
        let bytes_in: u64 = plaintexts
            .iter()
            .map(|m| m.wire_size_bytes().max(4) as u64)
            .sum();
        let ct_bytes = (pk.n_squared.bit_len() as u64).div_ceil(8);
        let bytes_out = ct_bytes * plaintexts.len() as u64;

        let (results, report) =
            self.device
                .launch(&spec, plaintexts, bytes_in, bytes_out, |i, m| {
                    let (out, hit) = encrypt_item(pk, self.pool.as_deref(), m, seed, i);
                    let ops = if hit { pooled_ops } else { full_ops };
                    gpu_sim::kernel::outcome_from_result(out, ops, i % 2 == 0)
                });
        let out: Result<Vec<Ciphertext>> = results.into_iter().collect();
        Ok((out?, timing_from(&report, self.device.config())))
    }

    // flcheck: det-sink — decrypted plaintexts are result content
    fn decrypt_batch(
        &self,
        sk: &PaillierPrivateKey,
        ciphertexts: &[Ciphertext],
    ) -> Result<(Vec<Natural>, HeTiming)> {
        let spec = Self::kernel_spec("paillier_decrypt", sk.public.key_bits, true);
        let per_item_ops = sk.decrypt_op_estimate();
        let ct_bytes = (sk.public.n_squared.bit_len() as u64).div_ceil(8);
        let bytes_in = ct_bytes * ciphertexts.len() as u64;
        let pt_bytes = (sk.public.n.bit_len() as u64).div_ceil(8);
        let bytes_out = pt_bytes * ciphertexts.len() as u64;

        let (results, report) =
            self.device
                .launch(&spec, ciphertexts, bytes_in, bytes_out, |i, c| {
                    gpu_sim::kernel::outcome_from_result(
                        sk.decrypt_crt(c),
                        per_item_ops,
                        i % 2 == 0,
                    )
                });
        let out: Result<Vec<Natural>> = results.into_iter().collect();
        Ok((out?, timing_from(&report, self.device.config())))
    }

    // flcheck: det-sink — aggregate ciphertexts are result content
    fn add_batch(
        &self,
        pk: &PaillierPublicKey,
        a: &[Ciphertext],
        b: &[Ciphertext],
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        // Documented trait contract: misaligned batches are a caller bug.
        // flcheck: allow(pf-assert)
        assert_eq!(a.len(), b.len(), "add_batch requires equal lengths");
        let spec = Self::kernel_spec("paillier_add", pk.key_bits, true);
        let per_item_ops = pk.add_op_estimate();
        let ct_bytes = (pk.n_squared.bit_len() as u64).div_ceil(8);
        // Homomorphic computation keeps data resident (paper Fig. 4 phase
        // ⑩–⑫): operands were already on-device from prior phases; only
        // parameters move. Charge one operand in, result stays.
        let bytes_in = ct_bytes; // key parameters
        let bytes_out = 0;

        let pairs: Vec<(&Ciphertext, &Ciphertext)> = a.iter().zip(b.iter()).collect();
        let (results, report) =
            self.device
                .launch(&spec, &pairs, bytes_in, bytes_out, |i, (x, y)| {
                    gpu_sim::kernel::outcome_from_result(
                        pk.checked_add(x, y),
                        per_item_ops,
                        i % 4 == 0,
                    )
                });
        let out: Result<Vec<Ciphertext>> = results.into_iter().collect();
        Ok((out?, timing_from(&report, self.device.config())))
    }

    fn fold_groups(
        &self,
        pk: &PaillierPublicKey,
        groups: &[Vec<Ciphertext>],
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let spec = Self::kernel_spec("paillier_fold", pk.key_bits, true);
        let per_add_ops = pk.add_op_estimate();
        let ct_bytes = (pk.n_squared.bit_len() as u64).div_ceil(8);
        // Operands are assumed device-resident (they arrive from a prior
        // encrypt); only the folded buckets come back.
        let bytes_out = ct_bytes * groups.len() as u64;
        let (results, report) = self.device.launch(&spec, groups, 0, bytes_out, |i, group| {
            let mut acc = pk.zero_ciphertext();
            let mut err = None;
            for c in group {
                match pk.checked_add(&acc, c) {
                    Ok(next) => acc = next,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            let ops = per_add_ops * group.len() as u64;
            let out = match err {
                Some(e) => Err(e),
                None => Ok(acc),
            };
            gpu_sim::kernel::outcome_from_result(out, ops.max(1), i % 2 == 0)
        });
        let out: Result<Vec<Ciphertext>> = results.into_iter().collect();
        Ok((out?, timing_from(&report, self.device.config())))
    }

    fn weighted_aggregate(
        &self,
        pk: &PaillierPublicKey,
        batches: &[Vec<Ciphertext>],
        weights: &[u64],
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let (slots, wnat) = weighted_shape(batches, weights);
        let spec = Self::kernel_spec("paillier_weighted_sum", pk.key_bits, true);
        let per_item_ops = pk
            .weighted_sum_op_estimate(batches.len(), max_weight_bits(weights))
            .max(1);
        let ct_bytes = (pk.n_squared.bit_len() as u64).div_ceil(8);
        // Participant ciphertexts are device-resident from prior phases
        // (paper Fig. 4 ⑩–⑫); only the weights go up and the aggregated
        // slots come back.
        let bytes_in = 8 * weights.len() as u64;
        let bytes_out = ct_bytes * slots as u64;

        let items: Vec<usize> = (0..slots).collect();
        let (results, report) = self
            .device
            .launch(&spec, &items, bytes_in, bytes_out, |i, &j| {
                gpu_sim::kernel::outcome_from_result(
                    pk.weighted_sum(&slot_column(batches, j), &wnat),
                    per_item_ops,
                    i % 2 == 0,
                )
            });
        let out: Result<Vec<Ciphertext>> = results.into_iter().collect();
        Ok((out?, timing_from(&report, self.device.config())))
    }

    fn weighted_aggregate_sharded(
        &self,
        pk: &PaillierPublicKey,
        batches: &[Vec<Ciphertext>],
        weights: &[u64],
        shards: usize,
    ) -> Result<(Vec<Ciphertext>, HeTiming)> {
        let (slots, wnat) = weighted_shape(batches, weights);
        let spec = Self::kernel_spec("paillier_weighted_sum_sharded", pk.key_bits, true);
        // Edge devices are charged the MAC-derived *sharded* estimate:
        // every chain plus the merge multiplies, per slot.
        let per_item_ops = pk
            .weighted_sum_sharded_op_estimate(batches.len(), max_weight_bits(weights), shards)
            .max(1);
        let ct_bytes = (pk.n_squared.bit_len() as u64).div_ceil(8);
        let bytes_in = 8 * weights.len() as u64;
        let bytes_out = ct_bytes * slots as u64;

        let items: Vec<usize> = (0..slots).collect();
        let (results, report) = self
            .device
            .launch(&spec, &items, bytes_in, bytes_out, |i, &j| {
                gpu_sim::kernel::outcome_from_result(
                    pk.weighted_sum_sharded(&slot_column(batches, j), &wnat, shards),
                    per_item_ops,
                    i % 2 == 0,
                )
            });
        let out: Result<Vec<Ciphertext>> = results.into_iter().collect();
        Ok((out?, timing_from(&report, self.device.config())))
    }
}

/// Converts a launch report into HE timing under *epoch-amortized*
/// accounting: kernel time is charged at the launch's occupancy-limited
/// device throughput rather than its instantaneous batch width.
///
/// Rationale: the paper's epochs stream hundreds of thousands of HE
/// operations through the GPU back-to-back, so the device is saturated;
/// the harness's scaled-down batches would otherwise be dominated by
/// tail-wave underfill that the real workload never sees. Occupancy (and
/// with it every register/branch effect the resource manager controls)
/// still shapes the charged time; only the batch-width underfill is
/// amortized away. Launch reports and utilization statistics keep the
/// unamortized view.
fn timing_from(report: &gpu_sim::LaunchReport, cfg: &gpu_sim::DeviceConfig) -> HeTiming {
    let resident = (report.plan.resident_threads_per_sm as u64 * cfg.num_sms as u64).max(1) as f64;
    // Re-derive the divergence-penalized op count the device charged.
    let penalized = report.sim_kernel_seconds * report.plan.concurrent_threads(cfg).max(1) as f64
        / cfg.sec_per_thread_op;
    let kernel_seconds = penalized / resident * cfg.sec_per_thread_op;
    HeTiming {
        sim_seconds: report.sim_h2d_seconds + kernel_seconds + report.sim_d2h_seconds,
        ops: report.total_thread_ops,
        items: report.items as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::PaillierKeyPair;
    use gpu_sim::DeviceConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn keys() -> PaillierKeyPair {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        PaillierKeyPair::generate(&mut rng, 128).unwrap()
    }

    fn gpu() -> GpuHe {
        GpuHe::new(Arc::new(Device::new(DeviceConfig::rtx3090())))
    }

    fn nats(vals: &[u64]) -> Vec<Natural> {
        vals.iter().map(|&v| Natural::from(v)).collect()
    }

    #[test]
    fn cpu_and_gpu_encrypt_same_plaintexts() {
        let k = keys();
        let ms = nats(&[1, 2, 3, 4, 5]);
        let (cpu_cts, _) = CpuHe::default().encrypt_batch(&k.public, &ms, 99).unwrap();
        let (gpu_cts, _) = gpu().encrypt_batch(&k.public, &ms, 99).unwrap();
        // Same seed => same per-item blinding => identical ciphertexts.
        assert_eq!(cpu_cts, gpu_cts);
        for (c, m) in cpu_cts.iter().zip(&ms) {
            assert_eq!(&k.private.decrypt(c).unwrap(), m);
        }
    }

    #[test]
    fn gpu_batch_roundtrip() {
        let k = keys();
        let g = gpu();
        let ms = nats(&[10, 20, 30, 40]);
        let (cts, enc_t) = g.encrypt_batch(&k.public, &ms, 7).unwrap();
        let (back, dec_t) = g.decrypt_batch(&k.private, &cts).unwrap();
        assert_eq!(back, ms);
        assert!(enc_t.sim_seconds > 0.0);
        assert!(dec_t.sim_seconds > 0.0);
        assert_eq!(enc_t.items, 4);
    }

    #[test]
    fn gpu_add_batch_is_homomorphic() {
        let k = keys();
        let g = gpu();
        let (ca, _) = g.encrypt_batch(&k.public, &nats(&[1, 2, 3]), 1).unwrap();
        let (cb, _) = g.encrypt_batch(&k.public, &nats(&[10, 20, 30]), 2).unwrap();
        let (sums, _) = g.add_batch(&k.public, &ca, &cb).unwrap();
        let (plains, _) = g.decrypt_batch(&k.private, &sums).unwrap();
        assert_eq!(plains, nats(&[11, 22, 33]));
    }

    #[test]
    fn gpu_is_simulated_faster_than_cpu_on_large_batches() {
        let k = keys();
        let ms = nats(&(0..512u64).collect::<Vec<_>>());
        let (_, cpu_t) = CpuHe::default().encrypt_batch(&k.public, &ms, 3).unwrap();
        let (_, gpu_t) = gpu().encrypt_batch(&k.public, &ms, 3).unwrap();
        assert!(
            gpu_t.sim_seconds < cpu_t.sim_seconds,
            "gpu {} !< cpu {}",
            gpu_t.sim_seconds,
            cpu_t.sim_seconds
        );
    }

    #[test]
    fn kernel_spec_registers_grow_with_key_size() {
        let r1 = GpuHe::kernel_spec("e", 1024, true).registers_per_thread;
        let r2 = GpuHe::kernel_spec("e", 2048, true).registers_per_thread;
        let r4 = GpuHe::kernel_spec("e", 4096, true).registers_per_thread;
        assert!(r1 < r2 && r2 < r4, "{r1} {r2} {r4}");
    }

    #[test]
    fn utilization_falls_with_key_size() {
        // The Fig.-6 trend, via occupancy of the planned kernels.
        let d = Device::new(DeviceConfig::rtx3090());
        let mut last = f64::INFINITY;
        for bits in [1024u32, 2048, 4096] {
            let spec = GpuHe::kernel_spec("enc", bits, true);
            let plan = d.manager().plan(d.config(), &spec, 100_000);
            assert!(plan.occupancy <= last, "occupancy rose at {bits}");
            last = plan.occupancy;
        }
    }

    #[test]
    fn device_stats_accumulate_he_launches() {
        let k = keys();
        let g = gpu();
        g.encrypt_batch(&k.public, &nats(&[1, 2]), 0).unwrap();
        g.decrypt_batch(
            &k.private,
            &g.encrypt_batch(&k.public, &nats(&[3]), 1).unwrap().0,
        )
        .unwrap();
        let stats = g.device().stats();
        assert_eq!(stats.launches, 3);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
        let kernels: Vec<_> = stats.utilization_samples.iter().map(|s| s.kernel).collect();
        assert!(kernels.contains(&"paillier_encrypt"));
        assert!(kernels.contains(&"paillier_decrypt"));
    }

    #[test]
    fn timing_merge_accumulates() {
        let mut t = HeTiming::default();
        t.merge(&HeTiming {
            sim_seconds: 1.0,
            ops: 10,
            items: 2,
        });
        t.merge(&HeTiming {
            sim_seconds: 0.5,
            ops: 5,
            items: 1,
        });
        assert_eq!(
            t,
            HeTiming {
                sim_seconds: 1.5,
                ops: 15,
                items: 3
            }
        );
    }

    #[test]
    fn sharded_aggregate_matches_flat_on_both_backends() {
        let k = keys();
        let cpu = CpuHe::default();
        let g = gpu();
        let batches: Vec<Vec<Ciphertext>> = (0..9u64)
            .map(|p| {
                cpu.encrypt_batch(&k.public, &nats(&[p + 1, 10 * p + 3, p * p]), p)
                    .unwrap()
                    .0
            })
            .collect();
        let weights: Vec<u64> = (0..9u64).map(|p| p * 977 + 1).collect();
        let (flat, flat_t) = cpu
            .weighted_aggregate(&k.public, &batches, &weights)
            .unwrap();
        for shards in [1usize, 2, 4, 9] {
            let (c, t) = cpu
                .weighted_aggregate_sharded(&k.public, &batches, &weights, shards)
                .unwrap();
            assert_eq!(c, flat, "cpu shards {shards}");
            let (gc, _) = g
                .weighted_aggregate_sharded(&k.public, &batches, &weights, shards)
                .unwrap();
            assert_eq!(gc, flat, "gpu shards {shards}");
            if shards == 1 {
                // Single shard is the flat pass: charged identically too.
                assert_eq!(t, flat_t);
            } else {
                // Extra shards cost merge multiplies on a serial device.
                assert!(t.ops >= flat_t.ops, "shards {shards}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_add_batch_panics() {
        let k = keys();
        let g = gpu();
        let (ca, _) = g.encrypt_batch(&k.public, &nats(&[1]), 0).unwrap();
        let _ = g.add_batch(&k.public, &ca, &[]);
    }
}
