//! **Table VI**: component running-time shares (Others / HE operations /
//! Communication) for Homo LR at 1024-bit keys on all three datasets and
//! all three systems.
//!
//! Paper reference rows (Homo LR @ 1024):
//!
//! ```text
//! FATE      ≈ 0.1% / 52% / 48%
//! HAFLO     ≈ 0.2% / 0.6% / 99.2%
//! FLBooster ≈ 22-48% / 5-7% / 47-72%
//! ```
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin table6_components -- [--quick]
//! ```

use fl::train::FlEnv;
use fl::BackendKind;
use flbooster_bench::table::{pct, secs, Table};
use flbooster_bench::{
    backend, bench_dataset, harness_train_config, Args, ModelKind, PARTICIPANTS,
};

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let key_bits = args.get("key").and_then(|s| s.parse().ok()).unwrap_or(1024);
    let cfg = harness_train_config();

    println!(
        "Table VI — component time shares, Homo LR @ {key_bits}-bit keys ({preset:?} preset)\n"
    );
    let mut table = Table::new([
        "Dataset",
        "Method",
        "Epoch (sim s)",
        "Others",
        "HE operations",
        "Communication",
    ]);

    for dataset_kind in args.datasets() {
        for backend_kind in BackendKind::headline() {
            let data = bench_dataset(dataset_kind, preset);
            let env = FlEnv::new(backend(backend_kind, key_bits, PARTICIPANTS), cfg.seed);
            let mut model = ModelKind::HomoLr
                .build(&data, PARTICIPANTS, &cfg)
                .expect("model build");
            let result = model.run_epoch(&env, &cfg, 0).expect("epoch");
            let b = result.breakdown;
            let (others, he, comm) = b.shares();
            table.row([
                dataset_kind.name().to_string(),
                backend_kind.name().to_string(),
                secs(b.total_seconds()),
                pct(others),
                pct(he),
                pct(comm),
            ]);
        }
    }
    table.print();
    println!("\nPaper reference: FATE ~0.1/52/48; HAFLO ~0.2/0.6/99.2; FLBooster shifts");
    println!("weight from HE+comm into Others (22-48%).");
}
