//! Error type for the federated-learning layer.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while building or training federated models.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A platform-layer failure (HE, codec, arithmetic).
    Platform(flbooster_core::Error),
    /// The dataset cannot support the requested configuration.
    BadDataset(String),
    /// The federation configuration is invalid (participants, splits...).
    BadConfig(String),
    /// The network simulator gave up after exhausting retries.
    NetworkFailure {
        /// Attempts made.
        attempts: u32,
    },
    /// Too few clients beat the round engine's straggler deadline (a
    /// budget in **simulated seconds**, the same unit as every
    /// `EpochBreakdown` accumulator — compared against each client's
    /// simulated uplink-arrival time, never wall-clock): the round was
    /// abandoned. Like [`he::Error::AggregandKeyMismatch`], the variant
    /// keeps the position, so a wide round can name an offending
    /// participant.
    StragglerTimeout {
        /// Zero-based index of the first client dropped from the round.
        client: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Platform(e) => write!(f, "platform: {e}"),
            Error::BadDataset(msg) => write!(f, "bad dataset: {msg}"),
            Error::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            Error::NetworkFailure { attempts } => {
                write!(f, "network send failed after {attempts} attempts")
            }
            Error::StragglerTimeout { client } => {
                write!(
                    f,
                    "client {client} missed the straggler deadline and the round lost quorum"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flbooster_core::Error> for Error {
    fn from(e: flbooster_core::Error) -> Self {
        Error::Platform(e)
    }
}

impl From<he::Error> for Error {
    fn from(e: he::Error) -> Self {
        Error::Platform(flbooster_core::Error::He(e))
    }
}

impl From<codec::Error> for Error {
    fn from(e: codec::Error) -> Self {
        Error::Platform(flbooster_core::Error::Codec(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: Error = he::Error::KeyMismatch.into();
        assert!(e.to_string().contains("platform"));
        let e: Error = codec::Error::BadConfig("x".into()).into();
        assert!(matches!(e, Error::Platform(_)));
        assert!(Error::NetworkFailure { attempts: 3 }
            .to_string()
            .contains("3"));
    }

    #[test]
    fn straggler_timeout_message_names_the_client() {
        // Pinned like `AggregandKeyMismatch{index}`: the message must
        // carry the offending client index verbatim.
        assert_eq!(
            Error::StragglerTimeout { client: 41 }.to_string(),
            "client 41 missed the straggler deadline and the round lost quorum"
        );
    }
}
