//! Event-driven pipelined round engine.
//!
//! The classic loop in [`FlEnv::aggregation_round`] runs one secure-
//! aggregation round as four sequential barriers: *every* client
//! encrypts, then *every* ciphertext crosses the wire, then the server
//! folds, then the broadcast. Real deployments overlap those stages —
//! client 0's ciphertext is folding at the server while client 7 is
//! still encrypting. This module reproduces that overlap on a
//! deterministic simulated timeline.
//!
//! # Event model
//!
//! Each client advances through a small state machine
//! (`local-compute → encrypt → uplink → server-aggregate → downlink →
//! decrypt`), and every transition is an [`Event`] on a simulated-time
//! min-heap. The *real* cryptographic work (encrypt, homomorphic adds,
//! decrypt) executes eagerly — client encrypts concurrently on the
//! work-stealing pool, folds as ciphertexts arrive — while the event
//! queue only decides *when* each step lands on the timeline. Uplink,
//! edge-tree hops, and downlink transfers are laid out on a
//! [`LinkSchedule`] honouring the network's configured
//! `duplex_streams`, so concurrent transfers overlap exactly as far as
//! the modeled NIC allows.
//!
//! # Determinism
//!
//! Results and timings are invariant to the pool's thread count:
//!
//! - Encryption is deterministic per `(values, seed)` and runs under an
//!   order-preserving parallel map, so the ciphertext vector is the
//!   same in any pool.
//! - The event queue is ordered by `(time, sequence)` with
//!   [`f64::total_cmp`], and is drained single-threaded; no event time
//!   ever depends on wall clock.
//! - Paillier aggregation multiplies canonical residues mod `n²` — a
//!   commutative, associative product — so folding ciphertexts in
//!   *arrival* order is bit-identical to the sequential index-order
//!   fold, and every add costs the same simulated seconds regardless of
//!   order.
//!
//! # Charging
//!
//! The engine charges exactly the component totals the sequential loop
//! charges — work is invariant under reordering; only the *elapsed*
//! [`round_seconds`](crate::metrics::EpochBreakdown::round_seconds)
//! (the event timeline's critical path) shrinks when `pipelined` is
//! set. With `pipelined` off the engine charges elapsed equal to the
//! phase total, matching the classic loop bit-for-bit on the default
//! flat topology. (On tree topologies the engine charges each hop at
//! the *partial* aggregate's true wire size where the classic loop
//! approximates every hop at the root aggregate's size — the engine is
//! the more faithful account.)
//!
//! # Stragglers
//!
//! With a `straggler_timeout`, any client whose *local* deadline slips
//! (`compute + encrypt` exceeding the timeout) is dropped from the
//! round before its upload is admitted — the rule is local by design so
//! that NIC contention can never change membership, keeping the
//! survivor set identical at every thread count and duplex setting.
//! The server cannot finalize before the deadline when anyone dropped
//! (it waited that long to learn the stragglers' fate); survivors below
//! the quorum abandon the round with
//! [`Error::StragglerTimeout`](crate::Error::StragglerTimeout) naming
//! the first straggler. Dropped clients rejoin at the next round —
//! membership is recomputed per call.

// flcheck: allow-file(pf-index) — every index in this module is either a
// client index `k < parties.len()` produced by enumerating the party
// vectors themselves, or a node index yielded by the tree builder over
// `nodes`; both are in-bounds by construction.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;

use crate::backend::EncryptedVector;
use crate::metrics::EpochBreakdown;
use crate::net::LinkSchedule;
use crate::train::{FlEnv, TrainConfig};
use crate::{Error, Result};

/// Round-engine configuration, carried by
/// [`TrainConfig::engine`](crate::train::TrainConfig::engine).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Overlap phases on the event timeline. When false the engine
    /// still runs the event machinery (and straggler semantics) but
    /// charges elapsed time equal to the work total, reproducing the
    /// sequential loop's accounting.
    pub pipelined: bool,
    /// Local deadline in simulated seconds: a client whose
    /// `compute + encrypt` exceeds it is dropped from the round.
    /// `None` disables dropping.
    pub straggler_timeout: Option<f64>,
    /// Per-client compute heterogeneity: client `k`'s local compute is
    /// scaled by `compute_multipliers[k % len]`. Empty means every
    /// client runs at 1.0 (homogeneous).
    pub compute_multipliers: Vec<f64>,
    /// Minimum surviving clients for the round to count (clamped to at
    /// least 1). Fewer survivors abort the round with
    /// [`Error::StragglerTimeout`].
    pub min_clients: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pipelined: true,
            straggler_timeout: None,
            compute_multipliers: Vec::new(),
            min_clients: 1,
        }
    }
}

impl EngineConfig {
    /// A non-overlapping engine: same event machinery and straggler
    /// rules, sequential-loop accounting.
    pub fn sequential() -> Self {
        EngineConfig {
            pipelined: false,
            ..EngineConfig::default()
        }
    }

    /// Sets the straggler deadline (simulated seconds).
    pub fn with_straggler_timeout(mut self, seconds: f64) -> Self {
        self.straggler_timeout = Some(seconds);
        self
    }

    /// Sets the per-client compute heterogeneity multipliers.
    pub fn with_compute_multipliers(mut self, multipliers: Vec<f64>) -> Self {
        self.compute_multipliers = multipliers;
        self
    }

    /// Sets the survival quorum.
    pub fn with_min_clients(mut self, min: usize) -> Self {
        self.min_clients = min;
        self
    }

    /// Client `k`'s compute multiplier.
    fn multiplier_for(&self, client: usize) -> f64 {
        if self.compute_multipliers.is_empty() {
            1.0
        } else {
            self.compute_multipliers[client % self.compute_multipliers.len()]
        }
    }

    fn validate(&self) -> Result<()> {
        for &m in &self.compute_multipliers {
            if !(m.is_finite() && m > 0.0) {
                return Err(Error::BadConfig(format!(
                    "compute multipliers must be finite and positive, got {m}"
                )));
            }
        }
        if let Some(t) = self.straggler_timeout {
            if !(t.is_finite() && t > 0.0) {
                return Err(Error::BadConfig(format!(
                    "straggler timeout must be finite and positive, got {t}"
                )));
            }
        }
        Ok(())
    }
}

/// Where a client is in the round's state machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ClientPhase {
    /// Running its local mini-batch computation.
    #[default]
    Computing,
    /// Quantizing/packing/encrypting its gradient.
    Encrypting,
    /// Its ciphertext is on (or queued for) the uplink.
    Uploading,
    /// Its ciphertext reached an aggregator node.
    Delivered,
    /// It received the broadcast and decrypted the new model.
    Finished,
    /// It missed the straggler deadline and sat this round out.
    Dropped,
}

/// One client's simulated-time trace through the round. Times are
/// absolute simulated seconds from round start; stages the client never
/// reached stay 0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientTimeline {
    /// Final state-machine phase ([`Finished`](ClientPhase::Finished)
    /// or [`Dropped`](ClientPhase::Dropped)).
    pub phase: ClientPhase,
    /// Local compute done.
    pub compute_done: f64,
    /// Encryption done (the straggler deadline is checked here).
    pub encrypt_done: f64,
    /// Uplink transfer admitted onto a NIC stream.
    pub uplink_start: f64,
    /// Ciphertext delivered to its aggregator.
    pub uplink_done: f64,
    /// Broadcast of the aggregate received.
    pub downlink_done: f64,
    /// New model decrypted and installed.
    pub decrypt_done: f64,
}

/// What one engine round produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Element-wise sums over the *survivors'* vectors (divide by
    /// `survivors.len()` for the mean).
    pub sums: Vec<f64>,
    /// Clients that made the round, ascending.
    pub survivors: Vec<usize>,
    /// Clients dropped at the straggler deadline, ascending.
    pub dropped: Vec<usize>,
    /// Elapsed simulated seconds for the round: the event timeline's
    /// critical path when pipelined, the work total otherwise.
    pub round_seconds: f64,
    /// Per-client traces, indexed by client.
    pub timelines: Vec<ClientTimeline>,
}

impl RoundOutcome {
    fn empty() -> Self {
        RoundOutcome {
            sums: Vec::new(),
            survivors: Vec::new(),
            dropped: Vec::new(),
            round_seconds: 0.0,
            timelines: Vec::new(),
        }
    }
}

/// Mean per-client local-compute seconds:
/// `(Σ flops[k] · multipliers[k % len]) / n · sec_per_flop`.
///
/// Both the engine and the classic Homo LR loop charge local compute
/// through this exact expression, so their "Others" attribution stays
/// bit-identical when the engine runs with homogeneous clients.
pub fn mean_compute_seconds(client_flops: &[u64], multipliers: &[f64], sec_per_flop: f64) -> f64 {
    if client_flops.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for (k, &flops) in client_flops.iter().enumerate() {
        let m = if multipliers.is_empty() {
            1.0
        } else {
            multipliers[k % multipliers.len()]
        };
        sum += flops as f64 * m;
    }
    sum / client_flops.len() as f64 * sec_per_flop
}

/// Which pipeline phase a charge belongs to.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Compute,
    Encrypt,
    Uplink,
    Aggregate,
    Downlink,
    Decrypt,
}

/// Routes every simulated second to its component (HE / comm / other),
/// its pipeline phase, and — in sequential mode — straight into
/// `round_seconds`, preserving the classic loop's exact add order.
struct Charger<'a> {
    breakdown: &'a mut EpochBreakdown,
    sequential: bool,
    /// Total work charged (the sequential-mode elapsed time).
    work: f64,
}

impl Charger<'_> {
    // flcheck: charge-sink
    fn he(&mut self, seconds: f64, phase: Phase) {
        self.breakdown.he_seconds += seconds;
        self.attribute(seconds, phase);
    }

    // flcheck: charge-sink
    fn comm(&mut self, seconds: f64, phase: Phase) {
        self.breakdown.comm_seconds += seconds;
        self.attribute(seconds, phase);
    }

    // flcheck: charge-sink
    fn other(&mut self, seconds: f64, phase: Phase) {
        self.breakdown.other_seconds += seconds;
        self.attribute(seconds, phase);
    }

    // flcheck: charge-sink
    fn wire(&mut self, bytes: u64, ciphertexts: u64) {
        self.breakdown.comm_bytes += bytes;
        self.breakdown.ciphertexts += ciphertexts;
    }

    fn attribute(&mut self, seconds: f64, phase: Phase) {
        let slot = match phase {
            Phase::Compute => &mut self.breakdown.phases.compute_seconds,
            Phase::Encrypt => &mut self.breakdown.phases.encrypt_seconds,
            Phase::Uplink => &mut self.breakdown.phases.uplink_seconds,
            Phase::Aggregate => &mut self.breakdown.phases.aggregate_seconds,
            Phase::Downlink => &mut self.breakdown.phases.downlink_seconds,
            Phase::Decrypt => &mut self.breakdown.phases.decrypt_seconds,
        };
        *slot += seconds;
        self.work += seconds;
        if self.sequential {
            self.breakdown.round_seconds += seconds;
        }
    }
}

/// Who delivered a ciphertext to an aggregator node.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// A client's uplink.
    Client(usize),
    /// A child aggregator's hop.
    Node(usize),
}

/// A state-machine transition on the simulated timeline.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    /// A client finished its local mini-batch computation.
    ComputeDone { client: usize },
    /// A client finished encrypting (straggler deadline checked here).
    EncryptDone { client: usize },
    /// A ciphertext landed at an aggregator node.
    Arrive { node: usize, source: Source },
    /// An aggregator folded its whole fan-in.
    NodeDone { node: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: simulated time, then insertion sequence — ties
        // resolve identically on every run and at every thread count.
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The (time, sequence)-ordered event queue.
struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
}

impl EventQueue {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

/// One aggregator in the fold tree (the flat topology is a single
/// root). Folds stream: each arrival is added into the node's partial
/// as soon as the node is free.
struct AggNode {
    parent: Option<usize>,
    fan_in: usize,
    received: usize,
    /// When the node's serial fold unit frees up.
    busy_until: f64,
    /// The streaming partial aggregate.
    acc: Option<EncryptedVector>,
}

fn internal_error(what: &str) -> Error {
    Error::BadConfig(format!("round engine internal invariant broken: {what}"))
}

/// Runs one pipelined secure-aggregation round over `parties` gradient
/// vectors, charging `breakdown` and returning the surviving sums.
///
/// `client_flops` holds each client's local-compute cost for the round
/// (same length as `parties`); the engine scales it by the configured
/// heterogeneity multipliers to stagger the timeline.
pub fn run_round(
    env: &FlEnv,
    engine: &EngineConfig,
    cfg: &TrainConfig,
    parties: &[Vec<f64>],
    client_flops: &[u64],
    seed: u64,
    breakdown: &mut EpochBreakdown,
) -> Result<RoundOutcome> {
    engine.validate()?;
    let p = parties.len();
    if p == 0 {
        return Ok(RoundOutcome::empty());
    }
    if client_flops.len() != p {
        return Err(Error::BadConfig(format!(
            "engine round: {} parties but {} flop counts",
            p,
            client_flops.len()
        )));
    }

    // --- Real work, phase 1: every client encrypts on the pool. ---
    // Order-preserving parallel map: ciphertexts are a deterministic
    // function of (values, seed), so the vector is thread-count
    // invariant. Timings come back per client instead of through the
    // shared accumulator.
    let encrypted: Vec<Result<_>> = parties
        .par_iter()
        .enumerate()
        .map(|(k, v)| env.accel.encrypt_timed(v, seed.wrapping_add(k as u64)))
        .collect();
    let mut client_cts = Vec::with_capacity(p);
    let mut enc_timings = Vec::with_capacity(p);
    for r in encrypted {
        let (ev, t) = r?;
        client_cts.push(Some(ev));
        enc_timings.push(t);
    }

    // --- Timeline durations and straggler membership. ---
    let mut compute_dur = Vec::with_capacity(p);
    let mut enc_dur = Vec::with_capacity(p);
    for k in 0..p {
        compute_dur.push(client_flops[k] as f64 * engine.multiplier_for(k) * cfg.sec_per_flop);
        enc_dur.push(enc_timings[k].he_seconds + enc_timings[k].codec_seconds);
    }
    let mut timelines = vec![ClientTimeline::default(); p];
    let mut survivors = Vec::with_capacity(p);
    let mut dropped = Vec::new();
    let mut is_dropped = vec![false; p];
    for k in 0..p {
        timelines[k].compute_done = compute_dur[k];
        timelines[k].encrypt_done = compute_dur[k] + enc_dur[k];
        let late = matches!(engine.straggler_timeout, Some(t) if timelines[k].encrypt_done > t);
        if late {
            dropped.push(k);
            is_dropped[k] = true;
        } else {
            survivors.push(k);
        }
    }
    if survivors.len() < engine.min_clients.max(1) {
        return match dropped.first() {
            Some(&client) => Err(Error::StragglerTimeout { client }),
            None => Err(Error::BadConfig(format!(
                "engine round: min_clients {} exceeds party count {}",
                engine.min_clients, p
            ))),
        };
    }
    let n = survivors.len() as f64;

    let mut charger = Charger {
        breakdown,
        sequential: !engine.pipelined,
        work: 0.0,
    };

    // --- Client-side charges (survivor means, classic-loop order). ---
    let mut flops_sum = 0.0;
    let mut enc_he_sum = 0.0;
    let mut enc_codec_sum = 0.0;
    for &k in &survivors {
        flops_sum += client_flops[k] as f64 * engine.multiplier_for(k);
        enc_he_sum += enc_timings[k].he_seconds;
        enc_codec_sum += enc_timings[k].codec_seconds;
    }
    charger.other(flops_sum / n * cfg.sec_per_flop, Phase::Compute);
    charger.he(enc_he_sum / n, Phase::Encrypt);
    charger.other(enc_codec_sum / n, Phase::Encrypt);
    charger.breakdown.he_values += parties[0].len() as u64;

    // --- Uplink costs, charged in client index order (the network's
    // drop-retry randomness, when enabled, must consume its stream in
    // the same order as the sequential loop). ---
    let mut uplink_dur = vec![0.0f64; p];
    for &k in &survivors {
        let Some(ev) = client_cts[k].as_ref() else {
            return Err(internal_error("survivor ciphertext missing"));
        };
        let d = env.network.send(ev.ciphertext_count(), ev.bytes())?;
        charger.comm(d, Phase::Uplink);
        charger.wire(ev.bytes(), ev.ciphertext_count());
        uplink_dur[k] = d;
    }

    // --- Fold tree over survivor positions (flat = one root). ---
    let topology = env.accel.topology();
    let groups = topology.leaf_groups(survivors.len());
    let mut nodes: Vec<AggNode> = Vec::new();
    let mut leaf_of_client = vec![0usize; p];
    for (g_idx, g) in groups.iter().enumerate() {
        for pos in g.clone() {
            leaf_of_client[survivors[pos]] = g_idx;
        }
        nodes.push(AggNode {
            parent: None,
            fan_in: g.len(),
            received: 0,
            busy_until: 0.0,
            acc: None,
        });
    }
    let mut level: Vec<usize> = (0..groups.len()).collect();
    while level.len() > 1 {
        let mut next = Vec::new();
        for g in topology.leaf_groups(level.len()) {
            let parent = nodes.len();
            nodes.push(AggNode {
                parent: None,
                fan_in: g.len(),
                received: 0,
                busy_until: 0.0,
                acc: None,
            });
            for pos in g {
                nodes[level[pos]].parent = Some(parent);
            }
            next.push(parent);
        }
        level = next;
    }
    if level.is_empty() {
        return Err(internal_error("empty fold tree"));
    }

    // --- Event loop: drain the timeline. ---
    let mut queue = EventQueue::new();
    for (k, &t) in compute_dur.iter().enumerate() {
        queue.push(t, EventKind::ComputeDone { client: k });
    }
    let mut link = LinkSchedule::for_config(env.network.config());
    let mut agg_he_total = 0.0;
    let mut root_acc: Option<EncryptedVector> = None;
    let mut root_done_at: Option<f64> = None;
    while let Some(event) = queue.pop() {
        let now = event.time;
        match event.kind {
            EventKind::ComputeDone { client } => {
                timelines[client].phase = ClientPhase::Encrypting;
                queue.push(now + enc_dur[client], EventKind::EncryptDone { client });
            }
            EventKind::EncryptDone { client } => {
                if is_dropped[client] {
                    timelines[client].phase = ClientPhase::Dropped;
                    continue;
                }
                timelines[client].phase = ClientPhase::Uploading;
                let (start, finish) = link.admit(now, uplink_dur[client]);
                timelines[client].uplink_start = start;
                timelines[client].uplink_done = finish;
                queue.push(
                    finish,
                    EventKind::Arrive {
                        node: leaf_of_client[client],
                        source: Source::Client(client),
                    },
                );
            }
            EventKind::Arrive { node, source } => {
                let payload = match source {
                    Source::Client(k) => {
                        timelines[k].phase = ClientPhase::Delivered;
                        client_cts[k].take()
                    }
                    Source::Node(child) => nodes[child].acc.take(),
                };
                let Some(payload) = payload else {
                    return Err(internal_error("arrival without a ciphertext"));
                };
                if nodes[node].busy_until < now {
                    nodes[node].busy_until = now;
                }
                match nodes[node].acc.take() {
                    None => nodes[node].acc = Some(payload),
                    Some(acc) => {
                        // Real work, phase 2: one streaming fold step.
                        // Arrival-order folding is bit-identical to the
                        // index-order fold (commutative product of
                        // canonical residues), and each add's simulated
                        // cost is shape-determined, so the charged total
                        // is order-invariant too.
                        let (sum, t) = env.accel.add_timed(&acc, &payload)?;
                        agg_he_total += t.he_seconds;
                        nodes[node].busy_until += t.he_seconds;
                        nodes[node].acc = Some(sum);
                    }
                }
                nodes[node].received += 1;
                if nodes[node].received == nodes[node].fan_in {
                    queue.push(nodes[node].busy_until, EventKind::NodeDone { node });
                }
            }
            EventKind::NodeDone { node } => match nodes[node].parent {
                Some(parent) => {
                    let (cts, bytes) = match nodes[node].acc.as_ref() {
                        Some(part) => (part.ciphertext_count(), part.bytes()),
                        None => return Err(internal_error("edge node finished empty")),
                    };
                    // Hop one level up: charged at the partial's true
                    // wire size, overlapped on the same link schedule.
                    let d = env.network.send(cts, bytes)?;
                    charger.comm(d, Phase::Uplink);
                    charger.wire(bytes, cts);
                    let (_start, finish) = link.admit(now, d);
                    queue.push(
                        finish,
                        EventKind::Arrive {
                            node: parent,
                            source: Source::Node(node),
                        },
                    );
                }
                None => {
                    // The server cannot close the round before the
                    // straggler deadline when anyone dropped: it waited
                    // until then to learn who was coming.
                    let deadline = engine.straggler_timeout.unwrap_or(0.0);
                    let closes = if dropped.is_empty() {
                        now
                    } else {
                        now.max(deadline)
                    };
                    root_done_at = Some(closes);
                    root_acc = nodes[node].acc.take();
                }
            },
        }
    }
    let (agg, root_done) = match (root_acc, root_done_at) {
        (Some(a), Some(t)) => (a, t),
        _ => return Err(internal_error("aggregation never completed")),
    };
    charger.he(agg_he_total, Phase::Aggregate);

    // --- Downlink: broadcast the aggregate to every survivor. ---
    let mut broadcast_total = 0.0;
    let mut last_downlink = root_done;
    for &k in &survivors {
        let d = env.network.send(agg.ciphertext_count(), agg.bytes())?;
        broadcast_total += d;
        let (_start, finish) = link.admit(root_done, d);
        timelines[k].downlink_done = finish;
        if finish > last_downlink {
            last_downlink = finish;
        }
    }
    charger.comm(broadcast_total, Phase::Downlink);
    charger.wire(
        survivors.len() as u64 * agg.bytes(),
        survivors.len() as u64 * agg.ciphertext_count(),
    );

    // --- Real work, phase 3: decrypt (clients are symmetric; one
    // client's cost is charged, as in the classic loop). ---
    let (sums, dec_t) = env
        .accel
        .decrypt_sum_timed(&agg, crate::count_u32(survivors.len()))?;
    charger.he(dec_t.he_seconds, Phase::Decrypt);
    charger.other(dec_t.codec_seconds, Phase::Decrypt);
    let decrypt_dur = dec_t.he_seconds + dec_t.codec_seconds;
    for &k in &survivors {
        timelines[k].decrypt_done = timelines[k].downlink_done + decrypt_dur;
        timelines[k].phase = ClientPhase::Finished;
    }

    let round_seconds = if engine.pipelined {
        last_downlink + decrypt_dur
    } else {
        charger.work
    };
    if engine.pipelined {
        charger.breakdown.round_seconds += round_seconds;
    }

    Ok(RoundOutcome {
        sums,
        survivors,
        dropped,
        round_seconds,
        timelines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Accelerator, BackendKind};
    use crate::topology::AggregationTopology;
    use he::paillier::PaillierKeyPair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn keys() -> PaillierKeyPair {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE17);
        PaillierKeyPair::generate(&mut rng, 128).unwrap()
    }

    fn env_with(kind: BackendKind, duplex: u32) -> FlEnv {
        let accel = Accelerator::new(kind, keys(), 8).unwrap();
        let profile = accel.network_profile().with_duplex_streams(duplex);
        let network = crate::net::Network::new(profile, 1);
        FlEnv { accel, network }
    }

    fn parties(p: usize, len: usize) -> Vec<Vec<f64>> {
        (0..p)
            .map(|k| {
                (0..len)
                    .map(|i| ((k * len + i) as f64 * 0.31).sin() * 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let env = env_with(BackendKind::Fate, 1);
        let mut b = EpochBreakdown::default();
        let out = run_round(
            &env,
            &EngineConfig::default(),
            &TrainConfig::default(),
            &[],
            &[],
            1,
            &mut b,
        )
        .unwrap();
        assert_eq!(out, RoundOutcome::empty());
        assert_eq!(b, EpochBreakdown::default());
    }

    #[test]
    fn flop_count_mismatch_is_rejected() {
        let env = env_with(BackendKind::Fate, 1);
        let mut b = EpochBreakdown::default();
        let err = run_round(
            &env,
            &EngineConfig::default(),
            &TrainConfig::default(),
            &parties(2, 4),
            &[100],
            1,
            &mut b,
        )
        .unwrap_err();
        assert!(matches!(err, Error::BadConfig(_)));
    }

    #[test]
    fn bad_multipliers_are_rejected() {
        let env = env_with(BackendKind::Fate, 1);
        let mut b = EpochBreakdown::default();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = EngineConfig::default().with_compute_multipliers(vec![bad]);
            let err = run_round(
                &env,
                &cfg,
                &TrainConfig::default(),
                &parties(2, 4),
                &[100, 100],
                1,
                &mut b,
            )
            .unwrap_err();
            assert!(matches!(err, Error::BadConfig(_)), "multiplier {bad}");
        }
    }

    #[test]
    fn sequential_engine_matches_classic_loop_exactly() {
        // Same keys, same seeds, same parties: the engine with
        // pipelining off must reproduce the classic loop's sums and its
        // breakdown bit-for-bit (components, phases, round_seconds).
        let grads = parties(5, 12);
        let flops: Vec<u64> = (0..5).map(|k| 4000 + 137 * k as u64).collect();
        let tcfg = TrainConfig::default();

        let classic_env = env_with(BackendKind::FlBooster, 1);
        let mut classic = EpochBreakdown::default();
        classic_env.charge_local_seconds(
            mean_compute_seconds(&flops, &[], tcfg.sec_per_flop),
            &mut classic,
        );
        let classic_sums = classic_env
            .aggregation_round(&grads, 99, &mut classic)
            .unwrap();

        let engine_env = env_with(BackendKind::FlBooster, 1);
        let mut engined = EpochBreakdown::default();
        let out = run_round(
            &engine_env,
            &EngineConfig::sequential(),
            &tcfg,
            &grads,
            &flops,
            99,
            &mut engined,
        )
        .unwrap();

        assert_eq!(out.sums, classic_sums);
        assert_eq!(out.survivors, vec![0, 1, 2, 3, 4]);
        assert!(out.dropped.is_empty());
        assert_eq!(engined, classic);
        assert_eq!(engine_env.network.stats(), classic_env.network.stats());
        assert_eq!(out.round_seconds, engined.round_seconds);
    }

    #[test]
    fn pipelined_round_is_shorter_but_charges_identical_work() {
        let grads = parties(8, 12);
        let flops = vec![60_000u64; 8];
        let tcfg = TrainConfig::default();
        let hetero: Vec<f64> = (0..8).map(|k| 1.0 + 0.35 * k as f64).collect();

        let seq_env = env_with(BackendKind::Fate, 4);
        let mut seq_b = EpochBreakdown::default();
        let seq = run_round(
            &seq_env,
            &EngineConfig::sequential().with_compute_multipliers(hetero.clone()),
            &tcfg,
            &grads,
            &flops,
            7,
            &mut seq_b,
        )
        .unwrap();

        let pipe_env = env_with(BackendKind::Fate, 4);
        let mut pipe_b = EpochBreakdown::default();
        let pipe = run_round(
            &pipe_env,
            &EngineConfig::default().with_compute_multipliers(hetero),
            &tcfg,
            &grads,
            &flops,
            7,
            &mut pipe_b,
        )
        .unwrap();

        // Same work, same results...
        assert_eq!(pipe.sums, seq.sums);
        assert_eq!(pipe_b.he_seconds, seq_b.he_seconds);
        assert_eq!(pipe_b.comm_seconds, seq_b.comm_seconds);
        assert_eq!(pipe_b.other_seconds, seq_b.other_seconds);
        assert_eq!(pipe_b.phases, seq_b.phases);
        // ...but the pipelined critical path is strictly shorter.
        assert!(
            pipe.round_seconds < seq.round_seconds,
            "pipelined {} !< sequential {}",
            pipe.round_seconds,
            seq.round_seconds
        );
        assert!(pipe_b.overlap_speedup() > 1.0);
        assert!((seq_b.overlap_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_topology_streams_to_the_same_sums() {
        let grads = parties(7, 10);
        let flops = vec![5000u64; 7];
        let tcfg = TrainConfig::default();

        let flat_env = env_with(BackendKind::Fate, 2);
        let mut flat_b = EpochBreakdown::default();
        let flat = run_round(
            &flat_env,
            &EngineConfig::default(),
            &tcfg,
            &grads,
            &flops,
            3,
            &mut flat_b,
        )
        .unwrap();

        let accel = Accelerator::new(BackendKind::Fate, keys(), 8)
            .unwrap()
            .with_topology(AggregationTopology::tree(3));
        let profile = accel.network_profile().with_duplex_streams(2);
        let tree_env = FlEnv {
            network: crate::net::Network::new(profile, 1),
            accel,
        };
        let mut tree_b = EpochBreakdown::default();
        let tree = run_round(
            &tree_env,
            &EngineConfig::default(),
            &tcfg,
            &grads,
            &flops,
            3,
            &mut tree_b,
        )
        .unwrap();

        assert_eq!(tree.sums, flat.sums);
        // Tree hops are extra wire traffic the flat round doesn't pay.
        assert!(tree_b.comm_bytes > flat_b.comm_bytes);
        assert_eq!(tree_b.he_seconds, flat_b.he_seconds);
    }

    #[test]
    fn stragglers_drop_and_the_round_waits_for_the_deadline() {
        let grads = parties(4, 8);
        let flops = vec![1_000_000u64; 4];
        let tcfg = TrainConfig::default();
        let env = env_with(BackendKind::Fate, 1);

        // Client 3 runs 50x slower than the rest; pick a deadline that
        // only it misses.
        let ecfg = EngineConfig::default().with_compute_multipliers(vec![1.0, 1.0, 1.0, 50.0]);
        let mut probe = EpochBreakdown::default();
        let full = run_round(&env, &ecfg, &tcfg, &grads, &flops, 11, &mut probe).unwrap();
        let fast = full.timelines[2].encrypt_done;
        let slow = full.timelines[3].encrypt_done;
        assert!(slow > fast);
        let deadline = (fast + slow) / 2.0;

        let env = env_with(BackendKind::Fate, 1);
        let mut b = EpochBreakdown::default();
        let out = run_round(
            &env,
            &ecfg.clone().with_straggler_timeout(deadline),
            &tcfg,
            &grads,
            &flops,
            11,
            &mut b,
        )
        .unwrap();
        assert_eq!(out.survivors, vec![0, 1, 2]);
        assert_eq!(out.dropped, vec![3]);
        assert_eq!(out.timelines[3].phase, ClientPhase::Dropped);
        assert_eq!(out.timelines[3].uplink_start, 0.0);
        // The server learned about the straggler only at the deadline.
        assert!(out.round_seconds > deadline);
        for &k in &out.survivors {
            assert!(out.timelines[k].downlink_done >= deadline);
        }

        // The surviving sums are the 3-party aggregate.
        let env = env_with(BackendKind::Fate, 1);
        let mut b3 = EpochBreakdown::default();
        let three = run_round(
            &env,
            &EngineConfig::default(),
            &tcfg,
            &grads[..3],
            &flops[..3],
            11,
            &mut b3,
        )
        .unwrap();
        assert_eq!(out.sums, three.sums);
    }

    #[test]
    fn quorum_failure_names_the_first_straggler() {
        let grads = parties(3, 6);
        let flops = vec![1_000_000u64; 3];
        let env = env_with(BackendKind::Fate, 1);
        let mut b = EpochBreakdown::default();
        // Everyone has the same deadline-busting profile except client 0.
        let ecfg = EngineConfig::default()
            .with_compute_multipliers(vec![1.0, 400.0, 400.0])
            .with_min_clients(2);
        let mut probe = EpochBreakdown::default();
        let full = run_round(
            &env,
            &ecfg,
            &TrainConfig::default(),
            &grads,
            &flops,
            5,
            &mut probe,
        )
        .unwrap();
        let deadline = full.timelines[0].encrypt_done * 2.0;
        assert!(deadline < full.timelines[1].encrypt_done);

        let env = env_with(BackendKind::Fate, 1);
        let err = run_round(
            &env,
            &ecfg.with_straggler_timeout(deadline),
            &TrainConfig::default(),
            &grads,
            &flops,
            5,
            &mut b,
        )
        .unwrap_err();
        assert_eq!(err, Error::StragglerTimeout { client: 1 });
    }

    #[test]
    fn impossible_quorum_without_stragglers_is_a_config_error() {
        let env = env_with(BackendKind::Fate, 1);
        let mut b = EpochBreakdown::default();
        let err = run_round(
            &env,
            &EngineConfig::default().with_min_clients(5),
            &TrainConfig::default(),
            &parties(2, 4),
            &[100, 100],
            1,
            &mut b,
        )
        .unwrap_err();
        assert!(matches!(err, Error::BadConfig(_)));
    }

    #[test]
    fn mean_compute_seconds_tiles_multipliers() {
        assert_eq!(mean_compute_seconds(&[], &[], 1.0), 0.0);
        assert_eq!(mean_compute_seconds(&[10, 10], &[], 0.5), 5.0);
        // Multipliers tile: [2, 4, 2, 4].
        let m = mean_compute_seconds(&[10, 10, 10, 10], &[2.0, 4.0], 1.0);
        assert_eq!(m, 30.0);
    }
}
