//! Federated partitioning (paper Sec. VI-A, "Benchmark FL Models").
//!
//! > "For the homogeneous model, we horizontally divide three datasets
//! > into subsets of the same number of data instances where each
//! > participant shares the same feature space but is different in
//! > samples. For heterogeneous models, we vertically divide three
//! > datasets into subsets of the same number of features, where each
//! > participant shares the same sample ID space but differs in feature
//! > space."

use super::{Dataset, SparseRow};

/// Splits rows round-robin into `parts` horizontally-partitioned
/// datasets (same features, disjoint instances).
pub fn horizontal_split(dataset: &Dataset, parts: u32) -> Vec<Dataset> {
    // Documented precondition: zero participants is a config error.
    // flcheck: allow(pf-assert)
    assert!(parts >= 1, "at least one participant");
    let parts = parts as usize;
    let mut out: Vec<Dataset> = (0..parts)
        .map(|k| Dataset {
            name: format!("{}#h{k}", dataset.name),
            num_features: dataset.num_features,
            rows: Vec::with_capacity(dataset.len() / parts + 1),
            labels: Vec::with_capacity(dataset.len() / parts + 1),
        })
        .collect();
    for (i, (row, &label)) in dataset.rows.iter().zip(&dataset.labels).enumerate() {
        // k = i % parts < parts = out.len() by construction.
        let k = i % parts;
        // flcheck: allow(pf-index)
        out[k].rows.push(row.clone());
        // flcheck: allow(pf-index)
        out[k].labels.push(label);
    }
    out
}

/// One participant's vertical shard: a contiguous feature range of every
/// instance. Labels live only with the *active* party (shard 0).
#[derive(Debug, Clone)]
pub struct VerticalShard {
    /// Shard name.
    pub name: String,
    /// Global feature range `[lo, hi)` this shard owns.
    pub feature_range: (u32, u32),
    /// Rows restricted to the range (indices re-based to 0).
    pub rows: Vec<SparseRow>,
    /// Labels — `Some` only for the active party.
    pub labels: Option<Vec<f64>>,
}

impl VerticalShard {
    /// Local feature count.
    pub fn num_features(&self) -> usize {
        (self.feature_range.1 - self.feature_range.0) as usize
    }

    /// Instance count (same across all shards of a split).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the shard has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Splits features into `parts` contiguous ranges (same instances,
/// disjoint features). Shard 0 is the active party and keeps the labels.
pub fn vertical_split(dataset: &Dataset, parts: u32) -> Vec<VerticalShard> {
    // Documented preconditions: split shape is a config error, not data.
    // flcheck: allow(pf-assert)
    assert!(parts >= 1, "at least one participant");
    // flcheck: allow(pf-assert)
    assert!(
        dataset.num_features >= parts as usize,
        "fewer features than participants"
    );
    let parts_usize = parts as usize;
    let per = dataset.num_features / parts_usize;
    let mut shards = Vec::with_capacity(parts_usize);
    for k in 0..parts_usize {
        let lo = (k * per) as u32;
        let hi = if k + 1 == parts_usize {
            dataset.num_features as u32
        } else {
            ((k + 1) * per) as u32
        };
        let rows = dataset
            .rows
            .iter()
            .map(|r| r.slice_features(lo, hi))
            .collect();
        shards.push(VerticalShard {
            name: format!("{}#v{k}", dataset.name),
            feature_range: (lo, hi),
            rows,
            labels: if k == 0 {
                Some(dataset.labels.clone())
            } else {
                None
            },
        });
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generators::DatasetSpec;

    fn tiny() -> Dataset {
        DatasetSpec::rcv1().generate(0.0001) // ~67 rows
    }

    #[test]
    fn horizontal_covers_all_rows() {
        let d = tiny();
        let parts = horizontal_split(&d, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, d.len());
        // Balanced within 1.
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        for p in &parts {
            assert_eq!(p.num_features, d.num_features);
            assert_eq!(p.rows.len(), p.labels.len());
        }
    }

    #[test]
    fn vertical_covers_all_features() {
        let d = tiny();
        let shards = vertical_split(&d, 4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].feature_range.0, 0);
        assert_eq!(
            shards.last().unwrap().feature_range.1 as usize,
            d.num_features
        );
        for w in shards.windows(2) {
            assert_eq!(w[0].feature_range.1, w[1].feature_range.0, "contiguous");
        }
        // Same instance count everywhere; nnz conserved.
        let nnz_total: usize = d.rows.iter().map(|r| r.nnz()).sum();
        let nnz_shards: usize = shards
            .iter()
            .flat_map(|s| s.rows.iter())
            .map(|r| r.nnz())
            .sum();
        assert_eq!(nnz_total, nnz_shards);
        for s in &shards {
            assert_eq!(s.len(), d.len());
        }
    }

    #[test]
    fn only_active_party_has_labels() {
        let shards = vertical_split(&tiny(), 3);
        assert!(shards[0].labels.is_some());
        assert!(shards[1].labels.is_none());
        assert!(shards[2].labels.is_none());
    }

    #[test]
    fn vertical_values_rebase_correctly() {
        let d = Dataset {
            name: "t".into(),
            num_features: 6,
            rows: vec![SparseRow::new(vec![0, 2, 4, 5], vec![1.0, 2.0, 3.0, 4.0])],
            labels: vec![1.0],
        };
        let shards = vertical_split(&d, 2);
        assert_eq!(shards[0].rows[0].indices, vec![0, 2]);
        assert_eq!(shards[0].rows[0].values, vec![1.0, 2.0]);
        assert_eq!(shards[1].rows[0].indices, vec![1, 2]);
        assert_eq!(shards[1].rows[0].values, vec![3.0, 4.0]);
    }

    #[test]
    fn single_participant_degenerates() {
        let d = tiny();
        let h = horizontal_split(&d, 1);
        assert_eq!(h[0].len(), d.len());
        let v = vertical_split(&d, 1);
        assert_eq!(v[0].num_features(), d.num_features);
    }
}
