//! Error types for multi-precision arithmetic.

use std::fmt;

/// Result alias for fallible `mpint` operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by multi-precision operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Division or reduction by zero.
    DivisionByZero,
    /// `mod_inv(a, n)` requested but `gcd(a, n) != 1`.
    NoInverse,
    /// A Montgomery context requires an odd modulus greater than one.
    EvenModulus,
    /// A parse failed (invalid digit or empty input).
    Parse {
        /// Base the string was interpreted in.
        radix: u32,
        /// Byte offset of the offending character, if any.
        position: Option<usize>,
    },
    /// A value exceeded a caller-specified width.
    Overflow {
        /// Width in bits that was required.
        bits: u32,
    },
    /// Prime generation exhausted its iteration budget.
    PrimeGenerationFailed {
        /// Requested prime size in bits.
        bits: u32,
        /// Number of candidates tested before giving up.
        attempts: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::NoInverse => write!(f, "modular inverse does not exist (operands not coprime)"),
            Error::EvenModulus => write!(f, "Montgomery modulus must be odd and > 1"),
            Error::Parse { radix, position } => match position {
                Some(p) => write!(f, "invalid base-{radix} digit at byte {p}"),
                None => write!(f, "empty base-{radix} literal"),
            },
            Error::Overflow { bits } => write!(f, "value does not fit in {bits} bits"),
            Error::PrimeGenerationFailed { bits, attempts } => {
                write!(
                    f,
                    "failed to find a {bits}-bit prime after {attempts} candidates"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Error::DivisionByZero.to_string().contains("zero"));
        assert!(Error::NoInverse.to_string().contains("inverse"));
        assert!(Error::Parse {
            radix: 16,
            position: Some(3)
        }
        .to_string()
        .contains("base-16"));
        assert!(Error::Overflow { bits: 32 }.to_string().contains("32"));
        assert!(Error::PrimeGenerationFailed {
            bits: 512,
            attempts: 10_000
        }
        .to_string()
        .contains("512-bit"));
    }
}
