//! Error types for the quantization/compression layer.

use std::fmt;

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by quantization and batch compression.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A gradient value fell outside `[-α, α]` in strict mode, or was not
    /// finite.
    ValueOutOfRange {
        /// The offending value.
        value: f64,
        /// The configured bound α.
        alpha: f64,
    },
    /// The quantization configuration is unusable.
    BadConfig(String),
    /// The key is too small to hold even one slot.
    KeyTooSmall {
        /// Key size in bits.
        key_bits: u32,
        /// Required slot width in bits.
        slot_bits: u32,
    },
    /// An aggregated slot would exceed its guard bits: more terms were
    /// added than `2^b` (paper: "a certain number of overflow bits are
    /// reserved so that no overflow ... occurs").
    OverflowBitsExhausted {
        /// Terms requested.
        terms: u32,
        /// Maximum safe terms `2^b`.
        max_terms: u32,
    },
    /// Unpack was asked for more values than the packed data holds.
    NotEnoughData {
        /// Values requested.
        requested: usize,
        /// Values available.
        available: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ValueOutOfRange { value, alpha } => {
                write!(
                    f,
                    "value {value} outside the quantization range [-{alpha}, {alpha}]"
                )
            }
            Error::BadConfig(msg) => write!(f, "bad quantizer configuration: {msg}"),
            Error::KeyTooSmall {
                key_bits,
                slot_bits,
            } => {
                write!(f, "{key_bits}-bit key cannot hold a {slot_bits}-bit slot")
            }
            Error::OverflowBitsExhausted { terms, max_terms } => write!(
                f,
                "aggregating {terms} terms exceeds the {max_terms}-term guard capacity"
            ),
            Error::NotEnoughData {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} values but only {available} are packed"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(Error::ValueOutOfRange {
            value: 2.0,
            alpha: 1.0
        }
        .to_string()
        .contains("2"));
        assert!(Error::KeyTooSmall {
            key_bits: 16,
            slot_bits: 32
        }
        .to_string()
        .contains("16"));
        assert!(Error::OverflowBitsExhausted {
            terms: 9,
            max_terms: 8
        }
        .to_string()
        .contains("9 terms"));
        assert!(Error::NotEnoughData {
            requested: 5,
            available: 3
        }
        .to_string()
        .contains("5"));
        assert!(Error::BadConfig("r must be positive".into())
            .to_string()
            .contains("positive"));
    }
}
