//! The three rule families.
//!
//! - **ct-discipline** (`ct-branch`, `ct-return`, `ct-compare`,
//!   `ct-shortcircuit`): inside a function marked `// flcheck: ct-fn`,
//!   control flow and variable-time comparisons are forbidden — secrets
//!   may only flow into *data* (masks), never into branch predicates.
//!   `for` loops are permitted (iteration bounds are public lengths by the
//!   crate's convention), and anything inside `debug_assert*!` is ignored
//!   because it is compiled out of release builds. Bare `<` / `>` are not
//!   flagged (indistinguishable from generics without full parsing); the
//!   branch rule catches their only dangerous use.
//! - **panic-freedom** (`pf-unwrap`, `pf-expect`, `pf-panic`, `pf-assert`,
//!   `pf-index`): forbids panicking constructs in non-test code of the
//!   library crates. `debug_assert*!` is exempt for the same reason as
//!   above; `vec![..]` and attributes are not indexing.
//! - **lock-discipline** (`ld-wait`): a `let`-bound guard must not stay
//!   live across a blocking `.recv()` / `.join()`. Lock identity is the
//!   receiver field name (`stats` in `self.stats.lock()`) or the last
//!   field of a `lock(&self.field)` helper call. Ordering violations are
//!   no longer a per-file rule: the whole-workspace cycle analysis in
//!   [`crate::lockgraph`] (`lock-cycle`) subsumes the old `ld-order`.

use crate::lexer::{TokKind, Token};
use crate::report::Finding;
use crate::source::{match_brace, SourceFile};

/// Runs the ct-discipline family over every `ct-fn` in the file.
pub fn check_ct(file: &SourceFile, out: &mut Vec<Finding>) {
    for f in file.fns.iter().filter(|f| f.is_ct) {
        let toks = &file.tokens;
        let mut i = f.body_start;
        while i < f.body_end {
            if let Some(skip) = debug_assert_span(toks, i) {
                i = skip;
                continue;
            }
            let t = &toks[i];
            let mut emit = |rule: &str, msg: String| {
                if !file.is_allowed(rule, t.line) {
                    out.push(Finding::new(rule, &file.rel_path, t.line, msg));
                }
            };
            match t.kind {
                TokKind::Ident => match t.text.as_str() {
                    "if" | "while" | "match" => emit(
                        "ct-branch",
                        format!(
                            "`{}` in constant-time fn `{}`: control flow must not \
                             depend on secret data",
                            t.text, f.name
                        ),
                    ),
                    "return" => emit(
                        "ct-return",
                        format!(
                            "early `return` in constant-time fn `{}`: exit points \
                             must not depend on secret data",
                            f.name
                        ),
                    ),
                    "cmp" | "partial_cmp" | "eq" | "ne" | "min" | "max"
                        if is_method_call(toks, i) =>
                    {
                        emit(
                            "ct-compare",
                            format!(
                                "variable-time `.{}()` in constant-time fn `{}`: use \
                                 the masked helpers from mpint::ct",
                                t.text, f.name
                            ),
                        )
                    }
                    _ => {}
                },
                TokKind::Op => match t.text.as_str() {
                    "&&" | "||" => emit(
                        "ct-shortcircuit",
                        format!(
                            "short-circuit `{}` in constant-time fn `{}`: evaluates \
                             its right side conditionally; use `&`/`|` on masks",
                            t.text, f.name
                        ),
                    ),
                    "==" | "!=" | "<=" | ">=" => emit(
                        "ct-compare",
                        format!(
                            "variable-time comparison `{}` in constant-time fn `{}`: \
                             comparisons on secret limbs must go through mpint::ct",
                            t.text, f.name
                        ),
                    ),
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
    }
}

/// Identifiers that start a panicking macro.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Release-mode assertion macros (debug_assert* is exempt).
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];
/// Keywords that may legally precede a `[` without it being an indexing
/// expression (array literals, returns of arrays, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "if", "else", "match", "loop", "while", "for", "move", "break", "continue",
    "as", "let", "mut", "ref", "where", "unsafe", "dyn", "impl", "const", "static", "type", "fn",
    "use", "pub", "enum", "struct", "trait", "mod",
];

/// Runs the panic-freedom family over the non-test code of a file.
pub fn check_panics(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if file.in_test_region(i) {
            i += 1;
            continue;
        }
        if let Some(skip) = debug_assert_span(toks, i) {
            i = skip;
            continue;
        }
        let t = &toks[i];
        let mut emit = |rule: &str, msg: String| {
            if !file.is_allowed(rule, t.line) {
                out.push(Finding::new(rule, &file.rel_path, t.line, msg));
            }
        };
        match t.kind {
            TokKind::Ident if t.text == "unwrap" && is_method_call(toks, i) => emit(
                "pf-unwrap",
                "`.unwrap()` in library code: propagate a typed error instead".into(),
            ),
            TokKind::Ident if t.text == "expect" && is_method_call(toks, i) => emit(
                "pf-expect",
                "`.expect()` in library code: propagate a typed error instead".into(),
            ),
            TokKind::Ident if PANIC_MACROS.contains(&t.text.as_str()) && is_macro_bang(toks, i) => {
                emit(
                    "pf-panic",
                    format!("`{}!` in library code: return an error instead", t.text),
                )
            }
            TokKind::Ident
                if ASSERT_MACROS.contains(&t.text.as_str()) && is_macro_bang(toks, i) =>
            {
                emit(
                    "pf-assert",
                    format!(
                        "`{}!` in library code: use debug_assert or a typed error \
                         (allow with a justification for documented preconditions)",
                        t.text
                    ),
                )
            }
            TokKind::Open if t.text == "[" && is_indexing(toks, i) => emit(
                "pf-index",
                "slice indexing can panic: prefer `.get()` or justify bounds with \
                 an allow"
                    .into(),
            ),
            _ => {}
        }
        i += 1;
    }
}

/// One lock acquisition site inside a function.
#[derive(Debug)]
pub(crate) struct Acquisition {
    /// Lock name: the receiver field (`stats` in `self.stats.lock()`) or
    /// the last field of the argument for `lock(&self.stats)`.
    pub(crate) name: String,
    pub(crate) line: u32,
    /// Token index of the `lock`/`read`/`write` identifier.
    pub(crate) idx: usize,
    /// Variable the guard is bound to, when `let`-bound.
    pub(crate) guard_var: Option<String>,
    /// The naming identifier is *not* a field access (`m.lock()` on a
    /// local/parameter rather than `self.stats.lock()`). The lock graph
    /// skips bare acquisitions that name a parameter of the enclosing fn:
    /// they alias a lock the caller already names.
    pub(crate) bare: bool,
}

/// Runs the lock-discipline family (`ld-wait`) over a file.
pub fn check_locks(file: &SourceFile, out: &mut Vec<Finding>) {
    for f in &file.fns {
        for a in &find_acquisitions(file, f.body_start, f.body_end) {
            let Some(var) = &a.guard_var else { continue };
            if let Some((line, what)) = wait_while_guard_live(file, a, f.body_end) {
                if !file.is_allowed("ld-wait", line) {
                    out.push(Finding::new(
                        "ld-wait",
                        &file.rel_path,
                        line,
                        format!(
                            "guard `{var}` (lock `{}`) held across blocking \
                             `.{what}()` in `{}`: drop the guard first",
                            a.name, f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Collects lock acquisitions in a token range: method-style `.lock()` /
/// `.read()` / `.write()` with no arguments, and helper-style `lock(&expr)`
/// free calls (the Paillier pool's poison-stripping wrapper).
pub(crate) fn find_acquisitions(file: &SourceFile, start: usize, end: usize) -> Vec<Acquisition> {
    let toks = &file.tokens;
    let mut acqs = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "lock" | "read" | "write") && is_method_call(toks, i) {
            // Zero-argument call only: `lock()`, not `read(buf)`.
            if toks.get(i + 2).map(|t| t.text.as_str()) != Some(")") {
                continue;
            }
            let Some((name, bare)) = receiver_name(toks, i) else {
                continue;
            };
            acqs.push(Acquisition {
                name,
                line: t.line,
                idx: i,
                guard_var: guard_binding(toks, i, match_brace(toks, i + 1)),
                bare,
            });
        } else if t.text == "lock"
            && !(i > 0 && (toks[i - 1].is_op(".") || toks[i - 1].is_ident("fn")))
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
        {
            // `lock(&self.stats)`: name the lock by the last identifier of
            // the argument expression.
            let close = match_brace(toks, i + 1); // one past `)`
            let arg = &toks[i + 2..close.saturating_sub(1).max(i + 2)];
            let Some(pos) = arg.iter().rposition(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            let name_idx = i + 2 + pos;
            let bare = !(name_idx > 0 && toks[name_idx - 1].is_op("."));
            acqs.push(Acquisition {
                name: toks[name_idx].text.clone(),
                line: t.line,
                idx: i,
                guard_var: guard_binding(toks, i, close),
                bare,
            });
        }
    }
    acqs
}

/// Walks back over `recv . field . method` chains to name the lock: the
/// identifier immediately left of the final `.`, plus whether that
/// identifier is bare (not itself a field access).
fn receiver_name(toks: &[Token], method_idx: usize) -> Option<(String, bool)> {
    // toks[method_idx - 1] is the `.`; the receiver ends at method_idx - 2.
    let mut k = method_idx.checked_sub(2)?;
    if toks[k].kind == TokKind::Close {
        // `foo(..).lock()` / `deques[i].lock()` — name by the identifier
        // before the balanced group.
        let close = &toks[k].text;
        let open = match close.as_str() {
            ")" => "(",
            "]" => "[",
            _ => return None,
        };
        let mut depth = 0i32;
        loop {
            match toks[k].text.as_str() {
                t if t == close.as_str() => depth += 1,
                t if t == open => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k = k.checked_sub(1)?;
        }
        k = k.checked_sub(1)?;
    }
    if toks[k].kind != TokKind::Ident {
        return None;
    }
    let bare = !(k > 0 && toks[k - 1].is_op("."));
    Some((toks[k].text.clone(), bare))
}

/// When the statement containing token `i` is `let [mut] NAME = ...` and
/// the lock call (whose argument list ends just before `after`) is the
/// *end* of the expression chain, returns NAME — i.e. the guard itself is
/// bound and outlives the statement. A continued chain
/// (`let n = m.lock().len();`) binds the chain's result instead; the guard
/// is a temporary that dies at the end of the statement.
pub(crate) fn guard_binding(toks: &[Token], i: usize, after: usize) -> Option<String> {
    if toks.get(after).is_some_and(|t| t.is_op(".")) {
        return None;
    }
    // Scan back to the start of the statement.
    let mut k = i;
    while k > 0 {
        let t = &toks[k - 1];
        if (t.kind == TokKind::Op && t.text == ";") || t.text == "{" || t.text == "}" {
            break;
        }
        k -= 1;
    }
    if !toks.get(k)?.is_ident("let") {
        return None;
    }
    let mut j = k + 1;
    if toks.get(j)?.is_ident("mut") {
        j += 1;
    }
    let name = toks.get(j)?;
    (name.kind == TokKind::Ident).then(|| name.text.clone())
}

/// Scans forward from a guard's acquisition for a blocking call while the
/// guard is live (until its enclosing block closes or `drop(guard)`).
fn wait_while_guard_live(
    file: &SourceFile,
    acq: &Acquisition,
    fn_end: usize,
) -> Option<(u32, String)> {
    let toks = &file.tokens;
    let var = acq.guard_var.as_deref()?;
    let mut depth = 0i32;
    let mut i = acq.idx;
    while i < fn_end.min(toks.len()) {
        let t = &toks[i];
        match t.kind {
            TokKind::Open if t.text == "{" => depth += 1,
            TokKind::Close if t.text == "}" => {
                depth -= 1;
                if depth < 0 {
                    return None; // guard's block closed
                }
            }
            TokKind::Ident if t.text == "drop" => {
                // `drop(var)` releases the guard early.
                if toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                    && toks.get(i + 2).is_some_and(|t| t.is_ident(var))
                    && toks.get(i + 3).map(|t| t.text.as_str()) == Some(")")
                {
                    return None;
                }
            }
            TokKind::Ident
                if matches!(t.text.as_str(), "recv" | "recv_timeout" | "join")
                    && is_method_call(toks, i) =>
            {
                return Some((t.line, t.text.clone()));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// `.name(` — an identifier preceded by `.` and followed by `(`.
fn is_method_call(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].is_op(".") && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
}

/// `name!(` / `name![` / `name!{` — a macro invocation.
fn is_macro_bang(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_op("!"))
        && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Open)
}

/// Is the `[` at index `i` an indexing expression? True when preceded by a
/// non-keyword identifier, a closing bracket, or `?` — i.e. an expression
/// that produces a value being indexed.
pub(crate) fn is_indexing(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|k| &toks[k]) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Close => prev.text == ")" || prev.text == "]",
        TokKind::Op => prev.text == "?",
        _ => false,
    }
}

/// When `i` starts a `debug_assert*!(...)` invocation, returns the index
/// one past its closing delimiter.
pub(crate) fn debug_assert_span(toks: &[Token], i: usize) -> Option<usize> {
    let t = &toks[i];
    if t.kind == TokKind::Ident
        && t.text.starts_with("debug_assert")
        && toks.get(i + 1).is_some_and(|t| t.is_op("!"))
        && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Open)
    {
        Some(match_brace(toks, i + 2))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<(String, u32)> {
        let file = SourceFile::parse("crates/mpint/src/x.rs", src);
        let mut out = Vec::new();
        check_ct(&file, &mut out);
        check_panics(&file, &mut out);
        check_locks(&file, &mut out);
        out.into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn ct_rules_fire_only_in_marked_fns() {
        let src = "\
fn free(x: u64) -> u64 { if x == 0 { 1 } else { 0 } }
// flcheck: ct-fn
fn masked(x: u64) -> u64 {
    if x == 0 { return 1; }
    x
}
";
        let got = findings(src);
        assert!(got.contains(&("ct-branch".into(), 4)));
        assert!(got.contains(&("ct-compare".into(), 4)));
        assert!(got.contains(&("ct-return".into(), 4)));
        assert!(!got.iter().any(|(r, l)| r.starts_with("ct-") && *l == 1));
    }

    #[test]
    fn ct_ignores_debug_assert() {
        let src = "// flcheck: ct-fn\nfn m(x: u64) { debug_assert!(x == 0 && x <= 1); }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn ct_flags_shortcircuit_and_cmp_method() {
        let src =
            "// flcheck: ct-fn\nfn m(a: u64, b: u64) -> bool { a.cmp(&b); a != 0 && b != 0 }\n";
        let got = findings(src);
        assert!(got.contains(&("ct-compare".into(), 2)));
        assert!(got.contains(&("ct-shortcircuit".into(), 2)));
    }

    #[test]
    fn pf_rules_and_test_exemption() {
        let src = "\
fn lib(v: Vec<u8>) -> u8 {
    let a = v.first().unwrap();
    let b = v.iter().next().expect(\"x\");
    if v.is_empty() { panic!(\"boom\"); }
    assert!(*a > 0);
    v[0]
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); assert_eq!(1, 1); }
}
";
        let got = findings(src);
        assert!(got.contains(&("pf-unwrap".into(), 2)));
        assert!(got.contains(&("pf-expect".into(), 3)));
        assert!(got.contains(&("pf-panic".into(), 4)));
        assert!(got.contains(&("pf-assert".into(), 5)));
        assert!(got.contains(&("pf-index".into(), 6)));
        assert!(
            !got.iter().any(|(_, l)| *l >= 8),
            "test module is exempt: {got:?}"
        );
    }

    #[test]
    fn pf_index_skips_macros_attrs_and_literals() {
        let src = "\
#[derive(Clone)]
fn f() -> [u8; 2] {
    let v = vec![1, 2];
    let arr: [u8; 2] = [0; 2];
    return [1, 2];
}
";
        let got = findings(src);
        assert!(!got.iter().any(|(r, _)| r == "pf-index"), "{got:?}");
    }

    #[test]
    fn pf_unwrap_does_not_match_unwrap_or() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn allow_suppresses() {
        let src = "\
fn f(v: &[u8]) -> u8 {
    // flcheck: allow(pf-index)
    v[0]
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn ld_wait_fires_on_helper_style_lock_call() {
        let src = "\
fn f(&self) {
    let g = lock(&self.state);
    let msg = self.rx.recv();
}
";
        let got = findings(src);
        assert!(got.contains(&("ld-wait".into(), 3)), "{got:?}");
    }

    #[test]
    fn chained_let_binds_the_result_not_the_guard() {
        // `let n = ...lock().len();` binds the length; the guard is a
        // temporary dead at the `;`, so the recv is fine.
        let src = "fn f(&self) { let n = self.state.lock().len(); self.rx.recv(); }";
        assert!(findings(src).iter().all(|(r, _)| r != "ld-wait"));
    }

    #[test]
    fn acquisition_shapes_and_bareness() {
        let file = SourceFile::parse(
            "crates/x/src/a.rs",
            "fn f(&self, m: &M) {\n    let a = self.stats.lock();\n    let b = lock(&self.table);\n    let c = m.lock();\n    let d = self.deques[0].lock();\n}\n",
        );
        let acqs = find_acquisitions(&file, file.fns[0].body_start, file.fns[0].body_end);
        let got: Vec<(&str, bool)> = acqs.iter().map(|a| (a.name.as_str(), a.bare)).collect();
        assert_eq!(
            got,
            vec![
                ("stats", false),
                ("table", false),
                ("m", true),
                ("deques", false),
            ]
        );
    }

    #[test]
    fn lock_fn_definition_is_not_an_acquisition() {
        let file = SourceFile::parse(
            "crates/x/src/a.rs",
            "fn lock<T>(m: &Mutex<T>) -> Guard<'_, T> { m.lock() }\n",
        );
        let acqs = find_acquisitions(&file, 0, file.tokens.len());
        // Only the body's `m.lock()` — the `fn lock` item itself is not one.
        assert_eq!(acqs.len(), 1);
        assert!(acqs[0].bare);
    }

    #[test]
    fn ld_wait_guard_across_recv() {
        let src = "\
fn f(&self) {
    let g = self.state.lock();
    let msg = self.rx.recv();
}
fn ok(&self) {
    let g = self.state.lock();
    drop(g);
    let msg = self.rx.recv();
}
fn scoped(&self) {
    { let g = self.state.lock(); }
    let msg = self.rx.recv();
}
";
        let got = findings(src);
        let waits: Vec<_> = got.iter().filter(|(r, _)| r == "ld-wait").collect();
        assert_eq!(waits, vec![&("ld-wait".to_string(), 3)]);
    }

    #[test]
    fn ld_transient_chained_guard_is_not_held() {
        let src = "fn f(&self) { self.stats.lock().bump(); self.rx.recv(); }";
        assert!(findings(src).iter().all(|(r, _)| r != "ld-wait"));
    }

    #[test]
    fn ld_read_with_args_is_not_a_lock() {
        let src = "fn f(&self) { self.file.read(buf); self.rw.read(); self.rx.recv(); }";
        let got = findings(src);
        // `rw.read()` is a lock acquisition but transient; `file.read(buf)` is IO.
        assert!(got.iter().all(|(r, _)| r != "ld-wait"));
    }
}
