//! Property-based tests for the Paillier and RSA cryptosystems.
//!
//! Keys are generated once (128-bit, seeded) and shared across cases; the
//! properties quantify over plaintexts and blinding factors.

use std::sync::OnceLock;

use he::paillier::PaillierKeyPair;
use he::rsa::RsaKeyPair;
use mpint::Natural;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn paillier() -> &'static PaillierKeyPair {
    static KEYS: OnceLock<PaillierKeyPair> = OnceLock::new();
    KEYS.get_or_init(|| {
        PaillierKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(0xDEC0DE), 128).unwrap()
    })
}

fn rsa() -> &'static RsaKeyPair {
    static KEYS: OnceLock<RsaKeyPair> = OnceLock::new();
    KEYS.get_or_init(|| {
        RsaKeyPair::generate(&mut ChaCha8Rng::seed_from_u64(0x4257u64), 128).unwrap()
    })
}

fn plaintext(seed: u64) -> Natural {
    // Uniform below n via rejection from a seeded stream.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    mpint::random::random_below(&mut rng, &paillier().public.n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decrypt_inverts_encrypt(seed in any::<u64>(), rseed in any::<u64>()) {
        let k = paillier();
        let m = plaintext(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(rseed);
        let c = k.public.encrypt(&m, &mut rng).unwrap();
        prop_assert_eq!(k.private.decrypt(&c).unwrap(), m.clone());
        prop_assert_eq!(k.private.decrypt_crt(&c).unwrap(), m);
    }

    #[test]
    fn homomorphic_addition_mod_n(s1 in any::<u64>(), s2 in any::<u64>()) {
        let k = paillier();
        let (m1, m2) = (plaintext(s1), plaintext(s2));
        let mut rng = ChaCha8Rng::seed_from_u64(s1 ^ s2);
        let c1 = k.public.encrypt(&m1, &mut rng).unwrap();
        let c2 = k.public.encrypt(&m2, &mut rng).unwrap();
        let sum = k.public.add(&c1, &c2);
        let expected = &(&m1 + &m2) % &k.public.n;
        prop_assert_eq!(k.private.decrypt_crt(&sum).unwrap(), expected);
    }

    #[test]
    fn scalar_multiplication_mod_n(seed in any::<u64>(), scalar in 0u64..10_000) {
        let k = paillier();
        let m = plaintext(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let c = k.public.encrypt(&m, &mut rng).unwrap();
        let scaled = k.public.scalar_mul(&c, &Natural::from(scalar));
        let expected = &(&m * &Natural::from(scalar)) % &k.public.n;
        prop_assert_eq!(k.private.decrypt_crt(&scaled).unwrap(), expected);
    }

    #[test]
    fn fold_of_many_ciphertexts(seeds in proptest::collection::vec(any::<u64>(), 1..6)) {
        let k = paillier();
        let ms: Vec<Natural> = seeds.iter().map(|&s| plaintext(s)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut acc = k.public.zero_ciphertext();
        let mut expected = Natural::zero();
        for m in &ms {
            let c = k.public.encrypt(m, &mut rng).unwrap();
            acc = k.public.add(&acc, &c);
            expected = &(&expected + m) % &k.public.n;
        }
        prop_assert_eq!(k.private.decrypt_crt(&acc).unwrap(), expected);
    }

    #[test]
    fn rsa_roundtrip_and_homomorphism(s1 in any::<u64>(), s2 in any::<u64>()) {
        let k = rsa();
        let mut rng = ChaCha8Rng::seed_from_u64(s1);
        let m1 = mpint::random::random_below(&mut rng, &k.public.n);
        let mut rng = ChaCha8Rng::seed_from_u64(s2);
        let m2 = mpint::random::random_below(&mut rng, &k.public.n);
        let c1 = k.public.encrypt(&m1).unwrap();
        let c2 = k.public.encrypt(&m2).unwrap();
        prop_assert_eq!(k.private.decrypt(&c1).unwrap(), m1.clone());
        prop_assert_eq!(k.private.decrypt_direct(&c1).unwrap(), m1.clone());
        let prod = k.public.mul(&c1, &c2);
        prop_assert_eq!(
            k.private.decrypt(&prod).unwrap(),
            &(&m1 * &m2) % &k.public.n
        );
    }
}
