//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates-io, so this shim implements a
//! randomized property-testing harness behind the subset of the proptest
//! API the workspace's `tests/properties.rs` suites use:
//!
//! - [`Strategy`] with `prop_map`, numeric range strategies, tuples,
//!   [`strategy::Just`], boxed strategies, and `prop_oneof!` unions;
//! - `any::<T>()` for primitive `T`;
//! - [`collection::vec`] and [`collection::btree_set`];
//! - the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Differences from the real crate: no shrinking (failures report the raw
//! failing case via the panic message and the deterministic per-test seed)
//! and no persistence. Each `#[test]` gets a seed derived from its name via
//! FNV-1a, so failures reproduce deterministically run-to-run.

#![deny(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, Sample};
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    <$t as Sample>::sample(rng)
                }
            }
        )*};
    }

    impl_arbitrary_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced, spanning many magnitudes.
            let mag = rng.gen_range(-300.0f64..300.0);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * mag.exp2()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy: `n` elements of `element`, `n` drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: small element domains may not support the
            // target cardinality.
            for _ in 0..target.saturating_mul(8).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }

    /// `BTreeSet` strategy; the set size may fall short of the sampled
    /// target when the element domain is small.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// `prop_assert!` — assertion inside a property body.
///
/// Panics like `assert!`; the harness reports the deterministic seed in
/// the surrounding test, so no shrinking machinery is needed.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// `prop_assume!` — rejects the current case without failing the test.
///
/// Only valid directly inside a `proptest!` body (expands to an early
/// `return` of the case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::CaseRejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// `prop_oneof!` — uniform choice among component strategies, all
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` macro: declares `#[test]` functions whose arguments are
/// drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one test fn per item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let case = move || -> ::core::result::Result<(), $crate::test_runner::CaseRejected> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if case().is_ok() {
                    accepted += 1;
                }
            }
            assert!(
                accepted > 0,
                "proptest shim: every generated case was rejected by prop_assume! \
                 ({} attempts)",
                attempts
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
