//! The marked device-memory table of the paper's resource manager.
//!
//! > "it marks the allocated GPU memory addresses to reduce memory
//! > allocation costs. When a thread calls for memory, it looks for a free
//! > address in the memory table to allocate and marks it occupied."
//! > (paper Sec. IV-A2)
//!
//! The table is a first-fit free-list over a fixed device heap. Freed
//! regions are *marked free but retained*, so a subsequent allocation of
//! the same size is a table lookup instead of a fresh carve — the
//! `reuse_hits` counter measures exactly the saving the paper claims.

use std::collections::BTreeMap;

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr {
    /// Byte offset into the device heap.
    pub addr: u64,
    /// Allocation size in bytes.
    pub len: u64,
}

/// Errors from the device-memory table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// The heap cannot satisfy the request.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Largest contiguous free region.
        largest_free: u64,
    },
    /// The pointer was not produced by this table or was already freed.
    InvalidFree(u64),
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::OutOfMemory { requested, largest_free } => write!(
                f,
                "device out of memory: requested {requested} B, largest free region {largest_free} B"
            ),
            MemoryError::InvalidFree(addr) => write!(f, "invalid device free at address {addr}"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// Allocation counters exposed to the stats layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryCounters {
    /// Allocations served by re-marking a retained free entry of the same
    /// size (cheap path).
    pub reuse_hits: u64,
    /// Allocations that carved a new region (expensive path).
    pub fresh_allocations: u64,
    /// Frees performed.
    pub frees: u64,
    /// Current bytes marked occupied.
    pub bytes_in_use: u64,
    /// High-water mark of occupied bytes.
    pub peak_bytes: u64,
}

/// First-fit memory table over a fixed-size simulated device heap.
#[derive(Debug)]
pub struct MemoryTable {
    capacity: u64,
    /// Occupied regions: addr -> len.
    occupied: BTreeMap<u64, u64>,
    /// Retained free marks: addr -> len (subset of the free space,
    /// preferred for exact-size reuse).
    marks: BTreeMap<u64, u64>,
    counters: MemoryCounters,
}

impl MemoryTable {
    /// Creates a table managing `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        MemoryTable {
            capacity,
            occupied: BTreeMap::new(),
            marks: BTreeMap::new(),
            counters: MemoryCounters::default(),
        }
    }

    /// Heap capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current counters snapshot.
    pub fn counters(&self) -> MemoryCounters {
        self.counters
    }

    /// Allocates `len` bytes, preferring an exact-size retained mark.
    pub fn alloc(&mut self, len: u64) -> Result<DevicePtr, MemoryError> {
        // Documented precondition: a zero-byte allocation is a caller bug
        // (real CUDA returns an unusable pointer for it).
        // flcheck: allow(pf-assert)
        assert!(len > 0, "zero-size device allocation");
        // Fast path: exact-size mark lookup (the paper's "looks for a free
        // address in the memory table ... and marks it occupied").
        if let Some(addr) = self
            .marks
            .iter()
            .find(|(_, &mlen)| mlen == len)
            .map(|(&addr, _)| addr)
        {
            self.marks.remove(&addr);
            self.occupied.insert(addr, len);
            self.counters.reuse_hits += 1;
            self.note_usage(len);
            return Ok(DevicePtr { addr, len });
        }
        // Slow path: first-fit scan of the gap structure.
        let addr = self.find_first_fit(len).ok_or(MemoryError::OutOfMemory {
            requested: len,
            largest_free: self.largest_free(),
        })?;
        // A fresh carve may overlap retained marks; invalidate them.
        let overlapping: Vec<u64> = self
            .marks
            .range(..addr + len)
            .filter(|(&maddr, &mlen)| maddr + mlen > addr)
            .map(|(&maddr, _)| maddr)
            .collect();
        for maddr in overlapping {
            self.marks.remove(&maddr);
        }
        self.occupied.insert(addr, len);
        self.counters.fresh_allocations += 1;
        self.note_usage(len);
        Ok(DevicePtr { addr, len })
    }

    /// Frees an allocation, retaining its mark for cheap reuse.
    pub fn free(&mut self, ptr: DevicePtr) -> Result<(), MemoryError> {
        match self.occupied.remove(&ptr.addr) {
            Some(len) if len == ptr.len => {
                self.marks.insert(ptr.addr, len);
                self.counters.frees += 1;
                self.counters.bytes_in_use -= len;
                Ok(())
            }
            Some(len) => {
                // Size mismatch: restore and report.
                self.occupied.insert(ptr.addr, len);
                Err(MemoryError::InvalidFree(ptr.addr))
            }
            None => Err(MemoryError::InvalidFree(ptr.addr)),
        }
    }

    /// Bytes currently occupied.
    pub fn bytes_in_use(&self) -> u64 {
        self.counters.bytes_in_use
    }

    /// Largest contiguous region not occupied (marks count as free space).
    pub fn largest_free(&self) -> u64 {
        let mut largest = 0;
        let mut cursor = 0;
        for (&addr, &len) in &self.occupied {
            largest = largest.max(addr.saturating_sub(cursor));
            cursor = addr + len;
        }
        largest.max(self.capacity.saturating_sub(cursor))
    }

    fn find_first_fit(&self, len: u64) -> Option<u64> {
        let mut cursor = 0;
        for (&addr, &olen) in &self.occupied {
            if addr.saturating_sub(cursor) >= len {
                return Some(cursor);
            }
            cursor = addr + olen;
        }
        if self.capacity.saturating_sub(cursor) >= len {
            Some(cursor)
        } else {
            None
        }
    }

    fn note_usage(&mut self, len: u64) {
        self.counters.bytes_in_use += len;
        self.counters.peak_bytes = self.counters.peak_bytes.max(self.counters.bytes_in_use);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut t = MemoryTable::new(1024);
        let p = t.alloc(100).unwrap();
        assert_eq!(t.bytes_in_use(), 100);
        t.free(p).unwrap();
        assert_eq!(t.bytes_in_use(), 0);
        assert_eq!(t.counters().frees, 1);
    }

    #[test]
    fn exact_size_reuse_is_counted() {
        let mut t = MemoryTable::new(1024);
        let p = t.alloc(128).unwrap();
        t.free(p).unwrap();
        let q = t.alloc(128).unwrap();
        assert_eq!(q.addr, p.addr, "same marked slot reused");
        let c = t.counters();
        assert_eq!(c.reuse_hits, 1);
        assert_eq!(c.fresh_allocations, 1);
    }

    #[test]
    fn different_size_takes_fresh_path() {
        let mut t = MemoryTable::new(1024);
        let p = t.alloc(128).unwrap();
        t.free(p).unwrap();
        let _q = t.alloc(64).unwrap();
        assert_eq!(t.counters().reuse_hits, 0);
        assert_eq!(t.counters().fresh_allocations, 2);
    }

    #[test]
    fn out_of_memory_reports_largest_gap() {
        let mut t = MemoryTable::new(256);
        let _a = t.alloc(200).unwrap();
        match t.alloc(100) {
            Err(MemoryError::OutOfMemory {
                requested,
                largest_free,
            }) => {
                assert_eq!(requested, 100);
                assert_eq!(largest_free, 56);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn first_fit_fills_gaps() {
        let mut t = MemoryTable::new(300);
        let a = t.alloc(100).unwrap();
        let _b = t.alloc(100).unwrap();
        t.free(a).unwrap();
        // A 50-byte allocation fits in the gap at the start. The mark for
        // 100 bytes remains but size differs, so first-fit carves addr 0.
        let c = t.alloc(50).unwrap();
        assert_eq!(c.addr, 0);
    }

    #[test]
    fn double_free_rejected() {
        let mut t = MemoryTable::new(128);
        let p = t.alloc(64).unwrap();
        t.free(p).unwrap();
        assert_eq!(t.free(p), Err(MemoryError::InvalidFree(p.addr)));
    }

    #[test]
    fn invalid_size_free_rejected() {
        let mut t = MemoryTable::new(128);
        let p = t.alloc(64).unwrap();
        let bogus = DevicePtr {
            addr: p.addr,
            len: 32,
        };
        assert_eq!(t.free(bogus), Err(MemoryError::InvalidFree(p.addr)));
        // Original allocation still intact.
        assert_eq!(t.bytes_in_use(), 64);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut t = MemoryTable::new(1024);
        let a = t.alloc(400).unwrap();
        let b = t.alloc(400).unwrap();
        t.free(a).unwrap();
        t.free(b).unwrap();
        assert_eq!(t.counters().peak_bytes, 800);
        assert_eq!(t.bytes_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_alloc_panics() {
        MemoryTable::new(64).alloc(0).unwrap();
    }
}
