//! GCD, LCM, and modular inverse.
//!
//! Paillier key generation needs `λ = lcm(p-1, q-1)` and
//! `gcd(n, L(g^λ mod n²)) = 1` checks (paper Sec. III-B); RSA and Paillier
//! decryption need modular inverses. The extended binary GCD here avoids
//! signed big integers by tracking Bezout coefficients modulo the modulus.

use crate::natural::Natural;
use crate::{Error, Result};

/// Greatest common divisor (Euclid; division-based, which is fine off the
/// hot path — only key generation calls this).
pub fn gcd(a: &Natural, b: &Natural) -> Natural {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; `lcm(0, x) = 0`.
pub fn lcm(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() || b.is_zero() {
        return Natural::zero();
    }
    let g = gcd(a, b);
    let (q, _) = a.div_rem(&g);
    &q * b
}

/// Result of the extended Euclidean algorithm over naturals:
/// `a*x ≡ gcd (mod n)` with `x` already reduced into `[0, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGcd {
    /// `gcd(a, n)`.
    pub gcd: Natural,
    /// Coefficient `x` with `a*x ≡ gcd (mod n)`.
    pub x: Natural,
}

/// Extended Euclid on `(a mod n, n)`, tracking the `x` coefficient modulo
/// `n` so everything stays unsigned.
pub fn extended_gcd_mod(a: &Natural, n: &Natural) -> Result<ExtendedGcd> {
    if n.is_zero() {
        return Err(Error::DivisionByZero);
    }
    // Invariants: old_r = a*old_x (mod n), r = a*x (mod n).
    let mut old_r = a % n;
    let mut r = n.clone();
    let mut old_x = Natural::one();
    let mut x = Natural::zero();

    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);
        // new_x = old_x - q*x (mod n); qx < n and old_x <= n (old_x starts
        // at 1, which exceeds n only when n = 1), so the lift cannot
        // underflow.
        let qx = &(&q * &x) % n;
        let new_x = old_x.mod_sub(&qx, n);
        old_x = std::mem::replace(&mut x, new_x);
    }
    Ok(ExtendedGcd {
        gcd: old_r,
        x: &old_x % n,
    })
}

/// Modular inverse `a^{-1} mod n`.
///
/// This is the `mod_inv` API of the paper's Table I, used to generate the
/// Paillier/RSA key pairs.
pub fn mod_inv(a: &Natural, n: &Natural) -> Result<Natural> {
    let e = extended_gcd_mod(a, n)?;
    if !e.gcd.is_one() {
        return Err(Error::NoInverse);
    }
    Ok(e.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn gcd_small_cases() {
        assert_eq!(gcd(&n(12), &n(18)), n(6));
        assert_eq!(gcd(&n(17), &n(5)), n(1));
        assert_eq!(gcd(&n(0), &n(7)), n(7));
        assert_eq!(gcd(&n(7), &n(0)), n(7));
        assert_eq!(gcd(&n(0), &n(0)), n(0));
    }

    #[test]
    fn gcd_large_common_factor() {
        let f = Natural::from_decimal_str("340282366920938463463374607431768211507").unwrap();
        let a = &f * &n(6);
        let b = &f * &n(35);
        assert_eq!(gcd(&a, &b), f);
    }

    #[test]
    fn lcm_cases() {
        assert_eq!(lcm(&n(4), &n(6)), n(12));
        assert_eq!(lcm(&n(0), &n(5)), n(0));
        assert_eq!(lcm(&n(7), &n(7)), n(7));
        // lcm(p-1, q-1) as in Paillier keygen
        assert_eq!(lcm(&n(10), &n(12)), n(60));
    }

    #[test]
    fn mod_inv_verifies() {
        let cases = [(3u128, 7u128), (10, 17), (65537, 1_000_000_007)];
        for (a, m) in cases {
            let inv = mod_inv(&n(a), &n(m)).unwrap();
            assert_eq!(&(&inv * &n(a)) % &n(m), n(1), "{a}^-1 mod {m}");
            assert!(inv < n(m));
        }
    }

    #[test]
    fn mod_inv_of_non_coprime_fails() {
        assert_eq!(mod_inv(&n(4), &n(8)).unwrap_err(), Error::NoInverse);
        assert_eq!(mod_inv(&n(0), &n(8)).unwrap_err(), Error::NoInverse);
    }

    #[test]
    fn mod_inv_zero_modulus_fails() {
        assert_eq!(mod_inv(&n(3), &n(0)).unwrap_err(), Error::DivisionByZero);
    }

    #[test]
    fn mod_inv_large() {
        // Inverse modulo a 128-bit prime.
        let p = Natural::from_decimal_str("340282366920938463463374607431768211507").unwrap();
        let a = n(0xDEAD_BEEF_0BAD_F00D);
        let inv = mod_inv(&a, &p).unwrap();
        assert_eq!(&(&inv * &a) % &p, n(1));
    }

    #[test]
    fn extended_gcd_reports_gcd() {
        let e = extended_gcd_mod(&n(12), &n(18)).unwrap();
        assert_eq!(e.gcd, n(6));
        // 12*x ≡ 6 (mod 18)
        assert_eq!(&(&n(12) * &e.x) % &n(18), n(6));
    }
}
