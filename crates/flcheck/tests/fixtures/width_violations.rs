//! Width fixture: lossy narrowing casts reaching op-cost accounting.
//! Exercised by tests/fixtures.rs through the workspace analysis.

fn kernel_op_estimate(limbs: usize, terms: usize) -> u64 {
    let per_term = mac_per_limb(limbs) as u32;
    (per_term as u64) * (terms as u64)
}

fn mac_per_limb(limbs: usize) -> usize {
    limbs * limbs + limbs
}

fn plan(terms: usize) -> u64 {
    kernel_op_estimate(64, terms as u32)
}

fn stage(limbs: usize) -> u64 {
    tally(limbs as u16)
}

fn tally(n: u16) -> u64 {
    kernel_op_estimate(n as usize, 1)
}

// flcheck: narrow(high half dropped deliberately after the shift)
fn high_half(total: u64) -> u64 {
    kernel_op_estimate((total >> 32) as u32, 1)
}

// flcheck: widen-ok(slot_bits)
fn slots(slot_bits: usize) -> u64 {
    kernel_op_estimate(slot_bits as u32, 1)
}

fn fixed() -> u64 {
    kernel_op_estimate(64 as u32, 1)
}
