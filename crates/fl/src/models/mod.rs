//! The four benchmark FL models of the paper's evaluation (Sec. VI-A):
//! Homo LR, Hetero LR, Hetero SBT, and Hetero NN.
//!
//! Each model implements [`crate::train::FlModel`]: its `run_epoch`
//! executes the federated protocol *with the real encrypted exchanges* —
//! every value that crosses a party boundary passes through
//! quantize → encrypt → (aggregate) → decrypt on the backend under test,
//! so loss trajectories carry the true quantization effects (paper Table
//! VII) and every simulated second is attributed to HE / communication /
//! other (paper Fig. 1, Table VI).

mod hetero_lr;
mod hetero_nn;
mod hetero_sbt;
mod homo_lr;

pub use hetero_lr::HeteroLr;
pub use hetero_nn::{HeteroNn, HIDDEN};
pub use hetero_sbt::HeteroSbt;
pub use homo_lr::HomoLr;

/// Scores exchanged between parties are pre-scaled into the quantizer's
/// `[-α, α]` range and re-scaled after decryption; 8 covers the logit
/// ranges seen in training while keeping quantization resolution.
pub(crate) const SCORE_SCALE: f64 = 8.0;

/// Scales values into the quantizer range.
pub(crate) fn scale_down(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| v / SCORE_SCALE).collect()
}

/// Inverse of [`scale_down`], applied after decryption.
pub(crate) fn scale_up(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| v * SCORE_SCALE).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_roundtrip() {
        let v = vec![-3.5, 0.0, 7.9];
        let rt = scale_up(&scale_down(&v));
        for (a, b) in v.iter().zip(&rt) {
            assert!((a - b).abs() < 1e-12);
        }
        // Scaled values fit the unit quantizer for |v| <= SCORE_SCALE.
        for s in scale_down(&v) {
            assert!(s.abs() <= 1.0);
        }
    }
}
