//! **Ablation (beyond the paper's tables)**: the quantization-width
//! trade-off that justifies the paper's 32-bit-slot recommendation
//! ("the model accuracy, compression rate, and plaintext space
//! utilization are satisfied when r + ⌈log₂p⌉ is chosen as a multiple
//! of 32", Sec. V-B).
//!
//! Sweeps the slot width and reports, per width: compression ratio,
//! worst-case quantization error, and the convergence bias of a short
//! Homo LR run against the 52-bit (f64-exact) reference.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin ablation_quantization -- [--quick]
//! ```

use codec::QuantizerConfig;
use fl::metrics::convergence_bias;
use fl::train::{train, FlEnv};
use fl::{Accelerator, BackendKind};
use flbooster_bench::table::{pct, Table};
use flbooster_bench::{
    bench_dataset, harness_train_config, shared_keys, Args, DatasetKind, ModelKind, PARTICIPANTS,
};
use flbooster_core::analysis;

fn run_with_quantizer(
    qcfg: QuantizerConfig,
    key_bits: u32,
    preset: flbooster_bench::Preset,
) -> f64 {
    let mut cfg = harness_train_config();
    cfg.max_epochs = 3;
    let data = bench_dataset(DatasetKind::Synthetic, preset);
    let accel = Accelerator::with_quantizer(
        BackendKind::FlBooster,
        shared_keys(key_bits),
        PARTICIPANTS,
        qcfg,
    )
    .expect("backend");
    let env = FlEnv::new(accel, cfg.seed);
    let mut model = ModelKind::HomoLr
        .build(&data, PARTICIPANTS, &cfg)
        .expect("model");
    train(model.as_mut(), &env, &cfg)
        .expect("training")
        .final_loss()
}

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let key_bits = args.get("key").and_then(|s| s.parse().ok()).unwrap_or(1024);

    println!("Quantization-width ablation @ {key_bits}-bit keys ({preset:?} preset)\n");

    // Reference: f64-exact 52-bit quantizer.
    let reference = run_with_quantizer(
        QuantizerConfig {
            r_bits: 52,
            ..QuantizerConfig::paper_default(PARTICIPANTS)
        },
        key_bits,
        preset,
    );

    let mut table = Table::new([
        "Slot bits",
        "r bits",
        "Compression",
        "Max quant error",
        "Final loss",
        "Bias vs f64",
    ]);
    let guard = QuantizerConfig::paper_default(PARTICIPANTS).guard_bits();
    for slot in [8u32, 16, 24, 32, 48] {
        let r = slot - guard;
        let qcfg = QuantizerConfig {
            alpha: 1.0,
            r_bits: r,
            participants: PARTICIPANTS,
            clip: true,
        };
        let loss = run_with_quantizer(qcfg, key_bits, preset);
        let ratio = analysis::compression_ratio(100_000, key_bits, r, PARTICIPANTS);
        let err = 1.0 / ((1u64 << r) - 1) as f64;
        table.row([
            slot.to_string(),
            r.to_string(),
            format!("{ratio:.0}x"),
            format!("{err:.2e}"),
            format!("{loss:.6}"),
            pct(convergence_bias(reference, loss)),
        ]);
    }
    table.print();
    println!("\nReading: 8-bit slots maximize compression but visibly bias the loss;");
    println!("at the paper's 32-bit slots the bias is negligible while compression");
    println!("remains two orders of magnitude — the paper's recommended operating point.");
}
