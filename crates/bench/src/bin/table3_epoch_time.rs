//! **Table III**: average running time per epoch for FATE / HAFLO /
//! FLBooster across the three datasets, four models, and key sizes.
//!
//! The paper's claims to reproduce: FLBooster wins everywhere, with
//! 14.3×–138× speedup over HAFLO; acceleration grows with key size; LR
//! models accelerate more than SBT.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin table3_epoch_time -- \
//!     [--quick] [--keys 1024,2048,4096] [--models homo-lr,...] [--datasets rcv1,...]
//! ```
//!
//! Defaults to key size 1024 only — add `--keys` for the full sweep (the
//! larger key sizes perform real multi-kilobit crypto on every exchanged
//! value and take minutes per cell on one core).

use fl::train::FlEnv;
use fl::BackendKind;
use flbooster_bench::table::{secs, speedup, Table};
use flbooster_bench::{backend, bench_dataset, harness_train_config, Args, PARTICIPANTS};

fn main() {
    let args = Args::parse();
    let preset = args.preset();
    let keys = args.key_sizes_or(&[1024]);
    let cfg = harness_train_config();

    println!(
        "Table III — average running time per epoch in simulated seconds ({preset:?} preset)\n"
    );
    let mut table = Table::new([
        "Dataset",
        "Model",
        "Key",
        "FATE",
        "HAFLO",
        "FLBooster",
        "vs FATE",
        "vs HAFLO",
    ]);

    for dataset_kind in args.datasets() {
        for model_kind in args.models() {
            for &key_bits in &keys {
                let mut times = Vec::new();
                for backend_kind in BackendKind::headline() {
                    let data = bench_dataset(dataset_kind, preset);
                    let env = FlEnv::new(backend(backend_kind, key_bits, PARTICIPANTS), cfg.seed);
                    let mut model = model_kind
                        .build(&data, PARTICIPANTS, &cfg)
                        .expect("model build");
                    let result = model.run_epoch(&env, &cfg, 0).expect("epoch");
                    times.push(result.breakdown.total_seconds());
                }
                table.row([
                    dataset_kind.name().to_string(),
                    model_kind.name().to_string(),
                    key_bits.to_string(),
                    secs(times[0]),
                    secs(times[1]),
                    secs(times[2]),
                    speedup(times[0] / times[2]),
                    speedup(times[1] / times[2]),
                ]);
                eprintln!(
                    "  done {} / {} @ {}",
                    dataset_kind.name(),
                    model_kind.name(),
                    key_bits
                );
            }
        }
    }
    table.print();
    println!("\nPaper reference: FLBooster 14.3x-138x over HAFLO; ratios grow with key size;");
    println!("LR models accelerate more than SBT.");
}
