//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// is just a sampler. Failures reproduce via the per-test deterministic
/// seed instead of shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (bounded retries; falls back
    /// to the last sample if the predicate never passes).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the payload.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 64 consecutive samples: {}",
            self.whence
        );
    }
}

/// Uniform choice among component strategies (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `variants` is empty.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.variants.len());
        self.variants[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
