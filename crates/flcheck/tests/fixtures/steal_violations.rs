//! Fixture: pool worker holding a deque guard across park/steal.

impl Pool {
    fn bad_park(&self, me: usize) {
        let mine = self.deques[me].lock();
        std::thread::park();
        mine.pop_front();
    }
    fn bad_steal(&self, me: usize) {
        let mine = self.deques[me].lock();
        let other = self.deques[me + 1].lock();
        other.pop_back();
        mine.pop_front();
    }
}
