//! Miller–Rabin primality testing and random prime generation.
//!
//! Key generation (paper Sec. IV-A3) uses "the Miller-Rabin large prime
//! number generator ... the large prime numbers p and q are generated
//! using the Miller-Rabin primality test", with `p` and `q` sized to the
//! operand width so every multi-precision value in a key share the same
//! limb count.

use rand::Rng;

use crate::modpow::mod_pow_ctx;
use crate::montgomery::MontgomeryCtx;
use crate::natural::Natural;
use crate::random::{random_below, random_bits};
use crate::{Error, Result};

/// Small primes for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 46] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211,
];

/// Default number of Miller–Rabin rounds: error probability ≤ 4^-40.
pub const DEFAULT_MR_ROUNDS: u32 = 40;

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// Deterministically correct answers for n < 212 via the trial-division
/// prefilter; beyond that the error probability is at most `4^-rounds`.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &Natural, rounds: u32, rng: &mut R) -> bool {
    // Handle tiny and even numbers directly.
    if let Some(v) = n.to_u64() {
        if v < 2 {
            return false;
        }
        if v == 2 {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pn = Natural::from(p);
        if n == &pn {
            return true;
        }
        let (_, r) = n.div_rem_small(p);
        if r == 0 {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd. n is odd and > 211 here, so these
    // constructions cannot fail; treat any violation as "not prime" rather
    // than panicking.
    let Some(n_minus_1) = n.checked_sub(&Natural::one()) else {
        return false;
    };
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr_bits(s);

    let Ok(ctx) = MontgomeryCtx::new(n) else {
        return false;
    };
    let two = Natural::from(2u64);
    let Some(bound) = n.checked_sub(&Natural::from(3u64)) else {
        return false;
    };

    'witness: for _ in 0..rounds {
        // a ∈ [2, n-2]
        let a = &random_below(rng, &bound) + &two;
        let mut x = mod_pow_ctx(&ctx, &a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s.saturating_sub(1) {
            x = &(&x * &x) % n;
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false; // composite witness found
    }
    true
}

/// Number of trailing zero bits; total (returns the full bit count for
/// zero, which callers never pass).
fn trailing_zeros(n: &Natural) -> u32 {
    debug_assert!(!n.is_zero());
    let mut zeros = 0;
    for &l in n.limbs() {
        if l != 0 {
            return zeros + l.trailing_zeros();
        }
        zeros += crate::LIMB_BITS;
    }
    zeros
}

/// Generates a random prime with exactly `bits` bits.
///
/// The candidate stream forces the top bit (exact size, per the paper:
/// "the lengths of the large prime number p and q are the same as the
/// length of other large integers") and the bottom bit (oddness), then
/// filters through [`is_probable_prime`].
pub fn generate_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32, rounds: u32) -> Result<Natural> {
    if bits < 2 {
        return Err(Error::PrimeGenerationFailed { bits, attempts: 0 });
    }
    // Expected primes among b-bit odds: density 2/(b ln 2); budget several
    // standard deviations above the mean.
    let max_attempts = 40 * bits.max(8);
    for attempt in 0..max_attempts {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_probable_prime(&candidate, rounds, rng) {
            debug_assert_eq!(candidate.bit_len(), bits);
            return Ok(candidate);
        }
        let _ = attempt;
    }
    Err(Error::PrimeGenerationFailed {
        bits,
        attempts: max_attempts,
    })
}

/// Generates a prime pair `(p, q)` with `p != q`, both `bits` bits — the
/// Paillier/RSA key-generation primitive.
pub fn generate_prime_pair<R: Rng + ?Sized>(
    rng: &mut R,
    bits: u32,
    rounds: u32,
) -> Result<(Natural, Natural)> {
    let p = generate_prime(rng, bits, rounds)?;
    loop {
        let q = generate_prime(rng, bits, rounds)?;
        if q != p {
            return Ok((p, q));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x9E37_79B9)
    }

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u128, 3, 5, 7, 11, 13, 97, 101, 211, 65537] {
            assert!(is_probable_prime(&n(p), 10, &mut r), "{p} is prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u128, 1, 4, 6, 9, 15, 91, 6601 /* Carmichael */, 65536] {
            assert!(!is_probable_prime(&n(c), 10, &mut r), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Classic Fermat pseudoprimes that Miller–Rabin must catch.
        let mut r = rng();
        for c in [561u128, 1105, 1729, 2465, 2821, 41041, 825265] {
            assert!(!is_probable_prime(&n(c), 15, &mut r), "Carmichael {c}");
        }
    }

    #[test]
    fn mersenne_127_is_prime() {
        let mut r = rng();
        assert!(is_probable_prime(&n((1u128 << 127) - 1), 15, &mut r));
    }

    #[test]
    fn rsa_style_semiprime_rejected() {
        let mut r = rng();
        let p = generate_prime(&mut r, 64, 15).unwrap();
        let q = generate_prime(&mut r, 64, 15).unwrap();
        assert!(!is_probable_prime(&(&p * &q), 15, &mut r));
    }

    #[test]
    fn generated_primes_have_exact_size() {
        let mut r = rng();
        for bits in [16u32, 64, 128, 256] {
            let p = generate_prime(&mut r, bits, 15).unwrap();
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 15, &mut r));
        }
    }

    #[test]
    fn prime_pair_distinct() {
        let mut r = rng();
        let (p, q) = generate_prime_pair(&mut r, 32, 15).unwrap();
        assert_ne!(p, q);
        assert_eq!(p.bit_len(), 32);
        assert_eq!(q.bit_len(), 32);
    }

    #[test]
    fn rejects_tiny_request() {
        let mut r = rng();
        assert!(matches!(
            generate_prime(&mut r, 1, 10),
            Err(Error::PrimeGenerationFailed { .. })
        ));
    }

    #[test]
    fn trailing_zeros_multi_limb() {
        assert_eq!(trailing_zeros(&n(1)), 0);
        assert_eq!(trailing_zeros(&n(8)), 3);
        assert_eq!(trailing_zeros(&Natural::one().shl_bits(100)), 100);
    }
}
