//! **Aggregation scaling benchmark**: sharded Straus throughput versus
//! shard count at fixed memory, and flat versus k-ary edge-aggregator
//! tree at growing party counts. Results go to
//! `results/BENCH_aggregate.json`.
//!
//! Two measurement families:
//!
//! * **Shard sweep** — one `parties`-way, single-slot weighted fold at
//!   the anchor key size, re-run at each shard count. The ciphertext
//!   working set is identical at every setting (the shards slice one
//!   stream — fixed memory), so the sweep isolates the split itself.
//!   Wall-clock ops/sec is recorded for the curious, but the *gate*
//!   rides on the MAC-derived critical-path estimate
//!   ([`he::paillier::PaillierPublicKey::weighted_sum_critical_path_estimate`]):
//!   flat MACs over widest-shard-plus-merge MACs is what a
//!   `shards`-wide pool tracks, and it is deterministic — the harness
//!   host may have any number of cores (including one).
//! * **Flat vs tree** — full [`fl::Accelerator`] rounds with the
//!   FLBooster backend: edge aggregators fold their fan-in on simulated
//!   GPU devices (charged from the sharded MAC estimates), partials ride
//!   up the tree with per-hop wire charges from [`fl::Network`].
//!
//! Gates (exit 1 on failure; `run_harness.sh` traps them):
//!
//! 1. **Bit identity** — every sharded result and every tree result must
//!    equal the flat fold's ciphertexts exactly.
//! 2. **Scaling floor** — modeled critical-path speedup at 4 shards must
//!    be ≥ 1.5× flat (1024-bit anchor).
//! 3. **Flat no-regression** — the sharded estimate at 1 shard must
//!    equal the flat estimate *exactly*, and measured single-shard
//!    wall-clock must stay within 25 % of the flat entry point (they run
//!    the same code path).
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin bench_aggregate -- \
//!     [--keys 1024] [--parties 10000] [--quick] \
//!     [--out results/BENCH_aggregate.json]
//! ```

use std::time::Instant;

use fl::backend::EncryptedVector;
use fl::{AggregationTopology, BackendKind, Network};
use flbooster_bench::table::Table;
use flbooster_bench::{backend, shared_keys, Args};
use he::paillier::{Ciphertext, PaillierKeyPair};
use mpint::Natural;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Aggregation-weight width: quantized per-party sample counts.
const WEIGHT_BITS: u32 = 32;
/// Shard counts swept at fixed memory.
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Edge-aggregator fan-in for the tree comparison.
const TREE_ARITY: usize = 16;
/// Minimum wall-clock per measurement before we trust the mean.
const MIN_MEASURE_SECS: f64 = 0.2;
/// Shard-1 wall-clock may not fall below this fraction of the flat
/// entry point's (identical code path; the band absorbs timer noise).
const FLAT_BAND: f64 = 0.75;
/// Modeled critical-path scaling floor at 4 shards.
const SCALING_FLOOR: f64 = 1.5;

/// Distinct ciphertexts generated before tiling (bounds keygen-side
/// encryption work; aggregation cost does not depend on repetition).
const BASE_CTS: usize = 64;

/// Calls `body` repeatedly until at least [`MIN_MEASURE_SECS`] of
/// wall-clock accumulates, returning operations per second.
// flcheck: det-absorb — pure stopwatch helper: wall-clock is the measured
// quantity and never reaches ciphertext bytes
fn ops_per_sec(mut body: impl FnMut()) -> f64 {
    // Warm-up pass so lazy setup (pool threads, page faults) is unbilled.
    body();
    let mut reps = 0u64;
    let start = Instant::now();
    loop {
        body();
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= MIN_MEASURE_SECS {
            return reps as f64 / elapsed;
        }
    }
}

/// Deterministic odd 32-bit aggregation weights.
fn weights(count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|k| (k.wrapping_mul(2_654_435_761) & 0xFFFF_FFFF) | 1)
        .collect()
}

/// `parties` ciphertexts tiled from [`BASE_CTS`] distinct encryptions.
fn party_cts(keys: &PaillierKeyPair, parties: usize) -> Vec<Ciphertext> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA66_05 ^ parties as u64);
    let base: Vec<Ciphertext> = (0..BASE_CTS.min(parties))
        .map(|i| {
            let m = Natural::from(rng.next_u64());
            let r = keys.public.batch_blinding(0xA66, i);
            keys.public.encrypt_with_r(&m, &r).expect("encrypt")
        })
        .collect();
    (0..parties).map(|i| base[i % base.len()].clone()).collect()
}

struct ShardRow {
    shards: usize,
    wall_ops_sec: f64,
    total_limb_mults: u64,
    critical_path_limb_mults: u64,
    modeled_scaling: f64,
    identical: bool,
}

struct TreeRow {
    parties: usize,
    uplink_messages: u64,
    uplink_bytes: u64,
    uplink_sim_seconds: f64,
    flat_sim_he_seconds: f64,
    tree_sim_he_seconds: f64,
    identical: bool,
}

fn shard_sweep(keys: &PaillierKeyPair, parties: usize) -> Vec<ShardRow> {
    let pk = &keys.public;
    let cts = party_cts(keys, parties);
    let wnat: Vec<Natural> = weights(parties).iter().map(|&w| Natural::from(w)).collect();
    let flat = pk.weighted_sum(&cts, &wnat).expect("flat fold");
    let flat_est = pk.weighted_sum_op_estimate(parties, WEIGHT_BITS);
    SHARD_SWEEP
        .iter()
        .map(|&shards| {
            let result = pk
                .weighted_sum_sharded(&cts, &wnat, shards)
                .expect("sharded fold");
            let wall = ops_per_sec(|| {
                std::hint::black_box(
                    pk.weighted_sum_sharded(&cts, &wnat, shards)
                        .expect("sharded fold"),
                );
            });
            let cp = pk.weighted_sum_critical_path_estimate(parties, WEIGHT_BITS, shards);
            ShardRow {
                shards,
                wall_ops_sec: wall,
                total_limb_mults: pk.weighted_sum_sharded_op_estimate(parties, WEIGHT_BITS, shards),
                critical_path_limb_mults: cp,
                modeled_scaling: flat_est as f64 / cp.max(1) as f64,
                identical: result == flat,
            }
        })
        .collect()
}

fn tree_compare(key_bits: u32, parties: usize, shards: usize) -> TreeRow {
    let keys = shared_keys(key_bits);
    let cts = party_cts(&keys, parties);
    let vectors: Vec<EncryptedVector> = cts
        .into_iter()
        .map(|ct| EncryptedVector {
            cts: vec![ct],
            count: 1,
        })
        .collect();
    let ws = weights(parties);

    let flat_acc = backend(BackendKind::FlBooster, key_bits, 4);
    flat_acc.take_timing();
    let flat = flat_acc
        .aggregate_weighted(&vectors, &ws)
        .expect("flat aggregate");
    let flat_t = flat_acc.take_timing();

    let topology = AggregationTopology::tree(TREE_ARITY);
    let tree_acc = backend(BackendKind::FlBooster, key_bits, 4)
        .with_topology(topology)
        .with_aggregation_shards(shards);
    tree_acc.take_timing();
    let tree = tree_acc
        .aggregate_weighted(&vectors, &ws)
        .expect("tree aggregate");
    let tree_t = tree_acc.take_timing();

    // Per-hop wire charges for the intermediate partial aggregates.
    let net = Network::new(tree_acc.network_profile(), 0x7EE);
    let hops = topology.uplink_messages(parties);
    let mut uplink_sim_seconds = 0.0;
    for _ in 0..hops {
        uplink_sim_seconds += net
            .send(tree.ciphertext_count(), tree.bytes())
            .expect("uplink send");
    }

    TreeRow {
        parties,
        uplink_messages: hops,
        uplink_bytes: hops * tree.bytes(),
        uplink_sim_seconds,
        flat_sim_he_seconds: flat_t.he_seconds,
        tree_sim_he_seconds: tree_t.he_seconds,
        identical: tree == flat,
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let key_bits = args.key_sizes_or(&[1024])[0];
    let parties: usize = args
        .get("parties")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let tree_parties: Vec<usize> = if quick {
        vec![1_000, 4_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };
    let out_path = args
        .get("out")
        .unwrap_or("results/BENCH_aggregate.json")
        .to_string();

    println!(
        "Aggregation scaling — {key_bits}-bit keys, {parties} parties, \
         shards {SHARD_SWEEP:?}, tree arity {TREE_ARITY}, parties {tree_parties:?}\n"
    );

    let keys = shared_keys(key_bits);
    let shard_rows = shard_sweep(&keys, parties);
    let mut table = Table::new([
        "Shards",
        "Wall ops/s",
        "Total mults",
        "Critical-path mults",
        "Modeled scaling",
        "Identical",
    ]);
    for r in &shard_rows {
        table.row([
            r.shards.to_string(),
            format!("{:.2}", r.wall_ops_sec),
            r.total_limb_mults.to_string(),
            r.critical_path_limb_mults.to_string(),
            format!("{:.2}x", r.modeled_scaling),
            r.identical.to_string(),
        ]);
    }
    table.print();
    println!();

    let tree_rows: Vec<TreeRow> = tree_parties
        .iter()
        .map(|&p| tree_compare(key_bits, p, 4))
        .collect();
    let mut ttable = Table::new([
        "Parties",
        "Uplink msgs",
        "Uplink bytes",
        "Uplink sim s",
        "Flat HE sim s",
        "Tree HE sim s",
        "Identical",
    ]);
    for r in &tree_rows {
        ttable.row([
            r.parties.to_string(),
            r.uplink_messages.to_string(),
            r.uplink_bytes.to_string(),
            format!("{:.4}", r.uplink_sim_seconds),
            format!("{:.4}", r.flat_sim_he_seconds),
            format!("{:.4}", r.tree_sim_he_seconds),
            r.identical.to_string(),
        ]);
    }
    ttable.print();

    // JSON artifact (hand-rolled; the offline workspace has no serde).
    let mut json = format!(
        "{{\n  \"key_bits\": {key_bits},\n  \"weight_bits\": {WEIGHT_BITS},\n  \
         \"parties\": {parties},\n  \"tree_arity\": {TREE_ARITY},\n  \"shard_sweep\": [\n"
    );
    for (i, r) in shard_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"wall_ops_sec\": {:.3}, \"total_limb_mults\": {}, \
             \"critical_path_limb_mults\": {}, \"modeled_scaling\": {:.3}, \
             \"identical_to_flat\": {}}}{}\n",
            r.shards,
            r.wall_ops_sec,
            r.total_limb_mults,
            r.critical_path_limb_mults,
            r.modeled_scaling,
            r.identical,
            if i + 1 < shard_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"tree\": [\n");
    for (i, r) in tree_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"parties\": {}, \"uplink_messages\": {}, \"uplink_bytes\": {}, \
             \"uplink_sim_seconds\": {:.6}, \"flat_sim_he_seconds\": {:.6}, \
             \"tree_sim_he_seconds\": {:.6}, \"identical_to_flat\": {}}}{}\n",
            r.parties,
            r.uplink_messages,
            r.uplink_bytes,
            r.uplink_sim_seconds,
            r.flat_sim_he_seconds,
            r.tree_sim_he_seconds,
            r.identical,
            if i + 1 < tree_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nWrote {out_path}");

    let mut failed = false;

    // Gate 1: bit identity everywhere.
    for r in &shard_rows {
        if !r.identical {
            println!(
                "GATE FAILED: {} shards diverged from the flat fold",
                r.shards
            );
            failed = true;
        }
    }
    for r in &tree_rows {
        if !r.identical {
            println!(
                "GATE FAILED: tree aggregate at {} parties diverged from flat",
                r.parties
            );
            failed = true;
        }
    }
    if !failed {
        println!("gate ok: sharded and tree results bit-identical to flat");
    }

    // Gate 2: modeled critical-path scaling floor at 4 shards.
    if let Some(r4) = shard_rows.iter().find(|r| r.shards == 4) {
        if r4.modeled_scaling < SCALING_FLOOR {
            println!(
                "GATE FAILED: modeled scaling {:.2}x at 4 shards < required {SCALING_FLOOR}x",
                r4.modeled_scaling
            );
            failed = true;
        } else {
            println!(
                "gate ok: modeled scaling {:.2}x at 4 shards >= {SCALING_FLOOR}x",
                r4.modeled_scaling
            );
        }
    }

    // Gate 3: flat no-regression — estimates equal exactly at 1 shard,
    // and single-shard wall-clock within the noise band of the flat
    // entry point.
    let pk = &keys.public;
    let flat_est = pk.weighted_sum_op_estimate(parties, WEIGHT_BITS);
    let shard1_est = pk.weighted_sum_sharded_op_estimate(parties, WEIGHT_BITS, 1);
    if shard1_est != flat_est {
        println!("GATE FAILED: 1-shard estimate {shard1_est} != flat estimate {flat_est}");
        failed = true;
    } else {
        println!("gate ok: 1-shard estimate equals flat estimate ({flat_est})");
    }
    if let Some(r1) = shard_rows.iter().find(|r| r.shards == 1) {
        let cts = party_cts(&keys, parties);
        let wnat: Vec<Natural> = weights(parties).iter().map(|&w| Natural::from(w)).collect();
        let flat_wall = ops_per_sec(|| {
            std::hint::black_box(pk.weighted_sum(&cts, &wnat).expect("flat fold"));
        });
        let ratio = if flat_wall > 0.0 {
            r1.wall_ops_sec / flat_wall
        } else {
            1.0
        };
        if ratio < FLAT_BAND {
            println!(
                "GATE FAILED: 1-shard wall {:.2} ops/s fell under {FLAT_BAND} of flat {:.2}",
                r1.wall_ops_sec, flat_wall
            );
            failed = true;
        } else {
            println!(
                "gate ok: 1-shard wall {:.2} ops/s within band of flat {:.2} (ratio {:.2})",
                r1.wall_ops_sec, flat_wall, ratio
            );
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("All aggregation gates passed.");
}
