//! Self-benchmark for the flcheck static analyzer.
//!
//! Runs the full workspace scan a few times, keeps the best run, and
//! writes `results/BENCH_flcheck.json` with files/sec plus per-pass
//! wall-clock (the `ScanStats` breakdown: per-file, call graph, taint,
//! panic reachability, determinism flow, guard escape, lock graph, cost
//! model). The timings are
//! reporting-only — they never feed back into the analysis, so the
//! report stays byte-identical across runs and thread counts.
//!
//! ```text
//! cargo run --release --bin bench_flcheck -- [--root DIR] [--out FILE] [--iters N]
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out = PathBuf::from("results/BENCH_flcheck.json");
    let mut iters = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root requires a directory"),
            },
            "--out" => match args.next() {
                Some(v) => out = PathBuf::from(v),
                None => return usage("--out requires a file path"),
            },
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => iters = v,
                _ => return usage("--iters requires a positive integer"),
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_flcheck [--root DIR] [--out FILE] [--iters N]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Best-of-N: the scan is pure, so the fastest run is the least
    // noise-contaminated estimate of the analyzer's cost.
    let mut best: Option<(flcheck::report::Report, flcheck::ScanStats)> = None;
    for _ in 0..iters {
        let (report, stats) = match flcheck::run_with_stats(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_flcheck: error scanning {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        match &best {
            Some((_, b)) if b.total <= stats.total => {}
            _ => best = Some((report, stats)),
        }
    }
    let (report, stats) = best.expect("iters >= 1");

    let files = report.files_scanned;
    let secs = stats.total.as_secs_f64();
    let files_per_sec = if secs > 0.0 { files as f64 / secs } else { 0.0 };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"flcheck\",");
    let _ = writeln!(json, "  \"iters\": {iters},");
    let _ = writeln!(json, "  \"files_scanned\": {files},");
    let _ = writeln!(json, "  \"findings\": {},", report.findings.len());
    let _ = writeln!(json, "  \"files_per_sec\": {files_per_sec:.1},");
    let _ = writeln!(json, "  \"wall_clock_seconds\": {{");
    let passes: [(&str, Duration); 9] = [
        ("per_file", stats.per_file),
        ("callgraph", stats.callgraph),
        ("taint", stats.taint),
        ("reach", stats.reach),
        ("detflow", stats.detflow),
        ("escape", stats.escape),
        ("lockgraph", stats.lockgraph),
        ("costmodel", stats.costmodel),
        ("total", stats.total),
    ];
    for (i, (name, d)) in passes.iter().enumerate() {
        let comma = if i + 1 == passes.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {:.6}{comma}", d.as_secs_f64());
    }
    json.push_str("  }\n}\n");

    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_flcheck: error writing {}: {e}", out.display());
        return ExitCode::from(2);
    }
    print!("{json}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_flcheck: {msg} (see --help)");
    ExitCode::from(2)
}
