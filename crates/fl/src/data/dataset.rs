//! Sparse dataset representation.

// flcheck: allow-file(pf-index) — feature indices are validated against the
// dataset's `num_features` at construction; dense buffers are sized to it.

/// One instance: sorted feature indices with values (CSR-style row).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseRow {
    /// Sorted, unique feature indices.
    pub indices: Vec<u32>,
    /// Values aligned with [`SparseRow::indices`].
    pub values: Vec<f64>,
}

impl SparseRow {
    /// An empty row.
    pub fn empty() -> Self {
        SparseRow {
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a row, asserting indices are sorted and aligned.
    pub fn new(indices: Vec<u32>, values: Vec<f64>) -> Self {
        // Documented constructor contract (misalignment is data corruption).
        // flcheck: allow(pf-assert)
        assert_eq!(indices.len(), values.len(), "indices/values must align");
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be sorted unique"
        );
        SparseRow { indices, values }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Dot product with a dense weight vector.
    pub fn dot(&self, weights: &[f64]) -> f64 {
        self.indices
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| v * weights[i as usize])
            .sum()
    }

    /// `out[i] += scale * self[i]` (scatter-add into a dense vector).
    pub fn axpy_into(&self, scale: f64, out: &mut [f64]) {
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] += scale * v;
        }
    }

    /// Restricts the row to the feature range `[lo, hi)`, re-basing
    /// indices to start at zero — used by the vertical partitioner.
    pub fn slice_features(&self, lo: u32, hi: u32) -> SparseRow {
        let start = self.indices.partition_point(|&i| i < lo);
        let end = self.indices.partition_point(|&i| i < hi);
        SparseRow {
            indices: self.indices[start..end].iter().map(|&i| i - lo).collect(),
            values: self.values[start..end].to_vec(),
        }
    }
}

/// A labeled dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("rcv1-like@0.01", ...).
    pub name: String,
    /// Feature-space dimension.
    pub num_features: usize,
    /// Instances.
    pub rows: Vec<SparseRow>,
    /// Binary labels in {0.0, 1.0}, aligned with rows.
    pub labels: Vec<f64>,
}

impl Dataset {
    /// Number of instances.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Mean non-zeros per row.
    pub fn mean_nnz(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.nnz()).sum::<usize>() as f64 / self.rows.len() as f64
    }

    /// Density: mean nnz / num_features.
    pub fn density(&self) -> f64 {
        if self.num_features == 0 {
            0.0
        } else {
            self.mean_nnz() / self.num_features as f64
        }
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().sum::<f64>() / self.labels.len() as f64
    }

    /// Yields batch index ranges of `batch_size` (last may be short).
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        let n = self.len();
        let bs = batch_size.max(1);
        (0..n.div_ceil(bs)).map(move |b| (b * bs)..(((b + 1) * bs).min(n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> SparseRow {
        SparseRow::new(vec![0, 3, 7], vec![1.0, 2.0, -1.0])
    }

    #[test]
    fn dot_and_axpy() {
        let w = vec![0.5, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 1.0];
        assert_eq!(row().dot(&w), 0.5 + 4.0 - 1.0);
        let mut out = vec![0.0; 8];
        row().axpy_into(2.0, &mut out);
        assert_eq!(out[0], 2.0);
        assert_eq!(out[3], 4.0);
        assert_eq!(out[7], -2.0);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn slice_features_rebases() {
        let s = row().slice_features(3, 8);
        assert_eq!(s.indices, vec![0, 4]);
        assert_eq!(s.values, vec![2.0, -1.0]);
        let empty = row().slice_features(8, 100);
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn batches_cover_everything() {
        let d = Dataset {
            name: "t".into(),
            num_features: 4,
            rows: vec![SparseRow::empty(); 10],
            labels: vec![0.0; 10],
        };
        let ranges: Vec<_> = d.batches(4).collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn stats() {
        let d = Dataset {
            name: "t".into(),
            num_features: 8,
            rows: vec![row(), SparseRow::empty()],
            labels: vec![1.0, 0.0],
        };
        assert_eq!(d.mean_nnz(), 1.5);
        assert_eq!(d.density(), 1.5 / 8.0);
        assert_eq!(d.positive_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_row_panics() {
        SparseRow::new(vec![1], vec![]);
    }
}
