//! **Round-engine pipelining benchmark**: modeled secure-aggregation
//! round time with the event-driven engine overlapping client encrypt,
//! transfer, and server folds, versus the same round run strictly
//! sequentially. Results go to `results/BENCH_rounds.json`.
//!
//! Each cell runs *real* crypto — every client encrypts its gradient
//! vector, the server folds ciphertexts as they arrive, one decrypt
//! closes the round — through [`fl::engine::run_round`] twice over the
//! same parties and seeds:
//!
//! * **sequential** — `EngineConfig::sequential()` on a single-stream
//!   NIC: the classic loop's accounting (elapsed == work).
//! * **pipelined** — `EngineConfig::default()` on a 4-stream duplex
//!   NIC with mild compute heterogeneity: encrypts stagger, transfers
//!   overlap, folds stream behind the uplink.
//!
//! The *modeled speedup* is sequential elapsed over pipelined elapsed
//! (simulated seconds — deterministic on any host); wall-clock
//! rounds/sec is recorded for the curious.
//!
//! Gates (exit 1 on failure; `run_harness.sh` traps them):
//!
//! 1. **Bit identity** — the pipelined round's decrypted sums must equal
//!    the sequential round's exactly, at every client count.
//! 2. **Speedup floor** — modeled round-time reduction must be ≥ 1.5×
//!    at every swept client count (all are ≥ 64).
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin bench_rounds -- \
//!     [--keys 256] [--quick] [--out results/BENCH_rounds.json]
//! ```

use std::time::Instant;

use fl::engine::{run_round, EngineConfig};
use fl::metrics::EpochBreakdown;
use fl::train::{FlEnv, TrainConfig};
use fl::{BackendKind, Network};
use flbooster_bench::table::Table;
use flbooster_bench::{backend, Args};

/// Gradient components per client (packed to a couple of ciphertexts).
const VALUES_PER_CLIENT: usize = 8;
/// Local-compute flops per client per round.
const FLOPS_PER_CLIENT: u64 = 50_000;
/// NIC streams the pipelined configuration may overlap.
const DUPLEX_STREAMS: u32 = 4;
/// Modeled round-time reduction floor at 64+ clients.
const SPEEDUP_FLOOR: f64 = 1.5;
/// Compute heterogeneity profile tiled over the clients.
const MULTIPLIERS: [f64; 4] = [0.7, 1.0, 1.15, 1.3];

struct Row {
    clients: usize,
    work_seconds: f64,
    sequential_seconds: f64,
    pipelined_seconds: f64,
    speedup: f64,
    wall_rounds_per_sec: f64,
    identical: bool,
}

/// Deterministic per-client gradient vectors.
fn parties(clients: usize) -> Vec<Vec<f64>> {
    (0..clients)
        .map(|k| {
            (0..VALUES_PER_CLIENT)
                .map(|i| ((k * VALUES_PER_CLIENT + i) as f64 * 0.173).sin() * 0.6)
                .collect()
        })
        .collect()
}

// The sweep tops out at 1024 clients — nowhere near 2^32 — so the
// backend party-count cast cannot truncate.
// flcheck: widen-ok(clients)
fn engine_env(key_bits: u32, clients: usize, duplex: u32) -> FlEnv {
    let accel = backend(BackendKind::FlBooster, key_bits, clients as u32);
    let profile = accel.network_profile().with_duplex_streams(duplex);
    FlEnv {
        network: Network::new(profile, 0x0E7),
        accel,
    }
}

// flcheck: det-absorb — the only wall-clock read is the stopwatch around
// the pipelined round; it feeds the informational rounds/sec column and
// never the simulated timings, the sums, or the gate decisions.
fn measure(key_bits: u32, clients: usize) -> Row {
    let grads = parties(clients);
    let flops = vec![FLOPS_PER_CLIENT; clients];
    let tcfg = TrainConfig::default();
    let seed = 0xB00 + clients as u64;

    let seq_env = engine_env(key_bits, clients, 1);
    let mut seq_b = EpochBreakdown::default();
    let seq = run_round(
        &seq_env,
        &EngineConfig::sequential().with_compute_multipliers(MULTIPLIERS.to_vec()),
        &tcfg,
        &grads,
        &flops,
        seed,
        &mut seq_b,
    )
    .expect("sequential round");

    let pipe_env = engine_env(key_bits, clients, DUPLEX_STREAMS);
    let mut pipe_b = EpochBreakdown::default();
    // Wall-clock around the pipelined round: real encrypts + streaming
    // folds. One round is plenty of work at every swept client count.
    let started = Instant::now();
    let pipe = run_round(
        &pipe_env,
        &EngineConfig::default().with_compute_multipliers(MULTIPLIERS.to_vec()),
        &tcfg,
        &grads,
        &flops,
        seed,
        &mut pipe_b,
    )
    .expect("pipelined round");
    let wall = started.elapsed().as_secs_f64();

    Row {
        clients,
        work_seconds: seq.round_seconds,
        sequential_seconds: seq.round_seconds,
        pipelined_seconds: pipe.round_seconds,
        speedup: seq.round_seconds / pipe.round_seconds,
        wall_rounds_per_sec: if wall > 0.0 { 1.0 / wall } else { 0.0 },
        identical: pipe.sums == seq.sums,
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let key_bits = args.key_sizes_or(&[256])[0];
    let client_sweep: Vec<usize> = if quick {
        vec![64, 128]
    } else {
        vec![64, 256, 1024]
    };
    let out_path = args
        .get("out")
        .unwrap_or("results/BENCH_rounds.json")
        .to_string();

    println!(
        "Round-engine pipelining — {key_bits}-bit keys, {VALUES_PER_CLIENT} values/client, \
         duplex {DUPLEX_STREAMS}, clients {client_sweep:?}\n"
    );

    let rows: Vec<Row> = client_sweep.iter().map(|&c| measure(key_bits, c)).collect();

    let mut table = Table::new([
        "Clients",
        "Work sim s",
        "Sequential sim s",
        "Pipelined sim s",
        "Speedup",
        "Wall rounds/s",
        "Identical",
    ]);
    for r in &rows {
        table.row([
            r.clients.to_string(),
            format!("{:.4}", r.work_seconds),
            format!("{:.4}", r.sequential_seconds),
            format!("{:.4}", r.pipelined_seconds),
            format!("{:.2}x", r.speedup),
            format!("{:.2}", r.wall_rounds_per_sec),
            r.identical.to_string(),
        ]);
    }
    table.print();

    // JSON artifact (hand-rolled; the offline workspace has no serde).
    let mut json = format!(
        "{{\n  \"key_bits\": {key_bits},\n  \"values_per_client\": {VALUES_PER_CLIENT},\n  \
         \"flops_per_client\": {FLOPS_PER_CLIENT},\n  \"duplex_streams\": {DUPLEX_STREAMS},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \"rounds\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"work_sim_seconds\": {:.6}, \
             \"sequential_sim_seconds\": {:.6}, \"pipelined_sim_seconds\": {:.6}, \
             \"modeled_speedup\": {:.3}, \"wall_rounds_per_sec\": {:.3}, \
             \"identical_to_sequential\": {}}}{}\n",
            r.clients,
            r.work_seconds,
            r.sequential_seconds,
            r.pipelined_seconds,
            r.speedup,
            r.wall_rounds_per_sec,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nWrote {out_path}");

    let mut failed = false;

    // Gate 1: pipelined sums bit-identical to sequential sums.
    for r in &rows {
        if !r.identical {
            println!(
                "GATE FAILED: pipelined sums diverged from sequential at {} clients",
                r.clients
            );
            failed = true;
        }
    }
    if !failed {
        println!("gate ok: pipelined sums bit-identical to sequential at every client count");
    }

    // Gate 2: modeled round-time reduction floor.
    for r in &rows {
        if r.speedup < SPEEDUP_FLOOR {
            println!(
                "GATE FAILED: modeled speedup {:.2}x at {} clients < required {SPEEDUP_FLOOR}x",
                r.speedup, r.clients
            );
            failed = true;
        } else {
            println!(
                "gate ok: modeled speedup {:.2}x at {} clients >= {SPEEDUP_FLOOR}x",
                r.speedup, r.clients
            );
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("All round-engine gates passed.");
}
