//! Vertical federated SecureBoost: three organizations hold disjoint
//! feature sets for the same customers; only the first holds labels.
//! Boosted trees are grown with encrypted gradient histograms — the
//! passive parties never see gradients, the active party never sees
//! foreign features.
//!
//! ```text
//! cargo run --release --example vertical_secureboost
//! ```

use fl::data::generators::DatasetSpec;
use fl::models::HeteroSbt;
use fl::train::{FlEnv, FlModel, TrainConfig};
use fl::{Accelerator, BackendKind};
use he::paillier::PaillierKeyPair;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut spec = DatasetSpec::rcv1();
    spec.features = 30; // 10 features per organization
    spec.nnz_per_row = 12;
    spec.instances = 240;
    let dataset = spec.generate(1.0);
    println!(
        "joint task: {} customers, {} features split across 3 organizations",
        dataset.len(),
        dataset.num_features
    );

    let cfg = TrainConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5B7);
    let keys = PaillierKeyPair::generate(&mut rng, 256).expect("keygen");
    let accel = Accelerator::new(BackendKind::FlBooster, keys, 3).expect("backend");
    let env = FlEnv::new(accel, cfg.seed);

    let mut model = HeteroSbt::new(&dataset, 3, &cfg).expect("model");
    println!("initial loss: {:.5}", model.loss());

    for round in 0..4 {
        let result = model.run_epoch(&env, &cfg, round).expect("boosting round");
        let tree = model.trees().last().expect("tree grown");
        println!(
            "round {}: tree with {} leaves, loss {:.5}, {:.3} sim s \
             ({} ciphertexts over the wire)",
            round + 1,
            tree.leaf_count(),
            result.loss,
            result.breakdown.total_seconds(),
            result.breakdown.ciphertexts,
        );
    }

    let stats = env.network.stats();
    println!(
        "\ntraffic: {} messages, {} ciphertexts, {} bytes, {} retries",
        stats.messages, stats.ciphertexts, stats.bytes, stats.retries
    );
    println!("note: gradients crossed the wire only as Paillier ciphertexts (GH-packed).");
}
