//! Multi-precision division: Knuth's Algorithm D.
//!
//! The paper replaces "complex division and rest operations" on the GPU
//! with repeated multiply/subtract refinement (Sec. IV-A1); on the CPU we
//! keep the textbook Algorithm D (TAOCP Vol. 2, 4.3.1), which the GPU
//! variant must agree with — the agreement is property-tested in
//! `crates/mpint/tests`.

// flcheck: allow-file(pf-index) — Algorithm D addresses `u[j+n]`-style
// windows whose bounds come from the normalised operand widths; the
// indices mirror TAOCP's notation and are covered by the property tests.

use crate::limb::{adc, div2by1, mul_wide, sbb, Limb, LIMB_BITS};
use crate::natural::Natural;
use crate::{Error, Result};

/// Computes `(a / b, a % b)`.
pub(crate) fn div_rem(a: &Natural, b: &Natural) -> Result<(Natural, Natural)> {
    if b.is_zero() {
        return Err(Error::DivisionByZero);
    }
    if a < b {
        return Ok((Natural::zero(), a.clone()));
    }
    if b.limb_len() == 1 {
        let (q, r) = a.div_rem_small(b.limbs()[0]);
        return Ok((q, Natural::from(r)));
    }
    Ok(knuth_d(a, b))
}

/// Algorithm D for divisors of at least two limbs.
fn knuth_d(a: &Natural, b: &Natural) -> (Natural, Natural) {
    let n = b.limb_len();
    let m = a.limb_len() - n;

    // D1: normalize so the divisor's top bit is set, making the quotient
    // estimate off by at most 2.
    let shift = b.limbs().last().map_or(0, |l| l.leading_zeros());
    let v = shl_bits(b.limbs(), shift);
    let mut u = shl_bits_ext(a.limbs(), shift); // one extra high limb

    let mut q = vec![0 as Limb; m + 1];
    let v_top = v[n - 1];
    let v_next = v[n - 2];

    // D2–D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two dividend limbs. Normalization
        // keeps u[j+n] <= v_top; equality means q̂ starts at B-1 with
        // r̂ = u[j+n-1] + v_top (refinement is moot if r̂ overflows B).
        let (mut qhat, mut rhat, refine) = if u[j + n] >= v_top {
            let (r, overflow) = u[j + n - 1].overflowing_add(v_top);
            (Limb::MAX, r, !overflow)
        } else {
            let (q, r) = div2by1(u[j + n], u[j + n - 1], v_top);
            (q, r, true)
        };
        // Refine: while q̂ * v[n-2] > r̂*B + u[j+n-2], decrement q̂.
        while refine {
            let (lo, hi) = mul_wide(qhat, v_next);
            if hi > rhat || (hi == rhat && lo > u[j + n - 2]) {
                qhat -= 1;
                let (r, overflow) = rhat.overflowing_add(v_top);
                if overflow {
                    break; // r̂ >= B: test can no longer fail
                }
                rhat = r;
            } else {
                break;
            }
        }

        // D4: multiply-subtract u[j..j+n+1] -= q̂ * v.
        let borrow = u_submul(&mut u, j, &v, qhat, n);
        // D5–D6: if it went negative, add one v back and decrement q̂.
        if borrow {
            qhat -= 1;
            let mut carry = 0;
            for i in 0..n {
                let (s, c) = adc(u[j + i], v[i], carry);
                u[j + i] = s;
                carry = c;
            }
            u[j + n] = u[j + n].wrapping_add(carry);
        }
        q[j] = qhat;
    }

    // D8: denormalize the remainder.
    let rem = shr_bits(&u[..n], shift);
    (Natural::from_limbs(q), Natural::from_limbs(rem))
}

/// `u[j..j+n+1] -= qhat * v[..n]`; returns true if the subtraction
/// borrowed out (q̂ was one too large).
fn u_submul(u: &mut [Limb], j: usize, v: &[Limb], qhat: Limb, n: usize) -> bool {
    let mut borrow: Limb = 0;
    let mut carry: Limb = 0;
    for i in 0..n {
        let (plo, phi) = mul_wide(qhat, v[i]);
        let (plo, c0) = adc(plo, carry, 0);
        carry = phi.wrapping_add(c0);
        let (d, br) = sbb(u[j + i], plo, borrow);
        u[j + i] = d;
        borrow = br;
    }
    let (d, br) = sbb(u[j + n], carry, borrow);
    u[j + n] = d;
    br != 0
}

/// Shifts limbs left by `shift < 64` bits, same length.
fn shl_bits(limbs: &[Limb], shift: u32) -> Vec<Limb> {
    if shift == 0 {
        return limbs.to_vec();
    }
    let mut out = Vec::with_capacity(limbs.len());
    let mut carry = 0;
    for &l in limbs {
        out.push((l << shift) | carry);
        carry = l >> (LIMB_BITS - shift);
    }
    debug_assert_eq!(carry, 0, "caller guarantees top bits are free");
    out
}

/// Shifts limbs left by `shift < 64` bits, with one extra high limb.
fn shl_bits_ext(limbs: &[Limb], shift: u32) -> Vec<Limb> {
    let mut out = Vec::with_capacity(limbs.len() + 1);
    if shift == 0 {
        out.extend_from_slice(limbs);
        out.push(0);
        return out;
    }
    let mut carry = 0;
    for &l in limbs {
        out.push((l << shift) | carry);
        carry = l >> (LIMB_BITS - shift);
    }
    out.push(carry);
    out
}

/// Shifts limbs right by `shift < 64` bits.
fn shr_bits(limbs: &[Limb], shift: u32) -> Vec<Limb> {
    if shift == 0 {
        return limbs.to_vec();
    }
    let mut out = vec![0; limbs.len()];
    let mut carry = 0;
    for i in (0..limbs.len()).rev() {
        out[i] = (limbs[i] >> shift) | carry;
        carry = limbs[i] << (LIMB_BITS - shift);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(
            div_rem(&n(5), &Natural::zero()).unwrap_err(),
            Error::DivisionByZero
        );
    }

    #[test]
    fn small_dividend_short_circuits() {
        let (q, r) = div_rem(&n(5), &n(7)).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, n(5));
    }

    #[test]
    fn u128_cases_match_native() {
        let cases = [
            (u128::MAX, 3u128),
            (u128::MAX, u64::MAX as u128 + 1),
            (u128::MAX - 1, u128::MAX),
            ((1u128 << 100) + 12345, (1u128 << 65) + 7),
            (1u128 << 127, (1u128 << 64) - 1),
        ];
        for (a, b) in cases {
            let (q, r) = div_rem(&n(a), &n(b)).unwrap();
            assert_eq!(q, n(a / b), "{a} / {b}");
            assert_eq!(r, n(a % b), "{a} % {b}");
        }
    }

    #[test]
    fn reconstruction_identity_large() {
        // (a*b + r) / b == a with r < b, using multi-limb operands.
        let mut la = vec![0u64; 17];
        let mut lb = vec![0u64; 9];
        let mut x: u64 = 42;
        for l in la.iter_mut().chain(lb.iter_mut()) {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            *l = x;
        }
        let a = Natural::from_limbs(la);
        let b = Natural::from_limbs(lb);
        let r = n(123_456);
        assert!(r < b);
        let v = &(&a * &b) + &r;
        let (q, rem) = div_rem(&v, &b).unwrap();
        assert_eq!(q, a);
        assert_eq!(rem, r);
    }

    #[test]
    fn qhat_correction_path() {
        // Crafted so the initial q̂ estimate is too large and must be
        // corrected (top limbs of dividend close to divisor's).
        let a = Natural::from_limbs(vec![0, u64::MAX, u64::MAX - 1]);
        let b = Natural::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = div_rem(&a, &b).unwrap();
        let recon = &(&q * &b) + &r;
        assert_eq!(recon, a);
        assert!(r < b);
    }

    #[test]
    fn exact_division_has_zero_remainder() {
        let b = Natural::from_limbs(vec![0xDEAD_BEEF, 0xCAFE_BABE, 7]);
        let q = Natural::from_limbs(vec![3, 0, 0, 11]);
        let a = &b * &q;
        let (qq, rr) = div_rem(&a, &b).unwrap();
        assert_eq!(qq, q);
        assert!(rr.is_zero());
    }
}
