//! Stream pipelining: overlapping transfers with compute.
//!
//! FLBooster processes encryption/decryption in a staged pipeline (paper
//! Fig. 4): while chunk `i` computes on the device, chunk `i+1` copies in
//! and chunk `i-1` copies out. A [`Stream`] folds per-chunk launch reports
//! into the pipelined makespan, so the platform layer can report both the
//! serial and the overlapped simulated time.

use crate::kernel::LaunchReport;

/// Accumulates chunked launches into a pipelined timing model.
#[derive(Debug, Default, Clone)]
pub struct Stream {
    chunks: Vec<(f64, f64, f64)>, // (h2d, kernel, d2h) per chunk
}

impl Stream {
    /// New empty stream.
    pub fn new() -> Self {
        Stream::default()
    }

    /// Adds one chunk's launch report to the stream.
    pub fn push(&mut self, report: &LaunchReport) {
        self.chunks.push((
            report.sim_h2d_seconds,
            report.sim_kernel_seconds,
            report.sim_d2h_seconds,
        ));
    }

    /// Number of chunks queued.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Serial (unpipelined) makespan: every stage of every chunk in
    /// sequence.
    pub fn serial_seconds(&self) -> f64 {
        self.chunks.iter().map(|(a, b, c)| a + b + c).sum()
    }

    /// Pipelined makespan under a classic three-stage pipeline: the copy
    /// engine and the compute engine each process chunks in order, a
    /// chunk's stage starts when both its predecessor stage and the
    /// engine are free.
    ///
    /// Models one H2D engine, one compute engine, and one D2H engine —
    /// the copy/compute overlap a dual-copy-engine GPU provides.
    pub fn pipelined_seconds(&self) -> f64 {
        let mut h2d_free = 0.0f64;
        let mut kern_free = 0.0f64;
        let mut d2h_free = 0.0f64;
        for &(h, k, d) in &self.chunks {
            let h_done = h2d_free + h;
            h2d_free = h_done;
            let k_done = h_done.max(kern_free) + k;
            kern_free = k_done;
            let d_done = k_done.max(d2h_free) + d;
            d2h_free = d_done;
        }
        d2h_free
    }

    /// Speedup of pipelining over serial execution (1.0 when empty).
    pub fn overlap_speedup(&self) -> f64 {
        let p = self.pipelined_seconds();
        if p == 0.0 {
            1.0
        } else {
            self.serial_seconds() / p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{LaunchPlan, OccupancyLimit};

    fn report(h2d: f64, kernel: f64, d2h: f64) -> LaunchReport {
        LaunchReport {
            name: "chunk",
            items: 1,
            plan: LaunchPlan {
                threads_per_block: 32,
                num_blocks: 1,
                total_threads: 32,
                blocks_per_sm: 1,
                resident_threads_per_sm: 32,
                occupancy: 1.0,
                effective_registers_per_thread: 32,
                limited_by: OccupancyLimit::Threads,
                waves: 1,
            },
            wall_seconds: 0.0,
            pool_threads: 1,
            sim_h2d_seconds: h2d,
            sim_kernel_seconds: kernel,
            sim_d2h_seconds: d2h,
            bytes_in: 0,
            bytes_out: 0,
            total_thread_ops: 0,
            divergent_fraction: 0.0,
            sm_utilization: 1.0,
        }
    }

    #[test]
    fn empty_stream() {
        let s = Stream::new();
        assert!(s.is_empty());
        assert_eq!(s.serial_seconds(), 0.0);
        assert_eq!(s.pipelined_seconds(), 0.0);
        assert_eq!(s.overlap_speedup(), 1.0);
    }

    #[test]
    fn single_chunk_has_no_overlap() {
        let mut s = Stream::new();
        s.push(&report(1.0, 2.0, 1.0));
        assert_eq!(s.serial_seconds(), 4.0);
        assert_eq!(s.pipelined_seconds(), 4.0);
    }

    #[test]
    fn balanced_chunks_approach_3x() {
        let mut s = Stream::new();
        for _ in 0..100 {
            s.push(&report(1.0, 1.0, 1.0));
        }
        assert_eq!(s.serial_seconds(), 300.0);
        // Pipeline fills in 2, then one chunk per unit: 2 + 100 * 1 = 102.
        assert_eq!(s.pipelined_seconds(), 102.0);
        assert!(s.overlap_speedup() > 2.9);
    }

    #[test]
    fn compute_bound_pipeline_hides_transfers() {
        let mut s = Stream::new();
        for _ in 0..10 {
            s.push(&report(0.1, 5.0, 0.1));
        }
        // Compute dominates: makespan ≈ fill + 10 * 5.
        let p = s.pipelined_seconds();
        assert!((p - (0.1 + 50.0 + 0.1)).abs() < 1e-9, "{p}");
    }

    #[test]
    fn pipelined_never_exceeds_serial() {
        let mut s = Stream::new();
        for i in 0..7 {
            s.push(&report(0.2 * i as f64, 1.0, 0.3));
        }
        assert!(s.pipelined_seconds() <= s.serial_seconds() + 1e-12);
    }
}
