//! Modular exponentiation: binary square-and-multiply and the
//! sliding-window method.
//!
//! The paper integrates its GPU Montgomery multiplication with "an
//! extension of the sliding window exponential method, successfully
//! reducing the complexity of modular exponentiation from `e` to
//! `log_{2^b} e`" (Sec. IV-A3). Both methods here run entirely in the
//! Montgomery domain so each step is one [`MontgomeryCtx::mont_mul`];
//! they are cross-checked against each other and against iterated
//! multiplication in the tests.
//!
//! For *secret* exponents (RSA/Paillier decryption) the sliding-window
//! schedule leaks the exponent's bit pattern through its multiply sequence;
//! [`mod_pow_ct`] provides a square-and-multiply-always ladder whose
//! operation count depends only on the public bit-width.

// flcheck: allow-file(pf-index) — window-table and exponent-limb indices are
// bounded by construction (table_len = 2^(w-1); bit index < padded width).

use crate::limb::LIMB_BITS;
use crate::montgomery::MontgomeryCtx;
use crate::natural::Natural;
use crate::{Error, Result};

/// Chooses a sliding-window width (in bits) for an exponent of `bits`
/// bits; widths follow the usual table-size/op-count trade-off from
/// Menezes et al., *Handbook of Applied Cryptography*, Alg. 14.85.
pub fn window_size_for(bits: u32) -> u32 {
    match bits {
        0..=6 => 1,
        7..=24 => 2,
        25..=79 => 3,
        80..=239 => 4,
        240..=671 => 5,
        672..=1791 => 6,
        _ => 7,
    }
}

/// `base^exp mod n` for odd `n`, sliding-window method.
pub fn mod_pow(base: &Natural, exp: &Natural, n: &Natural) -> Result<Natural> {
    let ctx = MontgomeryCtx::new(n)?;
    Ok(mod_pow_ctx(&ctx, base, exp))
}

/// Sliding-window exponentiation with a prepared context.
///
/// `base` may be unreduced; the result is in `[0, n)`, *not* in Montgomery
/// form.
pub fn mod_pow_ctx(ctx: &MontgomeryCtx, base: &Natural, exp: &Natural) -> Natural {
    if exp.is_zero() {
        // x^0 = 1 for all x, including 0^0 by the usual crypto convention.
        return &Natural::one() % ctx.modulus();
    }
    let base_m = ctx.to_mont(&(base % ctx.modulus()));
    let result_m = mod_pow_mont(ctx, &base_m, exp, window_size_for(exp.bit_len()));
    ctx.from_mont(&result_m)
}

/// Core sliding-window loop over a Montgomery-form base; returns a
/// Montgomery-form result. Exposed so batch GPU dispatch can share
/// precomputation.
pub fn mod_pow_mont(ctx: &MontgomeryCtx, base_m: &Natural, exp: &Natural, window: u32) -> Natural {
    debug_assert!(window >= 1 && window <= 12);
    if exp.is_zero() {
        return ctx.one_mont();
    }
    // Precompute odd powers base^1, base^3, ..., base^(2^w - 1).
    let table_len = 1usize << (window - 1);
    let mut table = Vec::with_capacity(table_len);
    table.push(base_m.clone());
    if table_len > 1 {
        let base_sq = ctx.mont_sqr(base_m);
        for i in 1..table_len {
            let prev: &Natural = &table[i - 1];
            table.push(ctx.mont_mul(prev, &base_sq));
        }
    }

    let mut acc = ctx.one_mont();
    let mut started = false;
    let mut i = exp.bit_len() as i64 - 1;
    while i >= 0 {
        if !exp.bit(i as u32) {
            if started {
                acc = ctx.mont_sqr(&acc);
            }
            i -= 1;
            continue;
        }
        // Greedy window: longest run of <= `window` bits ending in a 1.
        let lo = (i - window as i64 + 1).max(0);
        let mut j = lo;
        while !exp.bit(j as u32) {
            j += 1;
        }
        let width = (i - j + 1) as u32;
        // Window value: bits [j, i] inclusive — always odd.
        let value = exp.extract_bits(j as u32, width);
        debug_assert!(value & 1 == 1);
        if started {
            for _ in 0..width {
                acc = ctx.mont_sqr(&acc);
            }
            acc = ctx.mont_mul(&acc, &table[(value >> 1) as usize]);
        } else {
            acc = table[(value >> 1) as usize].clone();
            started = true;
        }
        i = j - 1;
    }
    acc
}

/// Constant-time `base^exp mod n` for secret exponents: left-to-right
/// square-and-multiply-**always** over exactly `exp_bits` ladder steps.
///
/// Every step performs one squaring (through the dedicated
/// [`crate::cios::mont_sqr`] kernel — squarings happen on *every* ladder
/// step regardless of the exponent bit, so the cheaper schedule is
/// data-independent and CT-safe) and one multiplication through the
/// fixed-width CIOS kernel, then keeps or discards the multiplied value
/// with a masked limb-select — `exp_bits` squarings plus `exp_bits`
/// multiplications run for *every* exponent, so the instruction trace
/// depends only on the public bound `exp_bits` (a key-size parameter such
/// as `n.bit_len()`), never on the exponent's bit pattern. Compare the
/// sliding-window path, whose multiply schedule mirrors the exponent's
/// windows.
///
/// `base` may be unreduced (it is public in the decryption use-cases);
/// `exp.bit_len()` must not exceed `exp_bits`. Returns the result in
/// `[0, n)`, not in Montgomery form. Roughly 1.6–1.8× the cost of
/// [`mod_pow_ctx`]; use this only when the exponent is secret.
// flcheck: ct-fn
// flcheck: secret(exp)
pub fn mod_pow_ct(ctx: &MontgomeryCtx, base: &Natural, exp: &Natural, exp_bits: u32) -> Natural {
    debug_assert!(
        exp.bit_len() <= exp_bits,
        "exp_bits must bound the secret exponent"
    );
    let s = ctx.width();
    let n_limbs = ctx.modulus().to_padded_limbs(s);
    let n0 = ctx.n0_inv();
    let base_m = ctx.to_mont(&(base % ctx.modulus())).to_padded_limbs(s);
    // One spare limb keeps the width nonzero for exp_bits == 0; bit
    // indices never reach it. Padding copies the exponent into a buffer
    // of *public* width; the copy length is bounded by exp_bits, which
    // the caller supplies as a key-size parameter.
    // flcheck: allow(ct-taint)
    let e = exp.to_padded_limbs(exp_bits.div_ceil(LIMB_BITS) as usize + 1);
    let mut acc = ctx.one_mont().to_padded_limbs(s);
    for i in (0..exp_bits).rev() {
        acc = crate::cios::mont_sqr(&acc, &n_limbs, n0);
        let mut stepped = crate::cios::mont_mul(&acc, &base_m, &n_limbs, n0);
        let bit = (e[(i / LIMB_BITS) as usize] >> (i % LIMB_BITS)) & 1;
        // bit == 1 keeps `stepped`; bit == 0 rolls back to `acc`.
        crate::ct::ct_select_limbs(crate::ct::ct_mask(bit), &mut stepped, &acc);
        acc = stepped;
    }
    ctx.from_mont(&Natural::from_limbs(acc))
}

/// Plain binary (left-to-right square-and-multiply) exponentiation.
/// Retained as the ablation baseline for the sliding-window bench.
pub fn mod_pow_binary(base: &Natural, exp: &Natural, n: &Natural) -> Result<Natural> {
    let ctx = MontgomeryCtx::new(n)?;
    if exp.is_zero() {
        return Ok(&Natural::one() % n);
    }
    let base_m = ctx.to_mont(&(base % n));
    let mut acc = ctx.one_mont();
    for i in (0..exp.bit_len()).rev() {
        acc = ctx.mont_mul(&acc, &acc);
        if exp.bit(i) {
            acc = ctx.mont_mul(&acc, &base_m);
        }
    }
    Ok(ctx.from_mont(&acc))
}

/// Counts the Montgomery multiplications each method would perform for an
/// exponent of `bits` uniformly-random bits — the `e` vs `log_{2^b} e`
/// comparison the paper makes, used by the ablation bench report.
pub fn expected_mult_counts(bits: u32) -> (f64, f64) {
    // Binary: bits squarings + bits/2 multiplies.
    let binary = bits as f64 + bits as f64 / 2.0;
    // Sliding window w: bits squarings + bits/(w+1) multiplies + 2^(w-1) table.
    let w = window_size_for(bits) as f64;
    let sliding = bits as f64 + bits as f64 / (w + 1.0) + (2f64).powf(w - 1.0);
    (binary, sliding)
}

/// `x^p % n` where `n` may be even: falls back to repeated
/// square-and-multiply with full reductions (no Montgomery domain).
/// Needed for Table-I `mod_pow` on arbitrary moduli.
pub fn mod_pow_any(base: &Natural, exp: &Natural, n: &Natural) -> Result<Natural> {
    if n.is_zero() {
        return Err(Error::DivisionByZero);
    }
    if n.is_odd() {
        return mod_pow(base, exp, n);
    }
    let mut acc = &Natural::one() % n;
    let mut b = base % n;
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            acc = &(&acc * &b) % n;
        }
        if i + 1 < exp.bit_len() {
            b = &(&b * &b) % n;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_exponent_gives_one() {
        assert_eq!(mod_pow(&n(5), &n(0), &n(7)).unwrap(), n(1));
        assert_eq!(mod_pow(&n(0), &n(0), &n(7)).unwrap(), n(1));
        assert_eq!(mod_pow_any(&n(5), &n(0), &n(8)).unwrap(), n(1));
    }

    #[test]
    fn matches_u128_reference() {
        fn pow_ref(mut b: u128, mut e: u128, m: u128) -> u128 {
            let mut acc = 1u128 % m;
            b %= m;
            while e > 0 {
                if e & 1 == 1 {
                    acc = acc * b % m;
                }
                b = b * b % m;
                e >>= 1;
            }
            acc
        }
        let m = 1_000_000_007u128; // fits: products stay under 2^60
        for (b, e) in [
            (2u128, 10u128),
            (3, 1_000_000),
            (999_999_999, 12345),
            (7, 1),
        ] {
            assert_eq!(
                mod_pow(&n(b), &n(e), &n(m)).unwrap(),
                n(pow_ref(b, e, m)),
                "{b}^{e} mod {m}"
            );
        }
    }

    #[test]
    fn sliding_window_matches_binary() {
        let p = (1u128 << 127) - 1;
        let cases = [
            (3u128, (1u128 << 90) + 12345),
            (p - 2, p - 1),
            (65537, 0xFFFF_FFFF),
        ];
        for (b, e) in cases {
            assert_eq!(
                mod_pow(&n(b), &n(e), &n(p)).unwrap(),
                mod_pow_binary(&n(b), &n(e), &n(p)).unwrap(),
                "{b}^{e}"
            );
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p, a not divisible by p.
        let p = (1u128 << 127) - 1;
        for a in [2u128, 3, 0xDEAD_BEEF] {
            assert_eq!(mod_pow(&n(a), &n(p - 1), &n(p)).unwrap(), n(1));
        }
    }

    #[test]
    fn even_modulus_fallback() {
        assert_eq!(mod_pow_any(&n(3), &n(5), &n(100)).unwrap(), n(243 % 100));
        assert_eq!(mod_pow_any(&n(2), &n(10), &n(1 << 20)).unwrap(), n(1024));
        // Odd modulus routes through Montgomery and agrees.
        assert_eq!(
            mod_pow_any(&n(3), &n(100), &n(101)).unwrap(),
            mod_pow(&n(3), &n(100), &n(101)).unwrap()
        );
    }

    #[test]
    fn even_modulus_rejected_by_montgomery_path() {
        assert!(mod_pow(&n(3), &n(5), &n(100)).is_err());
        assert!(mod_pow_any(&n(3), &n(5), &n(0)).is_err());
    }

    #[test]
    fn unreduced_base_is_reduced_first() {
        assert_eq!(
            mod_pow(&n(1000), &n(3), &n(7)).unwrap(),
            n(1000u128.pow(3) % 7)
        );
    }

    #[test]
    fn ct_ladder_matches_sliding_window() {
        let p = (1u128 << 127) - 1;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let cases = [
            (3u128, (1u128 << 90) + 12345),
            (p - 2, p - 1),
            (65537, 0xFFFF_FFFF),
            (0xDEAD_BEEF, 1),
            (42, 0),
        ];
        for (b, e) in cases {
            let exp = n(e);
            let got = mod_pow_ct(&ctx, &n(b), &exp, exp.bit_len().max(1));
            assert_eq!(got, mod_pow_ctx(&ctx, &n(b), &exp), "{b}^{e} ct ladder");
        }
    }

    #[test]
    fn ct_ladder_padding_does_not_change_result() {
        // Running the ladder over a wider public bound (leading zero bits)
        // must not change the value — only the step count.
        let p = 1_000_000_007u128;
        let ctx = MontgomeryCtx::new(&n(p)).unwrap();
        let exp = n(0xAB_CDEF);
        let reference = mod_pow_ctx(&ctx, &n(12345), &exp);
        for bits in [exp.bit_len(), exp.bit_len() + 1, 64, 130] {
            assert_eq!(
                mod_pow_ct(&ctx, &n(12345), &exp, bits),
                reference,
                "{bits}-bit ladder"
            );
        }
    }

    #[test]
    fn ct_ladder_zero_bits_gives_one() {
        let ctx = MontgomeryCtx::new(&n(101)).unwrap();
        assert_eq!(mod_pow_ct(&ctx, &n(7), &n(0), 0), n(1));
    }

    #[test]
    fn window_sizes_monotone() {
        let mut last = 0;
        for bits in [1u32, 10, 50, 100, 500, 1024, 4096] {
            let w = window_size_for(bits);
            assert!(
                w >= last,
                "window size should not shrink with exponent size"
            );
            last = w;
        }
    }

    #[test]
    fn sliding_beats_binary_in_expected_ops() {
        for bits in [256u32, 1024, 2048, 4096] {
            let (bin, slide) = expected_mult_counts(bits);
            assert!(slide < bin, "{bits}-bit: sliding {slide} !< binary {bin}");
        }
    }

    #[test]
    fn large_exponent_exercises_multiple_windows() {
        // 1024-bit modulus-sized exponent against both implementations.
        let p_hex = "f".repeat(32); // 128-bit all-ones = 2^128 - 1 (odd)
        let m = Natural::from_hex(&p_hex).unwrap();
        let e = Natural::from_hex(&"a5".repeat(16)).unwrap();
        let b = n(0x1234_5678_9ABC_DEF0);
        assert_eq!(
            mod_pow(&b, &e, &m).unwrap(),
            mod_pow_binary(&b, &e, &m).unwrap()
        );
    }
}
