//! Conversions between [`Natural`] and primitive integers, byte strings,
//! and hex/decimal text.
//!
//! The FLBooster pipeline (paper Fig. 4, "data conversion") moves values
//! between the FL framework's float/integer domain and the multi-precision
//! domain at the boundary of every encryption/decryption call; these are
//! the conversions it uses.

// flcheck: allow-file(pf-index) — byte/limb indices derive from the
// lengths computed in the same expression (`i / LIMB_BYTES` over
// `bytes.len()`-sized buffers).

use crate::limb::{Limb, LIMB_BYTES};
use crate::natural::Natural;
use crate::{Error, Result};

impl Natural {
    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limb_len() {
            0 => Some(0),
            1 => Some(self.limbs()[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limb_len() {
            0 => Some(0),
            1 => Some(self.limbs()[0] as u128),
            2 => Some(self.limbs()[0] as u128 | (self.limbs()[1] as u128) << 64),
            _ => None,
        }
    }

    /// Low 64 bits regardless of magnitude.
    pub fn low_u64(&self) -> u64 {
        self.limbs().first().copied().unwrap_or(0)
    }

    /// Serializes to little-endian bytes with no trailing zeros
    /// (the wire format counted by the communication simulator).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limb_len() * LIMB_BYTES);
        for l in self.limbs() {
            out.extend_from_slice(&l.to_le_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Parses from little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8]) -> Natural {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(LIMB_BYTES));
        for chunk in bytes.chunks(LIMB_BYTES) {
            let mut buf = [0u8; LIMB_BYTES];
            buf[..chunk.len()].copy_from_slice(chunk);
            limbs.push(Limb::from_le_bytes(buf));
        }
        Natural::from_limbs(limbs)
    }

    /// Lowercase big-endian hex, no leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limb_len() * 16);
        let mut iter = self.limbs().iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&format!("{top:x}"));
        }
        for l in iter {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Parses big-endian hex (case-insensitive, no prefix).
    pub fn from_hex(s: &str) -> Result<Natural> {
        if s.is_empty() {
            return Err(Error::Parse {
                radix: 16,
                position: None,
            });
        }
        let mut v = Natural::zero();
        for (i, c) in s.bytes().enumerate() {
            let d = (c as char).to_digit(16).ok_or(Error::Parse {
                radix: 16,
                position: Some(i),
            })?;
            v = v.shl_bits(4);
            if d != 0 {
                v.add_assign_ref(&Natural::from(d as u64));
            }
        }
        Ok(v)
    }

    /// Decimal rendering (division by 10^19 chunks).
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        const CHUNK: Limb = 10_000_000_000_000_000_000; // 10^19 < 2^64
        let mut rest = self.clone();
        let mut parts: Vec<Limb> = Vec::new();
        while !rest.is_zero() {
            let (q, r) = rest.div_rem_small(CHUNK);
            parts.push(r);
            rest = q;
        }
        let mut s = String::with_capacity(parts.len() * 19);
        let mut iter = parts.iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&top.to_string());
        }
        for p in iter {
            s.push_str(&format!("{p:019}"));
        }
        s
    }

    /// Parses a decimal string.
    pub fn from_decimal_str(s: &str) -> Result<Natural> {
        if s.is_empty() {
            return Err(Error::Parse {
                radix: 10,
                position: None,
            });
        }
        let mut v = Natural::zero();
        for (i, c) in s.bytes().enumerate() {
            let d = (c as char).to_digit(10).ok_or(Error::Parse {
                radix: 10,
                position: Some(i),
            })?;
            v = v.mul_add_small(10, d as Limb);
        }
        Ok(v)
    }

    /// Serialized byte length on the wire (what the network simulator
    /// charges per ciphertext; the paper's `L_before`/`L_after` in Eq. 10).
    pub fn wire_size_bytes(&self) -> usize {
        self.to_le_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn u64_u128_roundtrip() {
        assert_eq!(Natural::zero().to_u64(), Some(0));
        assert_eq!(n(42).to_u64(), Some(42));
        assert_eq!(n(u128::MAX).to_u64(), None);
        assert_eq!(n(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(n(u128::MAX).shl_bits(1).to_u128(), None);
    }

    #[test]
    fn le_bytes_roundtrip() {
        for v in [0u128, 1, 255, 256, u64::MAX as u128, u128::MAX] {
            let x = n(v);
            assert_eq!(Natural::from_le_bytes(&x.to_le_bytes()), x, "{v}");
        }
    }

    #[test]
    fn le_bytes_no_trailing_zeros() {
        assert_eq!(n(1).to_le_bytes(), vec![1]);
        assert_eq!(n(256).to_le_bytes(), vec![0, 1]);
        assert!(Natural::zero().to_le_bytes().is_empty());
    }

    #[test]
    fn hex_roundtrip() {
        for v in [0u128, 0xF, 0x10, 0xDEAD_BEEF, u128::MAX] {
            let x = n(v);
            assert_eq!(Natural::from_hex(&x.to_hex()).unwrap(), x);
            assert_eq!(x.to_hex(), format!("{v:x}"));
        }
    }

    #[test]
    fn hex_rejects_bad_digit() {
        assert_eq!(
            Natural::from_hex("12g4").unwrap_err(),
            Error::Parse {
                radix: 16,
                position: Some(2)
            }
        );
        assert_eq!(
            Natural::from_hex("").unwrap_err(),
            Error::Parse {
                radix: 16,
                position: None
            }
        );
    }

    #[test]
    fn decimal_roundtrip() {
        for v in [0u128, 9, 10, 12345, u64::MAX as u128, u128::MAX] {
            let x = n(v);
            assert_eq!(x.to_decimal_string(), v.to_string());
            assert_eq!(Natural::from_decimal_str(&v.to_string()).unwrap(), x);
        }
    }

    #[test]
    fn decimal_large_roundtrip() {
        let s = "9".repeat(100);
        let v = Natural::from_decimal_str(&s).unwrap();
        assert_eq!(v.to_decimal_string(), s);
        // 10^100 - 1 has bit length ceil(100 * log2(10)) = 333
        assert_eq!(v.bit_len(), 333);
    }

    #[test]
    fn decimal_rejects_bad_digit() {
        assert!(Natural::from_decimal_str("12a").is_err());
        assert!(Natural::from_decimal_str("").is_err());
    }

    #[test]
    fn wire_size_grows_with_magnitude() {
        assert_eq!(Natural::zero().wire_size_bytes(), 0);
        assert_eq!(n(255).wire_size_bytes(), 1);
        assert_eq!(n(u64::MAX as u128).wire_size_bytes(), 8);
        assert_eq!(n(u128::MAX).wire_size_bytes(), 16);
    }
}
