//! Umbrella crate for the FLBooster workspace.
//!
//! This crate exists so that the repository root can host cross-crate
//! integration tests (in `tests/`) and runnable examples (in `examples/`).
//! The actual library surface lives in the member crates:
//!
//! - [`mpint`] — multi-precision integer arithmetic (limb representation,
//!   Montgomery/CIOS kernels, sliding-window exponentiation, prime
//!   generation).
//! - [`gpu_sim`] — the GPU execution-model simulator and resource manager.
//! - [`he`] — Paillier and RSA cryptosystems plus the GPU-HE batch layer.
//! - [`codec`] — encoding-quantization and batch compression.
//! - [`flbooster_core`] — the FLBooster platform: Table-I APIs, pipelines,
//!   and the theoretical-analysis module.
//! - [`fl`] — the federated-learning substrate: datasets, models, trainers,
//!   the network simulator, and the FATE/HAFLO/FLBooster backends.

pub use codec;
pub use fl;
pub use flbooster_core;
pub use gpu_sim;
pub use he;
pub use mpint;
