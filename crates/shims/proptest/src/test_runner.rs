//! Test configuration and the deterministic per-test rng.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Subset of proptest's config: number of accepted cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases that must pass (after `prop_assume!` rejections).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` rejections.
#[derive(Debug)]
pub struct CaseRejected;

/// Deterministic rng used for every strategy draw in one `#[test]`.
///
/// Seeded by FNV-1a over the fully qualified test name: stable across
/// runs and processes, different per test.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl TestRng {
    /// Rng for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: ChaCha8Rng::seed_from_u64(hash),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
}
