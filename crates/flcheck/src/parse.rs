//! Item-level parser: function items with signatures and the call
//! expressions inside their bodies.
//!
//! This is deliberately **not** a Rust grammar. The interprocedural passes
//! ([`crate::callgraph`], [`crate::taint`]) need exactly three things from
//! each file — which functions exist (name, visibility, parameters,
//! `ct-fn` / `secret(..)` markers), where their bodies are, and which
//! calls each body makes with which argument spans — and a token-walking
//! extractor over [`SourceFile`] recovers all of that without `syn`.
//!
//! Known, documented approximations:
//!
//! - Turbofish calls (`collect::<Vec<_>>()`) are not recorded as calls.
//! - Closures are not items; their bodies (and calls) belong to the
//!   enclosing `fn`, and closure parameters may shadow outer names.
//! - Calls inside `debug_assert*!` are dropped: the macro is compiled out
//!   of release builds, so it can neither panic in production nor leak
//!   timing.

use crate::lexer::{TokKind, Token};
use crate::source::{match_brace, SourceFile};

/// Rust keywords that can directly precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "dyn", "where", "unsafe", "pub", "use", "mod",
    "struct", "enum", "trait", "const", "static", "type", "crate", "super", "self", "Self",
];

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: the identifier directly before the argument list
    /// (the last path segment for `a::b::f(..)`).
    pub callee: String,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Token index of the callee identifier.
    pub name_idx: usize,
    /// `recv.callee(..)` (a method call) vs `callee(..)` / `path::callee(..)`.
    pub is_method: bool,
    /// Token range `[start, end)` of the receiver chain, for method calls.
    pub recv: Option<(usize, usize)>,
    /// Token ranges `[start, end)` of each argument (top-level commas).
    pub args: Vec<(usize, usize)>,
}

/// A function item with everything the graph passes need.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Unrestricted `pub` (`pub(crate)` and friends do not count).
    pub is_pub: bool,
    /// Marked `// flcheck: ct-fn`.
    pub is_ct: bool,
    /// First parameter is `self` (an inherent/trait method).
    pub is_method: bool,
    /// Lives inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Parameter names in order (`self` included when present).
    pub params: Vec<String>,
    /// Names marked secret by `// flcheck: secret(..)`.
    pub secrets: Vec<String>,
    /// Locks this fn acquires for its whole body (`// flcheck: lock(..)`).
    pub locks: Vec<String>,
    /// Marked `// flcheck: mac-prim` (performs Montgomery MACs).
    pub is_mac_prim: bool,
    /// Marked `// flcheck: charge-sink` (records simulated-time cost).
    pub is_charge_sink: bool,
    /// `// flcheck: estimates(kernel, arity)` pairings.
    pub estimates: Vec<(String, usize)>,
    /// Marked `// flcheck: det-sink` (produces result bytes that must be
    /// deterministic at any thread count).
    pub is_det_sink: bool,
    /// Marked `// flcheck: det-absorb` (measures nondeterminism without
    /// letting it reach result bytes).
    pub is_det_absorb: bool,
    /// `// flcheck: nondet(..)` descriptions: opaque nondeterminism
    /// sources the token scan cannot see.
    pub nondets: Vec<String>,
    /// Token index range `[body_start, body_end)` of the body (inside the
    /// braces).
    pub body_start: usize,
    /// End of the body range (one past the closing brace).
    pub body_end: usize,
    /// Body sub-ranges that belong to *nested* `fn` items (skipped when
    /// scanning this fn's own statements).
    pub nested: Vec<(usize, usize)>,
    /// Calls made by this fn's own statements (nested fns excluded,
    /// `debug_assert*!` spans excluded).
    pub calls: Vec<CallSite>,
}

/// A file after item-level parsing.
#[derive(Debug)]
pub struct ParsedFile {
    /// The underlying lexed/analyzed source.
    pub src: SourceFile,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    /// Parses one file (lex + directives + item extraction).
    pub fn parse(rel_path: &str, text: &str) -> ParsedFile {
        let src = SourceFile::parse(rel_path, text);
        let mut fns = Vec::new();
        for (idx, span) in src.fns.iter().enumerate() {
            let nested: Vec<(usize, usize)> = src
                .fns
                .iter()
                .enumerate()
                .filter(|(j, g)| {
                    *j != idx && g.body_start >= span.body_start && g.body_end <= span.body_end
                })
                .map(|(_, g)| (g.body_start, g.body_end))
                .collect();
            let (params, is_method) = parse_params(&src.tokens, span.line, span.body_start);
            fns.push(FnItem {
                name: span.name.clone(),
                line: span.line,
                is_pub: is_public(&src.tokens, span.line, span.body_start),
                is_ct: span.is_ct,
                is_method,
                in_test: src.in_test_region(span.body_start),
                params,
                secrets: span.secrets.clone(),
                locks: span.locks.clone(),
                is_mac_prim: span.is_mac_prim,
                is_charge_sink: span.is_charge_sink,
                estimates: span.estimates.clone(),
                is_det_sink: span.is_det_sink,
                is_det_absorb: span.is_det_absorb,
                nondets: span.nondets.clone(),
                body_start: span.body_start,
                body_end: span.body_end,
                nested,
                calls: Vec::new(),
            });
        }
        for f in &mut fns {
            f.calls = collect_calls(&src.tokens, f.body_start, f.body_end, &f.nested);
        }
        ParsedFile { src, fns }
    }
}

/// Locates the `fn` keyword token for the fn whose body starts at
/// `body_start`, then decides visibility: a bare `pub` immediately before
/// it (skipping `const` / `unsafe` / `async` / `extern "..."`).
fn is_public(toks: &[Token], fn_line: u32, body_start: usize) -> bool {
    // Find the `fn` keyword: last `fn` ident before the body on the fn line.
    let mut fn_idx = None;
    for (i, t) in toks[..body_start].iter().enumerate().rev() {
        if t.is_ident("fn") && t.line == fn_line {
            fn_idx = Some(i);
            break;
        }
    }
    let Some(mut k) = fn_idx else { return false };
    while k > 0 {
        let prev = &toks[k - 1];
        match prev.kind {
            TokKind::Ident if matches!(prev.text.as_str(), "const" | "unsafe" | "async") => k -= 1,
            TokKind::Lit => k -= 1, // the ABI string of `extern "C"`
            TokKind::Ident if prev.text == "extern" => k -= 1,
            TokKind::Close if prev.text == ")" => {
                // `pub(crate)` / `pub(super)`: restricted, not public.
                return false;
            }
            TokKind::Ident if prev.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Parses the parameter list of the fn whose body starts at `body_start`:
/// finds the signature's `(` by scanning forward from the `fn` keyword
/// over the generic list, then takes the first binding-position identifier
/// of each top-level comma group.
fn parse_params(toks: &[Token], fn_line: u32, body_start: usize) -> (Vec<String>, bool) {
    // Locate the `fn` keyword (same back-scan as `is_public`), then walk
    // forward: the parameter list is the first `(` outside the generic
    // angle brackets — a back-scan from the body brace would stop at a
    // parenthesized return type like `-> (u64, u64)` instead.
    let mut fn_idx = None;
    for (i, t) in toks[..body_start.min(toks.len())].iter().enumerate().rev() {
        if t.is_ident("fn") && t.line == fn_line {
            fn_idx = Some(i);
            break;
        }
    }
    let Some(fi) = fn_idx else {
        return (Vec::new(), false);
    };
    let mut angle = 0i32;
    let mut open = None;
    for (i, t) in toks.iter().enumerate().take(body_start).skip(fi + 1) {
        match t.kind {
            TokKind::Op if t.text == "<" || t.text == "<=" => angle += 1,
            TokKind::Op if t.text == "<<" => angle += 2,
            TokKind::Op if t.text == ">" || t.text == ">=" => angle -= 1,
            TokKind::Op if t.text == ">>" => angle -= 2,
            TokKind::Open if t.text == "(" && angle <= 0 => {
                open = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return (Vec::new(), false);
    };
    let end = match_brace(toks, open); // one past `)`
    let inner = &toks[open + 1..end.saturating_sub(1)];
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut group_start = 0usize;
    let flush = |range: &[Token], params: &mut Vec<String>| {
        for t in range {
            if t.kind == TokKind::Ident {
                if matches!(t.text.as_str(), "mut" | "ref") {
                    continue;
                }
                // Uppercase identifiers are enum/struct patterns, not names.
                if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
                    continue;
                }
                params.push(t.text.clone());
                return;
            }
        }
    };
    for (i, t) in inner.iter().enumerate() {
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if t.text == "," && depth == 0 => {
                flush(&inner[group_start..i], &mut params);
                group_start = i + 1;
            }
            _ => {}
        }
    }
    if group_start < inner.len() {
        flush(&inner[group_start..], &mut params);
    }
    let is_method = params.first().is_some_and(|p| p == "self");
    (params, is_method)
}

/// Collects call sites in `[start, end)`, skipping nested-fn ranges and
/// `debug_assert*!` spans.
fn collect_calls(
    toks: &[Token],
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if let Some(&(_, nend)) = nested.iter().find(|&&(ns, ne)| i >= ns && i < ne) {
            i = nend;
            continue;
        }
        if let Some(skip) = crate::rules::debug_assert_span(toks, i) {
            i = skip;
            continue;
        }
        let t = &toks[i];
        let is_call = t.kind == TokKind::Ident
            && !KEYWORDS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && !(i > 0 && toks[i - 1].is_ident("fn"));
        if !is_call {
            i += 1;
            continue;
        }
        // `name!(..)` is a macro, not a call — but its arguments are still
        // scanned (the walk continues into the group).
        let close = match_brace(toks, i + 1);
        let is_method = i > 0 && toks[i - 1].is_op(".");
        let recv = if is_method {
            receiver_range(toks, i).map(|s| (s, i - 1))
        } else {
            None
        };
        calls.push(CallSite {
            callee: t.text.clone(),
            line: t.line,
            name_idx: i,
            is_method,
            recv,
            args: split_args(toks, i + 2, close.saturating_sub(1)),
        });
        i += 1; // keep scanning inside the argument list for nested calls
    }
    calls
}

/// Splits `[start, end)` (the inside of an argument list) on top-level
/// commas, returning non-empty ranges.
fn split_args(toks: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = start;
    for i in start..end.min(toks.len()) {
        match toks[i].kind {
            TokKind::Open => depth += 1,
            TokKind::Close => depth -= 1,
            TokKind::Op if toks[i].text == "," && depth == 0 => {
                if i > arg_start {
                    out.push((arg_start, i));
                }
                arg_start = i + 1;
            }
            _ => {}
        }
    }
    if end > arg_start {
        out.push((arg_start, end));
    }
    out
}

/// Walks back from the `.` before a method name over the receiver chain
/// (`a.b(x).c[i].norm()` → index of `a`), returning the chain's start
/// index.
fn receiver_range(toks: &[Token], method_idx: usize) -> Option<usize> {
    let mut k = method_idx.checked_sub(2)?; // token before the `.`
    let mut start;
    loop {
        match toks[k].kind {
            TokKind::Close => {
                // Jump back over the balanced group (`(..)` / `[..]`).
                let mut depth = 0i32;
                loop {
                    match toks[k].kind {
                        TokKind::Close => depth += 1,
                        TokKind::Open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k = k.checked_sub(1)?;
                }
                start = k;
            }
            TokKind::Ident | TokKind::Num | TokKind::Lit => start = k,
            TokKind::Op if toks[k].text == "?" => {
                // `foo()?.bar()`: the `?` is postfix, keep walking left.
                k = k.checked_sub(1)?;
                continue;
            }
            _ => return None,
        }
        let Some(p) = k.checked_sub(1) else {
            return Some(start);
        };
        let prev = &toks[p];
        if prev.is_op(".") || prev.is_op("::") {
            // `recv.field` / `Path::item`: skip the separator and the
            // segment to its left is part of the chain.
            match p.checked_sub(1) {
                Some(pp) => k = pp,
                None => return Some(start),
            }
        } else if toks[k].kind == TokKind::Open
            && matches!(prev.kind, TokKind::Ident | TokKind::Close)
            && !KEYWORDS.contains(&prev.text.as_str())
        {
            // `name(..)` call or `base[..]` index: the base continues the
            // chain directly, no separator.
            k = p;
        } else {
            return Some(start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/core/src/x.rs", src)
    }

    #[test]
    fn signatures_params_and_visibility() {
        let src = "\
pub fn free(a: u64, mut b: &[u8]) -> u64 { a }
pub(crate) fn scoped(x: u8) {}
impl T {
    pub fn method(&self, count: usize) -> u8 { 0 }
    fn helper<R: Rng + ?Sized>(rng: &mut R, bits: u32) {}
}
";
        let p = parsed(src);
        let names: Vec<(&str, bool, bool, Vec<&str>)> = p
            .fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.is_pub,
                    f.is_method,
                    f.params.iter().map(|s| s.as_str()).collect(),
                )
            })
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", true, false, vec!["a", "b"]),
                ("scoped", false, false, vec!["x"]),
                ("method", true, true, vec!["self", "count"]),
                ("helper", false, false, vec!["rng", "bits"]),
            ]
        );
    }

    #[test]
    fn tuple_return_type_does_not_confuse_params() {
        let p = parsed("fn pair(lo: u64, hi: u64) -> (u64, u64) { (lo, hi) }");
        assert_eq!(p.fns[0].params, vec!["lo", "hi"]);
    }

    #[test]
    fn calls_free_path_method_and_macro() {
        let src = "\
fn f(v: &[u8]) {
    helper(v);
    crate::util::norm(v, 2);
    v.first();
    vec![1, 2];
    g(h(v));
}
";
        let p = parsed(src);
        let calls: Vec<(&str, bool)> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.is_method))
            .collect();
        // `vec!` is a macro (no `(`-follow on the bang pattern — `vec![`),
        // nested `h(v)` is its own call.
        assert_eq!(
            calls,
            vec![
                ("helper", false),
                ("norm", false),
                ("first", true),
                ("g", false),
                ("h", false),
            ]
        );
    }

    #[test]
    fn call_args_split_on_top_level_commas() {
        let p = parsed("fn f() { g(a, h(b, c), d + e); }");
        let g = &p.fns[0].calls[0];
        assert_eq!(g.callee, "g");
        assert_eq!(g.args.len(), 3);
        let arg_texts: Vec<String> = g
            .args
            .iter()
            .map(|&(s, e)| {
                p.src.tokens[s..e]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        assert_eq!(arg_texts, vec!["a", "h ( b , c )", "d + e"]);
    }

    #[test]
    fn method_receiver_chain_is_recovered() {
        let p = parsed("fn f(x: &T) { x.inner().data[0].norm(); }");
        let norm = p.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "norm")
            .expect("norm");
        let (s, e) = norm.recv.expect("receiver");
        let text: Vec<&str> = p.src.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            text,
            vec!["x", ".", "inner", "(", ")", ".", "data", "[", "0", "]"]
        );
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_fn() {
        let src = "fn outer() { fn inner() { deep(); } inner(); }";
        let p = parsed(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        let outer_calls: Vec<&str> = outer.calls.iter().map(|c| c.callee.as_str()).collect();
        let inner_calls: Vec<&str> = inner.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(outer_calls, vec!["inner"]);
        assert_eq!(inner_calls, vec!["deep"]);
    }

    #[test]
    fn debug_assert_calls_are_dropped() {
        let p = parsed("fn f(x: u64) { debug_assert!(x.leaky() == probe(x)); real(x); }");
        let calls: Vec<&str> = p.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(calls, vec!["real"]);
    }

    #[test]
    fn test_region_fns_are_flagged() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { lib(); }
}
";
        let p = parsed(src);
        assert!(!p.fns.iter().find(|f| f.name == "lib").unwrap().in_test);
        assert!(p.fns.iter().find(|f| f.name == "t").unwrap().in_test);
    }
}
