//! **Parallel-efficiency benchmark**: wall-clock of GPU-sim HE batch
//! launches as the host thread pool widens, with a bit-identical output
//! check across every thread count.
//!
//! The rayon shim runs kernel bodies on a real work-stealing pool, so a
//! batch encryption's wall-clock should drop near-linearly with workers
//! on a multi-core host while the ciphertexts stay byte-for-byte
//! identical (per-item blinding is derived from the batch seed, never
//! from scheduling order). This harness measures exactly that and writes
//! `results/bench_summary.json` for the CI gate.
//!
//! On a single-core host every pool width collapses to one worker, so
//! the speedup column is only meaningful when `host_parallelism > 1`
//! (recorded in the JSON so downstream checks can condition on it).
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin bench_parallel -- \
//!     [--items 256] [--keys 1024] [--threads 1,4] [--out results/bench_summary.json]
//! ```

use std::sync::Arc;
use std::time::Instant;

use flbooster_bench::table::Table;
use flbooster_bench::{shared_keys, Args};
use gpu_sim::{Device, DeviceConfig};
use he::{GpuHe, HeBackend};
use mpint::Natural;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic plaintexts below `n`: 64-bit quantized gradient words,
/// the shape the FL layer feeds the HE batch API.
fn plaintexts(items: usize) -> Vec<Natural> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBE9C_4_EAC);
    (0..items).map(|_| Natural::from(rng.next_u64())).collect()
}

struct Run {
    threads: usize,
    pool_threads: usize,
    wall_seconds: f64,
    identical: bool,
}

struct OpResult {
    op: &'static str,
    runs: Vec<Run>,
}

/// Times `body` inside a pool of `threads` workers, returning the result,
/// the wall-clock, and the pool width the shim actually reported.
// flcheck: det-absorb — pure stopwatch/pool-width wrapper: the closure's
// result passes through untouched; wall-clock and width feed Run metadata only
fn timed_in_pool<T>(threads: usize, body: impl FnOnce() -> T + Send) -> (T, f64, usize)
where
    T: Send,
{
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build");
    pool.install(|| {
        let pool_threads = rayon::current_num_threads();
        let start = Instant::now();
        let out = body();
        (out, start.elapsed().as_secs_f64(), pool_threads)
    })
}

fn main() {
    let args = Args::parse();
    let items: usize = args
        .get("items")
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let key_bits = *args.key_sizes_or(&[1024]).first().unwrap_or(&1024);
    let out_path = args
        .get("out")
        .unwrap_or("results/bench_summary.json")
        .to_string();
    // Host width is environment metadata in the summary JSON; digests
    // never read it.
    // flcheck: allow(nondet-in-result)
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts: Vec<usize> = match args.get("threads") {
        Some(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        None => {
            let mut t = vec![1, 4];
            if host > 4 {
                t.push(host);
            }
            t
        }
    };

    println!("Parallel efficiency — {items} items, {key_bits}-bit keys, host parallelism {host}\n");
    let keys = shared_keys(key_bits);
    let (pk, sk) = (&keys.public, &keys.private);
    let ms = plaintexts(items);
    let seed = 0x5EED_CAFE;

    let mut ops: Vec<OpResult> = Vec::new();
    let mut table = Table::new(["Op", "Threads", "Wall (s)", "Speedup", "Identical"]);

    for op in ["encrypt", "decrypt", "add"] {
        // Baseline inputs computed once at one thread: the reference
        // outputs every wider pool must reproduce bit-for-bit.
        let base_ct = {
            let device = Arc::new(Device::new(DeviceConfig::rtx3090()));
            let ghe = GpuHe::new(device);
            ghe.encrypt_batch(pk, &ms, seed).expect("encrypt").0
        };
        let mut runs = Vec::new();
        let mut reference: Option<Vec<u8>> = None;
        for &threads in &thread_counts {
            // A fresh device per run keeps stats and wall-clock isolated.
            let device = Arc::new(Device::new(DeviceConfig::rtx3090()));
            let ghe = GpuHe::new(device);
            let (digest, wall, pool_threads) = match op {
                "encrypt" => {
                    let (r, wall, pt) = timed_in_pool(threads, || ghe.encrypt_batch(pk, &ms, seed));
                    let cts = r.expect("encrypt").0;
                    (digest_cts(&cts), wall, pt)
                }
                "decrypt" => {
                    let (r, wall, pt) = timed_in_pool(threads, || ghe.decrypt_batch(sk, &base_ct));
                    let pts = r.expect("decrypt").0;
                    (digest_nats(&pts), wall, pt)
                }
                _ => {
                    let (r, wall, pt) =
                        timed_in_pool(threads, || ghe.add_batch(pk, &base_ct, &base_ct));
                    let cts = r.expect("add").0;
                    (digest_cts(&cts), wall, pt)
                }
            };
            let identical = match &reference {
                None => {
                    reference = Some(digest);
                    true
                }
                Some(base) => *base == digest,
            };
            runs.push(Run {
                threads,
                pool_threads,
                wall_seconds: wall,
                identical,
            });
        }
        let base_wall = runs.first().map(|r| r.wall_seconds).unwrap_or(0.0);
        for r in &runs {
            let speedup = if r.wall_seconds > 0.0 {
                base_wall / r.wall_seconds
            } else {
                1.0
            };
            table.row([
                op.to_string(),
                r.threads.to_string(),
                format!("{:.4}", r.wall_seconds),
                format!("{speedup:.2}x"),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        ops.push(OpResult { op, runs });
    }
    table.print();

    let all_identical = ops.iter().all(|o| o.runs.iter().all(|r| r.identical));
    assert!(
        all_identical,
        "outputs must be bit-identical across thread counts"
    );

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_parallelism\": {host},\n"));
    json.push_str(&format!("  \"key_bits\": {key_bits},\n"));
    json.push_str(&format!("  \"items\": {items},\n"));
    json.push_str(&format!(
        "  \"bit_identical_across_threads\": {all_identical},\n"
    ));
    json.push_str("  \"ops\": [\n");
    for (i, o) in ops.iter().enumerate() {
        let base_wall = o.runs.first().map(|r| r.wall_seconds).unwrap_or(0.0);
        json.push_str(&format!("    {{\"op\": \"{}\", \"runs\": [", o.op));
        for (j, r) in o.runs.iter().enumerate() {
            let speedup = if r.wall_seconds > 0.0 {
                base_wall / r.wall_seconds
            } else {
                1.0
            };
            json.push_str(&format!(
                "{{\"threads\": {}, \"pool_threads\": {}, \"wall_seconds\": {:.6}, \"speedup_vs_1\": {:.3}}}",
                r.threads, r.pool_threads, r.wall_seconds, speedup
            ));
            if j + 1 < o.runs.len() {
                json.push_str(", ");
            }
        }
        json.push_str("]}");
        json.push_str(if i + 1 < ops.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out_path, &json).expect("write summary");
    println!("\nWrote {out_path}");
    if host == 1 {
        println!("Host is single-core: speedups are expected to be ~1x here.");
    }
}

// flcheck: det-sink — digest bytes gate cross-thread-count determinism
fn digest_cts(cts: &[he::paillier::Ciphertext]) -> Vec<u8> {
    // Concatenated limb bytes are a faithful identity for the bitwise
    // comparison; ordering is part of the contract.
    let mut out = Vec::new();
    for c in cts {
        for &l in c.value.limbs() {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.push(0xFF);
    }
    out
}

// flcheck: det-sink — digest bytes gate cross-thread-count determinism
fn digest_nats(ns: &[Natural]) -> Vec<u8> {
    let mut out = Vec::new();
    for n in ns {
        for &l in n.limbs() {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.push(0xFF);
    }
    out
}
