//! Workspace call graph and the interprocedural panic-propagation pass.
//!
//! [`CallGraph::build`] resolves every [`crate::parse::CallSite`] against
//! the `fn` items of all parsed files by name: method calls (`x.f(..)`)
//! resolve to `self`-taking fns, free calls to the rest (falling back to
//! methods for UFCS `Type::method(x)` paths), same-file candidates win
//! over cross-file ones, and non-test candidates win over test helpers.
//! Unresolvable names (std/core, shims outside the scan set) simply have
//! no edge — the graph is a *may-call* over-approximation restricted to
//! first-party code.
//!
//! [`check_reach`] closes the existing panic-freedom facts over that
//! graph: a public fn in a panic-freedom crate whose transitive callees
//! contain an unallowed `pf-*` site is flagged `pf-reach`, carrying the
//! full call chain in the finding. The walk is a breadth-first search
//! with a visited set, so recursive cycles terminate and reported chains
//! are shortest paths.

use crate::parse::ParsedFile;
use crate::report::Finding;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Node id: (file index, fn index) into the parsed-file slice.
pub type NodeId = (usize, usize);

/// One resolved call edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Index into the caller's `FnItem::calls`.
    pub call: usize,
    /// Resolved callee.
    pub to: NodeId,
}

/// Workspace call graph over a slice of [`ParsedFile`]s.
#[derive(Debug)]
pub struct CallGraph {
    /// `edges[file][fn]` = resolved out-edges, in call-site order (one
    /// edge per candidate when a name is ambiguous).
    pub edges: Vec<Vec<Vec<Edge>>>,
}

impl CallGraph {
    /// Builds the graph by name resolution over all fn items.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
        for (fi, pf) in files.iter().enumerate() {
            for (gi, f) in pf.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, gi));
            }
        }
        let mut edges = Vec::with_capacity(files.len());
        for (fi, pf) in files.iter().enumerate() {
            let mut file_edges = Vec::with_capacity(pf.fns.len());
            for f in &pf.fns {
                let mut fn_edges = Vec::new();
                for (ci, call) in f.calls.iter().enumerate() {
                    for to in resolve(files, &by_name, fi, call.is_method, &call.callee) {
                        fn_edges.push(Edge { call: ci, to });
                    }
                }
                file_edges.push(fn_edges);
            }
            edges.push(file_edges);
        }
        CallGraph { edges }
    }

    /// Out-edges of one node.
    pub fn out(&self, n: NodeId) -> &[Edge] {
        &self.edges[n.0][n.1]
    }
}

/// Resolves one call by name. Returns every candidate that survives the
/// filters, in (file, fn) order.
fn resolve(
    files: &[ParsedFile],
    by_name: &HashMap<&str, Vec<NodeId>>,
    caller_file: usize,
    is_method: bool,
    callee: &str,
) -> Vec<NodeId> {
    let Some(all) = by_name.get(callee) else {
        return Vec::new();
    };
    let mut cands: Vec<NodeId> = all
        .iter()
        .copied()
        .filter(|&(fi, gi)| files[fi].fns[gi].is_method == is_method)
        .collect();
    if cands.is_empty() && !is_method {
        // `Type::method(x)` — a free-looking path call into a method.
        cands = all.to_vec();
    }
    if cands.iter().any(|&(fi, _)| fi == caller_file) {
        cands.retain(|&(fi, _)| fi == caller_file);
    }
    if cands.iter().any(|&(fi, gi)| !files[fi].fns[gi].in_test) {
        cands.retain(|&(fi, gi)| !files[fi].fns[gi].in_test);
    }
    cands
}

/// Formats one call-chain hop.
pub(crate) fn hop(files: &[ParsedFile], n: NodeId) -> String {
    let f = &files[n.0].fns[n.1];
    format!("{} ({}:{})", f.name, files[n.0].src.rel_path, f.line)
}

/// Backward closure over call edges: every node whose call chain can reach
/// a seed node (seeds included). A monotone fixpoint, so recursive cycles
/// terminate.
pub(crate) fn backward_reach(
    files: &[ParsedFile],
    graph: &CallGraph,
    seed: std::collections::BTreeSet<NodeId>,
) -> std::collections::BTreeSet<NodeId> {
    let mut set = seed;
    loop {
        let mut changed = false;
        for (fi, pf) in files.iter().enumerate() {
            for gi in 0..pf.fns.len() {
                let n = (fi, gi);
                if !set.contains(&n) && graph.out(n).iter().any(|e| set.contains(&e.to)) {
                    set.insert(n);
                    changed = true;
                }
            }
        }
        if !changed {
            return set;
        }
    }
}

/// Shortest call path (BFS) from `start` to the first node satisfying
/// `target`, both endpoints included. Deterministic: edges are visited in
/// call-site order.
pub(crate) fn path_to(
    graph: &CallGraph,
    start: NodeId,
    target: impl Fn(NodeId) -> bool,
) -> Option<Vec<NodeId>> {
    if target(start) {
        return Some(vec![start]);
    }
    let mut pred: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for e in graph.out(n) {
            if e.to == start || pred.contains_key(&e.to) {
                continue;
            }
            pred.insert(e.to, n);
            if target(e.to) {
                let mut path = vec![e.to];
                while let Some(&p) = pred.get(path.last()?) {
                    path.push(p);
                    if p == start {
                        break;
                    }
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(e.to);
        }
    }
    None
}

/// Attributes a finding line to the innermost enclosing fn of a file.
fn enclosing_fn(pf: &ParsedFile, line: u32) -> Option<usize> {
    let mut best: Option<(usize, u32)> = None;
    for (gi, f) in pf.fns.iter().enumerate() {
        let end_line = pf
            .src
            .tokens
            .get(f.body_end.saturating_sub(1))
            .map_or(f.line, |t| t.line);
        if line >= f.line && line <= end_line {
            // Innermost = latest-starting containing fn.
            if best.is_none_or(|(_, l)| f.line >= l) {
                best = Some((gi, f.line));
            }
        }
    }
    best.map(|(gi, _)| gi)
}

/// Interprocedural panic propagation: flags public fns in panic-freedom
/// crates that transitively reach an unallowed panic site, with the call
/// chain. Direct panics are already reported by the intraprocedural
/// `pf-*` rules and seed this pass; `pf-reach` only fires across at
/// least one call edge.
pub fn check_reach(files: &[ParsedFile], graph: &CallGraph, out: &mut Vec<Finding>) {
    // Per-node panic facts from the existing (allow- and test-filtered)
    // intraprocedural pass.
    let mut facts: BTreeMap<NodeId, Vec<Finding>> = BTreeMap::new();
    for (fi, pf) in files.iter().enumerate() {
        if !crate::panic_rules_apply(&pf.src.rel_path) {
            continue;
        }
        let mut direct = Vec::new();
        crate::rules::check_panics(&pf.src, &mut direct);
        for d in direct {
            if let Some(gi) = enclosing_fn(pf, d.line) {
                facts.entry((fi, gi)).or_default().push(d);
            }
        }
    }
    for v in facts.values_mut() {
        v.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    }

    for (fi, pf) in files.iter().enumerate() {
        if !crate::panic_rules_apply(&pf.src.rel_path) {
            continue;
        }
        for (gi, f) in pf.fns.iter().enumerate() {
            if !f.is_pub || f.in_test {
                continue;
            }
            let start: NodeId = (fi, gi);
            // BFS with predecessor tracking; the visited set terminates
            // recursive cycles.
            let mut pred: BTreeMap<NodeId, NodeId> = BTreeMap::new();
            let mut queue: VecDeque<NodeId> = VecDeque::new();
            queue.push_back(start);
            let mut reached: Vec<NodeId> = Vec::new();
            while let Some(n) = queue.pop_front() {
                for e in graph.out(n) {
                    if e.to == start || pred.contains_key(&e.to) {
                        continue;
                    }
                    pred.insert(e.to, n);
                    if facts.contains_key(&e.to) {
                        reached.push(e.to);
                    }
                    queue.push_back(e.to);
                }
            }
            for m in reached {
                // Reconstruct start -> .. -> m.
                let mut path = vec![m];
                while let Some(&p) = pred.get(path.last().unwrap()) {
                    path.push(p);
                    if p == start {
                        break;
                    }
                }
                path.reverse();
                let first_callee = path[1];
                let line = graph
                    .out(start)
                    .iter()
                    .find(|e| e.to == first_callee)
                    .map(|e| pf.fns[gi].calls[e.call].line)
                    .unwrap_or(f.line);
                if pf.src.is_allowed("pf-reach", line) {
                    continue;
                }
                let fact = &facts[&m][0];
                let mut chain: Vec<String> = path.iter().map(|&n| hop(files, n)).collect();
                chain.push(format!("{} ({}:{})", fact.rule, fact.file, fact.line));
                let target = &files[m.0].fns[m.1];
                out.push(Finding::with_chain(
                    "pf-reach",
                    &pf.src.rel_path,
                    line,
                    format!(
                        "public fn `{}` can reach a panic: `{}` has an unallowed `{}` at {}:{} ({} call{} deep)",
                        f.name,
                        target.name,
                        fact.rule,
                        fact.file,
                        fact.line,
                        path.len() - 1,
                        if path.len() - 1 == 1 { "" } else { "s" },
                    ),
                    chain,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Vec<ParsedFile> {
        files.iter().map(|(p, s)| ParsedFile::parse(p, s)).collect()
    }

    fn named_edges(files: &[ParsedFile], g: &CallGraph) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (fi, pf) in files.iter().enumerate() {
            for (gi, f) in pf.fns.iter().enumerate() {
                for e in g.out((fi, gi)) {
                    out.push((f.name.clone(), files[e.to.0].fns[e.to.1].name.clone()));
                }
            }
        }
        out
    }

    #[test]
    fn cross_module_and_method_edges_are_exact() {
        let files = ws(&[
            (
                "crates/core/src/a.rs",
                "pub fn entry(s: &State) { s.step(); helper(1); }\nfn helper(x: u8) {}\n",
            ),
            (
                "crates/core/src/b.rs",
                "impl State { pub fn step(&self) { tick(); } }\nfn tick() {}\nfn helper(y: u8) {}\n",
            ),
        ]);
        let g = CallGraph::build(&files);
        // `helper` exists in both files; the same-file candidate wins, so
        // exactly one `entry -> helper` edge lands in a.rs. `s.step()` is
        // a method call and resolves cross-module to the only self-taking
        // `step`.
        assert_eq!(
            named_edges(&files, &g),
            vec![
                ("entry".to_string(), "step".to_string()),
                ("entry".to_string(), "helper".to_string()),
                ("step".to_string(), "tick".to_string()),
            ]
        );
        let entry_edges = g.out((0, 0));
        assert_eq!(entry_edges[1].to, (0, 1), "same-file helper preferred");
    }

    #[test]
    fn free_calls_do_not_resolve_to_methods() {
        let files = ws(&[(
            "crates/core/src/a.rs",
            "impl T { fn norm(&self) {} }\nfn norm(x: u8) {}\nfn f(x: u8) { norm(x); }\n",
        )]);
        let g = CallGraph::build(&files);
        let edges = named_edges(&files, &g);
        assert_eq!(edges, vec![("f".to_string(), "norm".to_string())]);
        // Resolved to the free fn (index 1), not the method (index 0).
        assert_eq!(g.out((0, 2))[0].to, (0, 1));
    }

    #[test]
    fn recursive_cycle_terminates_and_reports_reach() {
        let files = ws(&[(
            "crates/core/src/cycle.rs",
            "\
pub fn api(n: u32) {
    ping(n);
}
fn ping(n: u32) {
    pong(n);
}
fn pong(n: u32) {
    ping(n);
    boom();
}
fn boom() {
    panic!(\"boom\");
}
",
        )]);
        let g = CallGraph::build(&files);
        // Exact edges, including the ping <-> pong cycle.
        assert_eq!(
            named_edges(&files, &g),
            vec![
                ("api".to_string(), "ping".to_string()),
                ("ping".to_string(), "pong".to_string()),
                ("pong".to_string(), "ping".to_string()),
                ("pong".to_string(), "boom".to_string()),
            ]
        );
        let mut out = Vec::new();
        check_reach(&files, &g, &mut out);
        assert_eq!(out.len(), 1);
        let f = &out[0];
        assert_eq!(f.rule, "pf-reach");
        assert_eq!(f.line, 2, "flagged at api's call into the chain");
        assert_eq!(
            f.chain,
            vec![
                "api (crates/core/src/cycle.rs:1)",
                "ping (crates/core/src/cycle.rs:4)",
                "pong (crates/core/src/cycle.rs:7)",
                "boom (crates/core/src/cycle.rs:11)",
                "pf-panic (crates/core/src/cycle.rs:12)",
            ]
        );
    }

    #[test]
    fn reach_respects_allow_and_non_pub_scope() {
        let src = "\
pub fn api(v: &[u8]) {
    // flcheck: allow(pf-reach)
    helper(v);
}
fn helper(v: &[u8]) {
    inner(v);
}
fn inner(v: &[u8]) {
    v.first().unwrap();
}
";
        let files = ws(&[("crates/mpint/src/x.rs", src)]);
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        check_reach(&files, &g, &mut out);
        // The only public entry point is allowed; private helpers are not
        // flagged by pf-reach (the direct pf-unwrap still fires from the
        // intraprocedural pass, which is separate).
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn reach_outside_panic_crates_is_silent() {
        let files = ws(&[(
            "crates/bench/src/x.rs",
            "pub fn api() { helper(); }\nfn helper() { panic!(\"x\"); }\n",
        )]);
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        check_reach(&files, &g, &mut out);
        assert!(out.is_empty());
    }
}
