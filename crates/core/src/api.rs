//! The FLBooster API interfaces (paper Table I).
//!
//! The paper wraps "commonly used arithmetic operations ... into
//! user-friendly APIs, including fundamental operations of arithmetic,
//! modular operations, and homomorphic encryption operations" for
//! developers building accelerated FL applications. [`FlBoosterApi`]
//! reproduces that surface: every function is *vectorized* — it operates
//! on arrays of multi-precision integers — and, when constructed with a
//! device, dispatches each array through one GPU kernel launch.

use std::sync::Arc;

use gpu_sim::{Device, ItemOutcome, KernelSpec};
use he::paillier::{Ciphertext, PaillierKeyPair, PaillierPrivateKey, PaillierPublicKey};
use he::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use mpint::Natural;
use rand::Rng;

use crate::{Error, Result};

/// Vectorized multi-precision and HE operations, optionally
/// GPU-dispatched.
#[derive(Clone, Default)]
pub struct FlBoosterApi {
    device: Option<Arc<Device>>,
}

/// Rough limb-op estimates used to account GPU kernel time for the basic
/// vector ops (size-dependent estimates come from the operand widths).
fn basic_op_cost(a: &Natural, b: &Natural) -> u64 {
    (a.limb_len().max(1) * b.limb_len().max(1)) as u64
}

impl FlBoosterApi {
    /// A CPU-only API instance.
    pub fn new() -> Self {
        FlBoosterApi { device: None }
    }

    /// An API instance that dispatches array operations through `device`.
    pub fn with_device(device: Arc<Device>) -> Self {
        FlBoosterApi {
            device: Some(device),
        }
    }

    /// Runs a binary elementwise operation, on the device if present.
    fn zip_op<F>(
        &self,
        name: &'static str,
        a: &[Natural],
        b: &[Natural],
        f: F,
    ) -> Result<Vec<Natural>>
    where
        F: Fn(&Natural, &Natural) -> Result<Natural> + Sync,
    {
        if a.len() != b.len() {
            return Err(Error::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        match &self.device {
            None => a.iter().zip(b).map(|(x, y)| f(x, y)).collect(),
            Some(device) => {
                let pairs: Vec<(&Natural, &Natural)> = a.iter().zip(b.iter()).collect();
                let bytes: u64 = pairs
                    .iter()
                    .map(|(x, y)| (x.wire_size_bytes() + y.wire_size_bytes()) as u64)
                    .sum();
                let spec = KernelSpec::simple(name);
                let (results, _) = device.launch(&spec, &pairs, bytes, bytes / 2, |_, (x, y)| {
                    let cost = basic_op_cost(x, y);
                    ItemOutcome::new(f(x, y), cost)
                });
                results.into_iter().collect()
            }
        }
    }

    /// Elementwise addition (`add` in Table I).
    pub fn add(&self, a: &[Natural], b: &[Natural]) -> Result<Vec<Natural>> {
        self.zip_op("api_add", a, b, |x, y| Ok(x + y))
    }

    /// Elementwise subtraction (`sub`); fails on underflow.
    pub fn sub(&self, a: &[Natural], b: &[Natural]) -> Result<Vec<Natural>> {
        self.zip_op("api_sub", a, b, |x, y| {
            x.checked_sub(y)
                .ok_or(Error::Arithmetic(mpint::Error::Overflow { bits: 0 }))
        })
    }

    /// Elementwise multiplication (`mul`).
    pub fn mul(&self, a: &[Natural], b: &[Natural]) -> Result<Vec<Natural>> {
        self.zip_op("api_mul", a, b, |x, y| Ok(x * y))
    }

    /// Elementwise Euclidean division (`div`), returning quotients.
    pub fn div(&self, a: &[Natural], b: &[Natural]) -> Result<Vec<Natural>> {
        self.zip_op("api_div", a, b, |x, y| {
            x.checked_div_rem(y)
                .map(|(q, _)| q)
                .map_err(Error::Arithmetic)
        })
    }

    /// Elementwise remainder (`mod` in Table I) against one modulus.
    pub fn mod_(&self, x: &[Natural], n: &Natural) -> Result<Vec<Natural>> {
        let ns = vec![n.clone(); x.len()];
        self.zip_op("api_mod", x, &ns, |a, b| {
            a.checked_div_rem(b)
                .map(|(_, r)| r)
                .map_err(Error::Arithmetic)
        })
    }

    /// Elementwise modular inverse (`mod_inv`).
    pub fn mod_inv(&self, x: &[Natural], n: &Natural) -> Result<Vec<Natural>> {
        let ns = vec![n.clone(); x.len()];
        self.zip_op("api_mod_inv", x, &ns, |a, b| {
            mpint::mod_inv(a, b).map_err(Error::Arithmetic)
        })
    }

    /// Elementwise modular multiplication (`mod_mul`) — the Montgomery
    /// kernel of Sec. IV-A3.
    pub fn mod_mul(&self, a: &[Natural], b: &[Natural], n: &Natural) -> Result<Vec<Natural>> {
        let ctx = mpint::MontgomeryCtx::new(n).map_err(Error::Arithmetic)?;
        self.zip_op("api_mod_mul", a, b, move |x, y| Ok(ctx.mod_mul(x, y)))
    }

    /// Elementwise modular exponentiation (`mod_pow`): `x[i]^p[i] mod n`.
    pub fn mod_pow(&self, x: &[Natural], p: &[Natural], n: &Natural) -> Result<Vec<Natural>> {
        self.zip_op("api_mod_pow", x, p, move |b, e| {
            mpint::modpow::mod_pow_any(b, e, n).map_err(Error::Arithmetic)
        })
    }

    // --- Paillier wrappers (Table I bottom half) ---

    /// `Paillier::key_gen(size)`.
    // One-time key setup before training sits outside the per-item cost
    // model (see PaillierKeyPair::generate).
    // flcheck: allow(uncharged-work) — one-time key setup
    pub fn paillier_key_gen<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        size: u32,
    ) -> Result<PaillierKeyPair> {
        Ok(PaillierKeyPair::generate(rng, size)?)
    }

    /// `Paillier::encrypt(pub_key, plaintexts)` — batched.
    // flcheck: secret(plaintexts)
    pub fn paillier_encrypt(
        &self,
        pk: &PaillierPublicKey,
        plaintexts: &[Natural],
        seed: u64,
    ) -> Result<Vec<Ciphertext>> {
        let backend = self.he_backend();
        // Delegation boundary: the HE backend's encrypt entry point carries
        // its own secret(m) seed, so the taint chain restarts there.
        // flcheck: allow(ct-taint)
        let (cts, _) = backend.encrypt_batch(pk, plaintexts, seed)?;
        Ok(cts)
    }

    /// `Paillier::decrypt(pri_key, ciphertexts)` — batched.
    pub fn paillier_decrypt(
        &self,
        sk: &PaillierPrivateKey,
        ciphertexts: &[Ciphertext],
    ) -> Result<Vec<Natural>> {
        let backend = self.he_backend();
        let (ms, _) = backend.decrypt_batch(sk, ciphertexts)?;
        Ok(ms)
    }

    /// `Paillier::add(pub_key, c1, c2)` — batched homomorphic addition.
    pub fn paillier_add(
        &self,
        pk: &PaillierPublicKey,
        a: &[Ciphertext],
        b: &[Ciphertext],
    ) -> Result<Vec<Ciphertext>> {
        if a.len() != b.len() {
            return Err(Error::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        let backend = self.he_backend();
        let (cts, _) = backend.add_batch(pk, a, b)?;
        Ok(cts)
    }

    // --- RSA wrappers ---

    /// `RSA::key_gen(size)`.
    // flcheck: allow(uncharged-work) — one-time key setup (see paillier_key_gen).
    pub fn rsa_key_gen<R: Rng + ?Sized>(&self, rng: &mut R, size: u32) -> Result<RsaKeyPair> {
        Ok(RsaKeyPair::generate(rng, size)?)
    }

    /// `RSA::encrypt(pub_key, plaintexts)` — batched.
    pub fn rsa_encrypt(&self, pk: &RsaPublicKey, plaintexts: &[Natural]) -> Result<Vec<Natural>> {
        match &self.device {
            None => plaintexts
                .iter()
                .map(|m| pk.encrypt(m).map_err(Error::He))
                .collect(),
            Some(device) => {
                let spec = he::GpuHe::kernel_spec("rsa_encrypt", pk.key_bits, false);
                let ops = pk.encrypt_op_estimate();
                let bytes: u64 = plaintexts.iter().map(|m| m.wire_size_bytes() as u64).sum();
                let (results, _) = device.launch(&spec, plaintexts, bytes, bytes, |_, m| {
                    gpu_sim::kernel::outcome_from_result(pk.encrypt(m), ops, false)
                });
                results.into_iter().map(|r| r.map_err(Error::He)).collect()
            }
        }
    }

    /// `RSA::decrypt(pri_key, ciphertexts)` — batched. Dispatches to the
    /// simulated device when one is configured, so CRT decryptions are
    /// charged per item like every other Table I operation.
    pub fn rsa_decrypt(&self, sk: &RsaPrivateKey, ciphertexts: &[Natural]) -> Result<Vec<Natural>> {
        match &self.device {
            None => ciphertexts
                .iter()
                .map(|c| sk.decrypt(c).map_err(Error::He))
                .collect(),
            Some(device) => {
                let spec = he::GpuHe::kernel_spec("rsa_decrypt", sk.public.key_bits, false);
                let ops = sk.decrypt_op_estimate();
                let bytes: u64 = ciphertexts.iter().map(|c| c.wire_size_bytes() as u64).sum();
                let (results, _) = device.launch(&spec, ciphertexts, bytes, bytes, |_, c| {
                    gpu_sim::kernel::outcome_from_result(sk.decrypt(c), ops, false)
                });
                results.into_iter().map(|r| r.map_err(Error::He)).collect()
            }
        }
    }

    /// `RSA::mul(pub_key, c1, c2)` — batched homomorphic multiplication.
    pub fn rsa_mul(&self, pk: &RsaPublicKey, a: &[Natural], b: &[Natural]) -> Result<Vec<Natural>> {
        self.zip_op("rsa_mul", a, b, |x, y| Ok(pk.mul(x, y)))
    }

    fn he_backend(&self) -> Box<dyn he::HeBackend> {
        match &self.device {
            Some(d) => Box::new(he::GpuHe::new(Arc::clone(d))),
            None => Box::new(he::CpuHe::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn nats(vs: &[u64]) -> Vec<Natural> {
        vs.iter().map(|&v| Natural::from(v)).collect()
    }

    fn apis() -> [FlBoosterApi; 2] {
        [
            FlBoosterApi::new(),
            FlBoosterApi::with_device(Arc::new(Device::new(DeviceConfig::rtx3090()))),
        ]
    }

    #[test]
    fn basic_vector_ops_cpu_and_gpu_agree() {
        for api in apis() {
            let a = nats(&[10, 20, 300]);
            let b = nats(&[3, 7, 50]);
            assert_eq!(api.add(&a, &b).unwrap(), nats(&[13, 27, 350]));
            assert_eq!(api.sub(&a, &b).unwrap(), nats(&[7, 13, 250]));
            assert_eq!(api.mul(&a, &b).unwrap(), nats(&[30, 140, 15000]));
            assert_eq!(api.div(&a, &b).unwrap(), nats(&[3, 2, 6]));
        }
    }

    #[test]
    fn modular_ops() {
        let api = FlBoosterApi::new();
        let x = nats(&[100, 200, 301]);
        let n = Natural::from(97u64);
        assert_eq!(api.mod_(&x, &n).unwrap(), nats(&[3, 6, 10]));
        let inv = api.mod_inv(&nats(&[3, 5]), &n).unwrap();
        assert_eq!(&(&inv[0] * &Natural::from(3u64)) % &n, Natural::one());
        assert_eq!(&(&inv[1] * &Natural::from(5u64)) % &n, Natural::one());
        let mm = api.mod_mul(&nats(&[10, 20]), &nats(&[30, 40]), &n).unwrap();
        assert_eq!(mm, nats(&[300 % 97, 800 % 97]));
        let mp = api.mod_pow(&nats(&[2, 3]), &nats(&[10, 4]), &n).unwrap();
        assert_eq!(mp, nats(&[1024 % 97, 81 % 97]));
    }

    #[test]
    fn length_mismatch_detected() {
        let api = FlBoosterApi::new();
        assert!(matches!(
            api.add(&nats(&[1]), &nats(&[1, 2])),
            Err(Error::LengthMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn sub_underflow_is_error() {
        let api = FlBoosterApi::new();
        assert!(api.sub(&nats(&[1]), &nats(&[2])).is_err());
    }

    #[test]
    fn div_by_zero_is_error() {
        let api = FlBoosterApi::new();
        assert!(api.div(&nats(&[1]), &nats(&[0])).is_err());
    }

    #[test]
    fn paillier_table1_flow() {
        let api = FlBoosterApi::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let keys = api.paillier_key_gen(&mut rng, 128).unwrap();
        let ms = nats(&[11, 22, 33]);
        let cts = api.paillier_encrypt(&keys.public, &ms, 5).unwrap();
        let sums = api.paillier_add(&keys.public, &cts, &cts).unwrap();
        let plains = api.paillier_decrypt(&keys.private, &sums).unwrap();
        assert_eq!(plains, nats(&[22, 44, 66]));
    }

    #[test]
    fn rsa_table1_flow() {
        let api = FlBoosterApi::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let keys = api.rsa_key_gen(&mut rng, 128).unwrap();
        let ms = nats(&[6, 7]);
        let cts = api.rsa_encrypt(&keys.public, &ms).unwrap();
        let prods = api.rsa_mul(&keys.public, &cts, &cts).unwrap();
        let plains = api.rsa_decrypt(&keys.private, &prods).unwrap();
        assert_eq!(plains, nats(&[36, 49]));
    }

    #[test]
    fn gpu_rsa_encrypt_matches_cpu() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let keys = RsaKeyPair::generate(&mut rng, 128).unwrap();
        let ms = nats(&[100, 200, 300]);
        let [cpu, gpu] = apis();
        assert_eq!(
            cpu.rsa_encrypt(&keys.public, &ms).unwrap(),
            gpu.rsa_encrypt(&keys.public, &ms).unwrap()
        );
    }

    #[test]
    fn gpu_rsa_decrypt_matches_cpu_and_charges() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let keys = RsaKeyPair::generate(&mut rng, 128).unwrap();
        let ms = nats(&[100, 200, 300]);
        let device = Arc::new(Device::new(DeviceConfig::rtx3090()));
        let cpu = FlBoosterApi::new();
        let gpu = FlBoosterApi::with_device(Arc::clone(&device));
        let cts = cpu.rsa_encrypt(&keys.public, &ms).unwrap();
        assert_eq!(
            cpu.rsa_decrypt(&keys.private, &cts).unwrap(),
            gpu.rsa_decrypt(&keys.private, &cts).unwrap()
        );
        let stats = device.stats();
        assert_eq!(stats.launches, 1, "decrypt must dispatch to the device");
        assert_eq!(stats.items, ms.len() as u64);
        assert!(stats.thread_ops > 0, "decrypt launches must charge ops");
    }

    #[test]
    fn gpu_dispatch_records_launches() {
        let device = Arc::new(Device::new(DeviceConfig::rtx3090()));
        let api = FlBoosterApi::with_device(Arc::clone(&device));
        api.add(&nats(&[1, 2]), &nats(&[3, 4])).unwrap();
        api.mul(&nats(&[1]), &nats(&[2])).unwrap();
        assert_eq!(device.stats().launches, 2);
    }
}
