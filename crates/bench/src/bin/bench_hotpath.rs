//! **Hot-path kernel benchmark**: before→after ops/sec and limb-mult
//! counts for the three PR-4 optimisations (dedicated Montgomery
//! squaring, blinding-factor pooling, Straus multi-exponentiation).
//!
//! For every key size it measures five hot operations:
//!
//! * `encrypt` — *before* is the inline path (`encrypt_with_r`, which
//!   computes `r^n mod n²` on the spot); *after* draws the
//!   pre-generated `(r, r^n)` pair from a warm [`ObfuscatorPool`].
//! * `decrypt` / `decrypt_crt` — *after* is the real constant-time
//!   ladder (squarings on the dedicated kernel); *before* replays the
//!   identical ladder schedule with `mont_mul(a, a)` standing in for
//!   every squaring — a cost replica of the pre-squaring-kernel code
//!   whose output is discarded.
//! * `scalar_mul` — same squaring-kernel delta on the 32-bit windowed
//!   exponentiation.
//! * `aggregate64` — 64-way weighted aggregation; *before* is the
//!   naive per-party `checked_scalar_mul` + `checked_add` loop, *after*
//!   is the shared-squaring-chain `weighted_sum` (Straus).
//!
//! Limb-mult counts are analytic (1 unit = one `s²`-MAC `mont_mul`
//! equivalent, the workspace's historical convention) and therefore
//! machine-independent; ops/sec are wall-clock. Results go to
//! `results/BENCH_hotpath.json`.
//!
//! Two gates make this binary fail (exit 1) so the harness can trap
//! regressions:
//!
//! 1. **Speedup floor** (only when 1024-bit keys are benchmarked):
//!    measured pool-warm encrypt must be ≥ 1.3× inline, and Straus
//!    aggregation ≥ 1.2× the naive loop.
//! 2. **Count regression**: if `results/bench_hotpath_baseline.json`
//!    exists, the *after* limb-mult counts for encrypt and aggregate
//!    may not exceed the recorded baseline by more than 5 %.
//!    `--write-baseline` refreshes the baseline instead of gating.
//!
//! ```text
//! cargo run -p flbooster-bench --release --bin bench_hotpath -- \
//!     [--keys 512,1024,2048] [--items 64] [--out results/BENCH_hotpath.json] \
//!     [--baseline results/bench_hotpath_baseline.json] [--write-baseline]
//! ```

use std::time::Instant;

use flbooster_bench::table::Table;
use flbooster_bench::{shared_keys, Args};
use he::paillier::{Ciphertext, ObfuscatorPool, PaillierKeyPair};
use mpint::cios::{mont_mul_mac_count, mont_sqr_mac_count};
use mpint::{modpow, MontgomeryCtx, Natural};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How many parties the weighted-aggregate measurement fans in.
const AGG_WAYS: usize = 64;
/// Aggregation-weight width: quantized per-party sample counts.
const WEIGHT_BITS: u32 = 32;
/// Minimum wall-clock per measurement before we trust the mean.
const MIN_MEASURE_SECS: f64 = 0.2;

/// One before→after measurement of one operation at one key size.
struct OpRow {
    op: &'static str,
    before_ops_sec: f64,
    after_ops_sec: f64,
    before_limb_mults: u64,
    after_limb_mults: u64,
}

impl OpRow {
    fn speedup(&self) -> f64 {
        if self.before_ops_sec > 0.0 {
            self.after_ops_sec / self.before_ops_sec
        } else {
            1.0
        }
    }

    fn mult_ratio(&self) -> f64 {
        if self.after_limb_mults > 0 {
            self.before_limb_mults as f64 / self.after_limb_mults as f64
        } else {
            1.0
        }
    }
}

/// Calls `body` repeatedly until at least [`MIN_MEASURE_SECS`] of
/// wall-clock accumulates, returning operations per second.
// flcheck: det-absorb — pure stopwatch helper: wall-clock is the measured
// quantity and never reaches ciphertext bytes
fn ops_per_sec(mut body: impl FnMut()) -> f64 {
    // Warm-up pass so lazy setup (pool threads, page faults) is not billed.
    body();
    let mut reps = 0u64;
    let start = Instant::now();
    loop {
        body();
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= MIN_MEASURE_SECS {
            return reps as f64 / elapsed;
        }
    }
}

/// Analytic MAC count of a `w`-windowed `e_bits`-bit exponentiation at
/// width `s`, with `sqr_mac` as the per-squaring cost (pass
/// `mont_mul_mac_count(s)` for the pre-PR generic kernel).
fn window_pow_macs(s: usize, e_bits: u32, sqr_mac: u64) -> u64 {
    let w = modpow::window_size_for(e_bits) as u64;
    let e = e_bits as u64;
    e * sqr_mac + (e / (w + 1) + (1 << (w - 1))) * mont_mul_mac_count(s)
}

/// Analytic MAC count of a square-and-multiply-always ladder.
fn ladder_pow_macs(s: usize, e_bits: u32, sqr_mac: u64) -> u64 {
    e_bits as u64 * (sqr_mac + mont_mul_mac_count(s))
}

/// Replays the windowed-exponentiation schedule with `mont_mul(a, a)`
/// for every squaring — the pre-PR cost profile. The result is only
/// consumed through `black_box`; correctness is covered elsewhere.
fn replay_window_pow_mul_sqr(ctx: &MontgomeryCtx, base_m: &Natural, e_bits: u32) {
    let w = modpow::window_size_for(e_bits);
    let mut table = vec![base_m.clone()];
    for _ in 1..(1u32 << (w - 1)) {
        table.push(ctx.mont_mul(table.last().expect("non-empty"), base_m));
    }
    let mut acc = ctx.one_mont();
    let mut since_mul = 0;
    for i in 0..e_bits {
        acc = ctx.mont_mul(&acc, &acc);
        since_mul += 1;
        if since_mul == w + 1 {
            acc = ctx.mont_mul(&acc, &table[i as usize % table.len()]);
            since_mul = 0;
        }
    }
    std::hint::black_box(acc);
}

/// Replays the constant-time ladder schedule (one squaring, one
/// multiply per exponent bit) with the generic multiply kernel.
fn replay_ladder_mul_sqr(ctx: &MontgomeryCtx, base_m: &Natural, e_bits: u32) {
    let mut acc = ctx.one_mont();
    for _ in 0..e_bits {
        acc = ctx.mont_mul(&acc, &acc);
        acc = ctx.mont_mul(&acc, base_m);
    }
    std::hint::black_box(acc);
}

/// Deterministic sub-`n` plaintexts (quantized gradient words).
fn plaintexts(items: usize) -> Vec<Natural> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x407_9A78);
    (0..items).map(|_| Natural::from(rng.next_u64())).collect()
}

/// Deterministic odd 32-bit aggregation weights.
fn weights(count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|k| (k.wrapping_mul(2_654_435_761) & 0xFFFF_FFFF) | 1)
        .collect()
}

fn bench_key_size(keys: &PaillierKeyPair, items: usize) -> Vec<OpRow> {
    let pk = &keys.public;
    let sk = &keys.private;
    let key_bits = pk.key_bits;
    let ms = plaintexts(items);
    let seed = 0xB00C_57E5 ^ key_bits as u64;

    let n2 = &pk.n * &pk.n;
    let ctx2 = MontgomeryCtx::new(&n2).expect("n² is odd");
    let s2 = ctx2.width();
    let mul2 = mont_mul_mac_count(s2);
    let sqr2 = mont_sqr_mac_count(s2);
    // n itself is an odd modulus of exactly the CRT half-key operand
    // width, so a ladder over it replays the per-prime decrypt cost.
    let ctx1 = MontgomeryCtx::new(&pk.n).expect("n is odd");
    let s1 = ctx1.width();
    let base2 = ctx2.to_mont(&(&Natural::from(0xDEAD_BEEFu64) % &n2));
    let base1 = ctx1.to_mont(&(&Natural::from(0xFACE_FEEDu64) % &pk.n));
    let n_bits = pk.n.bit_len();
    let half_bits = key_bits / 2;

    let mut rows = Vec::new();

    // -- encrypt: inline r^n vs pool-warm obfuscator ------------------
    let mut i_before = 0usize;
    let before_enc = ops_per_sec(|| {
        let r = pk.batch_blinding(seed, i_before);
        std::hint::black_box(
            pk.encrypt_with_r(&ms[i_before % items], &r)
                .expect("encrypt"),
        );
        i_before += 1;
    });
    // Pool-warm steady state: each refill round happens *outside* the
    // timed window — pre-generation is amortized background work, which
    // is exactly the paper's pooling argument.
    let pool = ObfuscatorPool::new(pk);
    let after_enc = {
        let batch = 1024usize;
        let mut timed = 0.0f64;
        let mut reps = 0u64;
        let mut round = 0u64;
        while timed < MIN_MEASURE_SECS {
            let round_seed = seed ^ round.wrapping_mul(0x1_0000_0001);
            pool.prefill_batch(pk, round_seed, batch).expect("prefill");
            // The measured wall-clock IS the benchmark metric here;
            // ciphertexts come from seeded blinding and are discarded.
            // flcheck: allow(nondet-in-result)
            let start = Instant::now();
            for i in 0..batch {
                let obf = pool.take(round_seed, i).expect("warm pool");
                std::hint::black_box(
                    pk.encrypt_with_obfuscator(&ms[i % items], obf)
                        .expect("encrypt"),
                );
            }
            timed += start.elapsed().as_secs_f64();
            reps += batch as u64;
            round += 1;
        }
        reps as f64 / timed
    };
    rows.push(OpRow {
        op: "encrypt",
        before_ops_sec: before_enc,
        after_ops_sec: after_enc,
        before_limb_mults: window_pow_macs(s2, n_bits, mul2) / 2 + pk.encrypt_pooled_op_estimate(),
        after_limb_mults: pk.encrypt_pooled_op_estimate(),
    });

    // Shared ciphertext material for the remaining operations.
    let cts: Vec<Ciphertext> = ms
        .iter()
        .enumerate()
        .map(|(i, m)| {
            pk.encrypt_with_r(m, &pk.batch_blinding(seed ^ 0xC7, i))
                .expect("encrypt")
        })
        .collect();

    // -- decrypt: full-width CT ladder, mul-squaring vs dedicated -----
    let before_dec = ops_per_sec(|| replay_ladder_mul_sqr(&ctx2, &base2, n_bits));
    let mut i_dec = 0usize;
    let after_dec = ops_per_sec(|| {
        std::hint::black_box(sk.decrypt(&cts[i_dec % items]).expect("decrypt"));
        i_dec += 1;
    });
    rows.push(OpRow {
        op: "decrypt",
        before_ops_sec: before_dec,
        after_ops_sec: after_dec,
        before_limb_mults: (ladder_pow_macs(s2, n_bits, mul2) + 2 * mul2) / 2,
        after_limb_mults: (ladder_pow_macs(s2, n_bits, sqr2) + 2 * mul2) / 2,
    });

    // -- decrypt_crt: two half-width ladders --------------------------
    let before_crt = ops_per_sec(|| {
        replay_ladder_mul_sqr(&ctx1, &base1, half_bits);
        replay_ladder_mul_sqr(&ctx1, &base1, half_bits);
    });
    let mut i_crt = 0usize;
    let after_crt = ops_per_sec(|| {
        std::hint::black_box(sk.decrypt_crt(&cts[i_crt % items]).expect("decrypt_crt"));
        i_crt += 1;
    });
    rows.push(OpRow {
        op: "decrypt_crt",
        before_ops_sec: before_crt,
        after_ops_sec: after_crt,
        before_limb_mults: 2
            * (ladder_pow_macs(s1, half_bits, mont_mul_mac_count(s1)) + 2 * mont_mul_mac_count(s1))
            / 2,
        after_limb_mults: sk.decrypt_op_estimate(),
    });

    // -- scalar_mul: 32-bit public weight -----------------------------
    let k32 = Natural::from(0xDEAD_BEEFu64 & 0xFFFF_FFFF);
    let before_smul = ops_per_sec(|| {
        replay_window_pow_mul_sqr(&ctx2, &base2, WEIGHT_BITS);
        // The final from-Montgomery/product multiply.
        std::hint::black_box(ctx2.mont_mul(&base2, &base2));
    });
    let mut i_smul = 0usize;
    let after_smul = ops_per_sec(|| {
        std::hint::black_box(pk.scalar_mul(&cts[i_smul % items], &k32));
        i_smul += 1;
    });
    rows.push(OpRow {
        op: "scalar_mul",
        before_ops_sec: before_smul,
        after_ops_sec: after_smul,
        before_limb_mults: (window_pow_macs(s2, WEIGHT_BITS, mul2) + mul2) / 2,
        after_limb_mults: pk.scalar_mul_op_estimate(WEIGHT_BITS),
    });

    // -- aggregate64: naive scalar_mul+add loop vs Straus -------------
    let agg_cts: Vec<Ciphertext> = (0..AGG_WAYS).map(|i| cts[i % items].clone()).collect();
    let ws = weights(AGG_WAYS);
    let wnat: Vec<Natural> = ws.iter().map(|&w| Natural::from(w)).collect();
    let before_agg = ops_per_sec(|| {
        let mut acc = pk.zero_ciphertext();
        for (c, w) in agg_cts.iter().zip(&wnat) {
            let scaled = pk.checked_scalar_mul(c, w).expect("scalar_mul");
            acc = pk.checked_add(&acc, &scaled).expect("add");
        }
        std::hint::black_box(acc);
    });
    let after_agg = ops_per_sec(|| {
        std::hint::black_box(pk.weighted_sum(&agg_cts, &wnat).expect("weighted_sum"));
    });
    let naive_per_party =
        (window_pow_macs(s2, WEIGHT_BITS, mul2) + mul2) / 2 + pk.add_op_estimate();
    rows.push(OpRow {
        op: "aggregate64",
        before_ops_sec: before_agg,
        after_ops_sec: after_agg,
        before_limb_mults: AGG_WAYS as u64 * naive_per_party,
        after_limb_mults: pk.weighted_sum_op_estimate(AGG_WAYS, WEIGHT_BITS),
    });

    rows
}

/// Pulls `"<field>": <integer>` out of a hand-rolled JSON object body.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Baseline entries `(key_bits, encrypt_limb_mults, aggregate_limb_mults)`
/// parsed from the recorded baseline file.
fn parse_baseline(text: &str) -> Vec<(u64, u64, u64)> {
    text.split('{')
        .filter_map(|obj| {
            Some((
                json_u64(obj, "key_bits")?,
                json_u64(obj, "encrypt_limb_mults")?,
                json_u64(obj, "aggregate_limb_mults")?,
            ))
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let key_sizes = args.key_sizes_or(&[512, 1024, 2048]);
    let items: usize = args.get("items").and_then(|s| s.parse().ok()).unwrap_or(64);
    let out_path = args
        .get("out")
        .unwrap_or("results/BENCH_hotpath.json")
        .to_string();
    let baseline_path = args
        .get("baseline")
        .unwrap_or("results/bench_hotpath_baseline.json")
        .to_string();

    println!("Hot-path kernels — {items} items, {AGG_WAYS}-way aggregate, keys {key_sizes:?}\n");

    let mut table = Table::new([
        "Key",
        "Op",
        "Before ops/s",
        "After ops/s",
        "Speedup",
        "Before mults",
        "After mults",
        "Mult ratio",
    ]);
    let mut all: Vec<(u32, Vec<OpRow>)> = Vec::new();
    for &key_bits in &key_sizes {
        let keys = shared_keys(key_bits);
        let rows = bench_key_size(&keys, items);
        for r in &rows {
            table.row([
                key_bits.to_string(),
                r.op.to_string(),
                format!("{:.1}", r.before_ops_sec),
                format!("{:.1}", r.after_ops_sec),
                format!("{:.2}x", r.speedup()),
                r.before_limb_mults.to_string(),
                r.after_limb_mults.to_string(),
                format!("{:.2}x", r.mult_ratio()),
            ]);
        }
        all.push((key_bits, rows));
    }
    table.print();

    // JSON artifact (hand-rolled; the offline workspace has no serde).
    let mut json = String::from("{\n  \"agg_ways\": 64,\n  \"entries\": [\n");
    for (i, (key_bits, rows)) in all.iter().enumerate() {
        json.push_str(&format!("    {{\"key_bits\": {key_bits}, \"ops\": [\n"));
        for (j, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"op\": \"{}\", \"before_ops_sec\": {:.3}, \"after_ops_sec\": {:.3}, \
                 \"speedup\": {:.3}, \"before_limb_mults\": {}, \"after_limb_mults\": {}}}{}\n",
                r.op,
                r.before_ops_sec,
                r.after_ops_sec,
                r.speedup(),
                r.before_limb_mults,
                r.after_limb_mults,
                if j + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nWrote {out_path}");

    let mut failed = false;

    // Gate 1: measured speedup floors at the paper's 1024-bit setting.
    if let Some((_, rows)) = all.iter().find(|(k, _)| *k == 1024) {
        for (op, floor) in [("encrypt", 1.3), ("aggregate64", 1.2)] {
            let row = rows.iter().find(|r| r.op == op).expect("op present");
            let s = row.speedup();
            if s < floor {
                println!("GATE FAILED: 1024-bit {op} speedup {s:.2}x < required {floor}x");
                failed = true;
            } else {
                println!("gate ok: 1024-bit {op} speedup {s:.2}x >= {floor}x");
            }
        }
    }

    // Gate 2: limb-mult counts vs the recorded baseline (±5 %).
    let baseline_entries = std::fs::read_to_string(&baseline_path)
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();
    if args.has("write-baseline") || baseline_entries.is_empty() {
        let mut b = String::from("{\n  \"entries\": [\n");
        for (i, (key_bits, rows)) in all.iter().enumerate() {
            let enc = rows.iter().find(|r| r.op == "encrypt").expect("encrypt");
            let agg = rows
                .iter()
                .find(|r| r.op == "aggregate64")
                .expect("aggregate");
            b.push_str(&format!(
                "    {{\"key_bits\": {key_bits}, \"encrypt_limb_mults\": {}, \
                 \"aggregate_limb_mults\": {}}}{}\n",
                enc.after_limb_mults,
                agg.after_limb_mults,
                if i + 1 < all.len() { "," } else { "" }
            ));
        }
        b.push_str("  ]\n}\n");
        std::fs::write(&baseline_path, &b).expect("write baseline");
        println!("Recorded baseline at {baseline_path}");
    } else {
        for (key_bits, enc_base, agg_base) in &baseline_entries {
            let Some((_, rows)) = all.iter().find(|(k, _)| *k as u64 == *key_bits) else {
                continue;
            };
            for (op, base) in [("encrypt", *enc_base), ("aggregate64", *agg_base)] {
                let now = rows
                    .iter()
                    .find(|r| r.op == op)
                    .expect("op present")
                    .after_limb_mults;
                // Integer form of `now > base * 1.05`.
                if now * 100 > base * 105 {
                    println!(
                        "GATE FAILED: {key_bits}-bit {op} limb-mults {now} exceed \
                         baseline {base} by more than 5%"
                    );
                    failed = true;
                } else {
                    println!("gate ok: {key_bits}-bit {op} limb-mults {now} vs baseline {base}");
                }
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("All hot-path gates passed.");
}
