//! Barrett reduction — the classic alternative to Montgomery reduction.
//!
//! The paper chooses Montgomery/CIOS for its GPU kernels; Barrett is the
//! natural ablation baseline (`cargo bench -p flbooster-bench --bench
//! montgomery` compares them): it avoids domain conversions but needs a
//! wider multiplication per reduction, and its quotient-estimate
//! correction is a data-dependent branch — exactly the divergence the
//! paper's resource manager exists to manage.
//!
//! For modulus `n` of `k` bits, precompute `µ = ⌊4^k / n⌋`; then for
//! `x < n²`:
//!
//! ```text
//! q  = ((x >> (k-1)) · µ) >> (k+1)
//! r  = x - q·n            (then at most two corrective subtractions)
//! ```

use crate::natural::Natural;
use crate::{Error, Result};

/// Precomputed Barrett context for a fixed modulus.
#[derive(Debug, Clone)]
pub struct BarrettCtx {
    n: Natural,
    /// `µ = ⌊2^{2k} / n⌋`.
    mu: Natural,
    /// `k = bits(n)`.
    k: u32,
}

impl BarrettCtx {
    /// Builds a context for `n > 1` (any parity — unlike Montgomery,
    /// Barrett handles even moduli).
    pub fn new(n: &Natural) -> Result<Self> {
        if n.is_zero() || n.is_one() {
            return Err(Error::DivisionByZero);
        }
        let k = n.bit_len();
        let (mu, _) = Natural::one().shl_bits(2 * k).div_rem(n);
        Ok(BarrettCtx {
            n: n.clone(),
            mu,
            k,
        })
    }

    /// The modulus.
    pub fn modulus(&self) -> &Natural {
        &self.n
    }

    /// Reduces `x < n²` to `x mod n` without division.
    pub fn reduce(&self, x: &Natural) -> Natural {
        debug_assert!(x < &self.n.square(), "Barrett input must be below n²");
        let q = (&x.shr_bits(self.k - 1) * &self.mu).shr_bits(self.k + 1);
        // The quotient estimate never exceeds the true quotient, so the
        // subtraction cannot underflow (HAC Alg. 14.42, step 2 analysis).
        let mut r = x.checked_sub(&(&q * &self.n)).unwrap_or_default();
        // The estimate is at most 2 too small: at most two corrections
        // (the data-dependent branch of the module docs).
        while let Some(next) = r.checked_sub(&self.n) {
            r = next;
        }
        r
    }

    /// Modular multiplication via one wide product + Barrett reduction.
    pub fn mod_mul(&self, a: &Natural, b: &Natural) -> Natural {
        let a = if a < &self.n { a.clone() } else { a % &self.n };
        let b = if b < &self.n { b.clone() } else { b % &self.n };
        self.reduce(&(&a * &b))
    }

    /// Modular exponentiation (square-and-multiply over Barrett); the
    /// bench compares this against the Montgomery sliding-window path.
    pub fn mod_pow(&self, base: &Natural, exp: &Natural) -> Natural {
        let mut acc = &Natural::one() % &self.n;
        if exp.is_zero() {
            return acc;
        }
        let base = base % &self.n;
        for i in (0..exp.bit_len()).rev() {
            acc = self.reduce(&acc.square());
            if exp.bit(i) {
                acc = self.reduce(&(&acc * &base));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn rejects_trivial_moduli() {
        assert!(BarrettCtx::new(&n(0)).is_err());
        assert!(BarrettCtx::new(&n(1)).is_err());
        assert!(
            BarrettCtx::new(&n(2)).is_ok(),
            "even moduli are fine for Barrett"
        );
    }

    #[test]
    fn reduce_matches_rem_small() {
        let ctx = BarrettCtx::new(&n(97)).unwrap();
        for x in [0u128, 1, 96, 97, 98, 96 * 96, 97 * 96] {
            assert_eq!(ctx.reduce(&n(x)), n(x % 97), "x={x}");
        }
    }

    #[test]
    fn reduce_matches_rem_large() {
        let p = (1u128 << 126) - 3; // keep x = 3p + 7 inside u128
        let ctx = BarrettCtx::new(&n(p)).unwrap();
        for x in [p - 1, p, p + 12345, (p - 1) * 2, p * 3 + 7] {
            // x < p² holds for all cases.
            assert_eq!(ctx.reduce(&n(x)), n(x % p), "x={x}");
        }
    }

    #[test]
    fn mod_mul_agrees_with_montgomery() {
        let p = (1u128 << 127) - 1;
        let barrett = BarrettCtx::new(&n(p)).unwrap();
        let mont = crate::MontgomeryCtx::new(&n(p)).unwrap();
        for (a, b) in [(3u128, 5u128), (p - 1, p - 1), (1 << 100, (1 << 90) + 17)] {
            assert_eq!(
                barrett.mod_mul(&n(a), &n(b)),
                mont.mod_mul(&n(a), &n(b)),
                "{a}*{b}"
            );
        }
    }

    #[test]
    fn mod_pow_agrees_with_sliding_window() {
        let p = (1u128 << 127) - 1;
        let ctx = BarrettCtx::new(&n(p)).unwrap();
        for (b, e) in [
            (2u128, 1000u128),
            (0xDEAD_BEEF, (1 << 60) + 3),
            (p - 2, 65537),
        ] {
            assert_eq!(
                ctx.mod_pow(&n(b), &n(e)),
                crate::modpow::mod_pow(&n(b), &n(e), &n(p)).unwrap(),
                "{b}^{e}"
            );
        }
    }

    #[test]
    fn works_on_even_modulus_where_montgomery_cannot() {
        let m = n(1u128 << 64); // even
        assert!(crate::MontgomeryCtx::new(&m).is_err());
        let ctx = BarrettCtx::new(&m).unwrap();
        assert_eq!(
            ctx.mod_mul(&n(u64::MAX as u128), &n(3)),
            n((u64::MAX as u128 * 3) % (1 << 64))
        );
        assert_eq!(ctx.mod_pow(&n(3), &n(100),), {
            crate::modpow::mod_pow_any(&n(3), &n(100), &m).unwrap()
        });
    }

    #[test]
    fn multilimb_random_agreement() {
        // Deterministic pseudo-random multi-limb operands.
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let modulus = Natural::from_limbs(vec![next() | 1, next(), next(), next() | (1 << 63)]);
        let ctx = BarrettCtx::new(&modulus).unwrap();
        for _ in 0..20 {
            let a = Natural::from_limbs(vec![next(), next(), next()]);
            let b = Natural::from_limbs(vec![next(), next(), next(), next()]);
            let product = &(&a % &modulus) * &(&b % &modulus);
            assert_eq!(ctx.reduce(&product), &product % &modulus);
        }
    }
}
