//! Shared scaffolding for the table/figure harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (Sec. VI). They share: scaled dataset presets,
//! deterministic per-key-size key material, a model factory, simple table
//! rendering, and a tiny flag parser.
//!
//! Scaling: the paper's full datasets (677 k–1.7 M instances, up to 1 M
//! features) with 1024–4096-bit CPU Paillier would take days per cell, as
//! the paper's own Table III shows. The presets shrink the instance and
//! feature counts while preserving the *relative* geometry between
//! datasets (RCV1 : Avazu : Synthetic feature ratios, sparse vs dense),
//! which is what drives every trend the paper reports. All crypto is
//! real at the configured key size; simulated time is reported.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use fl::data::generators::DatasetSpec;
use fl::data::Dataset;
use fl::train::{FlModel, TrainConfig};
use fl::{Accelerator, BackendKind};
use he::paillier::PaillierKeyPair;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub mod table;

/// The four benchmark models in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Homogeneous logistic regression.
    HomoLr,
    /// Heterogeneous logistic regression.
    HeteroLr,
    /// Heterogeneous SecureBoost.
    HeteroSbt,
    /// Heterogeneous split neural network.
    HeteroNn,
}

impl ModelKind {
    /// All four, in the paper's order.
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::HomoLr,
            ModelKind::HeteroLr,
            ModelKind::HeteroSbt,
            ModelKind::HeteroNn,
        ]
    }

    /// Paper display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::HomoLr => "Homo LR",
            ModelKind::HeteroLr => "Hetero LR",
            ModelKind::HeteroSbt => "Hetero SBT",
            ModelKind::HeteroNn => "Hetero NN",
        }
    }

    /// Builds the model over `dataset` for `participants` parties.
    pub fn build(
        &self,
        dataset: &Dataset,
        participants: u32,
        cfg: &TrainConfig,
    ) -> fl::Result<Box<dyn FlModel>> {
        Ok(match self {
            ModelKind::HomoLr => {
                Box::new(fl::models::HomoLr::new(dataset, participants, cfg)) as Box<dyn FlModel>
            }
            ModelKind::HeteroLr => Box::new(fl::models::HeteroLr::new(dataset, participants, cfg)?),
            ModelKind::HeteroSbt => {
                Box::new(fl::models::HeteroSbt::new(dataset, participants, cfg)?)
            }
            ModelKind::HeteroNn => Box::new(fl::models::HeteroNn::new(dataset, participants, cfg)?),
        })
    }
}

/// Which of the three evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// RCV1-like (sparse text).
    Rcv1,
    /// Avazu-like (very sparse CTR).
    Avazu,
    /// LEAF-Synthetic-like (dense).
    Synthetic,
}

impl DatasetKind {
    /// All three, in the paper's order.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::Rcv1,
            DatasetKind::Avazu,
            DatasetKind::Synthetic,
        ]
    }

    /// Paper display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Rcv1 => "RCV1",
            DatasetKind::Avazu => "Avazu",
            DatasetKind::Synthetic => "Synthetic",
        }
    }
}

/// Harness size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Seconds-per-cell: tiny instances and feature spaces (CI smoke).
    Quick,
    /// The default: small minutes for a full table.
    Default,
    /// Larger run preserving more of the paper's geometry.
    Large,
}

impl Preset {
    /// `(instances, feature-scale numerator)` knobs per preset.
    fn knobs(&self) -> (usize, f64) {
        match self {
            Preset::Quick => (48, 0.002),
            Preset::Default => (128, 0.005),
            Preset::Large => (512, 0.02),
        }
    }

    /// Parses `--preset quick|default|large`.
    pub fn parse(s: &str) -> Option<Preset> {
        match s {
            "quick" => Some(Preset::Quick),
            "default" => Some(Preset::Default),
            "large" => Some(Preset::Large),
            _ => None,
        }
    }
}

/// Generates the scaled benchmark dataset for `kind` under `preset`.
///
/// Feature counts keep the paper's RCV1 : Avazu : Synthetic ratios
/// (47 236 : 1 000 000 : 10 000) at the preset's scale; instance counts
/// are capped so real multi-kilobit crypto finishes in seconds per cell.
pub fn bench_dataset(kind: DatasetKind, preset: Preset) -> Dataset {
    let (instances, feat_scale) = preset.knobs();
    let mut spec = match kind {
        DatasetKind::Rcv1 => DatasetSpec::rcv1(),
        DatasetKind::Avazu => DatasetSpec::avazu(),
        DatasetKind::Synthetic => DatasetSpec::synthetic(),
    };
    let dense = spec.nnz_per_row >= spec.features;
    spec.features = ((spec.features as f64 * feat_scale) as usize).max(16);
    spec.nnz_per_row = if dense {
        spec.features
    } else {
        ((spec.nnz_per_row as f64 * feat_scale.sqrt()) as usize).clamp(4, spec.features)
    };
    spec.instances = instances;
    spec.generate(1.0)
}

/// Deterministic shared key material per key size (generated once per
/// process; 4096-bit generation takes a few seconds).
pub fn shared_keys(key_bits: u32) -> PaillierKeyPair {
    static CACHE: OnceLock<Mutex<HashMap<u32, PaillierKeyPair>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("key cache poisoned");
    guard
        .entry(key_bits)
        .or_insert_with(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(0xF1B0_0057 ^ key_bits as u64);
            PaillierKeyPair::generate(&mut rng, key_bits).expect("key generation")
        })
        .clone()
}

/// Builds a backend over the shared keys for `key_bits`.
pub fn backend(kind: BackendKind, key_bits: u32, participants: u32) -> Accelerator {
    Accelerator::new(kind, shared_keys(key_bits), participants).expect("backend construction")
}

/// Paper-default training configuration scaled for harness datasets.
pub fn harness_train_config() -> TrainConfig {
    TrainConfig {
        batch_size: 64,
        max_epochs: 8,
        ..TrainConfig::default()
    }
}

/// Key sizes the paper sweeps.
pub const KEY_SIZES: [u32; 3] = [1024, 2048, 4096];

/// Participants in every experiment (the paper's four servers).
pub const PARTICIPANTS: u32 = 4;

/// Minimal flag parser: `--name value` pairs plus bare flags.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Args {
        let mut out = Args::default();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.values
                            .insert(name.to_string(), iter.next().expect("peeked"));
                    }
                    _ => out.flags.push(name.to_string()),
                }
            }
        }
        out
    }

    /// Value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Whether bare `--name` was passed.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Preset from `--preset`, defaulting to [`Preset::Default`]
    /// (or [`Preset::Quick`] with `--quick`).
    pub fn preset(&self) -> Preset {
        if self.has("quick") {
            return Preset::Quick;
        }
        self.get("preset")
            .and_then(Preset::parse)
            .unwrap_or(Preset::Default)
    }

    /// Key sizes from `--keys 1024,2048`, defaulting to [`KEY_SIZES`].
    pub fn key_sizes(&self) -> Vec<u32> {
        match self.get("keys") {
            None => KEY_SIZES.to_vec(),
            Some(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        }
    }

    /// Key sizes from `--keys`, defaulting to the given list (used by the
    /// heavier full-training harnesses, which default to 1024 only).
    pub fn key_sizes_or(&self, default: &[u32]) -> Vec<u32> {
        match self.get("keys") {
            None => default.to_vec(),
            Some(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        }
    }

    /// Models from `--models homo-lr,hetero-sbt`, defaulting to all four.
    pub fn models(&self) -> Vec<ModelKind> {
        match self.get("models") {
            None => ModelKind::all().to_vec(),
            Some(s) => s
                .split(',')
                .filter_map(|t| match t.trim() {
                    "homo-lr" => Some(ModelKind::HomoLr),
                    "hetero-lr" => Some(ModelKind::HeteroLr),
                    "hetero-sbt" => Some(ModelKind::HeteroSbt),
                    "hetero-nn" => Some(ModelKind::HeteroNn),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Datasets from `--datasets rcv1,avazu`, defaulting to all three.
    pub fn datasets(&self) -> Vec<DatasetKind> {
        match self.get("datasets") {
            None => DatasetKind::all().to_vec(),
            Some(s) => s
                .split(',')
                .filter_map(|t| match t.trim() {
                    "rcv1" => Some(DatasetKind::Rcv1),
                    "avazu" => Some(DatasetKind::Avazu),
                    "synthetic" => Some(DatasetKind::Synthetic),
                    _ => None,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let q = bench_dataset(DatasetKind::Rcv1, Preset::Quick);
        let d = bench_dataset(DatasetKind::Rcv1, Preset::Default);
        assert!(q.len() < d.len());
        assert!(q.num_features < d.num_features);
    }

    #[test]
    fn dataset_geometry_preserved() {
        let r = bench_dataset(DatasetKind::Rcv1, Preset::Default);
        let a = bench_dataset(DatasetKind::Avazu, Preset::Default);
        let s = bench_dataset(DatasetKind::Synthetic, Preset::Default);
        // Avazu has the widest feature space, synthetic is dense.
        assert!(a.num_features > r.num_features);
        assert!(r.num_features > s.num_features);
        assert!((s.density() - 1.0).abs() < 1e-9);
        assert!(r.density() < 0.5);
    }

    #[test]
    fn shared_keys_are_cached_and_deterministic() {
        let k1 = shared_keys(128);
        let k2 = shared_keys(128);
        assert_eq!(k1.public.n, k2.public.n);
        assert_eq!(k1.public.key_bits, 128);
    }

    #[test]
    fn all_models_build_on_all_datasets() {
        let cfg = harness_train_config();
        for dk in DatasetKind::all() {
            let data = bench_dataset(dk, Preset::Quick);
            for mk in ModelKind::all() {
                let model = mk.build(&data, PARTICIPANTS, &cfg).unwrap();
                assert_eq!(model.name(), mk.name());
                assert!(model.loss().is_finite());
            }
        }
    }
}
