//! **Cost-model calibration**: re-fits the DESIGN §8 cost constants from
//! the hot-path MAC counters in `results/BENCH_hotpath.json` and the
//! paper's Table-IV anchors, failing (exit 1) when anything drifts more
//! than [`MAX_DRIFT`] from the constants the workspace ships.
//!
//! Three checks:
//!
//! 1. **Counter conformance** — the recorded `after_limb_mults` for every
//!    benchmarked operation must match the live analytic estimators at
//!    the same key size. A mismatch means a kernel changed cost without
//!    its estimator (or the committed bench artifact went stale).
//! 2. **β_cpu re-fit** — the Eq.-10 serial path
//!    (`1 / (ops_per_item · β_cpu)`) is solved for the β that lands FATE
//!    exactly on the paper's 360 inst/s at 1024 bits; the shipped
//!    [`he::ghe::DEFAULT_CPU_SECONDS_PER_OP`] must sit within
//!    [`MAX_DRIFT`] of that fit.
//! 3. **GPU `sec_per_thread_op` re-fit** — replays Table IV's measured
//!    HAFLO cell (encrypt + aggregate + decrypt of a 256-value vector,
//!    epoch-amortized accounting) and first-order-solves for the
//!    per-thread-op seconds that would land it on the paper's 59 k/s.
//!    Kernel time dominates transfer at this shape, so throughput is
//!    ∝ 1/sec_per_thread_op and the fit is `current · measured/target`.
//!
//! The serialization and codec constants (4.5e-4 / 8.4e-5 s per
//! ciphertext, 5e-6 s per value) are anchored on the Fig.-1 epoch
//! breakdown, not on MAC counters, and are out of scope here.
//!
//! Results go to `results/CALIBRATE_cost.json`.
//!
//! ```text
//! cargo run --release --bin calibrate_cost -- \
//!     [--hotpath results/BENCH_hotpath.json] [--out results/CALIBRATE_cost.json]
//! ```

use std::collections::HashMap;

use fl::{Accelerator, BackendKind};
use gpu_sim::DeviceConfig;
use he::ghe::DEFAULT_CPU_SECONDS_PER_OP;
use he::paillier::PaillierKeyPair;
use mpint::cios::{mont_mul_mac_count, mont_sqr_mac_count};
use mpint::MontgomeryCtx;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Maximum tolerated relative drift for constants and counters.
const MAX_DRIFT: f64 = 0.10;
/// Paper Table IV @1024: FATE throughput anchor (instances/second).
const FATE_TARGET: f64 = 360.0;
/// Paper Table IV @1024: HAFLO throughput anchor (instances/second).
const HAFLO_TARGET: f64 = 59_000.0;
/// Values in the replayed Table-IV measured cell (RCV1 workload clamp).
const HAFLO_VALUES: usize = 256;
/// Fan-in and weight width of the recorded aggregate counter.
const AGG_WAYS: usize = 64;
const WEIGHT_BITS: u32 = 32;

/// Pulls `"<field>": <integer>` out of a hand-rolled JSON object body.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls `"op": "<name>"` out of one op-object body.
fn json_op_name(body: &str) -> Option<&str> {
    let at = body.find("\"op\":")? + 5;
    let rest = body[at..].trim_start().strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// Recorded `(key_bits, op -> after_limb_mults)` entries from the
/// hot-path artifact.
fn parse_hotpath(text: &str) -> Vec<(u32, HashMap<String, u64>)> {
    text.split("{\"key_bits\"")
        .skip(1)
        .filter_map(|chunk| {
            let key_bits = json_u64(&format!("{{\"key_bits\"{}", chunk), "key_bits")? as u32;
            let ops = chunk
                .split("{\"op\"")
                .skip(1)
                .filter_map(|op_chunk| {
                    let body = format!("{{\"op\"{}", op_chunk);
                    Some((
                        json_op_name(&body)?.to_string(),
                        json_u64(&body, "after_limb_mults")?,
                    ))
                })
                .collect::<HashMap<_, _>>();
            Some((key_bits, ops))
        })
        .collect()
}

/// Deterministic keys matching the bench harness's shared material (the
/// estimators are analytic in the key *widths*, so any same-width key
/// reproduces the counters; using the same seed keeps artifacts aligned).
fn keys_for(key_bits: u32) -> PaillierKeyPair {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1B0_0057 ^ key_bits as u64);
    PaillierKeyPair::generate(&mut rng, key_bits).expect("key generation")
}

/// Live analytic counters for one key size, mirroring the five
/// `after_limb_mults` columns `bench_hotpath` records.
fn live_counters(keys: &PaillierKeyPair) -> HashMap<&'static str, u64> {
    let pk = &keys.public;
    let n2 = &pk.n * &pk.n;
    let ctx2 = MontgomeryCtx::new(&n2).expect("n² is odd");
    let s2 = ctx2.width();
    let (mul2, sqr2) = (mont_mul_mac_count(s2), mont_sqr_mac_count(s2));
    let n_bits = pk.n.bit_len() as u64;
    // Constant-time ladder over n² with the dedicated squaring kernel,
    // plus the L-function's two multiplies — bench_hotpath's decrypt row.
    let decrypt = (n_bits * (sqr2 + mul2) + 2 * mul2) / 2;
    HashMap::from([
        ("encrypt", pk.encrypt_pooled_op_estimate()),
        ("decrypt", decrypt),
        ("decrypt_crt", keys.private.decrypt_op_estimate()),
        ("scalar_mul", pk.scalar_mul_op_estimate(WEIGHT_BITS)),
        (
            "aggregate64",
            pk.weighted_sum_op_estimate(AGG_WAYS, WEIGHT_BITS),
        ),
    ])
}

/// Replays Table IV's measured HAFLO cell: encrypt + 2-way aggregate +
/// decrypt of a [`HAFLO_VALUES`]-value vector under epoch-amortized GPU
/// accounting, returning instances per simulated second.
fn haflo_measured(keys: &PaillierKeyPair) -> f64 {
    let acc = Accelerator::new(BackendKind::Haflo, keys.clone(), 4).expect("backend");
    let values: Vec<f64> = (0..HAFLO_VALUES)
        .map(|i| ((i as f64) * 0.61).sin() * 0.9)
        .collect();
    let enc = acc.encrypt(&values, 7).expect("encrypt");
    let agg = acc.aggregate(&[enc.clone(), enc]).expect("aggregate");
    let _ = acc.decrypt_sum(&agg, 2).expect("decrypt");
    2.0 * HAFLO_VALUES as f64 / acc.timing().he_seconds
}

struct Row {
    name: String,
    current: f64,
    fitted: f64,
    drift: f64,
}

fn main() {
    let mut hotpath_path = "results/BENCH_hotpath.json".to_string();
    let mut out_path = "results/CALIBRATE_cost.json".to_string();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--hotpath" => hotpath_path = iter.next().expect("--hotpath needs a path"),
            "--out" => out_path = iter.next().expect("--out needs a path"),
            other => panic!("unknown argument {other}"),
        }
    }

    let text = std::fs::read_to_string(&hotpath_path)
        .unwrap_or_else(|e| panic!("cannot read {hotpath_path}: {e} (run bench_hotpath first)"));
    let entries = parse_hotpath(&text);
    assert!(
        !entries.is_empty(),
        "no key-size entries found in {hotpath_path}"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut failed = false;
    let mut key_cache: HashMap<u32, PaillierKeyPair> = HashMap::new();

    // Check 1: recorded counters vs live estimators, every key size.
    println!("== counter conformance ({hotpath_path}) ==");
    for (key_bits, recorded) in &entries {
        let keys = key_cache
            .entry(*key_bits)
            .or_insert_with(|| keys_for(*key_bits));
        for (op, live) in live_counters(keys) {
            let Some(&rec) = recorded.get(op) else {
                println!("DRIFT GATE FAILED: {key_bits}-bit {op} missing from artifact");
                failed = true;
                continue;
            };
            let drift = (rec as f64 - live as f64).abs() / live.max(1) as f64;
            let ok = drift <= MAX_DRIFT;
            println!(
                "  {key_bits}-bit {op}: recorded {rec} vs live {live} (drift {:.1}%){}",
                drift * 100.0,
                if ok { "" } else { "  <-- FAILED" }
            );
            failed |= !ok;
            rows.push(Row {
                name: format!("counter_{key_bits}_{op}"),
                current: rec as f64,
                fitted: live as f64,
                drift,
            });
        }
    }

    // Check 2: β_cpu against the Eq.-10 FATE anchor at 1024 bits.
    let keys1024 = key_cache
        .entry(1024)
        .or_insert_with(|| keys_for(1024))
        .clone();
    let ops_per_item = keys1024.public.encrypt_op_estimate()
        + keys1024.public.add_op_estimate()
        + keys1024.private.decrypt_op_estimate();
    let fitted_beta = 1.0 / (FATE_TARGET * ops_per_item as f64);
    let beta_drift = (DEFAULT_CPU_SECONDS_PER_OP - fitted_beta).abs() / fitted_beta;
    println!("\n== constant re-fits (1024-bit anchors) ==");
    println!(
        "  beta_cpu: shipped {DEFAULT_CPU_SECONDS_PER_OP:.3e} vs fitted {fitted_beta:.3e} \
         (drift {:.1}%, FATE target {FATE_TARGET}/s){}",
        beta_drift * 100.0,
        if beta_drift <= MAX_DRIFT {
            ""
        } else {
            "  <-- FAILED"
        }
    );
    failed |= beta_drift > MAX_DRIFT;
    rows.push(Row {
        name: "beta_cpu".into(),
        current: DEFAULT_CPU_SECONDS_PER_OP,
        fitted: fitted_beta,
        drift: beta_drift,
    });

    // Check 3: GPU sec_per_thread_op against the measured HAFLO anchor.
    let current_spto = DeviceConfig::rtx3090().sec_per_thread_op;
    let measured = haflo_measured(&keys1024);
    let fitted_spto = current_spto * measured / HAFLO_TARGET;
    let spto_drift = (current_spto - fitted_spto).abs() / fitted_spto;
    println!(
        "  sec_per_thread_op: shipped {current_spto:.3e} vs fitted {fitted_spto:.3e} \
         (drift {:.1}%, HAFLO measured {measured:.0}/s vs target {HAFLO_TARGET}/s){}",
        spto_drift * 100.0,
        if spto_drift <= MAX_DRIFT {
            ""
        } else {
            "  <-- FAILED"
        }
    );
    failed |= spto_drift > MAX_DRIFT;
    rows.push(Row {
        name: "sec_per_thread_op".into(),
        current: current_spto,
        fitted: fitted_spto,
        drift: spto_drift,
    });

    // JSON artifact (hand-rolled; the offline workspace has no serde).
    let mut json = format!(
        "{{\n  \"max_drift\": {MAX_DRIFT},\n  \"fate_target\": {FATE_TARGET},\n  \
         \"haflo_target\": {HAFLO_TARGET},\n  \"rows\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"current\": {:.6e}, \"fitted\": {:.6e}, \
             \"drift\": {:.4}}}{}\n",
            r.name,
            r.current,
            r.fitted,
            r.drift,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!("  ],\n  \"passed\": {}\n}}\n", !failed));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nWrote {out_path}");

    if failed {
        println!("DRIFT GATE FAILED: cost model out of calibration (> {MAX_DRIFT:.0}% drift)");
        std::process::exit(1);
    }
    println!(
        "All calibration checks within {:.0}% drift.",
        MAX_DRIFT * 100.0
    );
}
