//! Aggregation topologies: a flat single-server fold versus a k-ary tree
//! of edge aggregators.
//!
//! FLBooster's server-side bottleneck is one aggregator folding every
//! participant ciphertext; real platforms (NVIDIA FLARE's federated
//! XGBoost deployments, hierarchical FedAvg) interpose *edge aggregators*
//! so each node folds only its fan-in, keeping million-party rounds
//! inside per-node memory and NIC budgets at the cost of extra hops.
//!
//! The topology changes *where* partial sums are computed and how many
//! intermediate messages cross the wire — never the result: Paillier
//! aggregation is a product in `Z*_{n²}`, the tree merely reassociates
//! that product, and every fold returns canonical residues, so the root
//! aggregate is bit-identical to the flat fold.

/// How participant vectors reach the aggregation server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationTopology {
    /// Every party uploads straight to the server: one flat fold.
    Flat,
    /// Parties are grouped under edge aggregators, at most `arity` inputs
    /// per node, recursively until a single root (the server) remains.
    Tree {
        /// Fan-in of every aggregator node; at least 2.
        arity: usize,
    },
}

impl Default for AggregationTopology {
    fn default() -> Self {
        AggregationTopology::Flat
    }
}

impl AggregationTopology {
    /// A k-ary edge-aggregator tree. Fan-ins below 2 cannot reduce, so
    /// `arity` is clamped up to 2.
    pub fn tree(arity: usize) -> Self {
        AggregationTopology::Tree {
            arity: arity.max(2),
        }
    }

    /// Leaf-level grouping of `parties` consecutive party indices:
    /// half-open ranges of at most `arity` parties, in upload order.
    /// Flat topologies yield one group spanning every party (none when
    /// `parties == 0`).
    pub fn leaf_groups(&self, parties: usize) -> Vec<std::ops::Range<usize>> {
        if parties == 0 {
            return Vec::new();
        }
        let arity = match *self {
            AggregationTopology::Flat => parties,
            AggregationTopology::Tree { arity } => arity.max(2),
        };
        (0..parties)
            .step_by(arity)
            .map(|start| start..(start + arity).min(parties))
            .collect()
    }

    /// Intermediate uplink messages one `parties`-wide round pushes
    /// through the tree: each non-root aggregator forwards its partial
    /// aggregate one hop up. Leaf uploads and the final server broadcast
    /// are charged separately by the round loop, so a flat topology — and
    /// a tree shallow enough that the server is the only aggregator —
    /// contributes zero extra hops.
    pub fn uplink_messages(&self, parties: usize) -> u64 {
        let arity = match *self {
            AggregationTopology::Flat => return 0,
            AggregationTopology::Tree { arity } => arity.max(2),
        };
        let mut hops = 0u64;
        let mut nodes = parties;
        while nodes > arity {
            nodes = nodes.div_ceil(arity);
            hops += nodes as u64;
        }
        hops
    }

    /// Aggregation levels below the root: 0 for flat (or a tree whose
    /// fan-in covers every party), else the tree height.
    pub fn depth(&self, parties: usize) -> u32 {
        let arity = match *self {
            AggregationTopology::Flat => return 0,
            AggregationTopology::Tree { arity } => arity.max(2),
        };
        let mut depth = 0u32;
        let mut nodes = parties;
        while nodes > arity {
            nodes = nodes.div_ceil(arity);
            depth += 1;
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_the_default_and_free() {
        assert_eq!(AggregationTopology::default(), AggregationTopology::Flat);
        assert_eq!(AggregationTopology::Flat.uplink_messages(100_000), 0);
        assert_eq!(AggregationTopology::Flat.depth(100_000), 0);
        assert_eq!(AggregationTopology::Flat.leaf_groups(5), vec![0..5]);
        assert!(AggregationTopology::Flat.leaf_groups(0).is_empty());
    }

    #[test]
    fn tree_clamps_degenerate_arity() {
        assert_eq!(
            AggregationTopology::tree(0),
            AggregationTopology::Tree { arity: 2 }
        );
        assert_eq!(
            AggregationTopology::tree(1),
            AggregationTopology::Tree { arity: 2 }
        );
        assert_eq!(
            AggregationTopology::tree(16),
            AggregationTopology::Tree { arity: 16 }
        );
    }

    #[test]
    fn leaf_groups_tile_in_order() {
        let t = AggregationTopology::tree(4);
        assert_eq!(t.leaf_groups(10), vec![0..4, 4..8, 8..10]);
        assert_eq!(t.leaf_groups(4), vec![0..4]);
        assert_eq!(t.leaf_groups(1), vec![0..1]);
        assert!(t.leaf_groups(0).is_empty());
    }

    #[test]
    fn uplink_counts_match_hand_derivation() {
        // 10 000 parties under 16-ary edges: 625 leaf aggregators forward
        // up, then 40, then 3; the root folds those 3 — 668 hops total.
        let t = AggregationTopology::tree(16);
        assert_eq!(t.uplink_messages(10_000), 625 + 40 + 3);
        assert_eq!(t.depth(10_000), 3);
        // A round no wider than the fan-in needs no edge layer at all.
        assert_eq!(t.uplink_messages(16), 0);
        assert_eq!(t.uplink_messages(17), 2);
        assert_eq!(AggregationTopology::tree(2).uplink_messages(8), 4 + 2);
    }
}
