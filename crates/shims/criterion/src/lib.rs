//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, `criterion_group!`, `criterion_main!` — with
//! a plain wall-clock runner: each benchmark body is warmed up once and
//! then timed over `sample_size` iterations, reporting mean ns/iter to
//! stderr. There is no statistical analysis, HTML report, or baseline
//! comparison; the point is that `cargo bench` runs and prints comparable
//! numbers without network access.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (accepted and echoed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant.
    BytesDecimal(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

/// Top-level bench driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the iteration count per benchmark (builder form).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, tp: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters: iters.max(1),
        mean_ns: 0.0,
    };
    f(&mut bencher);
    match tp {
        Some(Throughput::Elements(n)) => {
            let per_s = n as f64 / (bencher.mean_ns * 1e-9);
            eprintln!(
                "{label}: {:.1} ns/iter ({per_s:.0} elem/s)",
                bencher.mean_ns
            );
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            let per_s = n as f64 / (bencher.mean_ns * 1e-9);
            eprintln!("{label}: {:.1} ns/iter ({per_s:.0} B/s)", bencher.mean_ns);
        }
        None => eprintln!("{label}: {:.1} ns/iter", bencher.mean_ns),
    }
}

/// Declares a bench group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runner_times_a_closure() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // warm-up + 5 timed iterations
        assert_eq!(calls, 6);
    }
}
