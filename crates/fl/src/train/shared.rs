//! Shared training math.

/// Numerically-stable logistic function.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Mean binary cross-entropy of predictions against {0,1} labels,
/// clamped away from log(0).
pub fn logloss(predictions: &[f64], labels: &[f64]) -> f64 {
    // Documented precondition: a shape mismatch is a caller bug.
    // flcheck: allow(pf-assert)
    assert_eq!(predictions.len(), labels.len(), "prediction/label mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    let sum: f64 = predictions
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum();
    sum / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
        for z in [-50.0, -1.0, 0.3, 10.0, 100.0] {
            let s = sigmoid(z);
            assert!(s > 0.0 && s < 1.0 || (s - 1.0).abs() < 1e-15, "z={z}");
            assert!((sigmoid(z) + sigmoid(-z) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(!sigmoid(-1000.0).is_nan());
    }

    #[test]
    fn logloss_perfect_predictions_near_zero() {
        let l = logloss(&[1.0, 0.0, 1.0], &[1.0, 0.0, 1.0]);
        assert!(l < 1e-10);
    }

    #[test]
    fn logloss_uninformative_is_ln2() {
        let l = logloss(&[0.5, 0.5], &[1.0, 0.0]);
        assert!((l - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn logloss_penalizes_confident_errors() {
        assert!(logloss(&[0.01], &[1.0]) > logloss(&[0.4], &[1.0]));
        assert!(logloss(&[0.0], &[1.0]).is_finite(), "clamping avoids inf");
    }

    #[test]
    fn empty_logloss_is_zero() {
        assert_eq!(logloss(&[], &[]), 0.0);
    }
}
