//! Bit-shift operators for [`Natural`].

// flcheck: allow-file(pf-index) — shifted-limb indices are offsets within
// vectors sized as `limb_len + limb_shift (+ 1)` a few lines above.

use std::ops::{Shl, Shr};

use crate::limb::{Limb, LIMB_BITS};
use crate::natural::Natural;

impl Natural {
    /// `self << bits`.
    pub fn shl_bits(&self, bits: u32) -> Natural {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS) as usize;
        let bit_shift = bits % LIMB_BITS;
        let mut out = vec![0 as Limb; limb_shift + self.limb_len() + 1];
        if bit_shift == 0 {
            out[limb_shift..limb_shift + self.limb_len()].copy_from_slice(self.limbs());
        } else {
            let mut carry = 0;
            for (i, &l) in self.limbs().iter().enumerate() {
                out[limb_shift + i] = (l << bit_shift) | carry;
                carry = l >> (LIMB_BITS - bit_shift);
            }
            out[limb_shift + self.limb_len()] = carry;
        }
        Natural::from_limbs(out)
    }

    /// `self >> bits` (floor).
    pub fn shr_bits(&self, bits: u32) -> Natural {
        let limb_shift = (bits / LIMB_BITS) as usize;
        if limb_shift >= self.limb_len() {
            return Natural::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs()[limb_shift..];
        if bit_shift == 0 {
            return Natural::from_limbs(src.to_vec());
        }
        let mut out = vec![0 as Limb; src.len()];
        let mut carry = 0;
        for i in (0..src.len()).rev() {
            out[i] = (src[i] >> bit_shift) | carry;
            carry = src[i] << (LIMB_BITS - bit_shift);
        }
        Natural::from_limbs(out)
    }

    /// Keeps only the low `bits` bits (`self mod 2^bits`).
    ///
    /// This is the fast path for the `mod R` steps of Montgomery
    /// multiplication, where `R = 2^{w·s}` (Algorithm 1 line 1: "modular
    /// ... replaced by AND").
    pub fn low_bits(&self, bits: u32) -> Natural {
        let full_limbs = (bits / LIMB_BITS) as usize;
        let rem_bits = bits % LIMB_BITS;
        if full_limbs >= self.limb_len() {
            return self.clone();
        }
        let mut out = self.limbs()[..full_limbs + usize::from(rem_bits > 0)].to_vec();
        if rem_bits > 0 {
            let last = out.len() - 1;
            out[last] &= (1u64 << rem_bits) - 1;
        }
        Natural::from_limbs(out)
    }
}

impl Shl<u32> for &Natural {
    type Output = Natural;
    fn shl(self, bits: u32) -> Natural {
        self.shl_bits(bits)
    }
}

impl Shr<u32> for &Natural {
    type Output = Natural;
    fn shr(self, bits: u32) -> Natural {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn shl_matches_u128() {
        for bits in [0u32, 1, 7, 63, 64, 65, 100] {
            let v = 0x0123_4567_89AB_CDEFu128;
            if bits < 128 - 57 {
                assert_eq!(n(v).shl_bits(bits), n(v << bits), "<< {bits}");
            }
        }
    }

    #[test]
    fn shr_matches_u128() {
        let v = u128::MAX - 12345;
        for bits in [0u32, 1, 63, 64, 65, 127, 128, 200] {
            let expected = if bits >= 128 { 0 } else { v >> bits };
            assert_eq!(n(v).shr_bits(bits), n(expected), ">> {bits}");
        }
    }

    #[test]
    fn shift_roundtrip() {
        let v = n(0xFFFF_0000_FFFF_0000_1234);
        for bits in [1u32, 64, 130] {
            assert_eq!(v.shl_bits(bits).shr_bits(bits), v);
        }
    }

    #[test]
    fn low_bits_is_mod_power_of_two() {
        let v = n(u128::MAX);
        assert_eq!(v.low_bits(0), Natural::zero());
        assert_eq!(v.low_bits(1), Natural::one());
        assert_eq!(v.low_bits(64), n(u64::MAX as u128));
        assert_eq!(v.low_bits(65), n((1u128 << 65) - 1));
        assert_eq!(v.low_bits(300), v);
    }

    #[test]
    fn shl_zero_value() {
        assert!(Natural::zero().shl_bits(100).is_zero());
    }
}
