//! Constant-time limb-vector primitives.
//!
//! The Montgomery kernels in [`crate::montgomery`] and [`crate::cios`] run
//! over secret values (Paillier/RSA plaintexts, private exponents), so
//! their final reduction must not branch on limb data: the classic leak is
//! the data-dependent "subtract `n` if `u >= n`" at the end of REDC, which
//! a timing observer can use to recover bits of the secret operand
//! (Walter & Thompson, CT-RSA 2001). Every helper here runs the same
//! instruction sequence for every input value of a given length: secrets
//! influence only *data* (masks computed from borrows), never control
//! flow or memory addresses. Lengths are public values throughout.
//!
//! `flcheck`'s ct-discipline rule recognises the `// flcheck: ct-fn`
//! marker on these functions and verifies the bodies stay branch-free.

// flcheck: allow-file(pf-index) — limb indices run over `0..t.len()`; the
// masked passes must touch every word unconditionally, which is exactly
// what the indexed loops express.

use crate::limb::{sbb, Limb, LIMB_BITS};

/// Returns `1` if `x == 0`, else `0`, without branching on `x`.
// flcheck: ct-fn
// flcheck: secret(x)
#[inline]
#[must_use]
pub fn ct_is_zero(x: Limb) -> Limb {
    // For x != 0, `x | -x` has the top bit set; for x == 0 it is zero.
    let t = x | x.wrapping_neg();
    (t >> (LIMB_BITS - 1)) ^ 1
}

/// Returns all-ones if `flag == 1`, all-zeros if `flag == 0`.
// flcheck: ct-fn
// flcheck: secret(flag)
#[inline]
#[must_use]
pub fn ct_mask(flag: Limb) -> Limb {
    debug_assert!(flag <= 1);
    flag.wrapping_neg()
}

/// Selects `a` where `mask` is all-ones, `b` where it is all-zeros.
// flcheck: ct-fn
// flcheck: secret(mask, a, b)
#[inline]
#[must_use]
pub fn ct_select(mask: Limb, a: Limb, b: Limb) -> Limb {
    (a & mask) | (b & !mask)
}

/// Returns `1` if the limb vectors are equal, else `0`, scanning every
/// limb regardless of where the first difference occurs.
///
/// Both slices must have the same (public) length.
// flcheck: ct-fn
// flcheck: secret(a, b)
#[must_use]
pub fn ct_eq(a: &[Limb], b: &[Limb]) -> Limb {
    debug_assert_eq!(a.len(), b.len(), "ct_eq operands must share a width");
    let mut acc: Limb = 0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    ct_is_zero(acc)
}

/// Returns `1` if `a < b` (as little-endian limb vectors of equal public
/// length), else `0`, via a full borrow chain — no early exit.
// flcheck: ct-fn
// flcheck: secret(a, b)
#[must_use]
pub fn ct_lt(a: &[Limb], b: &[Limb]) -> Limb {
    debug_assert_eq!(a.len(), b.len(), "ct_lt operands must share a width");
    let mut borrow: Limb = 0;
    for (x, y) in a.iter().zip(b.iter()) {
        let (_, br) = sbb(*x, *y, borrow);
        borrow = br;
    }
    borrow
}

/// In-place conditional selection over limb vectors: where `mask` is
/// all-ones, `dst` keeps its value; where all-zeros, `dst` takes `src`.
// flcheck: ct-fn
// flcheck: secret(mask, dst, src)
pub fn ct_select_limbs(mask: Limb, dst: &mut [Limb], src: &[Limb]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = ct_select(mask, *d, *s);
    }
}

/// Constant-time final reduction: subtracts `n` from `t` exactly when
/// `t >= n`, returning `1` if the subtraction happened and `0` otherwise.
///
/// `n` is virtually zero-extended to `t.len()`; the caller guarantees
/// `t < 2n` so a single conditional subtraction fully reduces. Two full
/// passes run for every input: a borrow-only probe that decides the mask,
/// then a masked subtraction — the sequence of executed instructions and
/// touched addresses depends only on the public lengths.
// flcheck: ct-fn
// flcheck: secret(t)
pub fn ct_ge_then_sub(t: &mut [Limb], n: &[Limb]) -> Limb {
    debug_assert!(t.len() >= n.len(), "t must be at least as wide as n");
    let ext = |i: usize| -> Limb {
        // Public-index bounds handling: `n` zero-extended to t's width.
        // Both `i` and `n.len()` are public lengths, so this comparison
        // cannot leak secret data.
        // flcheck: allow(ct-compare)
        let in_range = ct_is_zero((i >= n.len()) as Limb);
        // i < n.len() is a public condition; the multiply keeps the
        // access pattern uniform without an `if`.
        n.get(i).copied().unwrap_or(0) & ct_mask(in_range)
    };
    // Pass 1: probe borrow of t - n over the full width.
    let mut borrow: Limb = 0;
    // t's width is the caller's public padded length, not a secret.
    // flcheck: allow(ct-taint)
    for i in 0..t.len() {
        let (_, br) = sbb(t[i], ext(i), borrow);
        borrow = br;
    }
    // borrow == 0  ⟺  t >= n. sub_mask is all-ones exactly when we subtract.
    let did_sub = ct_is_zero(borrow);
    let sub_mask = ct_mask(did_sub);
    // Pass 2: masked subtraction; a no-op (t - 0) when sub_mask is zero.
    let mut borrow2: Limb = 0;
    // Same public padded width as pass 1.
    // flcheck: allow(ct-taint)
    for i in 0..t.len() {
        let (d, br) = sbb(t[i], ext(i) & sub_mask, borrow2);
        t[i] = d;
        borrow2 = br;
    }
    debug_assert_eq!(borrow2, 0, "caller must guarantee t < 2n");
    did_sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natural::Natural;

    #[test]
    fn is_zero_and_mask() {
        assert_eq!(ct_is_zero(0), 1);
        assert_eq!(ct_is_zero(1), 0);
        assert_eq!(ct_is_zero(Limb::MAX), 0);
        assert_eq!(ct_mask(0), 0);
        assert_eq!(ct_mask(1), Limb::MAX);
    }

    #[test]
    fn select_picks_by_mask() {
        assert_eq!(ct_select(Limb::MAX, 7, 9), 7);
        assert_eq!(ct_select(0, 7, 9), 9);
        let mut dst = [1, 2, 3];
        ct_select_limbs(0, &mut dst, &[4, 5, 6]);
        assert_eq!(dst, [4, 5, 6]);
        let mut dst = [1, 2, 3];
        ct_select_limbs(Limb::MAX, &mut dst, &[4, 5, 6]);
        assert_eq!(dst, [1, 2, 3]);
    }

    #[test]
    fn eq_scans_all_limbs() {
        assert_eq!(ct_eq(&[1, 2, 3], &[1, 2, 3]), 1);
        assert_eq!(ct_eq(&[1, 2, 3], &[1, 2, 4]), 0);
        assert_eq!(ct_eq(&[0, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(ct_eq(&[], &[]), 1);
    }

    #[test]
    fn lt_matches_natural_ordering() {
        let cases: [(&[Limb], &[Limb]); 5] = [
            (&[1, 0], &[2, 0]),
            (&[2, 0], &[1, 0]),
            (&[0, 1], &[Limb::MAX, 0]),
            (&[5, 5], &[5, 5]),
            (&[Limb::MAX, Limb::MAX], &[0, 0]),
        ];
        for (a, b) in cases {
            let expected = Natural::from_limbs(a.to_vec()) < Natural::from_limbs(b.to_vec());
            assert_eq!(ct_lt(a, b), expected as Limb, "{a:?} < {b:?}");
        }
    }

    fn check_reduce(t: &Natural, n: &Natural, width: usize) {
        let mut limbs = t.to_padded_limbs(width);
        let did = ct_ge_then_sub(&mut limbs, &n.to_padded_limbs(n.limb_len()));
        let expected = if t >= n {
            t.checked_sub(n).expect("t >= n")
        } else {
            t.clone()
        };
        assert_eq!(Natural::from_limbs(limbs), expected, "reduce {t} mod {n}");
        assert_eq!(did, (t >= n) as Limb);
    }

    #[test]
    fn ge_then_sub_boundary_inputs() {
        // The three boundary cases from the spec: u = n-1, u = n, u = 2n-1,
        // on single- and multi-limb moduli (including limb-edge values).
        let moduli = [
            Natural::from(3u64),
            Natural::from(0xFFFF_FFFF_FFFF_FFC5u64),
            Natural::from((1u128 << 127) - 1),
            Natural::from_limbs(vec![u64::MAX - 2, u64::MAX, u64::MAX, 1]),
        ];
        let one = Natural::one();
        for n in &moduli {
            let width = n.limb_len() + 1;
            let u_nm1 = n.checked_sub(&one).expect("n > 0");
            let u_2nm1 = &(n + n).checked_sub(&one).expect("2n > 0");
            check_reduce(&u_nm1, n, width);
            check_reduce(n, n, width);
            check_reduce(u_2nm1, n, width);
            check_reduce(&Natural::zero(), n, width);
            check_reduce(&one, n, width);
        }
    }

    #[test]
    fn ge_then_sub_zero_extends_n() {
        // t wider than n, top words zero / nonzero.
        let n = Natural::from(1_000_000_007u64);
        let t = Natural::from(1_999_999_999u64); // < 2n, > n
        let mut limbs = t.to_padded_limbs(4);
        let did = ct_ge_then_sub(&mut limbs, &n.to_padded_limbs(1));
        assert_eq!(did, 1);
        assert_eq!(
            Natural::from_limbs(limbs),
            t.checked_sub(&n).expect("t > n")
        );
    }
}
