use std::collections::HashMap;

fn summarize(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum()
}

// flcheck: det-sink
fn render(total: u64) -> String {
    format!("{total}")
}

pub fn report(m: &HashMap<u32, u64>) -> String {
    let t0 = Instant::now();
    let skew = t0.elapsed().as_nanos() as u64;
    render(summarize(m) + skew)
}

// flcheck: det-absorb
fn stopwatch() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

// flcheck: nondet(reads the interconnect topology)
fn topology() -> u64 {
    0
}

pub fn inert(m: &HashMap<u32, u64>) -> String {
    let doc = r#"for (k, v) in m { m.values() } let t = Instant::now();"#;
    /* prose: /* m.keys(); current_num_threads() */ still prose */
    stopwatch();
    if m.contains_key(&7) {
        render(m.len() as u64 + topology());
    }
    doc.to_string()
}
