//! Theoretical analysis of FLBooster (paper Sec. V-B, Eq. 10–14).
//!
//! These closed-form models predict the acceleration ratios of the GHE and
//! BC modules; the bench harness prints them next to the simulator's
//! measurements so the two can be compared (they agree by construction on
//! the compression side and approximately on the GHE side, where the
//! simulator additionally models occupancy and divergence).

/// Parameters of the GHE acceleration model (paper Eq. 10).
#[derive(Debug, Clone, Copy)]
pub struct GheModel {
    /// Seconds for the CPU to process one HE operation (`β_cpu`).
    pub beta_cpu: f64,
    /// Seconds per byte copied between CPU and GPU (`β_transfer`).
    pub beta_transfer: f64,
    /// Seconds for the GPU to process one HE operation on one thread
    /// (`β_gpu`).
    pub beta_gpu: f64,
    /// Maximum concurrently running GPU threads (`T_max`).
    pub t_max: u64,
}

impl GheModel {
    /// Acceleration ratio of the GHE module (Eq. 10):
    ///
    /// ```text
    ///            n · β_cpu
    /// AC_ghe = ─────────────────────────────────────────────────
    ///          (L_before/8 + L_after/8)·β_transfer
    ///              + (32·T_max / L_after)⁻¹… (paper's 32-bit form)
    /// ```
    ///
    /// `n` is the number of HE operations, `l_before`/`l_after` the total
    /// data sizes in **bits** before and after processing. Following the
    /// paper's 32-bit-word formulation, the GPU compute term charges
    /// `β_gpu` per batch of `T_max` concurrent operations.
    pub fn ac_ghe(&self, n: u64, l_before_bits: u64, l_after_bits: u64) -> f64 {
        let t_cpu = n as f64 * self.beta_cpu;
        let transfer =
            (l_before_bits as f64 / 8.0 + l_after_bits as f64 / 8.0) * self.beta_transfer;
        // n operations drain in ceil(n / T_max) waves of β_gpu each.
        let waves = (n as f64 / self.t_max as f64).ceil().max(1.0);
        let compute = waves * self.beta_gpu;
        t_cpu / (transfer + compute)
    }
}

/// Compression ratio of the BC module (paper Eq. 11):
/// `n / ⌈n / ⌊k/(r+⌈log₂p⌉)⌋⌉`.
pub fn compression_ratio(n: u64, key_bits: u32, r_bits: u32, participants: u32) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let per_word = slots_per_word(key_bits, r_bits, participants);
    if per_word == 0 {
        return 1.0;
    }
    let words = n.div_ceil(per_word);
    n as f64 / words as f64
}

/// Plaintext-space utilization (paper Eq. 12).
pub fn plaintext_space_utilization(n: u64, key_bits: u32, r_bits: u32, participants: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let per_word = slots_per_word(key_bits, r_bits, participants);
    if per_word == 0 {
        return 0.0;
    }
    let words = n.div_ceil(per_word);
    let slot = (r_bits + guard_bits(participants)) as f64;
    (n as f64 * slot) / (key_bits as f64 * words as f64)
}

/// Acceleration ratio of the BC module (paper Eq. 13): equals the
/// compression ratio, because BC reduces both communication volume and the
/// number of HE operations by the same factor.
pub fn ac_bc(n: u64, key_bits: u32, r_bits: u32, participants: u32) -> f64 {
    compression_ratio(n, key_bits, r_bits, participants)
}

/// Total acceleration (paper Eq. 14): `AC = AC_ghe · AC_bc`.
pub fn total_acceleration(ac_ghe: f64, ac_bc: f64) -> f64 {
    ac_ghe * ac_bc
}

/// `⌈log₂ p⌉`, minimum 1 — shared with `codec`'s quantizer.
pub fn guard_bits(participants: u32) -> u32 {
    (32 - participants.max(2).next_power_of_two().leading_zeros() - 1).max(1)
}

/// `⌊k / (r + b)⌋` — the paper's per-word slot count (the implementation
/// reserves one slot of headroom; this function reports the paper's
/// theoretical value).
pub fn slots_per_word(key_bits: u32, r_bits: u32, participants: u32) -> u64 {
    (key_bits / (r_bits + guard_bits(participants))) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_compression_figures() {
        // Paper Sec. IV-C: "If we use r + b = 32 bits, for homomorphic
        // encryption with key size k = 1024, we can pack 32 plaintexts
        // into a single one and theoretically achieves compression rate of
        // 32×, 64× at 2048 key size, and 128× at 4096 key size."
        assert_eq!(slots_per_word(1024, 30, 4), 32);
        assert_eq!(slots_per_word(2048, 30, 4), 64);
        assert_eq!(slots_per_word(4096, 30, 4), 128);
        let n = 32 * 1000;
        assert!((compression_ratio(n, 1024, 30, 4) - 32.0).abs() < 1e-9);
        assert!((compression_ratio(n * 2, 2048, 30, 4) - 64.0).abs() < 1e-9);
        assert!((compression_ratio(n * 4, 4096, 30, 4) - 128.0).abs() < 1e-9);
    }

    #[test]
    fn compression_ratio_bounded_by_slot_count() {
        for n in [1u64, 10, 31, 32, 33, 100_000] {
            let r = compression_ratio(n, 1024, 30, 4);
            assert!(r >= 1.0 && r <= 32.0, "n={n}: {r}");
        }
        assert_eq!(compression_ratio(0, 1024, 30, 4), 1.0);
    }

    #[test]
    fn psu_bounded_by_one_and_improves_with_fill() {
        let sparse = plaintext_space_utilization(1, 1024, 30, 4);
        let dense = plaintext_space_utilization(32 * 50, 1024, 30, 4);
        assert!(sparse > 0.0 && sparse < dense);
        assert!(dense <= 1.0 + 1e-12);
        assert_eq!(plaintext_space_utilization(0, 1024, 30, 4), 0.0);
    }

    #[test]
    fn ac_bc_equals_compression_ratio() {
        assert_eq!(
            ac_bc(1000, 2048, 30, 4),
            compression_ratio(1000, 2048, 30, 4)
        );
    }

    #[test]
    fn ghe_model_favors_gpu_for_large_batches() {
        let model = GheModel {
            beta_cpu: 2.7e-3,     // ~370 ops/s at 1024 bits (Table IV FATE)
            beta_transfer: 6e-11, // 16 GB/s
            beta_gpu: 1.9,        // one full wave of 1024-bit ops
            t_max: 82 * 1536,
        };
        // A batch of 100k encryptions (256-byte ciphertexts out).
        let n = 100_000u64;
        let ac = model.ac_ghe(n, n * 32, n * 2048);
        assert!(ac > 50.0, "GHE acceleration too small: {ac}");
        // A single operation cannot amortize the transfer + wave cost.
        let ac1 = model.ac_ghe(1, 32, 2048);
        assert!(ac1 < ac);
    }

    #[test]
    fn total_acceleration_multiplies() {
        assert_eq!(total_acceleration(100.0, 32.0), 3200.0);
    }

    #[test]
    fn guard_bits_matches_codec() {
        for p in [1u32, 2, 3, 4, 5, 16, 64, 100] {
            let cfg = codec::QuantizerConfig {
                alpha: 1.0,
                r_bits: 8,
                participants: p,
                clip: false,
            };
            assert_eq!(guard_bits(p), cfg.guard_bits(), "p={p}");
        }
    }
}
