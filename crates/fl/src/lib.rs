//! The federated-learning substrate for the FLBooster reproduction.
//!
//! The paper evaluates FLBooster by plugging it into FATE and training
//! four standard FL models on three datasets (Sec. VI). This crate
//! provides everything that evaluation needs, from scratch:
//!
//! - [`data`]: deterministic dataset generators with the statistical
//!   profiles of RCV1 / Avazu / LEAF-Synthetic, plus horizontal and
//!   vertical partitioners.
//! - [`models`]: the four benchmark models — Homo LR, Hetero LR, Hetero
//!   SBT (SecureBoost), and Hetero NN (split network) — implemented as
//!   federated training protocols over encrypted exchanges.
//! - [`optim`]: SGD and Adam with L2 regularization (paper Sec. VI-B
//!   parameter settings).
//! - [`net`]: a byte- and message-accurate network simulator
//!   (Gigabit-Ethernet profile, per-ciphertext serialization overheads,
//!   optional packet loss with retry).
//! - [`backend`]: the acceleration systems under test — **FATE** (CPU HE,
//!   no compression), **HAFLO** (GPU HE, no compression), **FLBooster**
//!   (GPU HE + batch compression), and the two ablations `w/o GHE` and
//!   `w/o BC` of the paper's Table V.
//! - [`train`]: the epoch loop with the HE / communication / other time
//!   attribution of the paper's Fig. 1 and Table VI.
//! - [`metrics`]: convergence bias (paper Eq. 15), throughput, and epoch
//!   summaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod data;
mod error;
pub mod metrics;
pub mod models;
pub mod net;
pub mod optim;
pub mod topology;
pub mod train;

pub use backend::{Accelerator, BackendKind};
pub use error::{Error, Result};
pub use metrics::{EpochBreakdown, TrainReport};
pub use net::{Network, NetworkConfig};
pub use topology::AggregationTopology;
