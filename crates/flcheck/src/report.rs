//! Findings and report serialization (human text + hand-rolled JSON —
//! the crate carries no serde).
//!
//! The JSON report is **schema 6**: every finding carries a `chain`
//! array (empty for intraprocedural rules, the full call/lock chain for
//! the interprocedural rules), findings are sorted by (file, line, rule,
//! message) so output is byte-identical regardless of scan order or
//! thread count, and the summary enumerates **every** known rule with an
//! explicit count (zero included) — so a gate greping for one rule's
//! count cannot silently miss a rule the analyzer stopped running.
//! Schema 4 added the determinism-flow rule `nondet-in-result` and the
//! guard-escape rule `guard-escape`; schema 5 added the closure-capture
//! race family (`race-shared-mut`, `race-unsynced-write`,
//! `race-cell-steal`) and the integer-width rule `lossy-narrow`;
//! schema 6 adds the unit-flow family (`unit-mismatch`,
//! `unit-unconverted`, `charge-unphased`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// JSON report schema version emitted by [`Report::render_json`].
pub const SCHEMA_VERSION: u32 = 6;

/// Every rule id the analyzer can emit, sorted. The schema-6 summary
/// lists each with an explicit (possibly zero) count; keep in sync with
/// the rule table in the crate docs.
pub const ALL_RULES: &[&str] = &[
    "charge-unphased",
    "ct-branch",
    "ct-compare",
    "ct-return",
    "ct-shortcircuit",
    "ct-taint",
    "guard-across-steal",
    "guard-escape",
    "ld-wait",
    "lock-across-hotpath",
    "lock-cycle",
    "lossy-narrow",
    "nondet-in-result",
    "pf-assert",
    "pf-expect",
    "pf-index",
    "pf-panic",
    "pf-reach",
    "pf-unwrap",
    "race-cell-steal",
    "race-shared-mut",
    "race-unsynced-write",
    "stale-estimate",
    "uncharged-work",
    "unit-mismatch",
    "unit-unconverted",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `pf-unwrap`.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Call chain for interprocedural findings (`pf-reach`, propagated
    /// `ct-taint`), outermost first; empty for single-site findings.
    pub chain: Vec<String>,
}

impl Finding {
    /// Convenience constructor (no chain).
    pub fn new(rule: &str, file: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Constructor for interprocedural findings carrying a call chain.
    pub fn with_chain(
        rule: &str,
        file: &str,
        line: u32,
        message: impl Into<String>,
        chain: Vec<String>,
    ) -> Finding {
        Finding {
            chain,
            ..Finding::new(rule, file, line, message)
        }
    }
}

/// A full analysis report.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Canonical ordering so output is diff-stable across scan orders and
    /// thread counts.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
        });
    }

    /// Count of findings per rule id.
    pub fn by_rule(&self) -> BTreeMap<&str, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        map
    }

    /// Human-readable rendering, one line per finding (plus its call
    /// chain, when present) and a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            for (depth, hop) in f.chain.iter().enumerate() {
                let _ = writeln!(out, "  {}-> {}", "  ".repeat(depth), hop);
            }
        }
        if self.findings.is_empty() {
            let _ = writeln!(
                out,
                "flcheck: OK — {} files scanned, 0 findings",
                self.files_scanned
            );
        } else {
            let _ = writeln!(
                out,
                "flcheck: FAIL — {} finding(s) in {} files scanned",
                self.findings.len(),
                self.files_scanned
            );
            for (rule, count) in self.by_rule() {
                let _ = writeln!(out, "  {rule}: {count}");
            }
        }
        out
    }

    /// Machine-readable JSON rendering (schema [`SCHEMA_VERSION`]).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{\n  \"schema\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"chain\": [",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
            for (j, hop) in f.chain.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(hop));
            }
            out.push_str("]}");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"summary\": {");
        let _ = write!(out, "\"total\": {}", self.findings.len());
        let mut counts: BTreeMap<&str, usize> = ALL_RULES.iter().map(|r| (*r, 0)).collect();
        for (rule, count) in self.by_rule() {
            counts.insert(rule, count);
        }
        for (rule, count) in counts {
            let _ = write!(out, ", {}: {}", json_str(rule), count);
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_structure() {
        let mut r = Report {
            findings: vec![Finding::new("pf-unwrap", "a \"b\".rs", 3, "line1\nline2")],
            files_scanned: 2,
        };
        r.sort();
        let j = r.render_json();
        assert!(j.contains("\"schema\": 6"));
        assert!(j.contains("\"rule\": \"pf-unwrap\""));
        assert!(j.contains("a \\\"b\\\".rs"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"chain\": []"));
        assert!(j.contains("\"total\": 1"));
        assert!(j.contains("\"pf-unwrap\": 1"));
    }

    #[test]
    fn summary_enumerates_every_rule_with_zero_counts() {
        let r = Report {
            findings: vec![Finding::new("lock-cycle", "a.rs", 1, "cycle")],
            files_scanned: 1,
        };
        let j = r.render_json();
        for rule in ALL_RULES {
            assert!(
                j.contains(&format!("\"{rule}\": ")),
                "summary missing {rule}: {j}"
            );
        }
        assert!(j.contains("\"lock-cycle\": 1"));
        assert!(j.contains("\"uncharged-work\": 0"));
        assert!(j.contains("\"ld-wait\": 0"));
        assert!(j.contains("\"nondet-in-result\": 0"));
        assert!(j.contains("\"guard-escape\": 0"));
        assert!(j.contains("\"race-shared-mut\": 0"));
        assert!(j.contains("\"race-unsynced-write\": 0"));
        assert!(j.contains("\"race-cell-steal\": 0"));
        assert!(j.contains("\"lossy-narrow\": 0"));
        assert!(j.contains("\"unit-mismatch\": 0"));
        assert!(j.contains("\"unit-unconverted\": 0"));
        assert!(j.contains("\"charge-unphased\": 0"));
    }

    #[test]
    fn chains_render_in_json_and_human_output() {
        let mut r = Report {
            findings: vec![Finding::with_chain(
                "pf-reach",
                "crates/core/src/a.rs",
                4,
                "public `api` can reach a panic",
                vec![
                    "api (crates/core/src/a.rs:4)".to_string(),
                    "deep (crates/core/src/a.rs:9)".to_string(),
                ],
            )],
            files_scanned: 1,
        };
        r.sort();
        let j = r.render_json();
        assert!(j.contains(
            "\"chain\": [\"api (crates/core/src/a.rs:4)\", \"deep (crates/core/src/a.rs:9)\"]"
        ));
        let h = r.render_human();
        assert!(h.contains("-> api (crates/core/src/a.rs:4)"));
        assert!(h.contains("-> deep (crates/core/src/a.rs:9)"));
    }

    #[test]
    fn sort_is_by_file_line_rule_message() {
        let mut r = Report {
            findings: vec![
                Finding::new("z", "b.rs", 1, ""),
                Finding::new("a", "a.rs", 9, ""),
                Finding::new("a", "a.rs", 2, "second"),
                Finding::new("a", "a.rs", 2, "first"),
            ],
            files_scanned: 2,
        };
        r.sort();
        let order: Vec<_> = r
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line, f.message.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "first"),
                ("a.rs", 2, "second"),
                ("a.rs", 9, ""),
                ("b.rs", 1, "")
            ]
        );
    }

    #[test]
    fn empty_report_renders_ok() {
        let r = Report {
            findings: vec![],
            files_scanned: 5,
        };
        assert!(r.render_human().contains("OK"));
        assert!(r.render_json().contains("\"total\": 0"));
    }
}
