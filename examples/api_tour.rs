//! A tour of the paper's Table-I API surface: vectorized arithmetic,
//! modular operations, and the Paillier/RSA wrappers — dispatched through
//! the simulated GPU.
//!
//! ```text
//! cargo run --release --example api_tour
//! ```

use std::sync::Arc;

use flbooster_core::api::FlBoosterApi;
use gpu_sim::{Device, DeviceConfig};
use mpint::Natural;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn nats(vals: &[u64]) -> Vec<Natural> {
    vals.iter().map(|&v| Natural::from(v)).collect()
}

fn main() {
    let device = Arc::new(Device::new(DeviceConfig::rtx3090()));
    let api = FlBoosterApi::with_device(Arc::clone(&device));
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    // --- fundamental vector arithmetic (add/sub/mul/div) ---
    let a = nats(&[100, 200, 300]);
    let b = nats(&[7, 11, 13]);
    println!(
        "add -> {:?}",
        api.add(&a, &b)
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "mul -> {:?}",
        api.mul(&a, &b)
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );

    // --- modular operations (mod, mod_inv, mod_mul, mod_pow) ---
    let n = Natural::from(97u64);
    println!(
        "mod 97 -> {:?}",
        api.mod_(&a, &n)
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
    );
    let inv = api.mod_inv(&nats(&[3, 5, 7]), &n).unwrap();
    println!(
        "mod_inv of [3,5,7] mod 97 -> {:?}",
        inv.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
    let mp = api.mod_pow(&nats(&[2, 3]), &nats(&[10, 20]), &n).unwrap();
    println!(
        "mod_pow -> {:?}",
        mp.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // --- Paillier: key_gen / encrypt / add / decrypt ---
    let pkeys = api.paillier_key_gen(&mut rng, 256).unwrap();
    let ms = nats(&[1111, 2222, 3333]);
    let cts = api.paillier_encrypt(&pkeys.public, &ms, 9).unwrap();
    let doubled = api.paillier_add(&pkeys.public, &cts, &cts).unwrap();
    let plain = api.paillier_decrypt(&pkeys.private, &doubled).unwrap();
    println!(
        "Paillier: E(m)+E(m) decrypts to {:?}",
        plain.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // --- RSA: key_gen / encrypt / mul / decrypt ---
    let rkeys = api.rsa_key_gen(&mut rng, 256).unwrap();
    let xs = nats(&[6, 9]);
    let cts = api.rsa_encrypt(&rkeys.public, &xs).unwrap();
    let squared = api.rsa_mul(&rkeys.public, &cts, &cts).unwrap();
    let plain = api.rsa_decrypt(&rkeys.private, &squared).unwrap();
    println!(
        "RSA: E(m)*E(m) decrypts to {:?}",
        plain.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // --- the GPU saw every array op ---
    let stats = device.stats();
    println!(
        "\nsimulated GPU: {} launches, {} items, mean SM utilization {:.1}%",
        stats.launches,
        stats.items,
        stats.mean_sm_utilization() * 100.0
    );
}
