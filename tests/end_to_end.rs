//! End-to-end integration tests spanning every crate: encrypted
//! federated training must match its plaintext counterpart within the
//! quantization bound, all backends must agree on results while
//! disagreeing (correctly) on cost, and the full platform pipeline must
//! be self-consistent.

use fl::data::generators::DatasetSpec;
use fl::models::{HeteroLr, HeteroNn, HeteroSbt, HomoLr};
use fl::train::{train, FlEnv, FlModel, TrainConfig};
use fl::{Accelerator, BackendKind};
use flbooster_core::FlBooster;
use he::paillier::PaillierKeyPair;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn keys() -> PaillierKeyPair {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE2E);
    PaillierKeyPair::generate(&mut rng, 128).unwrap()
}

fn dataset(features: usize, instances: usize) -> fl::data::Dataset {
    let mut spec = DatasetSpec::synthetic();
    spec.features = features;
    spec.nnz_per_row = features;
    spec.instances = instances;
    spec.generate(1.0)
}

#[test]
fn encrypted_fedavg_equals_plaintext_fedavg_within_quantization() {
    // Train Homo LR federated (encrypted) and compare its weights with a
    // plaintext centralized run using the same batching and optimizer.
    let data = dataset(24, 200);
    let cfg = TrainConfig {
        batch_size: 50,
        ..TrainConfig::default()
    };
    let env = FlEnv::new(
        Accelerator::new(BackendKind::FlBooster, keys(), 4).unwrap(),
        1,
    );
    let mut fed = HomoLr::new(&data, 4, &cfg);
    fed.run_epoch(&env, &cfg, 0).unwrap();

    // Plaintext reference: same protocol via the mathematical definition —
    // average the 4 clients' exact batch gradients and step the same Adam.
    use fl::data::horizontal_split;
    use fl::optim::{Adam, Optimizer};
    use fl::train::sigmoid;
    let parts = horizontal_split(&data, 4);
    let mut w = vec![0.0; data.num_features];
    let mut opt = Adam::new(cfg.learning_rate);
    opt.l2 = cfg.l2;
    for round in 0..(parts[0].len().div_ceil(cfg.batch_size)) {
        let mut grad = vec![0.0; w.len()];
        for part in &parts {
            let lo = (round * cfg.batch_size).min(part.len());
            let hi = ((round + 1) * cfg.batch_size).min(part.len());
            let count = (hi - lo).max(1) as f64;
            for i in lo..hi {
                let p = sigmoid(part.rows[i].dot(&w));
                part.rows[i].axpy_into((p - part.labels[i]) / count, &mut grad);
            }
        }
        let grad: Vec<f64> = grad.iter().map(|g| g / parts.len() as f64).collect();
        opt.step(&mut w, &grad);
    }

    // Quantization error per aggregated component is bounded; after Adam
    // normalization the weight difference stays tiny.
    let max_diff = fed
        .weights()
        .iter()
        .zip(&w)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 2e-3, "weights diverged by {max_diff}");
}

#[test]
fn all_backends_produce_identical_models() {
    let data = dataset(16, 120);
    let cfg = TrainConfig {
        batch_size: 40,
        ..TrainConfig::default()
    };
    let shared = keys();
    let mut final_losses = Vec::new();
    for kind in [
        BackendKind::Fate,
        BackendKind::Haflo,
        BackendKind::FlBooster,
        BackendKind::WithoutGhe,
        BackendKind::WithoutBc,
    ] {
        let env = FlEnv::new(Accelerator::new(kind, shared.clone(), 4).unwrap(), 1);
        let mut model = HomoLr::new(&data, 4, &cfg);
        model.run_epoch(&env, &cfg, 0).unwrap();
        final_losses.push(model.loss());
    }
    for l in &final_losses[1..] {
        assert_eq!(*l, final_losses[0], "backends disagreed on the model");
    }
}

#[test]
fn backend_cost_ordering_holds_across_models() {
    // FATE must be the slowest and FLBooster the fastest, for every model.
    let data = dataset(16, 96);
    let cfg = TrainConfig {
        batch_size: 48,
        ..TrainConfig::default()
    };
    let shared = keys();

    type Builder = Box<dyn Fn(&fl::data::Dataset, &TrainConfig) -> Box<dyn FlModel>>;
    let builders: Vec<(&str, Builder)> = vec![
        (
            "homo-lr",
            Box::new(|d: &fl::data::Dataset, c: &TrainConfig| {
                Box::new(HomoLr::new(d, 4, c)) as Box<dyn FlModel>
            }),
        ),
        (
            "hetero-lr",
            Box::new(|d, c| Box::new(HeteroLr::new(d, 4, c).unwrap())),
        ),
        (
            "hetero-sbt",
            Box::new(|d, c| Box::new(HeteroSbt::new(d, 4, c).unwrap())),
        ),
        (
            "hetero-nn",
            Box::new(|d, c| Box::new(HeteroNn::new(d, 4, c).unwrap())),
        ),
    ];

    for (name, build) in &builders {
        let mut totals = Vec::new();
        for kind in BackendKind::headline() {
            let env = FlEnv::new(Accelerator::new(kind, shared.clone(), 4).unwrap(), 1);
            let mut model = build(&data, &cfg);
            let r = model.run_epoch(&env, &cfg, 0).unwrap();
            totals.push(r.breakdown.total_seconds());
        }
        assert!(
            totals[0] > totals[2],
            "{name}: FATE ({}) must be slower than FLBooster ({})",
            totals[0],
            totals[2]
        );
        assert!(
            totals[1] > totals[2],
            "{name}: HAFLO ({}) must be slower than FLBooster ({})",
            totals[1],
            totals[2]
        );
    }
}

#[test]
fn training_to_convergence_stops_on_tolerance() {
    let data = dataset(8, 64);
    let cfg = TrainConfig {
        batch_size: 64,
        max_epochs: 50,
        tolerance: 1e-3, // loose tolerance converges in a few epochs
        learning_rate: 0.3,
        ..TrainConfig::default()
    };
    let env = FlEnv::new(
        Accelerator::new(BackendKind::FlBooster, keys(), 4).unwrap(),
        1,
    );
    let mut model = HomoLr::new(&data, 4, &cfg);
    let report = train(&mut model, &env, &cfg).unwrap();
    assert!(report.converged, "should hit the tolerance rule");
    assert!(report.epochs.len() < 50, "converged before the epoch cap");
    // Loss is monotone non-increasing in this convex setting (up to
    // quantization jitter).
    for w in report.epochs.windows(2) {
        assert!(w[1].loss <= w[0].loss + 1e-3);
    }
}

#[test]
fn platform_pipeline_matches_direct_he_path() {
    // The FlBooster pipeline (quantize→pack→encrypt→aggregate→decrypt)
    // must agree with manually composing codec + he.
    let mut rng = ChaCha8Rng::seed_from_u64(0xAB);
    let keys = PaillierKeyPair::generate(&mut rng, 256).unwrap();
    let platform = FlBooster::builder()
        .key_bits(256)
        .participants(2)
        .build_with_keys(keys.clone())
        .unwrap();

    let grads: Vec<f64> = (0..40).map(|i| ((i as f64) * 0.1).sin() * 0.8).collect();
    let (cts, _) = platform.encrypt_gradients(&grads, 5).unwrap();
    let (via_pipeline, _) = platform.decrypt_gradients(&cts, grads.len(), 1).unwrap();

    // Manual path with the same codec.
    let packed = platform.codec.pack(&grads).unwrap();
    let manual: Vec<f64> = {
        let mut words = Vec::new();
        for (i, word) in packed.iter().enumerate() {
            let c = keys
                .public
                .encrypt(&word.clone(), &mut ChaCha8Rng::seed_from_u64(i as u64))
                .unwrap();
            words.push(keys.private.decrypt_crt(&c).unwrap());
        }
        platform.codec.unpack(&words, grads.len()).unwrap()
    };
    assert_eq!(
        via_pipeline, manual,
        "pipeline and manual paths must agree exactly"
    );
}

#[test]
fn hetero_models_train_through_all_ablations() {
    let data = dataset(12, 80);
    let cfg = TrainConfig {
        batch_size: 40,
        ..TrainConfig::default()
    };
    let shared = keys();
    for kind in BackendKind::ablations() {
        let env = FlEnv::new(Accelerator::new(kind, shared.clone(), 3).unwrap(), 2);
        let mut lr = HeteroLr::new(&data, 3, &cfg).unwrap();
        let before = lr.loss();
        lr.run_epoch(&env, &cfg, 0).unwrap();
        assert!(
            lr.loss() < before,
            "{}: hetero LR failed to learn",
            kind.name()
        );

        let mut sbt = HeteroSbt::new(&data, 3, &cfg).unwrap();
        let before = sbt.loss();
        sbt.run_epoch(&env, &cfg, 0).unwrap();
        assert!(sbt.loss() < before, "{}: SBT failed to learn", kind.name());
    }
}

#[test]
fn phase_breakdown_sums_to_the_component_totals_for_every_model() {
    // The six-phase re-attribution must account for exactly the seconds
    // already charged to Others/HE/Comm — nothing gained, nothing lost —
    // and sequential paths must report elapsed == work (no overlap).
    let data = dataset(16, 96);
    let cfg = TrainConfig {
        batch_size: 48,
        ..TrainConfig::default()
    };
    let shared = keys();

    type Builder = Box<dyn Fn(&fl::data::Dataset, &TrainConfig) -> Box<dyn FlModel>>;
    let builders: Vec<(&str, Builder)> = vec![
        (
            "homo-lr",
            Box::new(|d: &fl::data::Dataset, c: &TrainConfig| {
                Box::new(HomoLr::new(d, 4, c)) as Box<dyn FlModel>
            }),
        ),
        (
            "hetero-lr",
            Box::new(|d, c| Box::new(HeteroLr::new(d, 4, c).unwrap())),
        ),
        (
            "hetero-sbt",
            Box::new(|d, c| Box::new(HeteroSbt::new(d, 4, c).unwrap())),
        ),
        (
            "hetero-nn",
            Box::new(|d, c| Box::new(HeteroNn::new(d, 4, c).unwrap())),
        ),
    ];

    for (name, build) in &builders {
        let env = FlEnv::new(
            Accelerator::new(BackendKind::FlBooster, shared.clone(), 4).unwrap(),
            1,
        );
        let mut model = build(&data, &cfg);
        let b = model.run_epoch(&env, &cfg, 0).unwrap().breakdown;
        let total = b.total_seconds();
        let phase_total = b.phases.total();
        assert!(total > 0.0, "{name}: nothing charged");
        // Same charges, different summation grouping: equal to ulps.
        assert!(
            (phase_total - total).abs() <= 1e-9 * total,
            "{name}: phases {phase_total} != components {total}"
        );
        assert!(
            (b.round_seconds - total).abs() <= 1e-9 * total,
            "{name}: sequential elapsed {} != work {total}",
            b.round_seconds
        );
        assert!((b.overlap_speedup() - 1.0).abs() < 1e-6, "{name}");
    }

    // The pipelined engine keeps the same phase accounting but reports a
    // shorter elapsed round, so the speedup turns real.
    let cfg_engine = TrainConfig {
        engine: Some(fl::EngineConfig::default()),
        ..cfg.clone()
    };
    let env = FlEnv::new(
        Accelerator::new(BackendKind::FlBooster, shared, 4).unwrap(),
        1,
    );
    let mut model = HomoLr::new(&data, 4, &cfg_engine);
    let b = model.run_epoch(&env, &cfg_engine, 0).unwrap().breakdown;
    let total = b.total_seconds();
    assert!((b.phases.total() - total).abs() <= 1e-9 * total);
    assert!(b.round_seconds < total, "engine must overlap phases");
    assert!(b.overlap_speedup() > 1.0);
}
