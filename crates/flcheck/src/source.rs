//! Per-file source model: lexed tokens plus parsed `flcheck:` directives,
//! extracted function spans, and `#[cfg(test)]` / `#[test]` regions.
//!
//! Directive grammar (inside any `//` or `/* */` comment):
//!
//! ```text
//! flcheck: ct-fn                      mark the next `fn` as a constant-time region
//! flcheck: secret(a, b)               mark params/locals of the next `fn` as secret
//! flcheck: allow(rule-a, rule-b)      suppress rules on this line and the next
//! flcheck: allow-file(rule-a)         suppress a rule for the whole file
//! flcheck: lock-order(a < b < c)      declare a canonical lock acquisition order
//! flcheck: lock(a, b)                 the next `fn` acquires and holds these locks
//!                                     for its whole body (an acquire effect the
//!                                     token scan cannot see, e.g. behind FFI)
//! flcheck: mac-prim                   the next `fn` performs Montgomery MACs
//!                                     (a cost-model work source)
//! flcheck: charge-sink                the next `fn` records simulated-time cost
//!                                     (a cost-model charge sink)
//! flcheck: estimates(kernel, arity)   the next `fn` is the op-count estimate
//!                                     paired with `kernel` (which must exist
//!                                     with that many parameters); repeatable
//! flcheck: det-sink                   the next `fn` produces result bytes
//!                                     (report/ciphertext/bench content) that
//!                                     must be deterministic at any thread count
//! flcheck: det-absorb                 the next `fn` only *measures*
//!                                     nondeterminism (timings, pool width);
//!                                     its sources never reach result bytes
//! flcheck: nondet(description)        the next `fn` contains a nondeterminism
//!                                     source the token scan cannot see
//!                                     (e.g. behind FFI); repeatable
//! flcheck: widen-ok(a, b)             narrowing `as` casts in the next `fn`
//!                                     whose source expression mentions one of
//!                                     these identifiers are value-range safe
//!                                     (the named quantity provably fits)
//! flcheck: narrow(description)        the next `fn` performs intentional,
//!                                     justified narrowing (e.g. masked limb
//!                                     splitting); all its narrowing casts
//!                                     are sanctioned
//! flcheck: unit(name, dim)            declare the physical unit of the next
//!                                     fn's parameter `name` (or of its return
//!                                     value when `name` is `return`); `dim`
//!                                     is one of seconds, bytes, limb_mults,
//!                                     messages, dimensionless; repeatable
//! flcheck: convert(from->to)          the next `fn` is a sanctioned dimension
//!                                     converter: it consumes `from`-united
//!                                     inputs and returns a `to`-united value
//!                                     (e.g. a bytes->seconds transfer-time
//!                                     estimator); repeatable
//! ```

use crate::lexer::{lex, Comment, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// A function item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{` (exclusive of the brace).
    pub body_start: usize,
    /// Token index of the matching `}` (exclusive).
    pub body_end: usize,
    /// Marked with `// flcheck: ct-fn`.
    pub is_ct: bool,
    /// Identifiers named by a `// flcheck: secret(..)` marker on this fn:
    /// parameters or locals whose values are secret (taint sources).
    pub secrets: Vec<String>,
    /// Locks named by a `// flcheck: lock(..)` marker: the fn acquires and
    /// holds each of them for its whole body (an acquire effect).
    pub locks: Vec<String>,
    /// Marked with `// flcheck: mac-prim` (performs Montgomery MACs).
    pub is_mac_prim: bool,
    /// Marked with `// flcheck: charge-sink` (records simulated-time cost).
    pub is_charge_sink: bool,
    /// `// flcheck: estimates(kernel, arity)` pairings: this fn estimates the
    /// op count of `kernel`, which must exist with `arity` parameters.
    pub estimates: Vec<(String, usize)>,
    /// Marked with `// flcheck: det-sink` (produces result bytes that must
    /// be deterministic at any thread count).
    pub is_det_sink: bool,
    /// Marked with `// flcheck: det-absorb` (measures nondeterminism
    /// without letting it reach result bytes).
    pub is_det_absorb: bool,
    /// Descriptions from `// flcheck: nondet(..)` markers: opaque
    /// nondeterminism sources the token scan cannot see.
    pub nondets: Vec<String>,
    /// Identifiers named by `// flcheck: widen-ok(..)` markers: narrowing
    /// casts whose source expression mentions one of these are exempt
    /// (the named quantity is known to fit the target width).
    pub widen_ok: Vec<String>,
    /// Descriptions from `// flcheck: narrow(..)` markers: the fn performs
    /// intentional narrowing and all its narrowing casts are sanctioned.
    pub narrows: Vec<String>,
    /// `// flcheck: unit(name, dim)` declarations: `(name, dim)` pairs
    /// fixing the physical unit of a parameter (or of the return value,
    /// when `name` is `return`). Explicit declarations beat suffix
    /// inference.
    pub units: Vec<(String, String)>,
    /// `// flcheck: convert(from->to)` declarations: the fn is a
    /// sanctioned dimension converter from `from`-united inputs to a
    /// `to`-united return value.
    pub converts: Vec<(String, String)>,
}

/// A declared lock-order chain with the line it was declared on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrder {
    /// 1-based line of the `lock-order(..)` directive.
    pub line: u32,
    /// The chain, outermost first, e.g. `["memory", "stats"]`.
    pub chain: Vec<String>,
}

/// A fully analyzed source file, ready for the rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (forward slashes).
    pub rel_path: String,
    /// Comment-free token stream.
    pub tokens: Vec<Token>,
    /// Per-line rule suppressions: line -> set of rule ids.
    pub allow_lines: BTreeMap<u32, BTreeSet<String>>,
    /// File-wide rule suppressions.
    pub allow_file: BTreeSet<String>,
    /// Declared lock-order chains, e.g. `memory < stats`.
    pub lock_orders: Vec<LockOrder>,
    /// Extracted function spans (including `is_ct` marking).
    pub fns: Vec<FnSpan>,
    /// Token-index ranges `[start, end)` that belong to test code.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            tokens: lexed.tokens,
            allow_lines: BTreeMap::new(),
            allow_file: BTreeSet::new(),
            lock_orders: Vec::new(),
            fns: Vec::new(),
            test_regions: Vec::new(),
        };
        let markers = file.parse_directives(&lexed.comments);
        file.extract_fns(&markers);
        file.extract_test_regions();
        file
    }

    /// True when `rule` is suppressed at `line` (by a line allow on the
    /// same or the preceding line, or by a file-wide allow).
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        if self.allow_file.contains(rule) {
            return true;
        }
        self.allow_lines
            .get(&line)
            .is_some_and(|rules| rules.contains(rule))
    }

    /// True when token index `idx` falls inside a test region.
    pub fn in_test_region(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// Parses all directives out of the comments; returns the fn-attached
    /// markers (`ct-fn`, `secret(..)`) with the lines they sit on.
    fn parse_directives(&mut self, comments: &[Comment]) -> Vec<FnMarker> {
        let mut markers = Vec::new();
        for c in comments {
            // Anchor at the start (after doc-comment markers) so prose that
            // merely *mentions* a directive does not register one.
            let anchored = c
                .text
                .trim_start_matches(|ch| matches!(ch, '!' | '/' | ' ' | '\t'));
            let Some(body) = anchored.strip_prefix("flcheck:") else {
                continue;
            };
            let body = body.trim();
            if body.starts_with("ct-fn") {
                markers.push(FnMarker {
                    line: c.line,
                    kind: MarkerKind::Ct,
                });
            } else if body.starts_with("mac-prim") {
                markers.push(FnMarker {
                    line: c.line,
                    kind: MarkerKind::MacPrim,
                });
            } else if body.starts_with("charge-sink") {
                markers.push(FnMarker {
                    line: c.line,
                    kind: MarkerKind::ChargeSink,
                });
            } else if body.starts_with("det-sink") {
                markers.push(FnMarker {
                    line: c.line,
                    kind: MarkerKind::DetSink,
                });
            } else if body.starts_with("det-absorb") {
                markers.push(FnMarker {
                    line: c.line,
                    kind: MarkerKind::DetAbsorb,
                });
            } else if let Some(args) = strip_call(body, "nondet") {
                let desc = args.trim();
                if !desc.is_empty() {
                    markers.push(FnMarker {
                        line: c.line,
                        kind: MarkerKind::Nondet(desc.to_string()),
                    });
                }
            } else if let Some(args) = strip_call(body, "widen-ok") {
                let names = split_names(args);
                if !names.is_empty() {
                    markers.push(FnMarker {
                        line: c.line,
                        kind: MarkerKind::WidenOk(names),
                    });
                }
            } else if let Some(args) = strip_call(body, "narrow") {
                let desc = args.trim();
                if !desc.is_empty() {
                    markers.push(FnMarker {
                        line: c.line,
                        kind: MarkerKind::Narrow(desc.to_string()),
                    });
                }
            } else if let Some(args) = strip_call(body, "unit") {
                let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                if let [name, dim] = parts[..] {
                    if !name.is_empty() && UNIT_DIMS.contains(&dim) {
                        markers.push(FnMarker {
                            line: c.line,
                            kind: MarkerKind::Unit(name.to_string(), dim.to_string()),
                        });
                    }
                }
            } else if let Some(args) = strip_call(body, "convert") {
                let parts: Vec<&str> = args.split("->").map(str::trim).collect();
                if let [from, to] = parts[..] {
                    if UNIT_DIMS.contains(&from) && UNIT_DIMS.contains(&to) && from != to {
                        markers.push(FnMarker {
                            line: c.line,
                            kind: MarkerKind::Convert(from.to_string(), to.to_string()),
                        });
                    }
                }
            } else if let Some(args) = strip_call(body, "secret") {
                let names = split_names(args);
                if !names.is_empty() {
                    markers.push(FnMarker {
                        line: c.line,
                        kind: MarkerKind::Secrets(names),
                    });
                }
            } else if let Some(args) = strip_call(body, "estimates") {
                let parts: Vec<&str> = args.split(',').map(str::trim).collect();
                if let [kernel, arity] = parts[..] {
                    if let Ok(arity) = arity.parse::<usize>() {
                        if !kernel.is_empty() {
                            markers.push(FnMarker {
                                line: c.line,
                                kind: MarkerKind::Estimates(kernel.to_string(), arity),
                            });
                        }
                    }
                }
            } else if let Some(args) = strip_call(body, "allow-file") {
                for rule in args.split(',') {
                    self.allow_file.insert(rule.trim().to_string());
                }
            } else if let Some(args) = strip_call(body, "allow") {
                for rule in args.split(',') {
                    let rule = rule.trim().to_string();
                    // Applies to the comment's own line (trailing comment)
                    // and the next line (standalone comment above code).
                    for line in [c.line, c.line + 1] {
                        self.allow_lines
                            .entry(line)
                            .or_default()
                            .insert(rule.clone());
                    }
                }
            } else if let Some(args) = strip_call(body, "lock-order") {
                let chain: Vec<String> = args.split('<').map(|s| s.trim().to_string()).collect();
                if chain.len() >= 2 && chain.iter().all(|s| !s.is_empty()) {
                    self.lock_orders.push(LockOrder {
                        line: c.line,
                        chain,
                    });
                }
            } else if let Some(args) = strip_call(body, "lock") {
                let names = split_names(args);
                if !names.is_empty() {
                    markers.push(FnMarker {
                        line: c.line,
                        kind: MarkerKind::Locks(names),
                    });
                }
            }
        }
        markers
    }

    /// Walks the token stream extracting `fn` items and their body spans.
    fn extract_fns(&mut self, markers: &[FnMarker]) {
        let toks = &self.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if !toks[i].is_ident("fn") {
                i += 1;
                continue;
            }
            let fn_line = toks[i].line;
            // Name is the next identifier (skips nothing in practice).
            let Some(name_idx) = toks[i + 1..]
                .iter()
                .position(|t| t.kind == TokKind::Ident)
                .map(|p| p + i + 1)
            else {
                break;
            };
            let name = toks[name_idx].text.clone();
            // Find the body's `{`: the first brace at zero paren/bracket
            // depth after the signature. A `;` first means a trait method
            // declaration or extern item — no body.
            let mut depth = 0i32;
            let mut j = name_idx + 1;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                match t.kind {
                    TokKind::Open if t.text != "{" => depth += 1,
                    TokKind::Close if t.text != "}" => depth -= 1,
                    TokKind::Open if depth == 0 => {
                        body = Some(j);
                        break;
                    }
                    TokKind::Op if t.text == ";" && depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(body_start) = body else {
                i = j.max(i + 1);
                continue;
            };
            let body_end = match_brace(toks, body_start);
            self.fns.push(FnSpan {
                name,
                line: fn_line,
                body_start: body_start + 1,
                body_end,
                is_ct: false,
                secrets: Vec::new(),
                locks: Vec::new(),
                is_mac_prim: false,
                is_charge_sink: false,
                estimates: Vec::new(),
                is_det_sink: false,
                is_det_absorb: false,
                nondets: Vec::new(),
                widen_ok: Vec::new(),
                narrows: Vec::new(),
                units: Vec::new(),
                converts: Vec::new(),
            });
            i = body_start + 1; // nested fns get their own entries
        }
        // A fn marker applies to the first fn that starts after it.
        for marker in markers {
            if let Some(f) = self
                .fns
                .iter_mut()
                .filter(|f| f.line > marker.line)
                .min_by_key(|f| f.line)
            {
                match &marker.kind {
                    MarkerKind::Ct => f.is_ct = true,
                    MarkerKind::Secrets(names) => f.secrets.extend(names.iter().cloned()),
                    MarkerKind::Locks(names) => f.locks.extend(names.iter().cloned()),
                    MarkerKind::MacPrim => f.is_mac_prim = true,
                    MarkerKind::ChargeSink => f.is_charge_sink = true,
                    MarkerKind::Estimates(kernel, arity) => {
                        f.estimates.push((kernel.clone(), *arity));
                    }
                    MarkerKind::DetSink => f.is_det_sink = true,
                    MarkerKind::DetAbsorb => f.is_det_absorb = true,
                    MarkerKind::Nondet(desc) => f.nondets.push(desc.clone()),
                    MarkerKind::WidenOk(names) => f.widen_ok.extend(names.iter().cloned()),
                    MarkerKind::Narrow(desc) => f.narrows.push(desc.clone()),
                    MarkerKind::Unit(name, dim) => f.units.push((name.clone(), dim.clone())),
                    MarkerKind::Convert(from, to) => f.converts.push((from.clone(), to.clone())),
                }
            }
        }
    }

    /// Finds `#[cfg(test)] mod .. { .. }` blocks and `#[test] fn` /
    /// `#[cfg(test)] fn` bodies.
    fn extract_test_regions(&mut self) {
        let toks = &self.tokens;
        let mut i = 0usize;
        while i + 2 < toks.len() {
            if !(toks[i].is_op("#") && toks[i + 1].text == "[") {
                i += 1;
                continue;
            }
            let attr_end = match_brace(toks, i + 1); // index past `]`
            let inner: Vec<&str> = toks[i + 2..attr_end.saturating_sub(1)]
                .iter()
                .map(|t| t.text.as_str())
                .collect();
            let is_test_attr = inner == ["test"]
                || (inner.len() >= 4
                    && inner[0] == "cfg"
                    && inner.contains(&"test")
                    && !inner.contains(&"not"));
            if !is_test_attr {
                i = attr_end;
                continue;
            }
            // Skip any further attributes between this one and the item.
            let mut k = attr_end;
            while k + 1 < toks.len() && toks[k].is_op("#") && toks[k + 1].text == "[" {
                k = match_brace(toks, k + 1);
            }
            // Find the item's opening `{` (mod body or fn body); a `;`
            // first (e.g. `#[cfg(test)] use ...;`) means no region.
            let mut depth = 0i32;
            let mut open = None;
            while k < toks.len() {
                let t = &toks[k];
                match t.kind {
                    TokKind::Open if t.text != "{" => depth += 1,
                    TokKind::Close if t.text != "}" => depth -= 1,
                    TokKind::Open if depth == 0 => {
                        open = Some(k);
                        break;
                    }
                    TokKind::Op if t.text == ";" && depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = open {
                let close = match_brace(toks, open);
                self.test_regions.push((i, close));
                i = close;
            } else {
                i = k.max(attr_end);
            }
        }
    }
}

/// A directive that attaches to the next `fn` item.
struct FnMarker {
    line: u32,
    kind: MarkerKind,
}

enum MarkerKind {
    Ct,
    Secrets(Vec<String>),
    Locks(Vec<String>),
    MacPrim,
    ChargeSink,
    Estimates(String, usize),
    DetSink,
    DetAbsorb,
    Nondet(String),
    WidenOk(Vec<String>),
    Narrow(String),
    Unit(String, String),
    Convert(String, String),
}

/// The dimension names `unit(..)` / `convert(..)` directives accept.
pub const UNIT_DIMS: &[&str] = &[
    "seconds",
    "bytes",
    "limb_mults",
    "messages",
    "dimensionless",
];

/// Splits a comma-separated directive argument list into non-empty names.
fn split_names(args: &str) -> Vec<String> {
    args.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// `strip_call("allow(a, b) trailing", "allow")` -> `Some("a, b")`.
fn strip_call<'a>(body: &'a str, name: &str) -> Option<&'a str> {
    let rest = body.strip_prefix(name)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.split(')').next()
}

/// Given the index of an `Open` token, returns the index one past its
/// matching `Close` (or `tokens.len()` when unbalanced).
pub fn match_brace(tokens: &[Token], open_idx: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in tokens[open_idx..].iter().enumerate() {
        match t.kind {
            TokKind::Open => depth += 1,
            TokKind::Close => {
                depth -= 1;
                if depth == 0 {
                    return open_idx + off + 1;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_parse() {
        let src = "\
// flcheck: allow-file(pf-index)
// flcheck: lock-order(memory < stats)
fn a() {
    x.unwrap(); // flcheck: allow(pf-unwrap)
}
// flcheck: ct-fn
fn b() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allow_file.contains("pf-index"));
        assert_eq!(
            f.lock_orders,
            vec![LockOrder {
                line: 2,
                chain: vec!["memory".to_string(), "stats".to_string()],
            }]
        );
        assert!(f.is_allowed("pf-unwrap", 4));
        assert!(!f.is_allowed("pf-unwrap", 3));
        let b = f.fns.iter().find(|f| f.name == "b").expect("fn b");
        assert!(b.is_ct);
        let a = f.fns.iter().find(|f| f.name == "a").expect("fn a");
        assert!(!a.is_ct);
    }

    #[test]
    fn allow_applies_to_next_line() {
        let src = "fn a() {\n    // flcheck: allow(ct-compare)\n    let x = 1 == 2;\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed("ct-compare", 3));
        assert!(!f.is_allowed("ct-compare", 4));
    }

    #[test]
    fn secret_markers_attach_to_the_next_fn() {
        let src = "\
// flcheck: secret(exp)
// flcheck: secret(key , other)
pub fn ladder(base: u64, exp: u64) {}
fn plain(x: u64) {}
";
        let f = SourceFile::parse("x.rs", src);
        let ladder = f.fns.iter().find(|f| f.name == "ladder").expect("ladder");
        assert_eq!(ladder.secrets, vec!["exp", "key", "other"]);
        assert!(!ladder.is_ct, "secret() does not imply ct-fn");
        let plain = f.fns.iter().find(|f| f.name == "plain").expect("plain");
        assert!(plain.secrets.is_empty());
    }

    #[test]
    fn cost_and_lock_markers_attach_to_the_next_fn() {
        let src = "\
// flcheck: mac-prim
pub fn mont_mul() {}
// flcheck: charge-sink
fn charge() {}
// flcheck: estimates(encrypt, 3)
// flcheck: estimates(decrypt, 2)
pub fn encrypt_op_estimate() -> u64 { 0 }
// flcheck: lock(deques, panic)
fn drain_all() {}
fn unmarked() {}
";
        let f = SourceFile::parse("x.rs", src);
        let by_name = |n: &str| f.fns.iter().find(|f| f.name == n).expect(n);
        assert!(by_name("mont_mul").is_mac_prim);
        assert!(!by_name("mont_mul").is_charge_sink);
        assert!(by_name("charge").is_charge_sink);
        assert_eq!(
            by_name("encrypt_op_estimate").estimates,
            vec![("encrypt".to_string(), 3), ("decrypt".to_string(), 2)]
        );
        assert_eq!(by_name("drain_all").locks, vec!["deques", "panic"]);
        let u = by_name("unmarked");
        assert!(
            !u.is_mac_prim && !u.is_charge_sink && u.estimates.is_empty() && u.locks.is_empty()
        );
    }

    #[test]
    fn determinism_markers_attach_to_the_next_fn() {
        let src = "\
// flcheck: det-sink
pub fn render_json() -> String { String::new() }
// flcheck: det-absorb
fn record_timing() {}
// flcheck: nondet(os entropy via getrandom)
// flcheck: nondet(cpu frequency scaling)
fn opaque_source() {}
fn unmarked() {}
";
        let f = SourceFile::parse("x.rs", src);
        let by_name = |n: &str| f.fns.iter().find(|f| f.name == n).expect(n);
        assert!(by_name("render_json").is_det_sink);
        assert!(!by_name("render_json").is_det_absorb);
        assert!(by_name("record_timing").is_det_absorb);
        assert_eq!(
            by_name("opaque_source").nondets,
            vec!["os entropy via getrandom", "cpu frequency scaling"]
        );
        let u = by_name("unmarked");
        assert!(!u.is_det_sink && !u.is_det_absorb && u.nondets.is_empty());
    }

    #[test]
    fn width_markers_attach_to_the_next_fn() {
        let src = "\
// flcheck: widen-ok(slot_bits, r_bits)
pub fn pack() {}
// flcheck: narrow(masked limb split: low 32 bits extracted explicitly)
fn split_limb() {}
fn unmarked() {}
";
        let f = SourceFile::parse("x.rs", src);
        let by_name = |n: &str| f.fns.iter().find(|f| f.name == n).expect(n);
        assert_eq!(by_name("pack").widen_ok, vec!["slot_bits", "r_bits"]);
        assert!(by_name("pack").narrows.is_empty());
        assert_eq!(
            by_name("split_limb").narrows,
            vec!["masked limb split: low 32 bits extracted explicitly"]
        );
        let u = by_name("unmarked");
        assert!(u.widen_ok.is_empty() && u.narrows.is_empty());
    }

    #[test]
    fn unit_markers_attach_to_the_next_fn() {
        let src = "\
// flcheck: unit(seconds, seconds)
// flcheck: unit(return, seconds)
fn comm(seconds: f64) -> f64 { seconds }
// flcheck: convert(bytes->seconds)
fn send(bytes: u64) -> f64 { 0.0 }
fn unmarked() {}
";
        let f = SourceFile::parse("x.rs", src);
        let by_name = |n: &str| f.fns.iter().find(|f| f.name == n).expect(n);
        assert_eq!(
            by_name("comm").units,
            vec![
                ("seconds".to_string(), "seconds".to_string()),
                ("return".to_string(), "seconds".to_string()),
            ]
        );
        assert_eq!(
            by_name("send").converts,
            vec![("bytes".to_string(), "seconds".to_string())]
        );
        let u = by_name("unmarked");
        assert!(u.units.is_empty() && u.converts.is_empty());
    }

    #[test]
    fn malformed_unit_directives_are_ignored() {
        // Unknown dimensions, missing halves, and identity conversions all
        // drop silently, like malformed estimates(..) pairings.
        let src = "\
// flcheck: unit(x, parsecs)
// flcheck: unit(bytes)
// flcheck: convert(bytes)
// flcheck: convert(bytes->bytes)
// flcheck: convert(bytes->parsecs)
fn f() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].units.is_empty() && f.fns[0].converts.is_empty());
    }

    #[test]
    fn narrow_does_not_shadow_nondet_or_lock() {
        // Prefix-dispatch sanity: `nondet(..)` and `lock(..)` still parse
        // as themselves with the width directives in the chain.
        let src = "// flcheck: nondet(ffi)\n// flcheck: lock(stats)\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fns[0].nondets, vec!["ffi"]);
        assert_eq!(f.fns[0].locks, vec!["stats"]);
        assert!(f.fns[0].narrows.is_empty() && f.fns[0].widen_ok.is_empty());
    }

    #[test]
    fn empty_nondet_directive_is_ignored() {
        let src = "// flcheck: nondet( )\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].nondets.is_empty());
    }

    #[test]
    fn lock_directive_does_not_shadow_lock_order() {
        // `lock-order(..)` must still parse as an order declaration, not as
        // a malformed `lock(..)` acquire-effect marker.
        let src = "// flcheck: lock-order(a < b)\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.lock_orders.len(), 1);
        assert!(f.fns[0].locks.is_empty());
    }

    #[test]
    fn malformed_estimates_directives_are_ignored() {
        let src = "\
// flcheck: estimates(encrypt)
// flcheck: estimates(, 3)
// flcheck: estimates(encrypt, many)
fn est() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].estimates.is_empty());
    }

    #[test]
    fn directives_inside_block_comments_do_not_register() {
        // A lock(..) directive quoted inside a (nested) block comment is
        // prose, not a marker: it must not attach an acquire effect to
        // the next fn.
        let src = "\
/* discussion: /* flcheck: lock(table) */ see the directive grammar */
fn f() {}
// flcheck: lock(stats)
fn g() {}
";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].locks.is_empty(), "{:?}", f.fns[0].locks);
        assert_eq!(f.fns[1].locks, vec!["stats".to_string()]);
    }

    #[test]
    fn ct_marker_skips_attributes() {
        let src = "// flcheck: ct-fn\n#[inline]\n#[must_use]\npub fn masked() -> u64 { 0 }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.fns[0].is_ct);
    }

    #[test]
    fn fn_bodies_are_spanned() {
        let src = "fn outer(a: (u8, u8)) -> u8 { inner() } fn two() {}";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "outer");
        let body: Vec<_> = f.tokens[f.fns[0].body_start..f.fns[0].body_end - 1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, vec!["inner", "(", ")"]);
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u8; fn with_default(&self) { body() } }";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<_> = f.fns.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "\
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
";
        let f = SourceFile::parse("x.rs", src);
        // One region: the outer mod subsumes the inner #[test] fn.
        assert_eq!(f.test_regions.len(), 1);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(
            !f.in_test_region(unwraps[0]),
            "library unwrap is not in a test"
        );
        assert!(f.in_test_region(unwraps[1]), "test unwrap is in a region");
    }

    #[test]
    fn cfg_test_attr_with_following_attrs() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn f() {} }\nfn real() {}";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions.len(), 1);
        let real_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("real"))
            .expect("real");
        assert!(!f.in_test_region(real_idx));
    }

    #[test]
    fn cfg_test_use_has_no_region() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn f() {}";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.test_regions.is_empty());
    }
}
