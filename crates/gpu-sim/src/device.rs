//! The simulated device: kernel launches, transfers, and accounting.
//!
//! Lock discipline: the memory table is always acquired before the stats
//! accumulator so the two can never deadlock against each other.

// flcheck: lock-order(memory < stats)

use std::time::Instant;

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::config::DeviceConfig;
use crate::kernel::{ItemOutcome, KernelSpec, LaunchReport};
use crate::memory::{DevicePtr, MemoryError, MemoryTable};
use crate::resource::ResourceManager;
use crate::stats::DeviceStats;

/// Device heap size used when none is specified (matches the RTX 3090's
/// 24 GB of GDDR6X).
const DEFAULT_HEAP_BYTES: u64 = 24 * 1024 * 1024 * 1024;

/// Compute-slowdown factor for a divergent warp whose branches the
/// resource manager recombines (small residual cost) versus lets split
/// (both arms execute serially).
const COMBINED_BRANCH_PENALTY: f64 = 1.05;
const SPLIT_BRANCH_PENALTY: f64 = 2.0;

/// A simulated GPU.
///
/// Kernel bodies run *for real*, data-parallel across the host
/// work-stealing pool (so results are exact and `wall_seconds` is a true
/// parallel measurement), while the launch is *accounted* under the GPU
/// execution model:
/// the resource manager plans a grid, occupancy and utilization are
/// derived from the plan, and simulated H2D/compute/D2H times follow the
/// three-stage model of the paper's Sec. V-B.
pub struct Device {
    config: DeviceConfig,
    manager: ResourceManager,
    memory: Mutex<MemoryTable>,
    stats: Mutex<DeviceStats>,
}

impl Device {
    /// Creates a device with the default FLBooster resource manager.
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_manager(config, ResourceManager::new())
    }

    /// Creates a device with an explicit resource manager (used by the
    /// resource-manager ablation bench).
    pub fn with_manager(config: DeviceConfig, manager: ResourceManager) -> Self {
        let heap = if config.name == "test-tiny" {
            1 << 20
        } else {
            DEFAULT_HEAP_BYTES
        };
        Device {
            config,
            manager,
            memory: Mutex::new(MemoryTable::new(heap)),
            stats: Mutex::new(DeviceStats::default()),
        }
    }

    /// The device description.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The active resource manager.
    pub fn manager(&self) -> &ResourceManager {
        &self.manager
    }

    /// Allocates device memory through the resource manager's table.
    pub fn alloc(&self, len: u64) -> Result<DevicePtr, MemoryError> {
        self.memory.lock().alloc(len)
    }

    /// Frees a device allocation (the mark is retained for reuse).
    pub fn free(&self, ptr: DevicePtr) -> Result<(), MemoryError> {
        self.memory.lock().free(ptr)
    }

    /// Launches `spec` over `items`, transferring `bytes_in` to the device
    /// beforehand and `bytes_out` back afterwards.
    ///
    /// Each item runs `body(index, &item)` on the host work-stealing
    /// pool; outputs are returned in item order alongside the full
    /// [`LaunchReport`] regardless of how many workers executed them.
    /// `body` must not panic across items it wants kept: a panic in any
    /// item cancels the launch and propagates to the caller (the device
    /// and its pool stay usable).
    // flcheck: det-sink — launch outputs are result content (the report's
    // wall-clock/pool-width fields are declared metadata; see the allows below)
    pub fn launch<I, O, F>(
        &self,
        spec: &KernelSpec,
        items: &[I],
        bytes_in: u64,
        bytes_out: u64,
        body: F,
    ) -> (Vec<O>, LaunchReport)
    where
        I: Sync,
        O: Send,
        F: Fn(usize, &I) -> ItemOutcome<O> + Sync,
    {
        let plan = self.manager.plan(&self.config, spec, items.len());
        // LaunchReport.pool_threads is thread-dependent *by design* (the
        // determinism test asserts it equals the pool width); item outputs
        // below are index-ordered and never read it.
        // flcheck: allow(nondet-in-result)
        let pool_threads = rayon::current_num_threads();

        // Wall-clock feeds only LaunchReport.wall_seconds (timing metadata),
        // never the outputs.
        // flcheck: allow(nondet-in-result)
        let started = Instant::now();
        let outcomes: Vec<ItemOutcome<O>> = items
            .par_iter()
            .enumerate()
            .map(|(i, item)| body(i, item))
            .collect();
        let wall_seconds = started.elapsed().as_secs_f64();

        let mut outputs = Vec::with_capacity(outcomes.len());
        let mut total_ops: u64 = 0;
        let mut divergent_items: u64 = 0;
        let mut penalized_ops: f64 = 0.0;
        let branch_penalty = if self.manager.branch_combining() {
            COMBINED_BRANCH_PENALTY
        } else {
            SPLIT_BRANCH_PENALTY
        };
        for o in outcomes {
            total_ops += o.thread_ops;
            penalized_ops += if o.divergent {
                divergent_items += 1;
                o.thread_ops as f64 * branch_penalty
            } else {
                o.thread_ops as f64
            };
            outputs.push(o.output);
        }

        // Simulated three-stage timing (paper Sec. V-B): copy in, compute
        // in parallel over the concurrently resident threads, copy out.
        let sim_h2d = bytes_in as f64 / self.config.transfer_bytes_per_sec;
        let sim_d2h = bytes_out as f64 / self.config.transfer_bytes_per_sec;
        let concurrent = plan.concurrent_threads(&self.config).max(1) as f64;
        let sim_kernel = penalized_ops / concurrent * self.config.sec_per_thread_op;

        // SM utilization = occupancy × wave fill (the tail wave of a small
        // grid leaves SMs idle).
        let device_resident =
            (plan.resident_threads_per_sm as u64 * self.config.num_sms as u64).max(1);
        let fill = plan.total_threads as f64 / (plan.waves.max(1) as u64 * device_resident) as f64;
        let sm_utilization = (plan.occupancy * fill.min(1.0)).min(1.0);

        let divergent_fraction = if items.is_empty() {
            0.0
        } else {
            divergent_items as f64 / items.len() as f64
        };

        let report = LaunchReport {
            name: spec.name,
            items: items.len(),
            plan,
            wall_seconds,
            pool_threads,
            sim_h2d_seconds: sim_h2d,
            sim_kernel_seconds: sim_kernel,
            sim_d2h_seconds: sim_d2h,
            bytes_in,
            bytes_out,
            total_thread_ops: total_ops,
            divergent_fraction,
            sm_utilization,
        };
        self.stats.lock().record(&report);
        (outputs, report)
    }

    /// Snapshot of accumulated statistics (memory counters refreshed).
    pub fn stats(&self) -> DeviceStats {
        // Declared order: memory before stats.
        let memory = self.memory.lock().counters();
        let mut s = self.stats.lock().clone();
        s.memory = memory;
        s
    }

    /// Clears accumulated launch statistics (memory table is untouched).
    pub fn reset_stats(&self) {
        *self.stats.lock() = DeviceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new(DeviceConfig::test_tiny())
    }

    fn spec() -> KernelSpec {
        KernelSpec::simple("square")
    }

    #[test]
    fn launch_returns_outputs_in_order() {
        let d = device();
        let items: Vec<u64> = (0..100).collect();
        let (out, report) = d.launch(&spec(), &items, 800, 800, |_, &x| {
            ItemOutcome::new(x * x, 1)
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        assert_eq!(report.items, 100);
        assert_eq!(report.total_thread_ops, 100);
    }

    #[test]
    fn transfer_times_follow_bandwidth() {
        let d = device();
        let items = [0u8];
        let (_, r) = d.launch(&spec(), &items, 1_000_000_000, 500_000_000, |_, _| {
            ItemOutcome::new((), 1)
        });
        // test_tiny bandwidth = 1e9 B/s
        assert!((r.sim_h2d_seconds - 1.0).abs() < 1e-9);
        assert!((r.sim_d2h_seconds - 0.5).abs() < 1e-9);
    }

    #[test]
    fn kernel_time_scales_inverse_with_parallelism() {
        let cfg = DeviceConfig::test_tiny();
        let d = Device::new(cfg);
        // Few items: low parallelism. Many items: full device.
        let small: Vec<u32> = (0..4).collect();
        let large: Vec<u32> = (0..4096).collect();
        let (_, rs) = d.launch(&spec(), &small, 0, 0, |_, _| ItemOutcome::new((), 1000));
        let (_, rl) = d.launch(&spec(), &large, 0, 0, |_, _| ItemOutcome::new((), 1000));
        // 1024x the work but only ~64x the time (device has 256 slots).
        let ratio = rl.sim_kernel_seconds / rs.sim_kernel_seconds;
        assert!(
            ratio < 1024.0 * 0.5,
            "parallel speedup missing: ratio {ratio}"
        );
    }

    #[test]
    fn utilization_reflects_underfilled_device() {
        let d = device();
        let tiny: Vec<u32> = (0..2).collect(); // 2 threads on a 256-slot device
        let (_, r) = d.launch(&spec(), &tiny, 0, 0, |_, _| ItemOutcome::new((), 1));
        assert!(r.sm_utilization < 0.1, "utilization {}", r.sm_utilization);
        let full: Vec<u32> = (0..10_000).collect();
        let (_, r2) = d.launch(&spec(), &full, 0, 0, |_, _| ItemOutcome::new((), 1));
        assert!(r2.sm_utilization > r.sm_utilization);
    }

    #[test]
    fn divergence_penalty_depends_on_manager() {
        let items: Vec<u32> = (0..256).collect();
        let run = |d: &Device| {
            let mut s = spec();
            s.divergence = 1.0;
            let (_, r) = d.launch(&s, &items, 0, 0, |i, _| ItemOutcome {
                output: (),
                thread_ops: 100,
                divergent: i % 2 == 0,
            });
            r
        };
        let combining = Device::new(DeviceConfig::test_tiny());
        let splitting = Device::with_manager(
            DeviceConfig::test_tiny(),
            ResourceManager::new().without_branch_combining(),
        );
        let rc = run(&combining);
        let rs = run(&splitting);
        assert!((rc.divergent_fraction - 0.5).abs() < 1e-12);
        assert!(
            rs.sim_kernel_seconds > rc.sim_kernel_seconds,
            "split branches must cost more: {} vs {}",
            rs.sim_kernel_seconds,
            rc.sim_kernel_seconds
        );
    }

    #[test]
    fn stats_accumulate_across_launches() {
        let d = device();
        let items = [1u8, 2, 3];
        for _ in 0..3 {
            d.launch(&spec(), &items, 10, 20, |_, _| ItemOutcome::new((), 5));
        }
        let s = d.stats();
        assert_eq!(s.launches, 3);
        assert_eq!(s.items, 9);
        assert_eq!(s.bytes_in, 30);
        assert_eq!(s.bytes_out, 60);
        assert_eq!(s.thread_ops, 45);
        d.reset_stats();
        assert_eq!(d.stats().launches, 0);
    }

    #[test]
    fn device_memory_flows_through_table() {
        let d = device();
        let p = d.alloc(512).unwrap();
        d.free(p).unwrap();
        let q = d.alloc(512).unwrap();
        assert_eq!(p.addr, q.addr);
        assert_eq!(d.stats().memory.reuse_hits, 1);
    }

    #[test]
    fn launch_reports_pool_threads_and_is_thread_count_invariant() {
        let d = device();
        let items: Vec<u64> = (0..333).collect();
        let mut baseline: Option<Vec<u64>> = None;
        for threads in [1usize, 4, 16] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let (out, report) = pool.install(|| {
                d.launch(&spec(), &items, 0, 0, |i, &x| {
                    ItemOutcome::new(x.wrapping_mul(x) ^ i as u64, 3)
                })
            });
            assert_eq!(report.pool_threads, threads);
            match &baseline {
                None => baseline = Some(out),
                Some(b) => assert_eq!(&out, b, "outputs diverged at {threads} threads"),
            }
        }
    }

    #[test]
    fn panicking_item_cancels_launch_but_device_survives() {
        let d = device();
        let items: Vec<u32> = (0..64).collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                d.launch(&spec(), &items, 0, 0, |_, &x| {
                    if x == 13 {
                        panic!("unlucky item");
                    }
                    ItemOutcome::new(x, 1)
                })
            })
        }));
        assert!(attempt.is_err(), "the item panic must surface");
        // The device (and the pool behind it) is still fully usable.
        let (out, _) = d.launch(&spec(), &items, 0, 0, |_, &x| ItemOutcome::new(x + 1, 1));
        assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_launch_is_harmless() {
        let d = device();
        let items: [u8; 0] = [];
        let (out, r) = d.launch(&spec(), &items, 0, 0, |_, _| ItemOutcome::new(0u8, 1));
        assert!(out.is_empty());
        assert_eq!(r.divergent_fraction, 0.0);
    }
}
