//! Encoding-quantization (paper Sec. IV-B, Eq. 6–8).
//!
//! A gradient `m ∈ [-α, α]` is shifted non-negative (`e = m + α`),
//! normalized by the range `2α`, and amplified into `r` bits
//! (`q = round(e/2α · (2^r − 1))`). `b = ⌈log₂ p⌉` guard ("overflow") bits
//! sit above the `r` value bits so that summing the quantized values of up
//! to `p = 2^b` participants can never carry out of the slot — the
//! property that makes packed slots safe under Paillier's homomorphic
//! addition.
//!
//! Unlike (significand, plaintext-exponent) encodings, the whole value is
//! quantized and encrypted, so nothing about the gradient's magnitude
//! leaks (the paper's security argument against FLASHE-style encodings).

use crate::{Error, Result};

/// Configuration of the encoding-quantization scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizerConfig {
    /// Gradient bound α: inputs must lie in `[-α, α]` (gradients are
    /// clipped here first; the paper notes α is "usually smaller than 1").
    pub alpha: f64,
    /// Value bits `r`.
    pub r_bits: u32,
    /// Number of participants `p`; fixes the guard bits `b = ⌈log₂ p⌉`.
    pub participants: u32,
    /// If true, out-of-range values are clipped to ±α instead of being
    /// rejected.
    pub clip: bool,
}

impl QuantizerConfig {
    /// The paper's default: 32-bit slots ("32 bits are used to quantize
    /// 32-bit float gradients, where the last two bits are used for
    /// computational overflow"), α = 1.
    pub fn paper_default(participants: u32) -> Self {
        let b = guard_bits(participants);
        QuantizerConfig {
            alpha: 1.0,
            r_bits: 32 - b,
            participants,
            clip: true,
        }
    }

    /// Guard bits `b = ⌈log₂ p⌉` (at least 1 so two values can always be
    /// added).
    pub fn guard_bits(&self) -> u32 {
        guard_bits(self.participants)
    }

    /// Slot width `r + b` in bits.
    pub fn slot_bits(&self) -> u32 {
        self.r_bits + self.guard_bits()
    }

    /// Maximum number of terms that can be aggregated into one slot.
    pub fn max_terms(&self) -> u32 {
        1u32 << self.guard_bits().min(31)
    }

    fn validate(&self) -> Result<()> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(Error::BadConfig(format!(
                "alpha must be positive, got {}",
                self.alpha
            )));
        }
        if self.r_bits == 0 {
            return Err(Error::BadConfig("r_bits must be at least 1".into()));
        }
        if self.participants == 0 {
            return Err(Error::BadConfig("participants must be at least 1".into()));
        }
        if self.slot_bits() > 62 {
            // Slots are manipulated as u64 with headroom for aggregation.
            return Err(Error::BadConfig(format!(
                "slot width {} exceeds the 62-bit slot limit",
                self.slot_bits()
            )));
        }
        Ok(())
    }
}

fn guard_bits(participants: u32) -> u32 {
    (32 - participants.max(2).next_power_of_two().leading_zeros() - 1).max(1)
}

/// The encoder/decoder for single values.
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    cfg: QuantizerConfig,
    /// `2^r − 1` as f64.
    scale: f64,
}

impl Quantizer {
    /// Builds a quantizer, validating the configuration.
    pub fn new(cfg: QuantizerConfig) -> Result<Self> {
        cfg.validate()?;
        let scale = ((1u64 << cfg.r_bits) - 1) as f64;
        Ok(Quantizer { cfg, scale })
    }

    /// The configuration.
    pub fn config(&self) -> &QuantizerConfig {
        &self.cfg
    }

    /// Quantizes one gradient value (Eq. 6–8).
    pub fn quantize(&self, m: f64) -> Result<u64> {
        if !m.is_finite() {
            return Err(Error::ValueOutOfRange {
                value: m,
                alpha: self.cfg.alpha,
            });
        }
        let a = self.cfg.alpha;
        let m = if self.cfg.clip {
            m.clamp(-a, a)
        } else if m < -a || m > a {
            return Err(Error::ValueOutOfRange { value: m, alpha: a });
        } else {
            m
        };
        // e = m + α, normalized into [0, 1] then amplified into r bits.
        let e = (m + a) / (2.0 * a);
        Ok((e * self.scale).round() as u64)
    }

    /// Inverse of [`Quantizer::quantize`] for a single (non-aggregated)
    /// value.
    pub fn dequantize(&self, q: u64) -> f64 {
        self.dequantize_sum(q, 1)
    }

    /// Decodes a slot holding the sum of `terms` quantized values:
    /// `Σ qᵢ / (2^r − 1) · 2α − terms·α`.
    pub fn dequantize_sum(&self, z: u64, terms: u32) -> f64 {
        let a = self.cfg.alpha;
        (z as f64 / self.scale) * 2.0 * a - terms as f64 * a
    }

    /// Worst-case absolute quantization error for one value:
    /// half a quantization step, `α / (2^r − 1)`.
    pub fn max_error(&self) -> f64 {
        self.cfg.alpha / self.scale
    }

    /// Checks that aggregating `terms` slots cannot overflow the guard
    /// bits.
    pub fn check_terms(&self, terms: u32) -> Result<()> {
        if terms > self.cfg.max_terms() {
            return Err(Error::OverflowBitsExhausted {
                terms,
                max_terms: self.cfg.max_terms(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantizer(r: u32, p: u32) -> Quantizer {
        Quantizer::new(QuantizerConfig {
            alpha: 1.0,
            r_bits: r,
            participants: p,
            clip: false,
        })
        .unwrap()
    }

    #[test]
    fn guard_bits_formula() {
        // b = ceil(log2 p), minimum 1.
        assert_eq!(guard_bits(1), 1);
        assert_eq!(guard_bits(2), 1);
        assert_eq!(guard_bits(3), 2);
        assert_eq!(guard_bits(4), 2);
        assert_eq!(guard_bits(5), 3);
        assert_eq!(guard_bits(64), 6);
        assert_eq!(guard_bits(65), 7);
    }

    #[test]
    fn paper_default_is_32_bit_slot() {
        let cfg = QuantizerConfig::paper_default(4);
        assert_eq!(cfg.slot_bits(), 32);
        assert_eq!(cfg.guard_bits(), 2);
        assert_eq!(cfg.r_bits, 30);
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let q = quantizer(30, 4);
        let bound = q.max_error();
        for &m in &[0.0, 1.0, -1.0, 0.5, -0.123456789, 1e-9, 0.99999] {
            let back = q.dequantize(q.quantize(m).unwrap());
            assert!((m - back).abs() <= bound, "m={m} back={back} bound={bound}");
        }
    }

    #[test]
    fn error_shrinks_with_more_bits() {
        assert!(quantizer(30, 4).max_error() < quantizer(8, 4).max_error());
        assert!(quantizer(30, 4).max_error() < 1e-8);
    }

    #[test]
    fn endpoints_map_to_extremes() {
        let q = quantizer(16, 2);
        assert_eq!(q.quantize(-1.0).unwrap(), 0);
        assert_eq!(q.quantize(1.0).unwrap(), (1 << 16) - 1);
        assert_eq!(q.quantize(0.0).unwrap(), (1 << 15)); // round(0.5 * 65535) = 32768
    }

    #[test]
    fn strict_mode_rejects_out_of_range() {
        let q = quantizer(16, 2);
        assert!(matches!(
            q.quantize(1.5),
            Err(Error::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            q.quantize(f64::NAN),
            Err(Error::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            q.quantize(f64::INFINITY),
            Err(Error::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn clip_mode_clamps() {
        let q = Quantizer::new(QuantizerConfig {
            alpha: 1.0,
            r_bits: 16,
            participants: 2,
            clip: true,
        })
        .unwrap();
        assert_eq!(q.quantize(5.0).unwrap(), q.quantize(1.0).unwrap());
        assert_eq!(q.quantize(-5.0).unwrap(), q.quantize(-1.0).unwrap());
        // NaN is still rejected even when clipping.
        assert!(q.quantize(f64::NAN).is_err());
    }

    #[test]
    fn aggregated_sum_decodes_correctly() {
        let q = quantizer(20, 4);
        let values = [0.25, -0.5, 0.75, -0.125];
        let z: u64 = values.iter().map(|&m| q.quantize(m).unwrap()).sum();
        let sum = q.dequantize_sum(z, values.len() as u32);
        let expected: f64 = values.iter().sum();
        assert!((sum - expected).abs() <= values.len() as f64 * q.max_error());
    }

    #[test]
    fn guard_bits_bound_aggregation() {
        let q = quantizer(20, 4); // b = 2 → max 4 terms
        assert!(q.check_terms(4).is_ok());
        assert!(matches!(
            q.check_terms(5),
            Err(Error::OverflowBitsExhausted { .. })
        ));
        // Even max_terms values at the extreme cannot overflow the slot.
        let max = q.quantize(1.0).unwrap();
        let total = max * 4;
        assert!(total < 1u64 << q.config().slot_bits());
    }

    #[test]
    fn custom_alpha_scales_range() {
        let q = Quantizer::new(QuantizerConfig {
            alpha: 0.01,
            r_bits: 24,
            participants: 2,
            clip: false,
        })
        .unwrap();
        let m = 0.0099;
        let back = q.dequantize(q.quantize(m).unwrap());
        assert!((m - back).abs() <= q.max_error());
        assert!(q.quantize(0.02).is_err());
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(Quantizer::new(QuantizerConfig {
            alpha: 0.0,
            r_bits: 8,
            participants: 2,
            clip: false
        })
        .is_err());
        assert!(Quantizer::new(QuantizerConfig {
            alpha: 1.0,
            r_bits: 0,
            participants: 2,
            clip: false
        })
        .is_err());
        assert!(Quantizer::new(QuantizerConfig {
            alpha: 1.0,
            r_bits: 62,
            participants: 4,
            clip: false
        })
        .is_err());
        assert!(Quantizer::new(QuantizerConfig {
            alpha: 1.0,
            r_bits: 8,
            participants: 0,
            clip: false
        })
        .is_err());
    }
}
