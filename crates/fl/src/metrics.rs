//! Epoch timing breakdowns and convergence metrics.
//!
//! The paper reports (i) average running time per epoch (Table III), (ii)
//! component shares — Others / HE operations / Communication (Fig. 1,
//! Table VI), (iii) HE throughput (Table IV), and (iv) convergence bias
//! (Eq. 15, Table VII). These types carry those measurements out of the
//! trainers.

// flcheck: allow-file(pf-index) — rank-loop indices in `auc` are bounded by
// `pairs.len()` in the loop conditions.

/// Simulated seconds of one epoch attributed to the six per-round
/// pipeline phases the round engine overlaps: local gradient compute,
/// client-side encrypt (incl. quantize/pack), uplink transfer, server
/// aggregation, downlink transfer, and client-side decrypt (incl.
/// unpack).
///
/// Every simulated second charged to the classic three-component split
/// ([`EpochBreakdown::he_seconds`] / `comm_seconds` / `other_seconds`) is
/// also charged to exactly one phase, so [`PhaseBreakdown::total`] always
/// matches [`EpochBreakdown::total_seconds`] (up to f64 re-association)
/// — pinned by a regression test. The phases exist so pipeline overlap is
/// directly measurable: phase totals are *work*, while
/// [`EpochBreakdown::round_seconds`] is *elapsed* simulated time, and the
/// gap between them is exactly what the event-driven engine hides.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Local model computation (gradients, encode-side flops).
    pub compute_seconds: f64,
    /// Client-side quantize + pack + encrypt.
    pub encrypt_seconds: f64,
    /// Client → aggregator transfers (incl. edge-aggregator hops).
    pub uplink_seconds: f64,
    /// Homomorphic folding at the aggregator(s).
    pub aggregate_seconds: f64,
    /// Aggregator → client broadcasts.
    pub downlink_seconds: f64,
    /// Client-side decrypt + unpack.
    pub decrypt_seconds: f64,
}

impl PhaseBreakdown {
    /// Total work across all six phases.
    pub fn total(&self) -> f64 {
        self.compute_seconds
            + self.encrypt_seconds
            + self.uplink_seconds
            + self.aggregate_seconds
            + self.downlink_seconds
            + self.decrypt_seconds
    }

    /// Accumulates another phase breakdown.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.compute_seconds += other.compute_seconds;
        self.encrypt_seconds += other.encrypt_seconds;
        self.uplink_seconds += other.uplink_seconds;
        self.aggregate_seconds += other.aggregate_seconds;
        self.downlink_seconds += other.downlink_seconds;
        self.decrypt_seconds += other.decrypt_seconds;
    }
}

/// Simulated seconds of one epoch, attributed to the paper's three
/// components.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochBreakdown {
    /// HE operations (encrypt + homomorphic compute + decrypt).
    pub he_seconds: f64,
    /// Client↔server communication.
    pub comm_seconds: f64,
    /// Everything else: local model computation, data conversion,
    /// quantization/packing.
    pub other_seconds: f64,
    /// Bytes that crossed the wire.
    pub comm_bytes: u64,
    /// Ciphertexts that crossed the wire.
    pub ciphertexts: u64,
    /// Gradient components that passed through HE.
    pub he_values: u64,
    /// The same seconds re-attributed to the six pipeline phases. Every
    /// slot is **simulated seconds** (never bytes, limb-mults, or
    /// message counts — the `charge-unphased` unit-flow rule holds the
    /// charging paths to this), and each charged second lands in exactly
    /// one slot.
    pub phases: PhaseBreakdown,
    /// *Elapsed* simulated seconds: the critical path after the round
    /// engine overlaps phases on the event timeline. Sequential paths
    /// charge this equal to the phase total (no overlap), so
    /// [`EpochBreakdown::overlap_speedup`] is 1.0 unless the pipelined
    /// engine ran.
    pub round_seconds: f64,
}

impl EpochBreakdown {
    /// Total epoch seconds.
    pub fn total_seconds(&self) -> f64 {
        self.he_seconds + self.comm_seconds + self.other_seconds
    }

    /// Component shares `(others, he, comm)` as fractions of the total —
    /// the Table VI columns.
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.total_seconds();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.other_seconds / t,
            self.he_seconds / t,
            self.comm_seconds / t,
        )
    }

    /// HE throughput in values/second (Table IV's instances-per-second).
    pub fn he_throughput(&self) -> f64 {
        if self.he_seconds == 0.0 {
            0.0
        } else {
            self.he_values as f64 / self.he_seconds
        }
    }

    /// Work-over-elapsed ratio: how much simulated time phase overlap
    /// removed. 1.0 for purely sequential execution; >1 when the
    /// pipelined round engine hid work behind transfers. Returns 1.0
    /// when no elapsed time was recorded.
    pub fn overlap_speedup(&self) -> f64 {
        if self.round_seconds <= 0.0 {
            1.0
        } else {
            self.total_seconds() / self.round_seconds
        }
    }

    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &EpochBreakdown) {
        self.he_seconds += other.he_seconds;
        self.comm_seconds += other.comm_seconds;
        self.other_seconds += other.other_seconds;
        self.comm_bytes += other.comm_bytes;
        self.ciphertexts += other.ciphertexts;
        self.he_values += other.he_values;
        self.phases.merge(&other.phases);
        self.round_seconds += other.round_seconds;
    }
}

/// One epoch's outcome.
#[derive(Debug, Clone, Copy)]
pub struct EpochResult {
    /// Timing attribution.
    pub breakdown: EpochBreakdown,
    /// Global training loss after the epoch.
    pub loss: f64,
}

/// A full training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Model name ("Homo LR", ...).
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Backend name ("FATE", "HAFLO", "FLBooster", ...).
    pub backend: String,
    /// Key size in bits.
    pub key_bits: u32,
    /// Per-epoch results in order.
    pub epochs: Vec<EpochResult>,
    /// Whether the tolerance stopping rule fired.
    pub converged: bool,
}

impl TrainReport {
    /// Mean simulated seconds per epoch — the Table III cell.
    pub fn mean_epoch_seconds(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs
            .iter()
            .map(|e| e.breakdown.total_seconds())
            .sum::<f64>()
            / self.epochs.len() as f64
    }

    /// Final loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f64::NAN)
    }

    /// Summed breakdown across epochs.
    pub fn total_breakdown(&self) -> EpochBreakdown {
        let mut acc = EpochBreakdown::default();
        for e in &self.epochs {
            acc.merge(&e.breakdown);
        }
        acc
    }

    /// Cumulative simulated time at the end of each epoch, paired with
    /// loss — the Fig. 8 convergence series.
    pub fn convergence_series(&self) -> Vec<(f64, f64)> {
        let mut t = 0.0;
        self.epochs
            .iter()
            .map(|e| {
                t += e.breakdown.total_seconds();
                (t, e.loss)
            })
            .collect()
    }
}

/// Convergence bias (paper Eq. 15): `|L − L_other| / L`, the relative
/// deviation of a compressed run's loss from the uncompressed reference.
pub fn convergence_bias(reference_loss: f64, other_loss: f64) -> f64 {
    if reference_loss == 0.0 {
        return if other_loss == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
    }
    (reference_loss - other_loss).abs() / reference_loss.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(he: f64, comm: f64, other: f64) -> EpochBreakdown {
        EpochBreakdown {
            he_seconds: he,
            comm_seconds: comm,
            other_seconds: other,
            comm_bytes: 100,
            ciphertexts: 10,
            he_values: 50,
            phases: PhaseBreakdown {
                compute_seconds: other,
                encrypt_seconds: he,
                uplink_seconds: comm,
                ..PhaseBreakdown::default()
            },
            round_seconds: he + comm + other,
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let b = breakdown(2.0, 3.0, 5.0);
        let (o, h, c) = b.shares();
        assert!((o + h + c - 1.0).abs() < 1e-12);
        assert!((o - 0.5).abs() < 1e-12);
        assert!((h - 0.2).abs() < 1e-12);
        assert_eq!(b.total_seconds(), 10.0);
    }

    #[test]
    fn zero_breakdown_has_zero_shares() {
        assert_eq!(EpochBreakdown::default().shares(), (0.0, 0.0, 0.0));
        assert_eq!(EpochBreakdown::default().he_throughput(), 0.0);
    }

    #[test]
    fn throughput() {
        let b = breakdown(2.0, 0.0, 0.0);
        assert_eq!(b.he_throughput(), 25.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = breakdown(1.0, 1.0, 1.0);
        a.merge(&breakdown(2.0, 2.0, 2.0));
        assert_eq!(a.total_seconds(), 9.0);
        assert_eq!(a.comm_bytes, 200);
        assert_eq!(a.he_values, 100);
        assert_eq!(a.phases.total(), 9.0);
        assert_eq!(a.round_seconds, 9.0);
    }

    #[test]
    fn phase_total_sums_all_six_phases() {
        let p = PhaseBreakdown {
            compute_seconds: 1.0,
            encrypt_seconds: 2.0,
            uplink_seconds: 4.0,
            aggregate_seconds: 8.0,
            downlink_seconds: 16.0,
            decrypt_seconds: 32.0,
        };
        assert_eq!(p.total(), 63.0);
        let mut q = p;
        q.merge(&p);
        assert_eq!(q.total(), 126.0);
    }

    #[test]
    fn overlap_speedup_is_work_over_elapsed() {
        let mut b = breakdown(2.0, 3.0, 5.0);
        assert_eq!(b.overlap_speedup(), 1.0, "sequential: elapsed == work");
        b.round_seconds = 4.0;
        assert_eq!(b.overlap_speedup(), 2.5);
        b.round_seconds = 0.0;
        assert_eq!(b.overlap_speedup(), 1.0, "no elapsed recorded");
    }

    #[test]
    fn report_statistics() {
        let report = TrainReport {
            model: "m".into(),
            dataset: "d".into(),
            backend: "b".into(),
            key_bits: 1024,
            epochs: vec![
                EpochResult {
                    breakdown: breakdown(1.0, 1.0, 0.0),
                    loss: 0.5,
                },
                EpochResult {
                    breakdown: breakdown(1.0, 0.0, 1.0),
                    loss: 0.25,
                },
            ],
            converged: true,
        };
        assert_eq!(report.mean_epoch_seconds(), 2.0);
        assert_eq!(report.final_loss(), 0.25);
        assert_eq!(report.convergence_series(), vec![(2.0, 0.5), (4.0, 0.25)]);
        assert_eq!(report.total_breakdown().total_seconds(), 4.0);
    }

    #[test]
    fn empty_report() {
        let report = TrainReport {
            model: "m".into(),
            dataset: "d".into(),
            backend: "b".into(),
            key_bits: 1024,
            epochs: vec![],
            converged: false,
        };
        assert_eq!(report.mean_epoch_seconds(), 0.0);
        assert!(report.final_loss().is_nan());
    }

    #[test]
    fn convergence_bias_formula() {
        assert_eq!(convergence_bias(0.5, 0.5), 0.0);
        assert!((convergence_bias(0.5, 0.51) - 0.02).abs() < 1e-12);
        assert!((convergence_bias(0.5, 0.49) - 0.02).abs() < 1e-12);
        assert_eq!(convergence_bias(0.0, 0.0), 0.0);
        assert_eq!(convergence_bias(0.0, 0.1), f64::INFINITY);
    }
}

/// Classification accuracy at the 0.5 threshold.
pub fn accuracy(predictions: &[f64], labels: &[f64]) -> f64 {
    // Documented precondition: a shape mismatch is a caller bug.
    // flcheck: allow(pf-assert)
    assert_eq!(predictions.len(), labels.len(), "prediction/label mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
        .count();
    correct as f64 / predictions.len() as f64
}

/// Area under the ROC curve (rank statistic; ties get half credit).
///
/// Returns 0.5 when either class is absent.
pub fn auc(predictions: &[f64], labels: &[f64]) -> f64 {
    // Documented precondition: a shape mismatch is a caller bug.
    // flcheck: allow(pf-assert)
    assert_eq!(predictions.len(), labels.len(), "prediction/label mismatch");
    let mut pairs: Vec<(f64, f64)> = predictions
        .iter()
        .copied()
        .zip(labels.iter().copied())
        .collect();
    // total_cmp orders NaNs deterministically instead of panicking.
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));

    let positives = labels.iter().filter(|&&y| y >= 0.5).count() as f64;
    let negatives = labels.len() as f64 - positives;
    if positives == 0.0 || negatives == 0.0 {
        return 0.5;
    }

    // Sum of positive ranks (average ranks over tied scores).
    let mut rank_sum = 0.0;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for pair in &pairs[i..=j] {
            if pair.1 >= 0.5 {
                rank_sum += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum - positives * (positives + 1.0) / 2.0) / (positives * negatives)
}

#[cfg(test)]
mod classification_tests {
    use super::*;

    #[test]
    fn accuracy_counts_threshold_agreement() {
        assert_eq!(accuracy(&[0.9, 0.1, 0.6], &[1.0, 0.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0.5], &[1.0]), 1.0, "0.5 predicts positive");
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // All predictions identical: pure ties => 0.5.
        assert_eq!(auc(&[0.5; 6], &[0.0, 1.0, 0.0, 1.0, 0.0, 1.0]), 0.5);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn auc_handles_partial_ties() {
        // One tie pair across classes contributes half credit.
        let got = auc(&[0.3, 0.3, 0.7], &[0.0, 1.0, 1.0]);
        assert!((got - 0.75).abs() < 1e-12, "{got}");
    }
}
